//! O(N) versus O(N³): the Chebyshev Fermi-operator engine against exact
//! diagonalization across system sizes — the 1994 linear-scaling frontier.
//!
//! For each Si supercell size the example measures wall-clock per force
//! evaluation for the dense serial engine and the localized O(N) engine,
//! along with the O(N) energy error per atom. The crossover where the
//! linear method wins moves down as machines slow down — on the era
//! hardware it sat at a few hundred atoms.
//!
//! Run with: `cargo run --release --example linear_scaling [-- max_reps]`

use std::time::Instant;
use tbmd::{silicon_gsp, ForceProvider, LinearScalingTb, OccupationScheme, Species, TbCalculator};

fn main() {
    let max_reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let kt = 0.3;
    let model = silicon_gsp();
    let dense = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt });

    println!("engine comparison on Si diamond supercells (kT = {kt} eV):\n");
    println!("    N    dense t/s    O(N) t/s    |ΔE|/atom/eV   ops/atom");
    for reps in 1..=max_reps {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        let n = s.n_atoms();

        let t0 = Instant::now();
        let dense_result = dense.compute(&s).expect("dense evaluation");
        let t_dense = t0.elapsed().as_secs_f64();
        let e_dense = dense_result.band_energy + dense_result.repulsive_energy;

        let engine = LinearScalingTb::new(&model)
            .with_kt(kt)
            .with_order(200)
            .with_r_loc(5.0);
        let t0 = Instant::now();
        let on_result = engine.evaluate(&s).expect("O(N) evaluation");
        let t_on = t0.elapsed().as_secs_f64();
        let report = engine.last_report().expect("report");

        println!(
            "  {:4}   {:9.3}   {:9.3}    {:12.4}   {:9.0}",
            n,
            t_dense,
            t_on,
            (on_result.energy - e_dense).abs() / n as f64,
            report.total_matvec_ops as f64 / n as f64,
        );
    }
    println!("\nReading the table:");
    println!("  · dense time grows ~N³ (diagonalization), O(N) time ~N at fixed radius;");
    println!("  · ops/atom is flat for the O(N) engine — the linear-scaling signature;");
    println!("  · the energy error is the density-matrix truncation error (gapped Si");
    println!("    converges exponentially in the localization radius).");
}
