//! Electronic band structure and density of states — the validation figure
//! every tight-binding parametrization paper leads with.
//!
//! Prints the silicon bands along L–Γ–X with the fundamental gap, and probes
//! the graphene π bands at the Dirac point (where the gap must close — the
//! semimetal signature).
//!
//! Run with: `cargo run --release --example band_structure`

use tbmd::model::{band_energies, band_gap, band_structure, k_path};
use tbmd::{carbon_xwch, silicon_gsp, Species, Vec3};

fn main() {
    // Silicon along L–Γ–X.
    let si = silicon_gsp();
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let g = 2.0 * std::f64::consts::PI / s.cell().lengths.x;
    let path = k_path(
        &[
            Vec3::new(g / 4.0, g / 4.0, g / 4.0), // L
            Vec3::ZERO,                           // Γ
            Vec3::new(g / 2.0, 0.0, 0.0),         // X
        ],
        10,
    );
    let bands = band_structure(&s, &si, &path).expect("band structure");
    let n_filled = s.n_electrons() / 2;

    println!("Si band structure along L–Γ–X (32 bands; showing VBM/CBM frontier):\n");
    println!("   k-index   VBM/eV   CBM/eV   local gap/eV");
    for (i, b) in bands.iter().enumerate() {
        let marker = match i {
            0 => "  ← L",
            10 => "  ← Γ",
            20 => "  ← X",
            _ => "",
        };
        println!(
            "   {:7}   {:6.2}   {:6.2}   {:6.2}{marker}",
            i,
            b[n_filled - 1],
            b[n_filled],
            b[n_filled] - b[n_filled - 1]
        );
    }
    let gap = band_gap(&bands, s.n_electrons()).expect("gap");
    println!("\nfundamental (indirect) gap on this path: {gap:.2} eV — expt. 1.17 eV");

    // Graphene Dirac point.
    let c = carbon_xwch();
    let sheet = tbmd::structure::graphene_sheet(1.42, 1, 1);
    let acc = 1.42;
    let k_dirac = Vec3::new(
        2.0 * std::f64::consts::PI / (3.0 * acc),
        2.0 * std::f64::consts::PI / (3.0 * 3.0f64.sqrt() * acc),
        0.0,
    );
    println!("\ngraphene π-band gap along Γ→K:");
    for frac in [0.0, 0.5, 0.8, 0.95, 1.0] {
        let b = band_energies(&sheet, &c, k_dirac * frac).expect("bands");
        let gp = band_gap(&[b], sheet.n_electrons()).expect("gap");
        println!("   k = {frac:4.2}·K : gap = {:.4} eV", gp.abs());
    }
    println!("\nthe gap collapses exactly at K — the Dirac semimetal signature.");
}
