//! High-temperature annealing of a single-wall carbon nanotube — the
//! marquee carbon workload of 1990s tight-binding MD.
//!
//! Builds a periodic (n,m) tube segment with the Xu–Wang–Chan–Ho carbon
//! model, holds it at a high temperature under Nosé–Hoover dynamics, and
//! tracks the bond statistics (coordination histogram) — a perfect tube
//! stays fully 3-coordinated well below ~2500 K, and starts breaking bonds
//! above.
//!
//! Run with: `cargo run --release --example nanotube_anneal [-- n m temperature steps]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::{carbon_xwch, maxwell_boltzmann, MdState, NoseHoover, TbCalculator};

fn coordination_histogram(s: &tbmd::Structure, cutoff: f64) -> [usize; 6] {
    let mut hist = [0usize; 6];
    for i in 0..s.n_atoms() {
        let c = s.coordination(i, cutoff).min(5);
        hist[c] += 1;
    }
    hist
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let m: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let temperature: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000.0);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);

    let tube = tbmd::structure::nanotube(n, m, 2, 1.42);
    let geom = tbmd::structure::nanotube_geometry(n, m, 1.42);
    println!(
        "({n},{m}) nanotube: {} atoms, radius {:.2} Å, periodic length {:.2} Å",
        tube.n_atoms(),
        geom.radius,
        geom.period * 2.0
    );

    let model = carbon_xwch();
    let calc = TbCalculator::new(&model);
    let mut rng = StdRng::seed_from_u64(11);
    let velocities = maxwell_boltzmann(&tube, temperature, &mut rng);
    let mut state = MdState::new(tube, velocities, &calc).expect("initial forces");
    let mut nh = NoseHoover::with_period(1.0, temperature, state.n_dof(), 40.0);

    let h0 = nh.conserved_quantity(&state);
    println!("\n  annealing at {temperature} K for {steps} fs…");
    println!("  step    T/K    E_pot/eV   coordination histogram (0..5-fold)");
    for step in 1..=steps {
        nh.step(&mut state, &calc).expect("md step");
        if step % (steps / 6).max(1) == 0 {
            let hist = coordination_histogram(&state.structure, 1.85);
            println!(
                "  {:4}  {:6.0}  {:10.3}   {:?}",
                step,
                state.temperature(),
                state.potential_energy,
                hist
            );
        }
    }
    let drift = (nh.conserved_quantity(&state) - h0).abs() / h0.abs();
    let hist = coordination_histogram(&state.structure, 1.85);
    let three_fold_fraction = hist[3] as f64 / state.structure.n_atoms() as f64;
    println!(
        "\n  final 3-fold coordinated fraction: {:.1}%",
        100.0 * three_fold_fraction
    );
    println!("  Nosé–Hoover conserved-quantity relative drift: {drift:.2e}");
    println!(
        "  verdict: the sp² network {} at {temperature} K on this timescale",
        if three_fold_fraction > 0.95 {
            "survives"
        } else {
            "is breaking up"
        }
    );
}
