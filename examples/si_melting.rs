//! Melting a silicon crystal: Nosé–Hoover dynamics with a temperature ramp,
//! watched through the radial distribution function.
//!
//! Protocol (scaled down from the era's 10 ps studies so it runs in minutes):
//! equilibrate a 64-atom Si diamond cell at 300 K, ramp the thermostat to a
//! high temperature at 0.5 K/fs — the heating rate used in the TBMD closure
//! literature — and compare g(r) before and after: the sharp crystalline
//! shells smear into a liquid-like profile.
//!
//! Run with: `cargo run --release --example si_melting [-- steps_at_top [t_hot]]`
//! (default 3000 K; a lower `t_hot` gives a quick smoke run).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::md::RdfAccumulator;
use tbmd::{
    maxwell_boltzmann, silicon_gsp, MdState, NoseHoover, Species, TbCalculator, TemperatureRamp,
};

fn print_rdf(label: &str, rdf: &RdfAccumulator) {
    println!("\n  g(r) {label}:");
    println!("    r/Å    g(r)   ");
    for (r, g) in rdf.finish().into_iter().step_by(5) {
        let bar: String = std::iter::repeat_n('#', (g * 8.0).min(60.0) as usize).collect();
        println!("    {r:5.2}  {g:6.2}  {bar}");
    }
    if let Some((r, g)) = rdf.first_peak() {
        println!("    first peak: r = {r:.2} Å (g = {g:.1})");
    }
}

fn main() {
    let hold_steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let t_hot: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000.0);

    let structure = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let model = silicon_gsp();
    let calc = TbCalculator::new(&model);
    let mut rng = StdRng::seed_from_u64(7);
    let velocities = maxwell_boltzmann(&structure, 300.0, &mut rng);
    let mut state = MdState::new(structure, velocities, &calc).expect("initial forces");
    let mut nh = NoseHoover::with_period(1.0, 300.0, state.n_dof(), 50.0);

    // Cold reference RDF over a short 300 K stretch.
    let mut rdf_cold = RdfAccumulator::new(5.4, 108);
    for _ in 0..30 {
        nh.step(&mut state, &calc).expect("md step");
        rdf_cold.accumulate(&state.structure);
    }
    print_rdf("solid, 300 K", &rdf_cold);

    // Ramp to t_hot at the literature heating rate of 0.5 K/fs.
    let ramp = TemperatureRamp {
        rate_k_per_fs: 0.5,
        target_k: t_hot,
    };
    let mut ramp_steps = 0usize;
    while ramp.advance(&mut nh) {
        nh.step(&mut state, &calc).expect("md step");
        ramp_steps += 1;
        if ramp_steps.is_multiple_of(1000) {
            println!(
                "  ramping: t = {:.0} fs, thermostat {:.0} K, kinetic T {:.0} K",
                state.time_fs,
                nh.target_k,
                state.temperature()
            );
        }
    }
    println!(
        "\n  ramp complete after {ramp_steps} steps; holding at {t_hot} K for {hold_steps} steps"
    );

    // Hot RDF.
    let mut rdf_hot = RdfAccumulator::new(5.4, 108);
    for step in 0..hold_steps {
        nh.step(&mut state, &calc).expect("md step");
        if step >= hold_steps / 3 {
            rdf_hot.accumulate(&state.structure);
        }
    }
    print_rdf(&format!("hot, {t_hot:.0} K"), &rdf_hot);

    // The crystalline second shell (3.84 Å) should be strongly suppressed.
    let shell_height = |rdf: &RdfAccumulator, r0: f64| -> f64 {
        rdf.finish()
            .into_iter()
            .filter(|(r, _)| (r - r0).abs() < 0.25)
            .map(|(_, g)| g)
            .fold(0.0, f64::max)
    };
    let cold2 = shell_height(&rdf_cold, 3.84);
    let hot2 = shell_height(&rdf_hot, 3.84);
    println!("\n  second-shell g(3.84 Å): {cold2:.2} (cold) → {hot2:.2} (hot)");
    println!(
        "  crystalline order {}",
        if hot2 < 0.7 * cold2 {
            "lost — melted"
        } else {
            "partially retained"
        }
    );
}
