//! Quickstart: tight-binding molecular dynamics of a silicon crystal in
//! five minutes.
//!
//! Builds an 8-atom Si diamond cell, runs 50 fs of microcanonical (NVE)
//! dynamics at 300 K with the serial engine, and prints the energy ledger
//! every 10 steps — watch the total stay flat while kinetic and potential
//! trade places.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::{maxwell_boltzmann, silicon_gsp, MdState, Species, TbCalculator, VelocityVerlet};

fn main() {
    // 1. A structure: the 8-atom conventional diamond cell of silicon.
    let structure = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    println!(
        "system: {} Si atoms, {} orbitals, {} valence electrons",
        structure.n_atoms(),
        structure.n_orbitals(),
        structure.n_electrons()
    );

    // 2. A model + engine: the GSP/Kwon silicon parametrization, serial.
    let model = silicon_gsp();
    let calc = TbCalculator::new(&model);

    // 3. Maxwell–Boltzmann velocities at 300 K and an MD state.
    let mut rng = StdRng::seed_from_u64(2024);
    let velocities = maxwell_boltzmann(&structure, 300.0, &mut rng);
    let mut state = MdState::new(structure, velocities, &calc).expect("initial forces");

    // 4. Velocity-Verlet NVE dynamics, 1 fs timestep.
    let integrator = VelocityVerlet::new(1.0);
    let e0 = state.total_energy();
    println!("\n  step   time/fs     T/K     E_pot/eV     E_kin/eV     E_tot/eV    drift/meV");
    for step in 1..=50 {
        integrator.step(&mut state, &calc).expect("md step");
        if step % 10 == 0 {
            println!(
                "  {:4}   {:7.1}  {:7.1}   {:10.4}   {:10.4}   {:10.4}   {:9.3}",
                step,
                state.time_fs,
                state.temperature(),
                state.potential_energy,
                state.kinetic_energy(),
                state.total_energy(),
                (state.total_energy() - e0) * 1e3,
            );
        }
    }
    println!(
        "\nNVE total-energy drift over 50 fs: {:.3} meV",
        (state.total_energy() - e0) * 1e3
    );
}
