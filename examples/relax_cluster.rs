//! Conjugate-gradient structural relaxation of a perturbed C₆₀ fullerene —
//! the "CG relaxation" companion of every TBMD study.
//!
//! Scrambles the ideal buckminsterfullerene by random displacements, relaxes
//! it back with Polak–Ribière conjugate gradients on the Xu–Wang–Chan–Ho
//! carbon model, and reports the energy recovered and the restored bond
//! statistics.
//!
//! Run with: `cargo run --release --example relax_cluster [-- amplitude]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::{carbon_xwch, ForceProvider, RelaxOptions, TbCalculator};

fn main() {
    let amplitude: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.12);

    let ideal = tbmd::structure::fullerene_c60(1.44);
    let model = carbon_xwch();
    let calc = TbCalculator::new(&model);
    let e_ideal = calc.energy_only(&ideal).expect("ideal energy");
    println!(
        "C60: {} atoms, ideal energy {:.4} eV",
        ideal.n_atoms(),
        e_ideal
    );

    let mut scrambled = ideal.clone();
    let mut rng = StdRng::seed_from_u64(99);
    scrambled.perturb(&mut rng, amplitude);
    let e_scrambled = calc.energy_only(&scrambled).expect("scrambled energy");
    println!(
        "perturbed by ±{amplitude} Å per component: energy {:.4} eV (+{:.3} eV strain)",
        e_scrambled,
        e_scrambled - e_ideal
    );

    let opts = RelaxOptions {
        force_tolerance: 5e-3,
        max_iterations: 400,
        ..Default::default()
    };
    let result = tbmd::md::relax(&mut scrambled, &calc, &opts).expect("relaxation");
    println!(
        "\nCG relaxation: converged={} after {} iterations ({} energy evaluations)",
        result.converged, result.iterations, result.energy_evaluations
    );
    println!(
        "final energy {:.4} eV, residual max force {:.2e} eV/Å",
        result.energy, result.max_force
    );
    println!(
        "strain recovered: {:.3} of {:.3} eV",
        e_scrambled - result.energy,
        e_scrambled - e_ideal
    );

    // Bond statistics of the relaxed cage.
    let bonds: Vec<f64> = scrambled
        .pairs_within(1.65)
        .into_iter()
        .map(|(_, _, d)| d)
        .collect();
    let mean = bonds.iter().sum::<f64>() / bonds.len() as f64;
    let three_fold = (0..scrambled.n_atoms())
        .filter(|&i| scrambled.coordination(i, 1.65) == 3)
        .count();
    println!(
        "\nrelaxed cage: {} bonds, mean length {:.3} Å, {}/60 atoms 3-coordinated",
        bonds.len(),
        mean,
        three_fold
    );
}
