//! Parallel scaling of one TBMD force evaluation across the engines — the
//! SC'94 headline experiment in miniature.
//!
//! Runs the same Si supercell through the distributed message-passing engine
//! at P = 1, 2, 4, 8 virtual ranks, verifies every engine agrees with the
//! serial reference to round-off, and prices the measured per-rank flops and
//! traffic on the bundled era machine models (Intel Delta / Paragon / CM-5)
//! to produce the classic speedup/efficiency table.
//!
//! Run with: `cargo run --release --example parallel_scaling [-- reps]`

use tbmd::parallel::{estimate_cost, scaling, MachineProfile};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species, TbCalculator};

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
    println!(
        "workload: one TBMD force evaluation, Si diamond {}×{}×{} = {} atoms ({} orbitals)\n",
        reps,
        reps,
        reps,
        s.n_atoms(),
        s.n_orbitals()
    );

    let model = silicon_gsp();
    let serial = TbCalculator::new(&model);
    let reference = serial.evaluate(&s).expect("serial evaluation");
    println!("serial reference energy: {:.6} eV", reference.energy);

    let machine = MachineProfile::intel_paragon();
    println!(
        "\ncost model: {} ({} µs latency, {} MB/s, {} Mflop/s per node)",
        machine.name, machine.latency_us, machine.bandwidth_mb_s, machine.mflops_per_node
    );
    println!("\n  P    max|ΔE|/eV   messages      MB sent   est. T/step   speedup   efficiency");

    let mut baseline = None;
    for p in [1usize, 2, 4, 8] {
        let engine = DistributedTb::new(&model, p);
        let eval = engine.evaluate(&s).expect("distributed evaluation");
        let report = engine.last_report().expect("report");
        let delta = (eval.energy - reference.energy).abs();
        let est = estimate_cost(&machine, &report.stats);
        let (speedup, efficiency) = match &baseline {
            None => {
                baseline = Some(est.clone());
                (1.0, 1.0)
            }
            Some(base) => {
                let sc = scaling(base, &est, p);
                (sc.speedup, sc.efficiency)
            }
        };
        println!(
            "  {:2}   {:10.2e}   {:8}   {:10.3}   {:9.3}s   {:7.2}   {:9.1}%",
            p,
            delta,
            report.stats.total_messages(),
            report.stats.total_bytes() as f64 / 1e6,
            est.total_s(),
            speedup,
            100.0 * efficiency
        );
    }

    println!("\nNotes:");
    println!("  · every engine reproduces the serial energy to round-off (column 2);");
    println!("  · timings are cost-model estimates for the era machine, computed from");
    println!("    *measured* per-rank flop counts and message traffic of the virtual");
    println!("    message-passing machine (see DESIGN.md, hardware substitution).");
}
