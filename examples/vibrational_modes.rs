//! Normal-mode (phonon) analysis of relaxed structures — the vibrational
//! fingerprint the era's TBMD papers used to validate their models against
//! Raman and infrared data.
//!
//! Relaxes an Si₂ dimer and the 8-atom Si crystal, builds finite-difference
//! dynamical matrices, and prints the mode spectra: exactly 5 (dimer) and 3
//! (crystal) zero modes certify force consistency; the optical branch lands
//! near the 15.5 THz Si Raman mode.
//!
//! Run with: `cargo run --release --example vibrational_modes`

use tbmd::md::{normal_modes, vibrational_dos};
use tbmd::{silicon_gsp, OccupationScheme, RelaxOptions, Species, TbCalculator};

fn main() {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });

    // --- Si2 dimer.
    let mut dimer = tbmd::structure::dimer(Species::Silicon, 2.47);
    let opts = RelaxOptions {
        force_tolerance: 1e-4,
        ..Default::default()
    };
    tbmd::md::relax(&mut dimer, &calc, &opts).expect("dimer relaxation");
    println!("Si2 dimer (relaxed to {:.3} Å):", dimer.distance(0, 1));
    let modes = normal_modes(&dimer, &calc, 1e-3).expect("dimer modes");
    for (k, f) in modes.frequencies_thz.iter().enumerate() {
        println!("  mode {k}: {f:8.3} THz");
    }
    println!(
        "  zero modes: {} (expect 5: 3 translations + 2 rotations)",
        modes.n_zero_modes(1.0)
    );
    println!(
        "  stretch: {:.2} THz (expt. Si2: ~15.3 THz)\n",
        modes.max_frequency_thz()
    );

    // --- 8-atom Si crystal at Γ.
    let crystal = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    println!("Si diamond, 8-atom cell (24 modes at Γ):");
    let modes = normal_modes(&crystal, &calc, 1e-3).expect("crystal modes");
    println!(
        "  zero modes: {} (expect 3 acoustic translations)",
        modes.n_zero_modes(0.8)
    );
    println!(
        "  top of the folded optical branch: {:.2} THz (Si Raman: 15.5 THz; this\n  first-neighbour-cutoff fit overbinds the optical branch — a documented\n  trait of short-ranged TB fits)",
        modes.max_frequency_thz()
    );
    println!("\n  vibrational DOS (2 THz bins):");
    let dos = vibrational_dos(&modes.frequencies_thz, 13, 26.0);
    for (f, count) in dos {
        let bar: String = std::iter::repeat_n('#', count as usize).collect();
        println!("  {f:5.1} THz  {count:3.0}  {bar}");
    }
    println!("\n  stable: {}", modes.is_stable(1e-3));
}
