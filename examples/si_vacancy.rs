//! Point-defect energetics: the silicon vacancy — a flagship application of
//! 1990s TBMD (Wang, Chan & Ho computed exactly this with the same model
//! family).
//!
//! Removes one atom from a 64-atom Si supercell, relaxes the defective
//! lattice with conjugate gradients, and reports the unrelaxed and relaxed
//! vacancy formation energies
//!
//! ```text
//! E_f = E(N−1 atoms, defective) − (N−1)/N · E(N atoms, perfect)
//! ```
//!
//! Experimental/DFT values cluster around 3.5–4 eV; TB models of this family
//! land in the same few-eV window.
//!
//! Run with: `cargo run --release --example si_vacancy`

use tbmd::{silicon_gsp, ForceProvider, OccupationScheme, RelaxOptions, Species, TbCalculator};

fn main() {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });

    let perfect = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let n = perfect.n_atoms();
    let e_perfect = calc.energy_only(&perfect).expect("perfect-crystal energy");
    println!(
        "perfect crystal: {n} atoms, E = {e_perfect:.4} eV ({:.4} eV/atom)",
        e_perfect / n as f64
    );

    // Create the vacancy.
    let mut defective = perfect.clone();
    defective.remove_atom(0);
    let reference = (n - 1) as f64 / n as f64 * e_perfect;
    let e_unrelaxed = calc.energy_only(&defective).expect("unrelaxed energy");
    println!(
        "\nvacancy created: {} atoms; unrelaxed E_f = {:.3} eV",
        defective.n_atoms(),
        e_unrelaxed - reference
    );

    // Relax the neighbours into the vacancy.
    let opts = RelaxOptions {
        force_tolerance: 1e-2,
        max_iterations: 300,
        ..Default::default()
    };
    let result = tbmd::md::relax(&mut defective, &calc, &opts).expect("relaxation");
    let e_f = result.energy - reference;
    println!(
        "relaxed ({} CG iterations, converged = {}): E_f = {:.3} eV",
        result.iterations, result.converged, e_f
    );
    println!("relaxation energy: {:.3} eV", e_unrelaxed - result.energy);

    // Structure analysis: the four former neighbours of the vacancy.
    let three_fold = (0..defective.n_atoms())
        .filter(|&i| defective.coordination(i, 2.6) == 3)
        .count();
    println!(
        "\n{} atoms are 3-coordinated (the vacancy's former neighbours; 4 expected)",
        three_fold
    );
    println!(
        "verdict: E_f in the physical few-eV window: {}",
        if (1.5..7.0).contains(&e_f) {
            "yes"
        } else {
            "NO — investigate"
        }
    );
}
