//! # tbmd-repro
//!
//! Reproduction package for the `tbmd` workspace: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! All functionality lives in the `tbmd` facade crate and its components —
//! this crate only re-exports it for the examples' convenience.

pub use tbmd::*;
