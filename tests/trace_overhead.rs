//! Observability must be free when it is off and faithful when it is on
//! (ISSUE 4).
//!
//! The trace registry's contract: with [`TraceSink::disabled`] every hook is
//! one relaxed atomic load — an instrumented MD trajectory is bitwise
//! identical to an uninstrumented one and performs no extra allocations.
//! With a live sink the same trajectory still produces bitwise-identical
//! physics while the counters fill in. The JSONL recorder parses line by
//! line, and the drift watchdog trips when an artificially large timestep
//! destroys energy conservation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::trace::{Counter, Hist, JsonValue, Phase};
use tbmd::{
    run_manifest, run_simulation_recorded, Protocol, RecorderConfig, RunRecorder, SimulationConfig,
    SystemSpec, TraceSink,
};
use tbmd_md::{maxwell_boltzmann, MdState, VelocityVerlet};
use tbmd_model::{silicon_gsp, OccupationScheme, TbCalculator, Workspace};
use tbmd_structure::{bulk_diamond, Species, Structure};

/// 2×2×2 Si diamond, as in `workspace_equivalence`: large enough for the
/// Verlet skin path, small enough for a 50-step run in test time.
fn si64() -> Structure {
    bulk_diamond(Species::Silicon, 2, 2, 2)
}

fn velocities(s: &Structure, seed: u64) -> Vec<tbmd_linalg::Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    maxwell_boltzmann(s, 300.0, &mut rng)
}

/// Bit-exact fingerprint of a 50-step NVE trajectory: the per-step potential
/// energies and the final positions, as raw f64 bits. Also returns the
/// workspace allocation-event count after a 5-step warm-in, so the caller
/// can assert the remaining 45 steps allocated nothing.
fn trajectory_bits(steps: usize) -> (Vec<u64>, Vec<u64>, bool) {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
    let vv = VelocityVerlet::new(1.0);
    let mut ws = Workspace::new();
    let mut state = MdState::new_with(si64(), velocities(&si64(), 31), &calc, &mut ws).unwrap();

    let mut energies = Vec::with_capacity(steps);
    let mut allocated_after_warm_in = false;
    let mut after_warm_in = 0;
    for step in 0..steps {
        vv.step_with(&mut state, &calc, &mut ws).unwrap();
        energies.push(state.potential_energy.to_bits());
        if step == 4 {
            after_warm_in = ws.large_alloc_events();
        } else if step > 4 && ws.large_alloc_events() != after_warm_in {
            allocated_after_warm_in = true;
        }
    }
    let positions = state
        .structure
        .positions()
        .iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect();
    (energies, positions, allocated_after_warm_in)
}

/// The tentpole acceptance test: a 50-step MD run with the disabled sink is
/// bitwise identical to the same run with a live collecting sink, and the
/// disabled run allocates nothing after warm-in. Both runs execute inside
/// one test so no parallel test can flip the process-global sink mid-run.
#[test]
fn disabled_sink_md_is_bitwise_identical_and_allocation_free() {
    tbmd::trace::install(TraceSink::disabled());
    let before = tbmd::trace::snapshot();
    let (e_off, x_off, allocated_off) = trajectory_bits(50);
    let after_off = tbmd::trace::snapshot().since(&before);
    assert!(
        !allocated_off,
        "disabled-sink run grew workspace buffers after warm-in"
    );
    assert_eq!(
        after_off.counter(Counter::NlRebuilds) + after_off.counter(Counter::AllocGrowth),
        0,
        "disabled sink accumulated counters"
    );
    assert_eq!(
        tbmd::trace::histograms().total_count(),
        0,
        "disabled sink accumulated histogram samples"
    );

    tbmd::trace::install(TraceSink::collecting());
    let before = tbmd::trace::snapshot();
    let hists_before = tbmd::trace::histograms();
    let (e_on, x_on, _) = trajectory_bits(50);
    let delta = tbmd::trace::snapshot().since(&before);
    let hists = tbmd::trace::histograms().since(&hists_before);
    tbmd::trace::install(TraceSink::disabled());

    assert_eq!(e_off, e_on, "per-step energies differ with tracing on");
    assert_eq!(x_off, x_on, "final positions differ with tracing on");
    // The live sink actually observed the run it did not perturb.
    assert!(
        delta.counter(Counter::NlRebuilds) + delta.counter(Counter::NlRefreshes) >= 50,
        "collecting sink saw no neighbor-list activity"
    );
    assert!(
        delta.counter(Counter::SturmBisections) > 0,
        "collecting sink saw no eigensolver activity"
    );
    // Each phase span also fed its latency histogram: one diagonalize
    // sample per force evaluation, with ordered reconstructed quantiles.
    let diag = hists.hist(Hist::Diagonalize);
    assert!(
        diag.count() >= 50,
        "collecting run recorded {} diagonalize samples for 50 steps",
        diag.count()
    );
    let [p50, p90, p99] = diag.quantiles_ns().expect("non-empty diagonalize hist");
    assert!(
        0.0 < p50 && p50 <= p90 && p90 <= p99,
        "quantiles out of order: {p50} {p90} {p99}"
    );
    assert!(
        diag.mean_ns().unwrap() * diag.count() as f64
            <= delta.phase_ns(Phase::Diagonalize) as f64 * 1.01,
        "histogram mass exceeds the phase timer it mirrors"
    );
}

/// The span-timeline recorder captures the same MD run as nested
/// intervals, and the Chrome `trace_event` export parses back through the
/// in-tree JSON parser with phase spans contained in the capture window.
#[test]
fn timeline_capture_exports_nested_chrome_trace() {
    tbmd::trace::timeline::enable(0);
    tbmd::trace::install(TraceSink::collecting());
    let scope = tbmd::trace::ScopedSink::new("overhead-test");
    {
        let _guard = scope.enter();
        let _ = trajectory_bits(5);
    }
    let chrome = tbmd::trace::timeline::export_chrome().to_compact();
    tbmd::trace::install(TraceSink::disabled());
    tbmd::trace::timeline::disable();

    // The scoped sink mirrored the phase histograms of exactly this run.
    assert!(
        scope.histograms().hist(Hist::Forces).count() >= 5,
        "scoped sink missed the run's force spans"
    );

    let parsed = JsonValue::parse(&chrome).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // This test's own spans are the phase names; other tests in this
    // binary may interleave, so filter to the phases we know we emitted.
    let mine: Vec<_> = events
        .iter()
        .filter(|e| {
            matches!(
                e.get("name").and_then(|n| n.as_str()),
                Some("diagonalize") | Some("forces")
            )
        })
        .collect();
    assert!(
        mine.len() >= 10,
        "expected >= 10 phase spans in the capture, got {}",
        mine.len()
    );
    for ev in mine {
        assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0, "negative interval in export");
    }
}

/// The recorder emits parseable JSONL (manifest first, then step records,
/// then a summary), and the microcanonical drift watchdog trips when a
/// 12 fs timestep wrecks conservation (Si-8 at 300 K holds ~0.02 eV drift
/// up to 8 fs; at 12 fs Verlet is unstable and the energy explodes).
#[test]
fn recorder_jsonl_parses_and_drift_watchdog_trips() {
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 40);
    config.protocol = Protocol::Nve {
        temperature_k: 300.0,
        steps: 40,
        dt_fs: 12.0,
    };
    let manifest = run_manifest(&config);
    assert_eq!(manifest.n_atoms, 8);
    let mut recorder = RunRecorder::in_memory(&manifest).with_drift_budget(0.05);
    run_simulation_recorded(
        &config,
        &mut recorder,
        RecorderConfig {
            health_stride: 10,
            ..RecorderConfig::standard()
        },
    )
    .expect("recorded run");
    let summary = recorder.finish().expect("summary");

    assert_eq!(summary.steps, 40);
    assert!(
        !summary.watchdog.ok,
        "12 fs NVE should trip the drift watchdog"
    );
    assert!(summary.watchdog.tripped_at.is_some());
    assert!(summary.warns >= 1, "tripping must emit a warn line");

    let mut kinds = Vec::new();
    for line in &summary.lines {
        let v = JsonValue::parse(line).expect("every JSONL line parses");
        let kind = v.get("type").and_then(|t| t.as_str()).expect("type field");
        if kind == "step" {
            for key in [
                "step",
                "conserved_ev",
                "drift_ev",
                "temperature_k",
                "comm_bytes",
            ] {
                assert!(v.get(key).is_some(), "step record missing `{key}`");
            }
            let phases = v.get("phase_ns").expect("phase_ns object");
            assert!(
                phases.get("communication").is_some(),
                "step record missing the communication phase"
            );
        }
        kinds.push(kind.to_string());
    }
    assert_eq!(kinds.first().map(String::as_str), Some("manifest"));
    assert_eq!(kinds.last().map(String::as_str), Some("summary"));
    assert!(kinds.iter().filter(|k| *k == "step").count() == 40);
    assert!(kinds.iter().any(|k| k == "warn"));
    assert!(
        kinds.iter().any(|k| k == "eig_health"),
        "health probe at stride 10 never fired"
    );
}
