//! Campaign harness contract (ISSUE 10).
//!
//! Three guarantees of `tbmd-campaign`:
//!
//! 1. **Cell = session.** Every cell of an expanded matrix reproduces,
//!    bit for bit, the standalone [`tbmd::Session`] built from the same
//!    config and initial state — the campaign layer adds bookkeeping,
//!    never physics.
//! 2. **Kill + resume = uninterrupted.** A campaign stopped mid-run and
//!    re-invoked against the same directory reuses every completed cell's
//!    fingerprinted result file and produces the same report as a single
//!    uninterrupted run.
//! 3. **Formation energy.** The report's vacancy formation energy equals
//!    the directly computed `E_vac − (N_vac / N_ref) · E_ref` from two
//!    hand-built relaxations.

use std::path::PathBuf;
use tbmd_campaign::{run_campaign, CampaignSpec, CellPlan, RunOptions};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbmd_campaign_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// 1 structure × 2 perturbations × 2 protocols × 2 engines = 8 cells.
const MATRIX_SPEC: &str = r#"{
    "name": "matrix",
    "seed": 11,
    "structures": [{"label": "si1", "system": "si", "reps": 1}],
    "perturbations": [
        {"label": "pristine", "kind": "pristine"},
        {"label": "vac0", "kind": "vacancy", "site": 0}
    ],
    "protocols": [
        {"label": "nve", "kind": "nve", "temperature_k": 300, "steps": 4},
        {"label": "nvt", "kind": "nvt", "temperature_k": 300, "steps": 4, "tau_fs": 40}
    ],
    "engines": ["serial", "shared"]
}"#;

/// Run one cell as a bare standalone session — the reference the campaign
/// row must match bitwise.
fn standalone_endpoint(cell: &CellPlan) -> u64 {
    let protocol = cell.protocol.segments()[0];
    let config = tbmd::SimulationConfig {
        system: cell.system,
        engine: cell.engine,
        protocol,
        electronic_kt: cell.electronic_kt,
        perturb: 0.0,
        seed: cell.seed,
        record_stride: 0,
    };
    let mut session = tbmd::SessionBuilder::new(config)
        .initial_state(tbmd::InitialState::from_structure(cell.build_initial()))
        .build()
        .expect("build");
    let summary = session.run().expect("run");
    tbmd_campaign::endpoint_fingerprint(&summary)
}

#[test]
fn matrix_cells_match_standalone_sessions_bitwise() {
    let spec = CampaignSpec::from_json(MATRIX_SPEC).expect("parse");
    let cells = spec.expand();
    assert_eq!(cells.len(), 8, "2×2×2 matrix");
    let report = run_campaign(&spec, &RunOptions::default()).expect("campaign");
    assert!(report.complete);
    assert_eq!(report.rows.len(), 8);
    for cell in &cells {
        let row = report.row(&cell.name).expect("row for every cell");
        assert_eq!(
            row.endpoint,
            standalone_endpoint(cell),
            "{}: campaign endpoint diverged from the standalone session",
            cell.name
        );
        assert_eq!(row.seed, cell.seed);
        assert!(row.steps > 0 && row.converged);
    }
    // Pristine and vacancy cells must NOT coincide (the perturbation and
    // the per-cell seed both bite).
    let pristine = report.row("si1/pristine/nve/serial").unwrap();
    let vacancy = report.row("si1/vac0/nve/serial").unwrap();
    assert_ne!(pristine.endpoint, vacancy.endpoint);
    assert_eq!(pristine.n_atoms, 8);
    assert_eq!(vacancy.n_atoms, 7);
}

#[test]
fn killed_campaign_resumes_skipping_completed_cells() {
    let spec = CampaignSpec::from_json(MATRIX_SPEC).expect("parse");
    let dir = scratch_dir("resume");

    // Uninterrupted reference, no result directory involved.
    let reference = run_campaign(&spec, &RunOptions::default()).expect("reference");

    // Kill after 3 cells.
    let killed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            stop_after: Some(3),
            ..RunOptions::default()
        },
    )
    .expect("partial run");
    assert!(!killed.complete);
    assert_eq!(killed.rows.len(), 3);
    assert_eq!(killed.executed, 3);

    // Resume: the 3 completed cells come from their result files.
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("resumed run");
    assert!(resumed.complete);
    assert_eq!(resumed.rows.len(), 8);
    assert_eq!(resumed.reused, 3, "completed cells must not re-run");
    assert_eq!(resumed.executed, 5);

    // The stitched report equals the uninterrupted one on every
    // deterministic observable (wall-clock latency excluded by design).
    for (a, b) in reference.rows.iter().zip(&resumed.rows) {
        assert_eq!(
            a.deterministic_key(),
            b.deterministic_key(),
            "{}: kill+resume diverged from the uninterrupted campaign",
            a.name
        );
        assert_eq!(
            a.formation_ev.map(f64::to_bits),
            b.formation_ev.map(f64::to_bits)
        );
    }

    // A third invocation reuses everything.
    let cached = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("cached run");
    assert_eq!(cached.reused, 8);
    assert_eq!(cached.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mixed segment counts: the 1-segment NVE cells retire from the
/// multiplexer before the 2-segment quenches, so rows come back in
/// completion order, not matrix order.
const MIXED_SPEC: &str = r#"{
    "name": "mux-resume",
    "seed": 5,
    "structures": [{"label": "si1", "system": "si", "reps": 1}],
    "perturbations": [
        {"label": "pristine", "kind": "pristine"},
        {"label": "vac0", "kind": "vacancy", "site": 0}
    ],
    "protocols": [
        {"label": "nve", "kind": "nve", "temperature_k": 300, "steps": 4},
        {"label": "q", "kind": "quench", "from_k": 600, "to_k": 200,
         "segments": 2, "rate_k_per_fs": 20, "hold_steps": 2}
    ],
    "engines": ["serial"]
}"#;

#[test]
fn multiplexed_result_files_pair_rows_with_their_cells() {
    let spec = CampaignSpec::from_json(MIXED_SPEC).expect("parse");
    let dir = scratch_dir("mux_resume");
    let reference = run_campaign(&spec, &RunOptions::default()).expect("inline reference");

    let mux = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            multiplex: true,
            ..RunOptions::default()
        },
    )
    .expect("multiplexed run");
    assert!(mux.complete);
    assert_eq!(mux.executed, 4);

    // Each result file must hold the row of the cell it is named for. A
    // misfiled bijection would survive a *full* resume (rows carry their
    // own index and the report re-sorts), so check the files directly:
    // the stored fingerprint — the fingerprint of the cell the file is
    // named for — must be the fingerprint of the cell the embedded row
    // claims to be.
    let cells = spec.expand();
    let mut files = 0;
    for entry in std::fs::read_dir(dir.join("cells")).expect("cells dir") {
        let path = entry.expect("entry").path();
        let text = std::fs::read_to_string(&path).expect("read result file");
        let v = tbmd::trace::JsonValue::parse(&text).expect("result json");
        let row = tbmd_campaign::CellRow::from_json(&v).expect("row");
        let stored = v
            .get("cell_fingerprint")
            .and_then(|f| f.as_str())
            .and_then(|f| u64::from_str_radix(f, 16).ok())
            .expect("stored fingerprint");
        let cell = cells
            .iter()
            .find(|c| c.name == row.name)
            .expect("cell for stored row");
        assert_eq!(row.index, cell.index);
        assert_eq!(
            stored,
            cell.fingerprint(),
            "{}: file holds the row of a different cell ({})",
            path.display(),
            row.name
        );
        files += 1;
    }
    assert_eq!(files, 4, "one result file per cell");

    // And a resume reuses every file, reproducing the inline reference.
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("resume from multiplexed result files");
    assert_eq!(resumed.reused, 4, "every multiplexed cell must be reusable");
    assert_eq!(resumed.executed, 0);
    for (a, b) in reference.rows.iter().zip(&resumed.rows) {
        assert_eq!(
            a.deterministic_key(),
            b.deterministic_key(),
            "{}: row resumed from a multiplexed result file diverged",
            a.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

const VACANCY_SPEC: &str = r#"{
    "name": "vacancy-formation",
    "seed": 7,
    "structures": [{"label": "si1", "system": "si", "reps": 1}],
    "perturbations": [
        {"label": "pristine", "kind": "pristine"},
        {"label": "vac0", "kind": "vacancy", "site": 0}
    ],
    "protocols": [
        {"label": "relax", "kind": "relax", "force_tolerance": 1e-3, "max_iterations": 200}
    ],
    "engines": ["serial"]
}"#;

#[test]
fn vacancy_formation_energy_matches_direct_reference() {
    let spec = CampaignSpec::from_json(VACANCY_SPEC).expect("parse");
    let report = run_campaign(&spec, &RunOptions::default()).expect("campaign");
    let cells = spec.expand();

    // Direct reference: relax both cells by hand through the same session
    // machinery and compute E_f = E_vac − (N_vac / N_ref) · E_ref.
    let relax_energy = |cell: &CellPlan| -> (usize, f64) {
        let config = tbmd::SimulationConfig {
            system: cell.system,
            engine: cell.engine,
            protocol: tbmd::Protocol::Relax {
                force_tolerance: 1e-3,
                max_iterations: 200,
            },
            electronic_kt: cell.electronic_kt,
            perturb: 0.0,
            seed: cell.seed,
            record_stride: 0,
        };
        let mut session = tbmd::SessionBuilder::new(config)
            .initial_state(tbmd::InitialState::from_structure(cell.build_initial()))
            .build()
            .expect("build");
        let summary = session.run().expect("relax");
        assert!(summary.converged, "{} failed to relax", cell.name);
        (
            summary.final_structure.n_atoms(),
            summary.final_potential_energy,
        )
    };
    let (n_ref, e_ref) = relax_energy(cells.iter().find(|c| c.is_pristine()).unwrap());
    let (n_vac, e_vac) = relax_energy(cells.iter().find(|c| !c.is_pristine()).unwrap());
    let direct = e_vac - (n_vac as f64 / n_ref as f64) * e_ref;

    let row = report.row("si1/vac0/relax/serial").expect("vacancy row");
    let formation = row.formation_ev.expect("formation energy filled");
    assert!(
        (formation - direct).abs() < 1e-10,
        "campaign formation energy {formation} != direct reference {direct}"
    );
    // Si vacancy formation energy should be positive and of eV order.
    assert!(
        formation > 0.0 && formation < 20.0,
        "implausible formation energy {formation}"
    );
}
