//! Trajectory-equivalence regression tests for the two-stage blocked
//! eigensolver with occupied-subspace spectrum slicing (ISSUE 2).
//!
//! The partial-spectrum path computes eigenvectors only for states with
//! non-negligible Fermi weight (`f > 10⁻¹²`) and builds the density matrix
//! from that window. Physics must not notice: an NVE trajectory driven by
//! the sliced solver has to track the full-spectrum QL reference to well
//! below 1e-8 eV in energy at every step.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd_md::{maxwell_boltzmann, MdState, VelocityVerlet};
use tbmd_model::{
    silicon_gsp, DenseSolver, ForceProvider, OccupationScheme, TbCalculator, Workspace,
};
use tbmd_parallel::{DistributedSolver, DistributedTb, Eigensolver, SharedMemoryTb};
use tbmd_structure::{bulk_diamond, Species, Structure};

fn si64() -> Structure {
    bulk_diamond(Species::Silicon, 2, 2, 2)
}

fn velocities(s: &Structure, seed: u64) -> Vec<tbmd_linalg::Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    maxwell_boltzmann(s, 300.0, &mut rng)
}

/// Drive `steps` NVE steps with two providers and assert per-step energy,
/// force and position agreement within `tol_e` / `tol_fx`.
fn assert_solver_trajectories_match(
    sliced: &dyn ForceProvider,
    full: &dyn ForceProvider,
    steps: usize,
    tol_e: f64,
    tol_fx: f64,
) {
    let vv = VelocityVerlet::new(1.0);

    let mut ws_a = Workspace::new();
    let mut ws_b = Workspace::new();
    let mut a = MdState::new_with(si64(), velocities(&si64(), 31), sliced, &mut ws_a).unwrap();
    let mut b = MdState::new_with(si64(), velocities(&si64(), 31), full, &mut ws_b).unwrap();

    for step in 0..steps {
        vv.step_with(&mut a, sliced, &mut ws_a).unwrap();
        vv.step_with(&mut b, full, &mut ws_b).unwrap();

        let de = (a.potential_energy - b.potential_energy).abs();
        assert!(
            de < tol_e,
            "step {step}: sliced vs full potential energy differs by {de:.3e}"
        );
        for i in 0..a.structure.n_atoms() {
            let df = (a.forces[i] - b.forces[i]).max_abs();
            assert!(
                df < tol_fx,
                "step {step}, atom {i}: force differs by {df:.3e}"
            );
            let dx = (a.structure.positions()[i] - b.structure.positions()[i]).max_abs();
            assert!(
                dx < tol_fx,
                "step {step}, atom {i}: position differs by {dx:.3e}"
            );
        }
    }
}

/// ISSUE 2 acceptance: 20 NVE steps, serial calculator, partial-spectrum
/// two-stage solver vs full-spectrum QL, < 1e-8 eV per-step energy drift.
#[test]
fn serial_two_stage_matches_full_ql_over_nve_trajectory() {
    let model = silicon_gsp();
    let sliced = TbCalculator::with_solver(&model, DenseSolver::TwoStage);
    let full = TbCalculator::with_solver(&model, DenseSolver::FullQl);
    assert_solver_trajectories_match(&sliced, &full, 20, 1e-8, 1e-7);
}

/// Same acceptance for the shared-memory engine's sliced eigensolver.
#[test]
fn shared_two_stage_matches_full_ql_over_nve_trajectory() {
    let model = silicon_gsp();
    let sliced = SharedMemoryTb::new(&model).with_eigensolver(Eigensolver::TwoStageSliced);
    let full = SharedMemoryTb::new(&model).with_eigensolver(Eigensolver::HouseholderQl);
    assert_solver_trajectories_match(&sliced, &full, 20, 1e-8, 1e-7);
}

/// ISSUE 3 acceptance: the message-passing engine's default rank-sharded
/// two-stage solver (replicated tridiagonalization, Sturm-sliced occupied
/// window, ρ allreduce) drives 20 NVE steps against the serial
/// full-spectrum QL reference to < 1e-8 eV per-step energy agreement.
#[test]
fn distributed_sliced_matches_serial_full_over_nve_trajectory() {
    let model = silicon_gsp();
    let dist = DistributedTb::new(&model, 4);
    // The sliced solver must be the default, not an opt-in.
    assert_eq!(dist.solver, DistributedSolver::TwoStageSliced);
    let full = TbCalculator::with_solver(&model, DenseSolver::FullQl);
    assert_solver_trajectories_match(&dist, &full, 20, 1e-8, 1e-7);
}

/// The ring-Jacobi reference stays selectable and physically equivalent:
/// a short NVE segment tracks the serial full solver too.
#[test]
fn distributed_ring_jacobi_reference_stays_selectable() {
    let model = silicon_gsp();
    let ring = DistributedTb::new(&model, 2).with_solver(DistributedSolver::RingJacobi);
    let full = TbCalculator::with_solver(&model, DenseSolver::FullQl);
    assert_solver_trajectories_match(&ring, &full, 3, 1e-6, 1e-5);
}

/// The sliced solver must reproduce the full solver's *spectrum* (all n
/// eigenvalues, not just the occupied window) so observables that read
/// `TbResult::eigenvalues` — densities of states, HOMO–LUMO gaps — are
/// unaffected.
#[test]
fn sliced_solver_reports_complete_spectrum() {
    let model = silicon_gsp();
    let mut s = si64();
    let mut rng = StdRng::seed_from_u64(7);
    s.perturb(&mut rng, 0.05);

    let sliced = TbCalculator::with_solver(&model, DenseSolver::TwoStage);
    let full = TbCalculator::with_solver(&model, DenseSolver::FullQl);
    let ra = sliced.compute(&s).unwrap();
    let rb = full.compute(&s).unwrap();

    assert_eq!(ra.eigenvalues.len(), rb.eigenvalues.len());
    for (i, (ea, eb)) in ra.eigenvalues.iter().zip(&rb.eigenvalues).enumerate() {
        assert!(
            (ea - eb).abs() < 1e-9,
            "eigenvalue {i} differs: {ea} vs {eb}"
        );
    }
    assert!((ra.energy - rb.energy).abs() < 1e-9);
    assert!((ra.occupations.fermi_level - rb.occupations.fermi_level).abs() < 1e-9);
}

/// Zero-temperature occupations cut the spectrum at exactly n_electrons/2
/// states: the sliced solver's window is the half-filled band, and results
/// still match the full reference.
#[test]
fn sliced_solver_zero_temperature_window() {
    let model = silicon_gsp();
    let mut s = si64();
    let mut rng = StdRng::seed_from_u64(13);
    s.perturb(&mut rng, 0.04);

    let mut sliced = TbCalculator::with_solver(&model, DenseSolver::TwoStage);
    sliced.occupation = OccupationScheme::ZeroTemperature;
    let mut full = TbCalculator::with_solver(&model, DenseSolver::FullQl);
    full.occupation = OccupationScheme::ZeroTemperature;

    let ra = sliced.compute(&s).unwrap();
    let rb = full.compute(&s).unwrap();
    assert!((ra.energy - rb.energy).abs() < 1e-8);
    for (fa, fb) in ra.forces.iter().zip(&rb.forces) {
        assert!((*fa - *fb).max_abs() < 1e-7);
    }
}
