//! Elastic rank recovery under repeated faults (ISSUE 6).
//!
//! A P=3 distributed trajectory is hit by a rank *kill* and then, on the
//! first retry, a rank *stall* (a 60 s freeze inside a collective). The
//! resilient driver must detect both within the failure-detection window,
//! cancel the surviving workers instead of leaking them, rewind to the
//! newest snapshot, and — under the Respawn policy — land bitwise on the
//! endpoint of a run that never crashed. The Shrink policy instead
//! finishes on the survivors with re-sharded spectrum slices; the rank
//! count changes the allreduce grouping, so that endpoint is pinned to
//! summation accuracy rather than bitwise.
//!
//! The fault plans double as the one-shot regression: plans are scheduled
//! against the engine's monotone evaluation counter and consumed before
//! launch, so exactly two recoveries means neither plan re-fired across a
//! rewind.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tbmd::trace::Counter;
use tbmd::{
    live_vmp_workers, run_simulation, run_simulation_resilient_with, CheckpointConfig, EngineKind,
    FaultKind, FaultPlan, ReshardPolicy, ResilienceOptions, SimulationConfig, SimulationSummary,
    SystemSpec, TraceSink, Vec3,
};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbmd_elastic_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[Vec3]) -> Vec<u64> {
    v.iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn endpoints_equal(a: &SimulationSummary, b: &SimulationSummary) -> bool {
    bits(a.final_structure.positions()) == bits(b.final_structure.positions())
        && bits(&a.final_velocities) == bits(&b.final_velocities)
        && a.conserved_drift.to_bits() == b.conserved_drift.to_bits()
}

fn endpoint_max_diff(a: &SimulationSummary, b: &SimulationSummary) -> f64 {
    let component = |p: &Vec3, q: &Vec3| {
        (p.x - q.x)
            .abs()
            .max((p.y - q.y).abs())
            .max((p.z - q.z).abs())
    };
    let mut m = 0.0f64;
    for (p, q) in a
        .final_structure
        .positions()
        .iter()
        .zip(b.final_structure.positions())
    {
        m = m.max(component(p, q));
    }
    for (p, q) in a.final_velocities.iter().zip(&b.final_velocities) {
        m = m.max(component(p, q));
    }
    m
}

/// Si-8 NVE at P=3, 12 steps, snapshots every 4. Small enough that every
/// step rebuilds the neighbour list from positions alone, so the
/// trajectory is a pure function of the restored state.
fn p3_config() -> SimulationConfig {
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 12);
    config.engine = EngineKind::Distributed { ranks: 3 };
    config.perturb = 0.02;
    config.seed = 11;
    config
}

/// One chaos scenario end to end, in a single test so the global trace
/// counters are read without interference from sibling tests.
#[test]
fn kill_then_stall_recovers_bitwise_and_shrink_reshards_over_survivors() {
    let config = p3_config();
    let clean = run_simulation(&config).unwrap();

    // Kill rank 1 at evaluation 8 (MD step 7, past the step-4 snapshot);
    // freeze rank 2 at evaluation 12 (step 8 of the first retry — the
    // persistent engine's evaluation counter keeps counting across
    // rewinds, so the second plan is scheduled inside the retry's range).
    let faults = [
        FaultPlan {
            rank: 1,
            at_evaluation: 8,
            kind: FaultKind::Kill,
        },
        FaultPlan {
            rank: 2,
            at_evaluation: 12,
            kind: FaultKind::Stall { ms: 60_000 },
        },
    ];

    if !tbmd::trace::enabled() {
        tbmd::trace::install(TraceSink::collecting());
    }
    let before = tbmd::trace::snapshot();

    // --- Respawn: both faults, bitwise endpoint, bounded wall time.
    let dir = scratch_dir("respawn");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 3,
    };
    let t0 = Instant::now();
    let (recovered, report) = run_simulation_resilient_with(
        &config,
        &ckpt,
        &faults,
        ResilienceOptions {
            policy: ReshardPolicy::Respawn,
            max_recoveries: 3,
        },
    )
    .unwrap();
    let wall = t0.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    // Exactly two recoveries: each plan fired once and never re-fired
    // across the rewinds (the one-shot contract).
    assert_eq!(report.recoveries, 2, "one recovery per injected fault");
    assert_eq!(report.failed_ranks, vec![1, 2], "blame order kill→stall");
    assert_eq!(report.final_ranks, 3, "respawn restores the full width");
    assert!(
        endpoints_equal(&clean, &recovered),
        "respawn endpoint must be bitwise the clean endpoint"
    );
    // The stall is 60 s; detection + cancellation must finish in windows,
    // not stall durations.
    assert!(
        wall < Duration::from_secs(30),
        "recovery took {wall:?} — the stalled worker was waited out, not cancelled"
    );
    assert_eq!(live_vmp_workers(), 0, "leaked VMP worker threads");

    // Monotone failure telemetry: two rank failures recorded (culprits
    // only — blame suppression keeps secondary timeout casualties out),
    // two recoveries, and at least one cancelled worker (the survivors of
    // each failed collective drain instead of timing out on their own).
    let delta = tbmd::trace::snapshot().since(&before);
    assert_eq!(delta.counter(Counter::Recoveries), 2);
    assert_eq!(delta.counter(Counter::RankFailures), 2);
    assert!(
        delta.counter(Counter::WorkerCancellations) >= 1,
        "no worker recorded a cancellation drain"
    );

    // --- Shrink: same kill, survivors finish at P−1.
    let dir = scratch_dir("shrink");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 3,
    };
    let kill = [FaultPlan {
        rank: 1,
        at_evaluation: 8,
        kind: FaultKind::Kill,
    }];
    let (shrunk, report) = run_simulation_resilient_with(
        &config,
        &ckpt,
        &kill,
        ResilienceOptions {
            policy: ReshardPolicy::Shrink,
            max_recoveries: 2,
        },
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.recoveries, 1);
    assert_eq!(report.final_ranks, 2, "shrink continues on the survivors");
    let diff = endpoint_max_diff(&clean, &shrunk);
    assert!(
        diff < 1e-8,
        "shrunken endpoint drifted {diff:e} from the clean run"
    );
    assert_eq!(live_vmp_workers(), 0, "leaked VMP worker threads");
}
