//! Trajectory-equivalence regression tests for the persistent evaluation
//! workspace (ISSUE 1).
//!
//! The workspace path amortizes neighbor-list construction with a Verlet
//! skin list and reuses every n_orb²-sized buffer across MD steps. Physics
//! must not notice: a trajectory driven through one persistent workspace has
//! to match the cold path (a fresh workspace — and hence a fresh neighbor
//! list and fresh buffers — on every step) to 1e-10 in energies, forces and
//! positions, on both the serial and the shared-memory engines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd_md::{maxwell_boltzmann, MdState, VelocityVerlet};
use tbmd_model::{silicon_gsp, ForceProvider, OccupationScheme, TbCalculator, Workspace};
use tbmd_parallel::SharedMemoryTb;
use tbmd_structure::{bulk_diamond, Species, Structure};

/// 2×2×2 Si diamond: 64 atoms, L/2 = 5.43 Å > cutoff + skin ≈ 4.66 Å, so
/// the Verlet skin list engages instead of the small-cell fallback.
fn si64() -> Structure {
    bulk_diamond(Species::Silicon, 2, 2, 2)
}

fn velocities(s: &Structure, seed: u64) -> Vec<tbmd_linalg::Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    maxwell_boltzmann(s, 300.0, &mut rng)
}

/// Drive `steps` NVE steps through one persistent workspace and through a
/// fresh-workspace-per-step cold path, and assert per-step agreement.
fn assert_trajectories_match(provider: &dyn ForceProvider, steps: usize) {
    let vv = VelocityVerlet::new(1.0);

    let mut ws = Workspace::new();
    let mut warm = MdState::new_with(si64(), velocities(&si64(), 11), provider, &mut ws).unwrap();
    let mut cold = MdState::new(si64(), velocities(&si64(), 11), provider).unwrap();

    for step in 0..steps {
        vv.step_with(&mut warm, provider, &mut ws).unwrap();
        vv.step(&mut cold, provider).unwrap();

        let de = (warm.potential_energy - cold.potential_energy).abs();
        assert!(de < 1e-10, "step {step}: potential energy differs by {de}");
        for i in 0..warm.structure.n_atoms() {
            let df = (warm.forces[i] - cold.forces[i]).max_abs();
            assert!(df < 1e-10, "step {step}, atom {i}: force differs by {df}");
            let dx = (warm.structure.positions()[i] - cold.structure.positions()[i]).max_abs();
            assert!(
                dx < 1e-10,
                "step {step}, atom {i}: position differs by {dx}"
            );
        }
    }

    // The warm path must actually have exercised the amortized machinery:
    // a Verlet list (not the small-cell fallback) refreshed in place on most
    // steps instead of being rebuilt.
    assert!(
        ws.neighbors.is_verlet(),
        "expected the Verlet path in a 64-atom cell"
    );
    let stats = ws.neighbors.stats();
    assert_eq!(stats.fallback_builds, 0);
    assert!(
        stats.refreshes > stats.rebuilds,
        "amortization never engaged: {stats:?}"
    );
}

#[test]
fn serial_engine_workspace_trajectory_matches_cold_path() {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
    assert_trajectories_match(&calc, 22);
}

#[test]
fn shared_engine_workspace_trajectory_matches_cold_path() {
    let model = silicon_gsp();
    let shared = SharedMemoryTb::new(&model).with_occupation(OccupationScheme::Fermi { kt: 0.1 });
    assert_trajectories_match(&shared, 20);
}

/// Acceptance criterion: a 64-atom Si NVE run of ≥100 steps performs O(1)
/// allocations of n_orb²-sized buffers after warmup. `Workspace` counts
/// every capacity growth of its H/W/ρ buffers in `large_alloc_events()`.
#[test]
fn hundred_step_nve_run_allocates_once() {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
    let s = si64();
    let v = velocities(&s, 23);

    let mut ws = Workspace::new();
    let mut state = MdState::new_with(s, v, &calc, &mut ws).unwrap();
    let after_warmup = ws.large_alloc_events();
    assert!(after_warmup > 0, "warmup should have grown the buffers");

    let vv = VelocityVerlet::new(1.0);
    for _ in 0..100 {
        vv.step_with(&mut state, &calc, &mut ws).unwrap();
    }
    assert_eq!(
        ws.large_alloc_events(),
        after_warmup,
        "matrix buffers grew after warmup"
    );

    // Neighbor amortization over the same run: exactly one Verlet build at
    // warmup, refreshes (not rebuilds) afterwards at 300 K.
    let stats = ws.neighbors.stats();
    assert_eq!(stats.fallback_builds, 0);
    assert!(
        stats.rebuilds <= 3,
        "neighbor list rebuilt {} times in 100 gentle steps",
        stats.rebuilds
    );
    assert_eq!(stats.rebuilds + stats.refreshes, 101);
}
