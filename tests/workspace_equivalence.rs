//! Trajectory-equivalence regression tests for the persistent evaluation
//! workspace (ISSUE 1).
//!
//! The workspace path amortizes neighbor-list construction with a Verlet
//! skin list and reuses every n_orb²-sized buffer across MD steps. Physics
//! must not notice: a trajectory driven through one persistent workspace has
//! to match the cold path (a fresh workspace — and hence a fresh neighbor
//! list and fresh buffers — on every step) to 1e-10 in energies, forces and
//! positions, on both the serial and the shared-memory engines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd_md::{maxwell_boltzmann, MdState, VelocityVerlet};
use tbmd_model::{
    monkhorst_pack, silicon_gsp, silicon_nonortho_demo, ForceProvider, KPointCalculator,
    NonOrthoCalculator, OccupationScheme, TbCalculator, Workspace,
};
use tbmd_parallel::{DistributedTb, SharedMemoryTb};
use tbmd_structure::{bulk_diamond, Species, Structure};

/// 2×2×2 Si diamond: 64 atoms, L/2 = 5.43 Å > cutoff + skin ≈ 4.66 Å, so
/// the Verlet skin list engages instead of the small-cell fallback.
fn si64() -> Structure {
    bulk_diamond(Species::Silicon, 2, 2, 2)
}

fn velocities(s: &Structure, seed: u64) -> Vec<tbmd_linalg::Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    maxwell_boltzmann(s, 300.0, &mut rng)
}

/// Drive `steps` NVE steps through one persistent workspace and through a
/// fresh-workspace-per-step cold path, and assert per-step agreement.
fn assert_trajectories_match(provider: &dyn ForceProvider, steps: usize) {
    let vv = VelocityVerlet::new(1.0);

    let mut ws = Workspace::new();
    let mut warm = MdState::new_with(si64(), velocities(&si64(), 11), provider, &mut ws).unwrap();
    let mut cold = MdState::new(si64(), velocities(&si64(), 11), provider).unwrap();

    for step in 0..steps {
        vv.step_with(&mut warm, provider, &mut ws).unwrap();
        vv.step(&mut cold, provider).unwrap();

        let de = (warm.potential_energy - cold.potential_energy).abs();
        assert!(de < 1e-10, "step {step}: potential energy differs by {de}");
        for i in 0..warm.structure.n_atoms() {
            let df = (warm.forces[i] - cold.forces[i]).max_abs();
            assert!(df < 1e-10, "step {step}, atom {i}: force differs by {df}");
            let dx = (warm.structure.positions()[i] - cold.structure.positions()[i]).max_abs();
            assert!(
                dx < 1e-10,
                "step {step}, atom {i}: position differs by {dx}"
            );
        }
    }

    // The warm path must actually have exercised the amortized machinery:
    // a Verlet list (not the small-cell fallback) refreshed in place on most
    // steps instead of being rebuilt.
    assert!(
        ws.neighbors.is_verlet(),
        "expected the Verlet path in a 64-atom cell"
    );
    let stats = ws.neighbors.stats();
    assert_eq!(stats.fallback_builds, 0);
    assert!(
        stats.refreshes > stats.rebuilds,
        "amortization never engaged: {stats:?}"
    );
}

#[test]
fn serial_engine_workspace_trajectory_matches_cold_path() {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
    assert_trajectories_match(&calc, 22);
}

#[test]
fn shared_engine_workspace_trajectory_matches_cold_path() {
    let model = silicon_gsp();
    let shared = SharedMemoryTb::new(&model).with_occupation(OccupationScheme::Fermi { kt: 0.1 });
    assert_trajectories_match(&shared, 20);
}

/// Acceptance criterion: a 64-atom Si NVE run of ≥100 steps performs O(1)
/// allocations of n_orb²-sized buffers after warmup. `Workspace` counts
/// every capacity growth of its H/W/ρ buffers in `large_alloc_events()`.
#[test]
fn hundred_step_nve_run_allocates_once() {
    let model = silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
    let s = si64();
    let v = velocities(&s, 23);

    let mut ws = Workspace::new();
    let mut state = MdState::new_with(s, v, &calc, &mut ws).unwrap();
    let after_warmup = ws.large_alloc_events();
    assert!(after_warmup > 0, "warmup should have grown the buffers");

    let vv = VelocityVerlet::new(1.0);
    for _ in 0..100 {
        vv.step_with(&mut state, &calc, &mut ws).unwrap();
    }
    assert_eq!(
        ws.large_alloc_events(),
        after_warmup,
        "matrix buffers grew after warmup"
    );

    // Neighbor amortization over the same run: exactly one Verlet build at
    // warmup, refreshes (not rebuilds) afterwards at 300 K.
    let stats = ws.neighbors.stats();
    assert_eq!(stats.fallback_builds, 0);
    assert!(
        stats.rebuilds <= 3,
        "neighbor list rebuilt {} times in 100 gentle steps",
        stats.rebuilds
    );
    assert_eq!(stats.rebuilds + stats.refreshes, 101);
}

/// Drive `warm_in` MD steps so every persistent buffer reaches its
/// steady-state capacity, then `steps` more and assert the workspace's
/// large-allocation counter never moves again. Finally cross-check the
/// warm trajectory endpoint against a cold evaluation (`cold` is a fresh
/// engine of the same physics) to 1e-10.
fn assert_engine_allocates_once(
    provider: &dyn ForceProvider,
    cold: &dyn ForceProvider,
    structure: Structure,
    warm_in: usize,
    steps: usize,
) {
    let v = velocities(&structure, 23);
    let vv = VelocityVerlet::new(1.0);

    let mut ws = Workspace::new();
    let mut state = MdState::new_with(structure, v, provider, &mut ws).unwrap();
    assert!(
        ws.large_alloc_events() > 0,
        "warmup should have grown the buffers"
    );
    for _ in 0..warm_in {
        vv.step_with(&mut state, provider, &mut ws).unwrap();
    }
    let after_warmup = ws.large_alloc_events();

    for _ in 0..steps {
        vv.step_with(&mut state, provider, &mut ws).unwrap();
    }
    assert_eq!(
        ws.large_alloc_events(),
        after_warmup,
        "persistent buffers grew after warm-in"
    );

    // Warm/cold equivalence at the trajectory endpoint: a fresh engine with
    // fresh buffers sees the same structure and must agree to 1e-10.
    let reference = cold.evaluate(&state.structure).unwrap();
    let de = (state.potential_energy - reference.energy).abs();
    assert!(de < 1e-10, "warm vs cold energy differs by {de}");
    for (i, (a, b)) in state.forces.iter().zip(&reference.forces).enumerate() {
        let df = (*a - *b).max_abs();
        assert!(df < 1e-10, "atom {i}: warm vs cold force differs by {df}");
    }
}

/// ISSUE 3 acceptance: the message-passing engine's per-rank workspace
/// pool makes warm evaluations O(1)-allocation — the pool persists behind
/// the engine and no rank grows a buffer after the warm-in.
#[test]
fn distributed_engine_workspace_allocates_once() {
    let model = silicon_gsp();
    let dist = DistributedTb::new(&model, 3);
    let cold = DistributedTb::new(&model, 3);
    assert_engine_allocates_once(&dist, &cold, si64(), 5, 10);
}

/// Same guarantee for the k-sampled engine: per-k Bloch/embedding slots and
/// the shared density scratch reach steady state and stay there.
#[test]
fn kpoint_engine_workspace_allocates_once() {
    let model = silicon_gsp();
    let s = bulk_diamond(Species::Silicon, 1, 1, 1);
    let grid = monkhorst_pack(&s, [2, 2, 2]);
    let kcalc = KPointCalculator::new(&model, grid.clone(), 0.1);
    let cold = KPointCalculator::new(&model, grid, 0.1);
    assert_engine_allocates_once(&kcalc, &cold, s, 5, 10);
}

/// Same guarantee for the non-orthogonal engine: H, S, the generalized
/// (Cholesky) sub-workspace and both density matrices are reused in place.
#[test]
fn nonortho_engine_workspace_allocates_once() {
    let model = silicon_nonortho_demo();
    let calc = NonOrthoCalculator::new(&model);
    let cold = NonOrthoCalculator::new(&model);
    assert_engine_allocates_once(&calc, &cold, si64(), 5, 10);
}
