//! Cross-crate integration tests: the whole pipeline from structure
//! building through engines, integrators and observables.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::md::RdfAccumulator;
use tbmd::{
    maxwell_boltzmann, run_simulation, silicon_gsp, DistributedTb, EngineKind, ForceProvider,
    LinearScalingTb, MdState, NoseHoover, Protocol, SharedMemoryTb, SimulationConfig, Species,
    SystemSpec, TbCalculator, VelocityVerlet,
};

/// Every engine must produce the same NVE trajectory (same forces ⇒ same
/// positions) over a short run.
#[test]
fn engines_produce_identical_trajectories() {
    let model = silicon_gsp();
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let v = maxwell_boltzmann(&s, 400.0, &mut rng);

    let serial = TbCalculator::new(&model);
    let shared = SharedMemoryTb::new(&model);
    let distributed = DistributedTb::new(&model, 2);

    let run = |engine: &dyn ForceProvider| -> Vec<tbmd::Vec3> {
        let mut state = MdState::new(s.clone(), v.clone(), engine).unwrap();
        let vv = VelocityVerlet::new(1.0);
        for _ in 0..5 {
            vv.step(&mut state, engine).unwrap();
        }
        state.structure.positions().to_vec()
    };

    let p_serial = run(&serial);
    let p_shared = run(&shared);
    let p_distributed = run(&distributed);
    for i in 0..s.n_atoms() {
        assert!(
            (p_serial[i] - p_shared[i]).max_abs() < 1e-8,
            "shared-memory trajectory diverged at atom {i}"
        );
        assert!(
            (p_serial[i] - p_distributed[i]).max_abs() < 1e-7,
            "distributed trajectory diverged at atom {i}"
        );
    }
}

/// NVE with the high-level driver conserves energy on every system type.
#[test]
fn nve_conserves_energy_across_systems() {
    for system in [SystemSpec::SiliconDiamond { reps: 1 }, SystemSpec::C60] {
        let config = SimulationConfig::nve(system, 300.0, 15);
        let summary = run_simulation(&config).unwrap();
        assert!(
            summary.conserved_drift < 0.02,
            "{system:?}: drift {} eV",
            summary.conserved_drift
        );
    }
}

/// Nosé–Hoover holds its conserved quantity through the high-level driver.
#[test]
fn nvt_conserved_quantity_via_driver() {
    let config = SimulationConfig {
        system: SystemSpec::SiliconDiamond { reps: 1 },
        engine: EngineKind::Serial,
        protocol: Protocol::Nvt {
            temperature_k: 800.0,
            steps: 40,
            dt_fs: 1.0,
            tau_fs: 50.0,
        },
        electronic_kt: 0.1,
        perturb: 0.0,
        seed: 11,
        record_stride: 0,
    };
    let summary = run_simulation(&config).unwrap();
    // The paper-era criterion: conserved quantity stable to ~1e-4 relative.
    assert!(
        summary.conserved_drift / summary.final_total_energy.abs() < 5e-4,
        "relative drift {}",
        summary.conserved_drift / summary.final_total_energy.abs()
    );
}

/// Relaxing a rattled crystal through the driver recovers the lattice.
#[test]
fn driver_relaxation_recovers_crystal() {
    let ideal = SimulationConfig {
        system: SystemSpec::SiliconDiamond { reps: 1 },
        engine: EngineKind::Serial,
        protocol: Protocol::Relax {
            force_tolerance: 1e-3,
            max_iterations: 10,
        },
        electronic_kt: 0.1,
        perturb: 0.0,
        seed: 0,
        record_stride: 0,
    };
    let e_ideal = run_simulation(&ideal).unwrap().final_potential_energy;

    let rattled = SimulationConfig {
        perturb: 0.1,
        protocol: Protocol::Relax {
            force_tolerance: 2e-2,
            max_iterations: 300,
        },
        ..ideal
    };
    let summary = run_simulation(&rattled).unwrap();
    assert!(summary.converged);
    assert!(
        (summary.final_potential_energy - e_ideal).abs() < 0.05,
        "relaxed to {} vs ideal {}",
        summary.final_potential_energy,
        e_ideal
    );
}

/// The O(N) engine can drive MD: short NVE with bounded drift.
#[test]
fn linear_scaling_engine_drives_md() {
    let model = silicon_gsp();
    let engine = LinearScalingTb::new(&model).with_kt(0.3).with_order(250);
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let mut rng = StdRng::seed_from_u64(21);
    let v = maxwell_boltzmann(&s, 300.0, &mut rng);
    let mut state = MdState::new(s, v, &engine).unwrap();
    let e0 = state.total_energy();
    let vv = VelocityVerlet::new(1.0);
    for _ in 0..10 {
        vv.step(&mut state, &engine).unwrap();
    }
    assert!(
        (state.total_energy() - e0).abs() < 0.05,
        "O(N) NVE drift {} eV",
        (state.total_energy() - e0).abs()
    );
}

/// A nanotube at moderate temperature keeps its sp² network (full pipeline:
/// builder → carbon model → NVT).
#[test]
fn nanotube_stable_at_moderate_temperature() {
    let model = tbmd::carbon_xwch();
    let calc = TbCalculator::new(&model);
    let tube = tbmd::structure::nanotube(6, 0, 2, 1.42);
    let mut rng = StdRng::seed_from_u64(3);
    let v = maxwell_boltzmann(&tube, 800.0, &mut rng);
    let mut state = MdState::new(tube, v, &calc).unwrap();
    let mut nh = NoseHoover::with_period(1.0, 800.0, state.n_dof(), 40.0);
    for _ in 0..30 {
        nh.step(&mut state, &calc).unwrap();
    }
    for i in 0..state.structure.n_atoms() {
        assert_eq!(
            state.structure.coordination(i, 1.9),
            3,
            "atom {i} lost its sp² coordination at 800 K"
        );
    }
}

/// RDF of an MD-thermalized crystal keeps its first peak at the bond length.
#[test]
fn rdf_after_dynamics_peaks_at_bond_length() {
    let config = SimulationConfig {
        record_stride: 2,
        ..SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 20)
    };
    let summary = run_simulation(&config).unwrap();
    let mut rdf = RdfAccumulator::new(4.5, 90);
    for frame in summary.trajectory.unwrap().frames() {
        rdf.accumulate(&frame.structure);
    }
    let (r_peak, _) = rdf.first_peak().unwrap();
    assert!(
        (r_peak - 2.35).abs() < 0.15,
        "first RDF peak at {r_peak} Å after dynamics"
    );
}
