//! The k-point engine's thread fan-out must be invisible to the physics
//! (ISSUE 5, satellite): an MD trajectory driven by the parallel per-k
//! sweep is *bitwise* identical to one driven by the serial sweep. Per-k
//! work is slot-local and the energy/force reduction runs in grid order
//! either way, so any divergence here means shared mutable state leaked
//! into the fan-out.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd_md::{maxwell_boltzmann, MdState, VelocityVerlet};
use tbmd_model::{monkhorst_pack, KPointCalculator, Workspace};
use tbmd_structure::{bulk_diamond, Species, Structure};

fn perturbed_si8(seed: u64) -> Structure {
    let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    s.perturb(&mut rng, 0.05);
    s
}

/// 12-step NVE trajectory under the k-sampled engine; returns per-step
/// potential energies and final positions/velocities as raw f64 bits.
fn trajectory_bits(parallel: bool) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let model = tbmd_model::silicon_gsp();
    let s = perturbed_si8(17);
    let calc =
        KPointCalculator::new(&model, monkhorst_pack(&s, [2, 2, 2]), 0.1).with_parallel(parallel);
    let mut rng = StdRng::seed_from_u64(23);
    let v0 = maxwell_boltzmann(&s, 300.0, &mut rng);
    let vv = VelocityVerlet::new(1.0);
    let mut ws = Workspace::new();
    let mut state = MdState::new_with(s, v0, &calc, &mut ws).unwrap();

    let mut energies = Vec::new();
    for _ in 0..12 {
        vv.step_with(&mut state, &calc, &mut ws).unwrap();
        energies.push(state.potential_energy.to_bits());
    }
    let positions = state
        .structure
        .positions()
        .iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect();
    let velocities = state
        .velocities
        .iter()
        .flat_map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect();
    (energies, positions, velocities)
}

#[test]
fn kpoint_parallel_md_trajectory_is_bitwise_identical_to_serial() {
    let (e_par, x_par, v_par) = trajectory_bits(true);
    let (e_ser, x_ser, v_ser) = trajectory_bits(false);
    assert_eq!(e_par, e_ser, "per-step energies diverged");
    assert_eq!(x_par, x_ser, "final positions diverged");
    assert_eq!(v_par, v_ser, "final velocities diverged");
}
