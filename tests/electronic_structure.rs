//! Integration tests for the electronic-structure extensions: band
//! structures, k-point sampling, stress, non-orthogonal TB and phonons used
//! together through the public API.

use tbmd::model::{
    band_energies, band_gap, folding_grid, monkhorst_pack, stress_tensor, KPointCalculator,
    NonOrthoCalculator,
};
use tbmd::{
    normal_modes, pressure, silicon_gsp, silicon_nonortho_demo, ForceProvider, OccupationScheme,
    Species, TbCalculator, Vec3,
};

/// The k-sampled calculator, the Γ supercell calculator and the band-energy
/// API must tell one consistent story about the same crystal.
#[test]
fn kpoints_bands_and_supercells_agree() {
    let model = silicon_gsp();
    let primitive = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    // Folding identity via the public facade.
    let grid = folding_grid(&primitive, [2, 2, 2]);
    let e_k = KPointCalculator::new(&model, grid, 0.1)
        .evaluate(&primitive)
        .unwrap()
        .energy
        / 8.0;
    let supercell = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let e_g = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 })
        .evaluate(&supercell)
        .unwrap()
        .energy
        / 64.0;
    assert!((e_k - e_g).abs() < 1e-7, "folding identity: {e_k} vs {e_g}");

    // The occupied bandwidth from band_energies at Γ matches the supercell
    // spectrum's span.
    let gamma_bands = band_energies(&primitive, &model, Vec3::ZERO).unwrap();
    assert_eq!(gamma_bands.len(), 32);
    assert!(gamma_bands[0] < -10.0 && *gamma_bands.last().unwrap() > 3.0);
}

/// Band gap from a sampled path is stable against adding more k-points
/// (can only shrink or hold as sampling refines).
#[test]
fn gap_monotone_under_refinement() {
    let model = silicon_gsp();
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let g = 2.0 * std::f64::consts::PI / s.cell().lengths.x;
    let coarse: Vec<Vec3> = (0..4)
        .map(|i| Vec3::new(g * i as f64 / 8.0, 0.0, 0.0))
        .collect();
    let fine: Vec<Vec3> = (0..16)
        .map(|i| Vec3::new(g * i as f64 / 32.0, 0.0, 0.0))
        .collect();
    let bands_of = |ks: &[Vec3]| -> f64 {
        let bands: Vec<Vec<f64>> = ks
            .iter()
            .map(|&k| band_energies(&s, &model, k).unwrap())
            .collect();
        band_gap(&bands, s.n_electrons()).unwrap()
    };
    let gap_coarse = bands_of(&coarse);
    let gap_fine = bands_of(&fine);
    assert!(gap_fine <= gap_coarse + 1e-9);
    assert!(gap_fine > 0.0, "Si must stay gapped on this line");
}

/// Stress from the public API: equilibrium ≈ 0, and the k-point-free Γ
/// result responds correctly to strain sign.
#[test]
fn stress_signs_through_facade() {
    let model = silicon_gsp();
    let kt = OccupationScheme::Fermi { kt: 0.1 };
    let squeezed = tbmd::structure::bulk_diamond_with_bond(Species::Silicon, 2.25, 1, 1, 1);
    let stretched = tbmd::structure::bulk_diamond_with_bond(Species::Silicon, 2.45, 1, 1, 1);
    assert!(pressure(&stress_tensor(&squeezed, &model, kt).unwrap()) > 0.0);
    assert!(pressure(&stress_tensor(&stretched, &model, kt).unwrap()) < 0.0);
}

/// The non-orthogonal calculator drives relaxation like any other engine.
#[test]
fn nonortho_engine_relaxes_dimer() {
    let model = silicon_nonortho_demo();
    let calc = NonOrthoCalculator::new(&model);
    let mut s = tbmd::structure::dimer(Species::Silicon, 2.9);
    let opts = tbmd::RelaxOptions {
        force_tolerance: 5e-3,
        ..Default::default()
    };
    let result = tbmd::md::relax(&mut s, &calc, &opts).unwrap();
    assert!(result.converged);
    let d = s.distance(0, 1);
    assert!(d > 2.0 && d < 2.8, "non-ortho dimer relaxed to {d} Å");
}

/// Phonons of a k-point-converged structure: the MP-sampled calculator can
/// feed the normal-mode machinery (any ForceProvider works).
#[test]
fn phonons_from_kpoint_calculator() {
    let model = silicon_gsp();
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let kcalc = KPointCalculator::new(&model, monkhorst_pack(&s, [2, 2, 2]), 0.1);
    let modes = normal_modes(&s, &kcalc, 1e-3).unwrap();
    assert_eq!(modes.frequencies_thz.len(), 24);
    assert_eq!(
        modes.n_zero_modes(0.8),
        3,
        "{:?}",
        &modes.frequencies_thz[..5]
    );
    assert!(modes.is_stable(1e-2));
}
