//! Live telemetry on a multiplexed serve run (ISSUE 9 acceptance).
//!
//! Three Si-8 tenants under a two-thread compute budget: the third job
//! must wait in the admission queue, and a `stats` snapshot taken mid-run
//! must already show per-tenant step-latency histograms (non-empty
//! p50/p99), the queue-depth gauge, and the lease high-water mark. After
//! the drain, every report carries its admission wait and the stats
//! ledger shows all three tenants retired.
//!
//! This test owns the process-global budget, sink and timeline, so it
//! lives in its own integration binary (one process) rather than sharing
//! one with other trace tests.

use tbmd::trace::{timeline, Gauge, JsonValue, TraceSink};
use tbmd::{configure_budget, SimulationConfig, SystemSpec};
use tbmd_serve::{JobSpec, Multiplexer, Request, StatsFormat};

const STEPS: usize = 12;
const QUANTUM: usize = 4;

fn tenant_config(i: usize) -> SimulationConfig {
    let mut c = SimulationConfig::nve(
        SystemSpec::SiliconDiamond { reps: 1 },
        300.0 + 30.0 * i as f64,
        STEPS,
    );
    c.seed = 50 + i as u64;
    c
}

#[test]
fn three_tenants_answer_stats_mid_run() {
    tbmd::trace::install(TraceSink::collecting());
    timeline::enable(0);
    configure_budget(2);
    tbmd::parallel::reset_high_water();

    let mut mux = Multiplexer::new();
    for i in 0..3 {
        let mut spec = JobSpec::new(format!("tenant-{i}"), tenant_config(i));
        spec.quantum = QUANTUM;
        spec.threads = 1;
        mux.submit(spec, std::io::sink());
    }
    let stats = mux.stats();
    assert_eq!(stats.queue_depth(), 3, "all jobs queued before any tick");

    // One sweep: the budget admits two tenants; the third keeps waiting.
    assert!(mux.tick(), "jobs still pending after one quantum");
    let snap = stats.to_json();
    assert_eq!(snap.get("type").unwrap().as_str(), Some("stats"));
    assert_eq!(snap.get("queue_depth").unwrap().as_f64(), Some(1.0));
    assert_eq!(snap.get("active").unwrap().as_f64(), Some(2.0));
    assert_eq!(snap.get("queued").unwrap().as_f64(), Some(1.0));
    assert_eq!(snap.get("retired").unwrap().as_f64(), Some(0.0));
    let budget = snap.get("budget").unwrap();
    assert_eq!(budget.get("total").unwrap().as_f64(), Some(2.0));
    assert_eq!(budget.get("high_water").unwrap().as_f64(), Some(2.0));

    // Mid-run per-tenant histograms: the two admitted tenants each ran one
    // quantum of steps and have a live latency distribution; the queued
    // one has none yet.
    let tenants = snap.get("tenants").unwrap().as_array().unwrap();
    assert_eq!(tenants.len(), 3);
    for t in &tenants[..2] {
        assert_eq!(t.get("state").unwrap().as_str(), Some("active"));
        assert_eq!(t.get("steps").unwrap().as_f64(), Some(QUANTUM as f64));
        let step = t.get("histograms").unwrap().get("step").unwrap();
        assert_eq!(step.get("count").unwrap().as_f64(), Some(QUANTUM as f64));
        let p50 = step.get("p50_ms").unwrap().as_f64().unwrap();
        let p99 = step.get("p99_ms").unwrap().as_f64().unwrap();
        assert!(
            0.0 < p50 && p50 <= p99,
            "mid-run step percentiles unordered: {p50} {p99}"
        );
        let quantum = t.get("histograms").unwrap().get("quantum").unwrap();
        assert_eq!(quantum.get("count").unwrap().as_f64(), Some(1.0));
    }
    assert_eq!(tenants[2].get("state").unwrap().as_str(), Some("queued"));
    assert_eq!(tenants[2].get("steps").unwrap().as_f64(), Some(0.0));

    // The gauges the scheduler maintains in the global registry.
    let gauges = tbmd::trace::snapshot();
    assert_eq!(gauges.gauge(Gauge::QueueDepth), 1.0);
    assert_eq!(gauges.gauge(Gauge::LeaseHighWater), 2.0);

    // The stats verb parses on the wire exactly as the daemon answers it.
    assert!(matches!(
        tbmd_serve::parse_request(r#"{"stats":true}"#).unwrap(),
        Request::Stats(StatsFormat::Json)
    ));
    let prom = stats.to_prometheus();
    assert!(prom.contains("tbmd_queue_depth 1"));
    assert!(prom.contains("tbmd_tenants{state=\"active\"} 2"));
    assert!(prom.contains("tbmd_step_seconds{tenant=\"tenant-0\",quantile=\"0.99\"}"));

    // Drain: every tenant finishes, the late one with a real queue wait.
    let mut reports = mux.drain();
    reports.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(r.outcome.is_ok(), "{}: {:?}", r.name, r.outcome);
        assert_eq!(r.steps, STEPS);
    }
    assert!(
        reports[2].queue_wait > reports[0].queue_wait,
        "the queued tenant's admission wait ({:?}) should exceed an \
         immediately admitted one's ({:?})",
        reports[2].queue_wait,
        reports[0].queue_wait
    );

    let done = stats.to_json();
    assert_eq!(done.get("retired").unwrap().as_f64(), Some(3.0));
    assert_eq!(done.get("queue_depth").unwrap().as_f64(), Some(0.0));
    for t in done.get("tenants").unwrap().as_array().unwrap() {
        assert_eq!(t.get("state").unwrap().as_str(), Some("retired"));
        assert_eq!(t.get("steps").unwrap().as_f64(), Some(STEPS as f64));
    }
    // The global admission-wait histogram saw all three admissions.
    let waits = tbmd::trace::histograms();
    assert_eq!(waits.hist(tbmd::Hist::AdmissionWait).count(), 3);

    // The timeline captured tenant-labelled quantum intervals with the MD
    // step spans nested inside them, and the export round-trips.
    let chrome = timeline::export_chrome().to_compact();
    let parsed = JsonValue::parse(&chrome).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents");
    let interval = |e: &JsonValue| -> (f64, f64) {
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        (ts, ts + e.get("dur").unwrap().as_f64().unwrap())
    };
    let name = |e: &JsonValue| e.get("name").unwrap().as_str().unwrap().to_string();
    let quanta: Vec<_> = events
        .iter()
        .filter(|e| name(e).starts_with("tenant-"))
        .collect();
    let steps: Vec<_> = events.iter().filter(|e| name(e) == "step").collect();
    assert!(!quanta.is_empty(), "no tenant quantum spans captured");
    assert!(!steps.is_empty(), "no step spans captured");
    // Every step interval nests inside some tenant quantum (µs rounding
    // slack at both edges).
    for s in &steps {
        let (s0, s1) = interval(s);
        assert!(
            quanta.iter().any(|q| {
                let (q0, q1) = interval(q);
                q0 <= s0 + 1e-3 && s1 <= q1 + 1e-3
            }),
            "step span at {s0}µs not contained in any tenant quantum"
        );
    }

    timeline::disable();
    tbmd::trace::install(TraceSink::disabled());
    configure_budget(0);
}
