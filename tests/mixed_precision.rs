//! Mixed-precision Chebyshev regression tests (ISSUE 7).
//!
//! The `Precision::MixedF32` path runs the high-order tail of every
//! Chebyshev column in f32 (the head, carrying all but ~1e-4 of the
//! coefficient mass, stays in f64). Physics must not notice: a 20-step
//! NVE trajectory driven by the mixed engine has to track the pure-f64
//! engine to 1e-6 eV at every step, with the f32 tail actually exercised.
//! And the runtime probe must catch matrices whose physics lives below
//! the f32 ulp of their own entries — the injected-poison test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::linscale::precision::{
    chebyshev_column_f64, chebyshev_column_mixed, split_order, F32Region, PrecisionGate, Term,
    TAIL_MASS_TOL,
};
use tbmd::linscale::{fermi_coefficients, LinearScalingTb, LocalRegion, Precision};
use tbmd::trace::{Counter, TraceSink};
use tbmd_md::{maxwell_boltzmann, MdState, VelocityVerlet};
use tbmd_model::{silicon_gsp, Workspace};
use tbmd_structure::{bulk_diamond, Species, Structure};

fn si8() -> Structure {
    bulk_diamond(Species::Silicon, 1, 1, 1)
}

/// 20 NVE steps: the mixed-precision engine must track f64 to 1e-6 eV in
/// potential energy at every step while taking a non-trivial number of
/// f32 recurrence steps, and the probe must never trip on healthy data.
#[test]
fn mixed_nve_tracks_f64_within_1e_6_ev() {
    let model = silicon_gsp();
    let kt = 0.3;
    let order = 400;
    let f64_engine = LinearScalingTb::new(&model).with_kt(kt).with_order(order);
    let mixed_engine = LinearScalingTb::new(&model)
        .with_kt(kt)
        .with_order(order)
        .with_precision(Precision::MixedF32);

    tbmd::trace::install(TraceSink::collecting());
    let before = tbmd::trace::snapshot();

    let vv = VelocityVerlet::new(1.0);
    let velocities = {
        let mut rng = StdRng::seed_from_u64(7);
        maxwell_boltzmann(&si8(), 300.0, &mut rng)
    };
    let mut ws_a = Workspace::new();
    let mut ws_b = Workspace::new();
    let mut a = MdState::new_with(si8(), velocities.clone(), &f64_engine, &mut ws_a).unwrap();
    let mut b = MdState::new_with(si8(), velocities, &mixed_engine, &mut ws_b).unwrap();

    for step in 0..20 {
        vv.step_with(&mut a, &f64_engine, &mut ws_a).unwrap();
        vv.step_with(&mut b, &mixed_engine, &mut ws_b).unwrap();
        let de = (a.potential_energy - b.potential_energy).abs();
        assert!(
            de < 1e-6,
            "step {step}: mixed vs f64 potential energy differs by {de:.3e} eV"
        );
        for i in 0..a.structure.n_atoms() {
            let df = (a.forces[i] - b.forces[i]).max_abs();
            assert!(
                df < 1e-6,
                "step {step}, atom {i}: force differs by {df:.3e}"
            );
        }
    }

    let delta = tbmd::trace::snapshot().since(&before);
    tbmd::trace::install(TraceSink::disabled());
    assert!(
        delta.counter(Counter::F32ChebyshevSteps) > 0,
        "mixed path never took an f32 step — split order degenerate"
    );
    assert!(
        !mixed_engine.precision_latched(),
        "probe tripped on healthy silicon"
    );
}

/// A diagonal-dominant operator at energy origin 1e9 with sub-ulp level
/// structure: the f32 ulp at 1e9 is 64, so rounding the raw entries to
/// f32 annihilates the ±0.5 eV physics entirely. The mixed recurrence
/// must diverge from f64 by far more than the probe tolerance, and the
/// gate must latch (counting one precision_fallbacks event).
#[test]
fn poisoned_matrix_trips_probe_and_latches() {
    let n = 16;
    let e0 = 1.0e9;
    let rows: Vec<Vec<(usize, f64)>> = (0..n)
        .map(|i| {
            let mut row = vec![(i, e0 + if i % 2 == 0 { 0.0 } else { 0.5 })];
            if i > 0 {
                row.insert(0, (i - 1, 0.1));
            }
            if i + 1 < n {
                row.push((i + 1, 0.1));
            }
            row
        })
        .collect();
    let region = LocalRegion::from_rows(rows);
    let region32 = F32Region::from_region(&region);

    let (e_min, e_max) = (e0 - 1.0, e0 + 1.5);
    let order = 80;
    let mu = e0 + 0.25;
    let (shift, scale, coeffs) = fermi_coefficients(e_min, e_max, mu, 0.05, order);
    let k_split = split_order(&coeffs, TAIL_MASS_TOL).min(order / 2);

    // ρ column 0 both ways, f64-accumulated as the engine does it.
    let mut rho_f64 = vec![0.0; n];
    chebyshev_column_f64(&region, 0, shift, scale, order, |k, t| {
        let c = if k == 0 { 0.5 * coeffs[0] } else { coeffs[k] };
        for (r, &tv) in rho_f64.iter_mut().zip(t) {
            *r += c * tv;
        }
    });
    let mut rho_mixed = vec![0.0; n];
    let steps = chebyshev_column_mixed(
        &region,
        &region32,
        0,
        shift,
        scale,
        order,
        k_split,
        |k, term| {
            let c = if k == 0 { 0.5 * coeffs[0] } else { coeffs[k] };
            match term {
                Term::F64(t) => {
                    for (r, &tv) in rho_mixed.iter_mut().zip(t) {
                        *r += c * tv;
                    }
                }
                Term::F32(t) => {
                    for (r, &tv) in rho_mixed.iter_mut().zip(t) {
                        *r += c * tv as f64;
                    }
                }
            }
        },
    );
    assert!(steps > 0, "poison test never reached the f32 tail");

    let dev = rho_f64
        .iter()
        .zip(&rho_mixed)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    tbmd::trace::install(TraceSink::collecting());
    let before = tbmd::trace::snapshot();
    let gate = PrecisionGate::new();
    assert!(
        gate.observe(dev, 1.0),
        "probe failed to trip on poisoned matrix (deviation {dev:.3e})"
    );
    assert!(gate.latched(), "gate must latch after a trip");
    // Latched means latched: further observations don't re-count.
    assert!(gate.observe(dev, 1.0));
    let delta = tbmd::trace::snapshot().since(&before);
    tbmd::trace::install(TraceSink::disabled());
    assert_eq!(delta.counter(Counter::PrecisionFallbacks), 1);
}
