//! Checkpoint/restart equivalence (ISSUE 5).
//!
//! The `tbmd-ckpt` contract: a run killed at any step and continued from its
//! last snapshot produces the *bitwise* trajectory of the uninterrupted run
//! — positions, velocities, thermostat internals and summary statistics all
//! restored exactly, with no force re-evaluation at the resume point. The
//! tests pin that for the serial engine (NVE, NVT, ramp protocols) and for
//! the distributed engine under an injected mid-run rank kill driven through
//! the `run_simulation_resilient` recovery loop.
//!
//! All tests use Si-8, whose cell is too small for the Verlet skin: every
//! step rebuilds the neighbour list from positions alone, so the trajectory
//! is a pure function of the restored state.

use std::path::PathBuf;
use tbmd::{
    resume_simulation, run_simulation, run_simulation_checkpointed, run_simulation_resilient,
    CheckpointConfig, CheckpointStore, EngineKind, FaultKind, FaultPlan, Protocol,
    SimulationConfig, SimulationSummary, SystemSpec, TbError, Vec3,
};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbmd_ckpt_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[Vec3]) -> Vec<u64> {
    v.iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

/// Final positions + velocities as raw f64 bit patterns.
fn endpoint_bits(summary: &SimulationSummary) -> (Vec<u64>, Vec<u64>) {
    (
        bits(summary.final_structure.positions()),
        bits(&summary.final_velocities),
    )
}

fn assert_bitwise_equal(a: &SimulationSummary, b: &SimulationSummary, what: &str) {
    let (xa, va) = endpoint_bits(a);
    let (xb, vb) = endpoint_bits(b);
    assert_eq!(xa, xb, "{what}: final positions diverged");
    assert_eq!(va, vb, "{what}: final velocities diverged");
    assert_eq!(
        a.conserved_drift.to_bits(),
        b.conserved_drift.to_bits(),
        "{what}: conserved-drift monitor diverged"
    );
    assert_eq!(
        a.mean_temperature_k.to_bits(),
        b.mean_temperature_k.to_bits(),
        "{what}: temperature statistics diverged"
    );
    assert_eq!(a.steps, b.steps, "{what}: step counts diverged");
}

fn si8_nve(steps: usize) -> SimulationConfig {
    SimulationConfig {
        system: SystemSpec::SiliconDiamond { reps: 1 },
        engine: EngineKind::Serial,
        protocol: Protocol::Nve {
            temperature_k: 300.0,
            steps,
            dt_fs: 1.0,
        },
        electronic_kt: 0.1,
        perturb: 0.02,
        seed: 11,
        record_stride: 0,
    }
}

/// Kill-and-resume, serial NVE: run 20 steps clean; separately run the same
/// config truncated to 12 steps with snapshots every 5 (the "kill" lands
/// between snapshots, so resume rewinds to step 10 and recomputes 11–20).
#[test]
fn serial_nve_kill_and_resume_is_bitwise_identical() {
    let dir = scratch_dir("nve");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 5,
        retain: 3,
    };

    let clean = run_simulation(&si8_nve(20)).unwrap();

    // Interrupted run: dies after step 12; newest usable snapshot is step 10.
    run_simulation_checkpointed(&si8_nve(12), &ckpt).unwrap();
    let store = CheckpointStore::open(&dir, 0).unwrap();
    assert_eq!(store.latest().unwrap().unwrap().step, 10);

    // Resume into the *longer* 20-step request (step counts are outside the
    // config fingerprint) and land bit-for-bit on the uninterrupted endpoint.
    let resumed = resume_simulation(&si8_nve(20), &ckpt).unwrap();
    assert_bitwise_equal(&clean, &resumed, "serial NVE");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Same contract under Nosé–Hoover: the thermostat internals (ξ, η, Q,
/// set-point) ride in the snapshot's THRM section.
#[test]
fn serial_nvt_kill_and_resume_is_bitwise_identical() {
    let dir = scratch_dir("nvt");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 2,
    };
    let config = |steps| SimulationConfig {
        protocol: Protocol::Nvt {
            temperature_k: 400.0,
            steps,
            dt_fs: 1.0,
            tau_fs: 40.0,
        },
        ..si8_nve(0)
    };

    let clean = run_simulation(&config(15)).unwrap();
    run_simulation_checkpointed(&config(9), &ckpt).unwrap();
    let resumed = resume_simulation(&config(15), &ckpt).unwrap();
    assert_bitwise_equal(&clean, &resumed, "serial NVT");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Ramp protocol: resume both from a mid-ramp snapshot and from the
/// ramp→hold boundary snapshot (which must carry the hold phase's conserved
/// reference H'₀ so the drift monitor continues exactly).
#[test]
fn ramp_resume_mid_ramp_and_at_hold_boundary() {
    let dir = scratch_dir("ramp");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 5,
        retain: 0,
    };
    // 10 K at 0.5 K/fs = 20 ramp steps, then 3 hold steps: snapshots land at
    // 5, 10, 15 (mid-ramp) and 20 (the final ramp step, holding=true).
    let config = SimulationConfig {
        protocol: Protocol::NvtRamp {
            from_k: 100.0,
            to_k: 110.0,
            rate_k_per_fs: 0.5,
            hold_steps: 3,
            dt_fs: 1.0,
            tau_fs: 50.0,
        },
        ..si8_nve(0)
    };

    let full = run_simulation_checkpointed(&config, &ckpt).unwrap();
    assert_eq!(full.steps, 23);
    let store = CheckpointStore::open(&dir, 0).unwrap();
    let steps: Vec<u64> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
    assert_eq!(steps, vec![5, 10, 15, 20]);

    // Resume from the boundary snapshot (step 20): replays only the hold.
    let from_boundary = resume_simulation(&config, &ckpt).unwrap();
    assert_bitwise_equal(&full, &from_boundary, "ramp hold-boundary resume");

    // Drop the boundary snapshot; latest is now mid-ramp (step 15) with the
    // thermostat set-point partway up the ramp.
    std::fs::remove_file(store.path_for(20)).unwrap();
    let from_mid_ramp = resume_simulation(&config, &ckpt).unwrap();
    assert_bitwise_equal(&full, &from_mid_ramp, "mid-ramp resume");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: a distributed run loses rank 1 mid-trajectory;
/// the resilient driver detects the failure (no hang), rewinds to the last
/// snapshot and finishes — bitwise identical to a run that never crashed.
#[test]
fn distributed_kill_recover_resume_is_bitwise_identical() {
    let dir = scratch_dir("dist");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 3,
    };
    let config = SimulationConfig {
        engine: EngineKind::Distributed { ranks: 2 },
        ..si8_nve(12)
    };

    let clean = run_simulation(&config).unwrap();

    // Evaluation 1 is the warm-up of `MdState::new`, so evaluation 8 is MD
    // step 7 — after the step-4 snapshot, before the step-8 one.
    let fault = FaultPlan {
        rank: 1,
        at_evaluation: 8,
        kind: FaultKind::Kill,
    };
    let (recovered, recoveries) = run_simulation_resilient(&config, &ckpt, Some(fault), 2).unwrap();
    assert_eq!(recoveries, 1, "exactly one recovery expected");
    assert_bitwise_equal(&clean, &recovered, "distributed kill+recover");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A fault before the first snapshot restarts from scratch; an exhausted
/// recovery budget surfaces the rank failure instead of looping forever.
#[test]
fn resilient_driver_edge_cases() {
    let dir = scratch_dir("edges");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 2,
    };
    let config = SimulationConfig {
        engine: EngineKind::Distributed { ranks: 2 },
        ..si8_nve(6)
    };

    // Dies at the warm-up evaluation — nothing on disk yet.
    let fault = FaultPlan {
        rank: 0,
        at_evaluation: 1,
        kind: FaultKind::Kill,
    };
    let clean = run_simulation(&config).unwrap();
    let (recovered, recoveries) = run_simulation_resilient(&config, &ckpt, Some(fault), 1).unwrap();
    assert_eq!(recoveries, 1);
    assert_bitwise_equal(&clean, &recovered, "restart-from-scratch recovery");

    // Zero recovery budget: the injected failure propagates out typed.
    let dir2 = scratch_dir("edges2");
    let ckpt2 = CheckpointConfig {
        dir: dir2.clone(),
        interval: 4,
        retain: 2,
    };
    let err = run_simulation_resilient(&config, &ckpt2, Some(fault), 0).unwrap_err();
    assert!(
        matches!(err, TbError::RankFailure { .. }),
        "expected RankFailure, got {err:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// Resume validation: an empty store and a mismatched configuration are
/// typed `TbError::Checkpoint` errors, never a silent wrong trajectory.
#[test]
fn resume_validation_rejects_empty_store_and_changed_config() {
    let dir = scratch_dir("validate");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 5,
        retain: 2,
    };

    // Nothing written yet.
    let err = resume_simulation(&si8_nve(10), &ckpt).unwrap_err();
    assert!(matches!(err, TbError::Checkpoint(_)), "{err:?}");

    run_simulation_checkpointed(&si8_nve(10), &ckpt).unwrap();

    // Same shape, different seed → different trajectory → rejected.
    let mut other = si8_nve(10);
    other.seed = 12;
    let err = resume_simulation(&other, &ckpt).unwrap_err();
    match err {
        TbError::Checkpoint(msg) => assert!(msg.contains("mismatch"), "{msg}"),
        other => panic!("expected Checkpoint error, got {other:?}"),
    }

    // A different timestep changes the dynamics → rejected too.
    let mut other = si8_nve(10);
    other.protocol = Protocol::Nve {
        temperature_k: 300.0,
        steps: 10,
        dt_fs: 0.5,
    };
    let err = resume_simulation(&other, &ckpt).unwrap_err();
    assert!(matches!(err, TbError::Checkpoint(_)), "{err:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
