//! Session multiplexing equivalence (ISSUE 8).
//!
//! Interleaving many [`tbmd::Session`]s in one process is only useful if it
//! is *invisible* to the physics: each tenant's trajectory must be bitwise
//! the one a standalone `run_simulation` of the same config produces, the
//! shared engines must not leak worker threads, and per-session accounting
//! (allocation growth events) must not bleed between tenants. The second
//! half of the file property-tests the in-memory [`tbmd::SnapshotBackend`]
//! against the same corruption/truncation cases the on-disk TBCK format is
//! pinned by.

use proptest::prelude::*;
use tbmd::{
    live_vmp_workers, run_simulation, CheckpointStore, EngineKind, MemoryBackend, SessionBuilder,
    SessionStatus, SimulationConfig, SimulationSummary, Snapshot, SnapshotBackend, StatsSnapshot,
    SystemSpec, ThermostatSnapshot, Vec3,
};

fn bits(v: &[Vec3]) -> Vec<u64> {
    v.iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn assert_endpoints_bitwise(a: &SimulationSummary, b: &SimulationSummary) {
    assert_eq!(
        a.final_total_energy.to_bits(),
        b.final_total_energy.to_bits(),
        "total energy differs"
    );
    assert_eq!(
        bits(a.final_structure.positions()),
        bits(b.final_structure.positions()),
        "positions differ"
    );
    assert_eq!(
        bits(&a.final_velocities),
        bits(&b.final_velocities),
        "velocities differ"
    );
    assert_eq!(a.conserved_drift.to_bits(), b.conserved_drift.to_bits());
}

/// Two sessions of different systems, sizes and seeds, advanced strictly
/// interleaved (1 step each, alternating), must land bitwise on the
/// endpoints of their standalone serial runs.
#[test]
fn interleaved_sessions_bitwise_match_standalone_runs() {
    let mut ca = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 12);
    ca.seed = 7;
    let mut cb = SimulationConfig::nve(SystemSpec::Graphene { nx: 1, ny: 1 }, 600.0, 17);
    cb.seed = 1234;
    let ra = run_simulation(&ca).expect("standalone a");
    let rb = run_simulation(&cb).expect("standalone b");

    let mut sa = SessionBuilder::new(ca).build().expect("session a");
    let mut sb = SessionBuilder::new(cb).build().expect("session b");
    loop {
        let a = sa.step().expect("a step");
        let b = sb.step().expect("b step");
        if a == SessionStatus::Done && b == SessionStatus::Done {
            break;
        }
    }
    let (qa, qb) = (
        sa.take_summary().expect("summary a"),
        sb.take_summary().expect("summary b"),
    );
    assert_eq!(qa.steps, 12);
    assert_eq!(qb.steps, 17);
    assert_endpoints_bitwise(&qa, &ra);
    assert_endpoints_bitwise(&qb, &rb);
}

/// A distributed session multiplexed against a serial one: the trajectory
/// stays bitwise the standalone one, and when both sessions drop, the VMP
/// worker census is zero — multiplexing must not strand rank threads.
#[test]
fn multiplexed_distributed_session_leaks_no_workers() {
    let mut cd = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 6);
    cd.engine = EngineKind::Distributed { ranks: 2 };
    cd.seed = 21;
    let mut cs = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 450.0, 9);
    cs.seed = 22;
    let rd = run_simulation(&cd).expect("standalone distributed");
    let rs = run_simulation(&cs).expect("standalone serial");
    {
        let mut sd = SessionBuilder::new(cd)
            .build()
            .expect("distributed session");
        let mut ss = SessionBuilder::new(cs).build().expect("serial session");
        loop {
            let a = sd.step().expect("distributed step");
            let b = ss.step().expect("serial step");
            if a == SessionStatus::Done && b == SessionStatus::Done {
                break;
            }
        }
        assert_endpoints_bitwise(&sd.take_summary().unwrap(), &rd);
        assert_endpoints_bitwise(&ss.take_summary().unwrap(), &rs);
        assert!(sd.evaluations() > 0);
    }
    // Both sessions (and their engines) are dropped: every virtual rank
    // must have been joined.
    assert_eq!(live_vmp_workers(), 0, "leaked VMP worker threads");
}

/// Allocation-growth accounting is per session: a session's count is the
/// same whether it runs alone or interleaved with a bigger tenant.
#[test]
fn per_session_alloc_counters_are_independent() {
    let mut ca = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 5);
    ca.seed = 31;
    let mut cb = SimulationConfig::nve(SystemSpec::Graphene { nx: 2, ny: 1 }, 300.0, 5);
    cb.seed = 32;

    let solo = {
        let mut s = SessionBuilder::new(ca).build().expect("solo");
        s.run().expect("solo run");
        s.large_alloc_events()
    };
    let (multi_a, multi_b) = {
        let mut sa = SessionBuilder::new(ca).build().expect("a");
        let mut sb = SessionBuilder::new(cb).build().expect("b");
        loop {
            let a = sa.step().expect("a step");
            let b = sb.step().expect("b step");
            if a == SessionStatus::Done && b == SessionStatus::Done {
                break;
            }
        }
        (sa.large_alloc_events(), sb.large_alloc_events())
    };
    // The first evaluation grows the workspace from empty, so the count is
    // nonzero — and identical to the solo run: nothing from tenant B's
    // (different-sized) workspaces bled into A's counter.
    assert!(solo > 0, "expected workspace growth events");
    assert_eq!(
        multi_a, solo,
        "tenant A's alloc count changed under multiplexing"
    );
    assert!(multi_b > 0);
}

/// A session checkpointing into a shared in-memory store, killed mid-run
/// and resumed by a second session over the same store, lands bitwise on
/// the uninterrupted endpoint — the fs-backed kill/resume guarantee, now
/// backend-agnostic.
#[test]
fn in_memory_checkpointed_session_resumes_bitwise() {
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 12);
    config.seed = 41;
    let reference = run_simulation(&config).expect("uninterrupted");

    let store = CheckpointStore::in_memory(3);
    {
        let mut first = SessionBuilder::new(config)
            .checkpoint_store(store.clone(), 2)
            .build()
            .expect("first session");
        // Kill after 7 steps: the newest usable snapshot is at step 6.
        assert_eq!(
            first.run_until(7).expect("partial run"),
            SessionStatus::Running
        );
    }
    let resumed = SessionBuilder::new(config)
        .checkpoint_store(store, 2)
        .resume()
        .build()
        .expect("resume session")
        .run()
        .expect("resumed run");
    assert_endpoints_bitwise(&resumed, &reference);
}

// ---------------------------------------------------------------------------
// In-memory SnapshotBackend round-trips under the TBCK corruption cases.
// ---------------------------------------------------------------------------

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        (1usize..6, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        (-1e9..1e9, -1e9..1e9, -1e9..1e9, -1e9..1e9),
        (0u64..1_000_000, -1e9..1e9, 0.0..1e9),
        0u64..2,
    )
        .prop_map(
            |(
                (n_atoms, step, seed, rng_state),
                (time_fs, potential, conserved, drift),
                (sn, mean, m2),
                with_thermo,
            )| {
                let n = 3 * n_atoms;
                Snapshot {
                    step,
                    time_fs,
                    seed,
                    config_fingerprint: seed.rotate_left(17) ^ 0xA5A5,
                    rng_state,
                    potential_energy: potential,
                    conserved_ref: conserved,
                    drift,
                    recorded_steps: step / 2,
                    positions: (0..n).map(|i| time_fs + i as f64).collect(),
                    velocities: (0..n).map(|i| drift * i as f64).collect(),
                    forces: (0..n).map(|i| conserved - i as f64).collect(),
                    temp_stats: StatsSnapshot {
                        n: sn,
                        mean,
                        m2,
                        min: mean - 1.0,
                        max: mean + 1.0,
                    },
                    thermostat: (with_thermo == 1).then_some(ThermostatSnapshot {
                        xi: mean,
                        eta: m2,
                        target_k: 300.0,
                        q: 1.0,
                    }),
                    ramp: None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// put → get through the in-memory backend is byte-identical, and the
    /// recovered snapshot re-encodes to the stored bytes.
    #[test]
    fn memory_backend_roundtrips_snapshots(snap in arb_snapshot()) {
        let backend = MemoryBackend::new();
        let bytes = snap.encode();
        backend.put("ckpt_0000000001.tbck", &bytes).expect("put");
        let back = backend.get("ckpt_0000000001.tbck").expect("get");
        prop_assert_eq!(&back, &bytes);
        let decoded = Snapshot::decode(&back).expect("decode");
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// A single flipped bit in a stored blob is rejected by the decoder —
    /// the memory backend must not mask TBCK's integrity checking.
    #[test]
    fn memory_backend_surfaces_bit_flips(
        snap in arb_snapshot(),
        pos_seed in 0u64..u64::MAX,
        bit in 0usize..8,
    ) {
        let mut bytes = snap.encode();
        let idx = (pos_seed as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        let backend = MemoryBackend::new();
        backend.put("corrupt.tbck", &bytes).expect("put");
        prop_assert!(Snapshot::decode(&backend.get("corrupt.tbck").unwrap()).is_err());
    }

    /// Truncated blobs (torn writes have no fs analogue in memory, but a
    /// partial buffer can still arrive) never decode and never panic.
    #[test]
    fn memory_backend_surfaces_truncation(snap in arb_snapshot(), keep in 0usize..64) {
        let bytes = snap.encode();
        let cut = keep % bytes.len().max(1);
        let backend = MemoryBackend::new();
        backend.put("torn.tbck", &bytes[..cut]).expect("put");
        let back = backend.get("torn.tbck").expect("get");
        prop_assert_eq!(back.len(), cut);
        prop_assert!(Snapshot::decode(&back).is_err());
    }
}
