//! Property-based integration tests on physical invariants of the full
//! stack: translation/rotation symmetry of energies, Newton's third law,
//! and engine equivalence under random perturbations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species, TbCalculator, Vec3};

fn perturbed_cell(seed: u64, amplitude: f64) -> tbmd::Structure {
    let mut s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    s.perturb(&mut rng, amplitude);
    s
}

fn free_cluster(seed: u64) -> tbmd::Structure {
    // A 5-atom Si cluster: tetrahedron + centre, perturbed.
    let d = 2.35;
    let mut s = tbmd::Structure::homogeneous(
        Species::Silicon,
        vec![
            Vec3::ZERO,
            Vec3::new(d, d, 0.0) / 3.0f64.sqrt(),
            Vec3::new(d, 0.0, d) / 3.0f64.sqrt(),
            Vec3::new(0.0, d, d) / 3.0f64.sqrt(),
            Vec3::new(d, d, d) * (2.0 / 3.0f64.sqrt() / 2.0),
        ],
        tbmd::Cell::cluster(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    s.perturb(&mut rng, 0.1);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn energy_invariant_under_translation(seed in 0u64..50, dx in -2.0f64..2.0, dy in -2.0f64..2.0, dz in -2.0f64..2.0) {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = free_cluster(seed);
        let e0 = calc.energy_only(&s).unwrap();
        let mut t = s.clone();
        for r in t.positions_mut() {
            *r += Vec3::new(dx, dy, dz);
        }
        let e1 = calc.energy_only(&t).unwrap();
        prop_assert!((e0 - e1).abs() < 1e-8, "translation changed energy: {} vs {}", e0, e1);
    }

    #[test]
    fn energy_invariant_under_rotation(seed in 0u64..50, angle in 0.0f64..std::f64::consts::TAU) {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = free_cluster(seed);
        let e0 = calc.energy_only(&s).unwrap();
        let (c, sn) = (angle.cos(), angle.sin());
        let mut t = s.clone();
        for r in t.positions_mut() {
            *r = Vec3::new(c * r.x - sn * r.y, sn * r.x + c * r.y, r.z);
        }
        let e1 = calc.energy_only(&t).unwrap();
        prop_assert!((e0 - e1).abs() < 1e-7, "rotation changed energy: {} vs {}", e0, e1);
    }

    #[test]
    fn forces_sum_to_zero(seed in 0u64..50, amplitude in 0.0f64..0.15) {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = perturbed_cell(seed, amplitude);
        let eval = calc.evaluate(&s).unwrap();
        let net: Vec3 = eval.forces.iter().copied().sum();
        prop_assert!(net.max_abs() < 1e-7, "net force {:?}", net);
    }

    #[test]
    fn torque_free_cluster(seed in 0u64..30) {
        // Free clusters must also have zero net torque (rotational
        // invariance of the potential).
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = free_cluster(seed);
        let eval = calc.evaluate(&s).unwrap();
        let torque: Vec3 = s
            .positions()
            .iter()
            .zip(&eval.forces)
            .map(|(&r, &f)| r.cross(f))
            .sum();
        prop_assert!(torque.max_abs() < 1e-7, "net torque {:?}", torque);
    }

    #[test]
    fn distributed_engine_matches_serial_on_random_cells(seed in 0u64..20, ranks in 1usize..5) {
        let model = silicon_gsp();
        let serial = TbCalculator::new(&model);
        let dist = DistributedTb::new(&model, ranks);
        let s = perturbed_cell(seed + 1000, 0.1);
        let a = serial.evaluate(&s).unwrap();
        let b = dist.evaluate(&s).unwrap();
        prop_assert!((a.energy - b.energy).abs() < 1e-6);
        for (fa, fb) in a.forces.iter().zip(&b.forces) {
            prop_assert!((*fa - *fb).max_abs() < 1e-5);
        }
    }
}
