//! Vendored marker-trait subset of [serde](https://crates.io/crates/serde).
//!
//! Nothing in this workspace actually serializes data — types carry the
//! derives only as forward-looking API surface. With no network access to
//! fetch the real crate, `Serialize`/`Deserialize` are blanket-implemented
//! marker traits and the re-exported derives (from the vendored
//! `serde_derive`) expand to nothing. Any bound of the form `T: Serialize`
//! is therefore always satisfied.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
