//! Vendored subset of [parking_lot](https://crates.io/crates/parking_lot)
//! backed by `std::sync` primitives (offline build).
//!
//! Matches parking_lot's ergonomics where they differ from std: `lock()` and
//! `read()`/`write()` return guards directly (no `Result`), and a poisoned
//! std lock is transparently recovered — parking_lot has no poisoning, so
//! propagating a panic-poison here would be a behavioral difference, not a
//! safety issue.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
