//! Vendored subset of [crossbeam](https://crates.io/crates/crossbeam)
//! backed by `std::sync` and `std::thread::scope` (offline build).
//!
//! Two pieces are provided, matching the workspace's virtual message-passing
//! machine (`tbmd-parallel::vmp`):
//!
//! - [`channel::unbounded`] — an MPSC-style unbounded channel with cloneable
//!   senders, blocking `recv`, and crossbeam's disconnect semantics (`recv`
//!   errors once every sender is dropped and the queue is drained; `send`
//!   errors once the receiver is gone).
//! - [`thread::scope`] — scoped spawning where the closure receives the scope
//!   handle as an argument (crossbeam's 0.8 signature, hence the `|_|` at
//!   call sites), returning `Result` like the original.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the rejected value like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// passed with the queue still empty, or the channel disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel lock");
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                // Wake a receiver blocked on an empty queue so it can report
                // disconnection instead of sleeping forever.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel wait");
            }
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `timeout` elapses (measured from the call, like crossbeam's).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .expect("channel wait");
                inner = guard;
            }
        }

        /// Non-blocking receive; `None` if the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .inner
                .lock()
                .expect("channel lock")
                .queue
                .pop_front()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .inner
                .lock()
                .expect("channel lock")
                .receiver_alive = false;
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Scope handle passed both to the `scope` closure and to each spawned
    /// closure (crossbeam 0.8 lets children spawn grandchildren).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. `Err` carries the payload if `f` (or an unjoined child,
    /// which std re-raises here) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use super::thread;

    #[test]
    fn channel_roundtrip_and_clone() {
        let (tx, rx) = unbounded::<i32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        thread::scope(|scope| {
            scope.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv(), Ok(42));
        })
        .unwrap();
    }

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u32; 8];
        let r = thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(scope.spawn(move |_| {
                    *slot = i as u32 + 1;
                    i
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(r, 28);
        assert_eq!(data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
