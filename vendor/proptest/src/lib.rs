//! Vendored, API-compatible subset of [proptest](https://crates.io/crates/proptest).
//!
//! The build container has no network access, so the workspace vendors the
//! surface its property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, strategies for numeric ranges and tuples,
//! [`collection::vec`], [`ProptestConfig`], and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for an offline stub:
//!
//! - **No shrinking.** A failing case panics with the values visible in the
//!   assertion message; there is no minimization pass.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of the
//!   test's name, so runs are reproducible without a persistence file.
//! - **`prop_assume!` counts the case.** A rejected case is skipped rather
//!   than retried, so a test runs *up to* `cases` effective cases. The
//!   in-tree assumptions reject only rare degenerate inputs.

/// Number of cases `proptest!` runs per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's name so every test gets a distinct,
        /// reproducible stream (FNV-1a hash of the name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1) with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in [0, bound) (bound > 0).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one `proptest!` parameter.
///
/// The associated-type form (`impl Strategy<Value = T>`) matches real
/// proptest, so strategy-returning helper functions port unchanged.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator: the generated value selects a second strategy.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy (`Just(v)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G),
);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — a vector whose length is drawn
    /// from `len` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run each test body over `cases` generated inputs. Failures panic
/// immediately (no shrinking); `prop_assume!` skips the current case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            @impl ($cfg)
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            @impl ($crate::ProptestConfig::default())
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
    (
        @impl ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ($($pat,)+) = (
                        $( $crate::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Assert within a `proptest!` body (panics; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skip the current case when a precondition fails. Expands to `continue`
/// on the case loop, so it must appear at the top level of the test body
/// (true of every in-tree use).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let assumption_holds: bool = $cond;
        if !assumption_holds {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
    // Lets `prop::collection::vec(...)` resolve after a glob import, as with
    // the real crate's prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_summing_matrix(max_n: usize) -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1..=max_n)
            .prop_flat_map(|n| prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -2.5f64..7.5, k in -5i32..5, n in 1usize..=9) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((-5..5).contains(&k));
            prop_assert!((1..=9).contains(&n));
        }

        #[test]
        fn tuple_and_vec_strategies(dims in (1usize..4, 1usize..4), xs in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(dims.0 >= 1 && dims.1 < 4);
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_couples_size_and_payload(nv in pair_summing_matrix(6)) {
            let (n, v) = nv;
            prop_assert_eq!(v.len(), n * n);
        }

        #[test]
        fn assume_skips_degenerate_cases(x in -1.0f64..1.0) {
            prop_assume!(x.abs() > 1e-3);
            prop_assert!(x != 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("stream");
        let mut b = crate::test_runner::TestRng::from_name("stream");
        let s = 0.0f64..1.0;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
