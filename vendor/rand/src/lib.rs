//! Vendored, API-compatible subset of [rand 0.8](https://crates.io/crates/rand).
//!
//! The build container has no network access, so the workspace vendors the
//! small surface it uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over float/integer ranges. The generator is SplitMix64 —
//! statistically solid for test geometry perturbations and Maxwell–Boltzmann
//! sampling (the only consumers), though not the ChaCha stream of the real
//! `StdRng`, so exact streams differ from upstream. Nothing in this
//! workspace asserts on specific random values, only on properties.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in [0, 1) with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform sample of the output type (f64 in [0,1), full-range integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly over their natural domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeros fixed region by stirring the seed once.
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl StdRng {
        /// The full internal state (checkpointable: `from_state(state())`
        /// continues the exact stream).
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild a generator mid-stream from a captured [`state`].
        ///
        /// [`state`]: StdRng::state
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;

    #[test]
    fn state_roundtrip_continues_stream() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: f64 = a.gen_range(0.0..1.0);
        let xb: f64 = b.gen_range(0.0..1.0);
        let xc: f64 = c.gen_range(0.0..1.0);
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.gen_range(-2i32..3);
            assert!((-2..3).contains(&k));
            seen[(k + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
