//! Vendored, API-compatible subset of [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no network access, so the workspace vendors the
//! slice/range parallel-iterator surface it actually uses. Parallelism is
//! real: work is partitioned into contiguous chunks and executed on scoped OS
//! threads (`std::thread::scope`), one spawn per call site. There is no
//! work-stealing pool; for the coarse-grained loops in this workspace
//! (per-atom maps, matrix row bands) static partitioning is within noise of
//! pool-based scheduling, and determinism of the *output ordering* is
//! preserved exactly: element `i` of a parallel map always lands at index `i`.
//!
//! Supported patterns:
//! - `slice.par_iter().map(f).collect::<Vec<_>>()` (+ `.sum()`)
//! - `slice.par_iter_mut().for_each(f)`
//! - `slice.par_chunks_mut(k).enumerate().for_each(f)`
//! - `(a..b).into_par_iter().map(f).collect()` / `.reduce(id, op)`

/// Number of worker threads for one parallel call.
fn thread_count(work_items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(work_items)
        .max(1)
}

/// Ordered parallel map over `0..len`: element `i` of the result is `f(i)`.
fn par_map_indexed<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let nt = thread_count(len);
    if nt <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(nt);
    let fref = &f;
    let parts: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nt)
            .map(|t| {
                scope.spawn(move || {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(len);
                    (start..end).map(fref).collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for mut part in parts {
        out.append(&mut part);
    }
    out
}

// ---------------------------------------------------------------------------
// Entry-point traits (the `prelude` surface).
// ---------------------------------------------------------------------------

/// `par_iter` / `par_iter_mut` / `par_chunks_mut` on slices (and anything
/// that derefs to a slice, e.g. `Vec`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// `into_par_iter` on integer ranges.
pub trait IntoParallelIterator {
    type ParIter;
    fn into_par_iter(self) -> Self::ParIter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type ParIter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

// ---------------------------------------------------------------------------
// Shared-reference slice iterator.
// ---------------------------------------------------------------------------

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParIterMap {
            slice: self.slice,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_indexed(self.slice.len(), |i| f(&self.slice[i]));
    }
}

pub struct ParIterMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParIterMap<'a, T, F> {
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromIterator<U>,
    {
        let f = &self.f;
        par_map_indexed(self.slice.len(), |i| f(&self.slice[i]))
            .into_iter()
            .collect()
    }

    pub fn sum<U>(self) -> U
    where
        U: Send + std::iter::Sum<U>,
        F: Fn(&'a T) -> U + Sync,
    {
        self.collect::<U, Vec<U>>().into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Mutable slice iterator.
// ---------------------------------------------------------------------------

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.slice.len();
        let nt = thread_count(len);
        if nt <= 1 {
            self.slice.iter_mut().for_each(f);
            return;
        }
        let chunk = len.div_ceil(nt);
        let fref = &f;
        std::thread::scope(|scope| {
            for part in self.slice.chunks_mut(chunk) {
                scope.spawn(move || part.iter_mut().for_each(fref));
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Mutable chunk iterator (matrix row bands).
// ---------------------------------------------------------------------------

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let mut chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        let total = chunks.len();
        let nt = thread_count(total);
        if nt <= 1 {
            for (i, chunk) in chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let per = total.div_ceil(nt);
        let fref = &f;
        std::thread::scope(|scope| {
            for (group_idx, group) in chunks.chunks_mut(per).enumerate() {
                scope.spawn(move || {
                    for (offset, chunk) in group.iter_mut().enumerate() {
                        fref((group_idx * per + offset, &mut **chunk));
                    }
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Range iterator.
// ---------------------------------------------------------------------------

pub struct RangeParIter {
    range: std::ops::Range<usize>,
}

impl RangeParIter {
    pub fn map<U, F>(self, f: F) -> RangeParMap<F>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        RangeParMap {
            range: self.range,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        par_map_indexed(self.range.len(), |i| f(start + i));
    }
}

pub struct RangeParMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<F> RangeParMap<F> {
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
        C: FromIterator<U>,
    {
        let start = self.range.start;
        let f = &self.f;
        par_map_indexed(self.range.len(), |i| f(start + i))
            .into_iter()
            .collect()
    }

    /// Rayon-compatible reduce: folds each worker's portion from `identity()`
    /// and combines partials left to right.
    pub fn reduce<U, ID, OP>(self, identity: ID, op: OP) -> U
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        let items: Vec<U> = self.collect();
        items.into_iter().fold(identity(), &op)
    }

    pub fn sum<U>(self) -> U
    where
        U: Send + std::iter::Sum<U>,
        F: Fn(usize) -> U + Sync,
    {
        self.collect::<U, Vec<U>>().into_iter().sum()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Number of threads a parallel call may use (compatibility shim).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_and_reduce() {
        let squares: Vec<u64> = (0..257usize)
            .into_par_iter()
            .map(|i| (i * i) as u64)
            .collect();
        assert_eq!(squares[256], 65536);
        let total = (0..100usize)
            .into_par_iter()
            .map(|i| vec![i as f64])
            .reduce(
                || vec![0.0],
                |mut a, b| {
                    a[0] += b[0];
                    a
                },
            );
        assert_eq!(total[0], 4950.0);
    }

    #[test]
    fn chunks_mut_enumerate() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[15], 1);
        assert_eq!(data[102], 10);
    }

    #[test]
    fn iter_mut_for_each() {
        let mut data: Vec<i64> = (0..500).collect();
        data.par_iter_mut().for_each(|x| *x = -*x);
        assert_eq!(data[499], -499);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<i32> = vec![];
        let out: Vec<i32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out2: Vec<i32> = (0..0usize).into_par_iter().map(|_| 1).collect();
        assert!(out2.is_empty());
    }
}
