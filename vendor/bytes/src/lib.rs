//! Vendored placeholder for [bytes](https://crates.io/crates/bytes).
//!
//! The workspace declares `bytes` for future wire-format work but has no
//! call sites yet; with no network access this empty shim satisfies the
//! dependency graph. `Bytes` is an owned byte buffer with the subset of the
//! real API a first consumer would reach for.

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
