//! Vendored no-op `#[derive(Serialize, Deserialize)]`.
//!
//! The workspace tags types with serde derives for downstream consumers but
//! never serializes anything in-tree, and the build container has no network
//! access to fetch the real `serde_derive` (which pulls `syn`/`quote`). These
//! derives accept the same attribute grammar (`#[serde(...)]` is registered so
//! field attributes don't error) and expand to nothing: the marker traits in
//! the vendored `serde` are blanket-implemented, so an empty expansion is a
//! valid implementation.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
