//! Vendored minimal harness with a [criterion](https://crates.io/crates/criterion)-
//! compatible API (offline build).
//!
//! Behavior mirrors criterion's two modes:
//!
//! - `cargo bench` passes `--bench`: each routine is warmed up once and then
//!   timed over a small adaptive number of iterations; mean wall time per
//!   iteration is printed to stdout.
//! - `cargo test` runs the same binary *without* `--bench`: every routine
//!   executes exactly once as a smoke test, so benches stay covered by the
//!   test suite without inflating its runtime.
//!
//! No statistics, plots, or baselines — the report binaries in `tbmd-bench`
//! own the paper-style measurement tables; these benches exist for quick
//! relative timing and compile/run coverage.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    mode: Mode,
    /// Mean wall time of one routine iteration, recorded by `iter`.
    last_mean: Option<Duration>,
    sample_size: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Measure,
    /// `cargo test`: run once, report nothing.
    Smoke,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warmup, then time `sample_size` iterations in one block.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.sample_size as u32);
    }
}

/// Identifier `function_name/parameter` as in criterion.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.run(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, full_id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            mode: self.criterion.mode,
            last_mean: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        if self.criterion.mode == Mode::Measure {
            match b.last_mean {
                Some(mean) => println!("{full_id:<48} {:>12.3?}/iter", mean),
                None => println!("{full_id:<48} (no measurement)"),
            }
        }
    }
}

/// Harness entry point; construct via `Default` (done by `criterion_main!`).
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench` under `cargo bench` and
        // without it under `cargo test`.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        let mut f = f;
        let mut run = |b: &mut Bencher| f(b);
        group.run(id, &mut run);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut count = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut count = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
                b.iter(|| count += x)
            });
            g.finish();
        }
        // 1 warmup + 5 samples, each adding 3.
        assert_eq!(count, 18);
    }
}
