//! Dense row-major matrices.
//!
//! This is the storage type for tight-binding Hamiltonians, overlap matrices,
//! eigenvector sets and density matrices. It is intentionally small: the
//! workspace only needs real square/rectangular `f64` matrices, symmetric
//! eigensolvers, Cholesky and matrix products. Products are cache-blocked and
//! optionally parallelized with Rayon (see [`Matrix::par_matmul`]).

use crate::kernels::{self, KERNEL_MIN_DIM};
use rayon::prelude::*;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Cache block edge used by the blocked matrix product. 64×64 `f64` blocks
/// are 32 KiB, comfortably inside a typical L1 data cache for three operands.
const MATMUL_BLOCK: usize = 64;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length does not match dimensions"
        );
        Matrix { rows, cols, data }
    }

    /// Build a diagonal matrix from a slice of diagonal entries.
    pub fn from_diagonal(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows);
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * x` (eight-lane [`kernels::dot`] per
    /// row).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        tbmd_trace::add(
            tbmd_trace::Counter::KernelFlops,
            2 * (self.rows * self.cols) as u64,
        );
        self.rows_iter().map(|row| kernels::dot(row, x)).collect()
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, row) in self.rows_iter().enumerate() {
            let xi = x[i];
            for (yj, &a) in y.iter_mut().zip(row) {
                *yj += a * xi;
            }
        }
        y
    }

    /// Cache-blocked serial matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out, false);
        out
    }

    /// Cache-blocked matrix product with row-parallelism over Rayon.
    ///
    /// Produces bitwise-identical results to [`Matrix::matmul`]: each output
    /// row is accumulated by exactly one task in the same order as the serial
    /// kernel.
    pub fn par_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out, true);
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (n, m, k) = (self.cols, other.cols, self.rows);
        let mut out = Matrix::zeros(n, m);
        for p in 0..k {
            let arow = self.row(p);
            let brow = other.row(p);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Largest absolute asymmetry `|A_ij - A_ji|`.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square());
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Force exact symmetry by averaging `A` and `Aᵀ` in place.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// In-place scale by a scalar.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += s * other` (AXPY on the flat data).
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Symmetric rank-k product `self · selfᵀ` (SYRK).
    ///
    /// Only the lower triangle is computed — each entry is a dot product of
    /// two contiguous rows, accumulated over the inner index in ascending
    /// order exactly like the blocked [`Matrix::matmul`] — and then mirrored,
    /// so the result matches `self.matmul(&self.transpose())` to round-off at
    /// half the flops, with no materialized transpose.
    pub fn syrk(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.rows);
        syrk_into(self, &mut out, false);
        out
    }

    /// [`Matrix::syrk`] with row-parallelism over Rayon.
    ///
    /// Bitwise identical to the serial variant: each output entry is one
    /// independent row-dot, so the partition cannot change any summation
    /// order.
    pub fn par_syrk(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.rows);
        syrk_into(self, &mut out, true);
        out
    }

    /// SYRK into a caller-owned output, reusing its allocation when the
    /// capacity suffices (the workspace path: zero large allocations after
    /// warmup). Returns `true` if `out` had to grow its allocation.
    pub fn syrk_reuse(&self, out: &mut Matrix, parallel: bool) -> bool {
        let grew = out.resize_zeroed(self.rows, self.rows);
        syrk_into(self, out, parallel);
        grew
    }

    /// Swap columns `i` and `j` in place.
    pub fn swap_cols(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + i, r * self.cols + j);
        }
    }

    /// Reshape to `rows × cols` and zero-fill, reusing the existing
    /// allocation when possible (no new allocation unless the element count
    /// grows beyond the current capacity). Returns `true` if the backing
    /// storage had to grow — the allocation counter the evaluation
    /// workspaces expose.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) -> bool {
        let cap = self.data.capacity();
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.data.capacity() != cap
    }

    /// Quadratic form `xᵀ A y`.
    pub fn quadratic_form(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        self.rows_iter()
            .zip(x)
            .map(|(row, &xi)| xi * kernels::dot(row, y))
            .sum()
    }
}

/// Blocked GEMM kernel shared by the serial and parallel entry points.
///
/// Splits the output into `MATMUL_BLOCK`-row bands; each band walks the inner
/// dimension in blocks so that the working set of `a`, `b` and `out` stays
/// cache-resident, and each row band runs the unrolled
/// [`kernels::gemm_row`] panel kernel. Every output element accumulates in
/// ascending inner-index order regardless of banding or threading, so the
/// serial and parallel entry points are bitwise identical. Products with
/// every dimension ≤ [`KERNEL_MIN_DIM`] skip the blocking machinery
/// entirely (same accumulation order, none of the panel overhead).
fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, parallel: bool) {
    // A width-1 compute-budget lease demotes the launch to the (bitwise
    // identical) serial band walk.
    let parallel = parallel && crate::budget::parallel_allowed();
    let (m, k, n) = (a.rows, a.cols, b.cols);
    tbmd_trace::add(tbmd_trace::Counter::KernelFlops, 2 * (m * k * n) as u64);
    if m.max(k).max(n) <= KERNEL_MIN_DIM {
        for i in 0..m {
            kernels::gemm_row(out.row_mut(i), a.row(i), &b.data, n, 0, k);
        }
        return;
    }
    let band = |(band_idx, out_band): (usize, &mut [f64])| {
        let i0 = band_idx * MATMUL_BLOCK;
        let i1 = (i0 + MATMUL_BLOCK).min(m);
        for p0 in (0..k).step_by(MATMUL_BLOCK) {
            let p1 = (p0 + MATMUL_BLOCK).min(k);
            for i in i0..i1 {
                let orow = &mut out_band[(i - i0) * n..(i - i0 + 1) * n];
                kernels::gemm_row(orow, a.row(i), &b.data, n, p0, p1);
            }
        }
    };
    if parallel {
        out.data
            .par_chunks_mut(MATMUL_BLOCK * n)
            .enumerate()
            .for_each(band);
    } else {
        out.data
            .chunks_mut(MATMUL_BLOCK * n)
            .enumerate()
            .for_each(band);
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the initial state of reusable buffers.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

/// SYRK kernel shared by the serial and parallel entry points: fill the
/// lower triangle with the [`kernels::syrk_row`] multi-dot row kernel,
/// then mirror. `out` must already be `a.rows × a.rows`. Each entry is one
/// independent row-dot with a fixed lane order, so the partition cannot
/// change any summation order and serial/parallel agree bitwise. Tiny
/// matrices (≤ [`KERNEL_MIN_DIM`]) run the same kernel serially — the
/// row kernel has no panel setup to amortize, only the thread launch is
/// skipped.
fn syrk_into(a: &Matrix, out: &mut Matrix, parallel: bool) {
    // Same budget demotion as `matmul_into`: scheduling only, not numerics.
    let parallel = parallel && crate::budget::parallel_allowed();
    let n = a.rows;
    let k = a.cols;
    debug_assert_eq!((out.rows, out.cols), (n, n));
    tbmd_trace::add(tbmd_trace::Counter::KernelFlops, (n * (n + 1) * k) as u64);
    let lower = |(i, orow): (usize, &mut [f64])| {
        kernels::syrk_row(orow, i, &a.data, k);
    };
    if parallel && n > KERNEL_MIN_DIM {
        out.data
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(lower);
    } else {
        out.data.chunks_mut(n.max(1)).enumerate().for_each(lower);
    }
    // Mirror the strict lower triangle onto the upper one.
    for i in 1..n {
        for j in 0..i {
            let v = out.data[i * n + j];
            out.data[j * n + i] = v;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, o: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols));
        let data = self.data.iter().zip(&o.data).map(|(a, b)| a + b).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, o: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols));
        let data = self.data.iter().zip(&o.data).map(|(a, b)| a - b).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, o: &Matrix) {
        self.axpy(1.0, o);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, o: &Matrix) {
        self.axpy(-1.0, o);
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, o: &Matrix) -> Matrix {
        self.matmul(o)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>11.4e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Simple deterministic LCG fill; avoids pulling rand into unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(17, 17, 3);
        let i = Matrix::identity(17);
        let left = i.matmul(&a);
        let right = a.matmul(&i);
        assert!((&left - &a).max_abs() < 1e-15);
        assert!((&right - &a).max_abs() < 1e-15);
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        // Sizes straddling the block edge exercise all remainder paths.
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 7, 3),
            (64, 64, 64),
            (65, 63, 70),
            (130, 17, 129),
        ] {
            let a = test_matrix(m, k, 11);
            let b = test_matrix(k, n, 23);
            let blocked = a.matmul(&b);
            let naive = naive_matmul(&a, &b);
            assert!(
                (&blocked - &naive).max_abs() < 1e-12,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn par_matmul_matches_serial() {
        let a = test_matrix(97, 83, 5);
        let b = test_matrix(83, 101, 7);
        let s = a.matmul(&b);
        let p = a.par_matmul(&b);
        assert_eq!(s, p, "parallel product must be bitwise identical");
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = test_matrix(40, 31, 13);
        let b = test_matrix(40, 29, 17);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!((&fast - &slow).max_abs() < 1e-12);
    }

    #[test]
    fn matvec_consistent_with_matmul() {
        let a = test_matrix(12, 9, 19);
        let x: Vec<f64> = (0..9).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let xm = Matrix::from_vec(9, 1, x.clone());
        let via_mm = a.matmul(&xm);
        let via_mv = a.matvec(&x);
        for i in 0..12 {
            assert!((via_mm[(i, 0)] - via_mv[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = test_matrix(12, 9, 19);
        let x: Vec<f64> = (0..12).map(|i| (i as f64) * 0.1 - 0.5).collect();
        let direct = a.matvec_t(&x);
        let via_t = a.transpose().matvec(&x);
        for (d, t) in direct.iter().zip(&via_t) {
            assert!((d - t).abs() < 1e-13);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = test_matrix(14, 6, 29);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn trace_and_diagonal() {
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(2, 2)], 3.0);
    }

    #[test]
    fn symmetrize_removes_asymmetry() {
        let mut a = test_matrix(10, 10, 31);
        assert!(a.asymmetry() > 0.0);
        a.symmetrize();
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn quadratic_form_matches_products() {
        let a = test_matrix(8, 8, 37);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.2).collect();
        let y: Vec<f64> = (0..8).map(|i| 1.0 - i as f64 * 0.1).collect();
        let q = a.quadratic_form(&x, &y);
        let ay = a.matvec(&y);
        let manual: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        assert!((q - manual).abs() < 1e-12);
    }

    #[test]
    fn col_roundtrip() {
        let mut a = Matrix::zeros(4, 3);
        a.set_col(1, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col(0), vec![0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn syrk_matches_matmul_with_transpose() {
        for &(n, k, seed) in &[
            (1usize, 1usize, 3u64),
            (7, 5, 47),
            (16, 16, 53),
            (33, 20, 59),
        ] {
            let a = test_matrix(n, k, seed);
            let reference = a.matmul(&a.transpose());
            let s = a.syrk();
            assert_eq!(s.rows(), n);
            assert_eq!(s.cols(), n);
            assert!(
                (&s - &reference).max_abs() < 1e-12,
                "n={n} k={k}: syrk deviates from matmul"
            );
            assert_eq!(s.asymmetry(), 0.0, "syrk output must be exactly symmetric");
        }
    }

    #[test]
    fn par_syrk_matches_serial() {
        let a = test_matrix(70, 24, 61);
        assert_eq!(a.par_syrk(), a.syrk());
    }

    #[test]
    fn syrk_reuse_reshapes_and_matches() {
        let mut out = Matrix::zeros(3, 3);
        let big = test_matrix(25, 10, 67);
        big.syrk_reuse(&mut out, false);
        assert_eq!(out, big.syrk());
        // Shrinking back must not leave stale entries behind.
        let small = test_matrix(4, 6, 71);
        small.syrk_reuse(&mut out, true);
        assert_eq!(out, small.syrk());
    }

    #[test]
    fn resize_zeroed_reuses_capacity() {
        let mut m = Matrix::zeros(20, 20);
        let cap = m.data.capacity();
        assert!(!m.resize_zeroed(10, 15), "shrink must not reallocate");
        assert_eq!((m.rows(), m.cols()), (10, 15));
        assert_eq!(m.data.capacity(), cap);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(m.resize_zeroed(40, 40), "growth must be reported");
    }

    #[test]
    fn axpy_and_ops() {
        let a = test_matrix(6, 6, 41);
        let b = test_matrix(6, 6, 43);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        for i in 0..6 {
            for j in 0..6 {
                assert!((c[(i, j)] - (a[(i, j)] + 2.0 * b[(i, j)])).abs() < 1e-14);
            }
        }
        let mut d = a.clone();
        d += &b;
        d -= &b;
        assert!((&d - &a).max_abs() < 1e-14);
    }
}
