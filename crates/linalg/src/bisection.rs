//! Sturm-sequence bisection for selected eigenvalues of a symmetric
//! tridiagonal matrix.
//!
//! TBMD only needs the lowest `N_electrons/2` eigenvalues for the band
//! energy; computing the full spectrum is wasted work. The era's codes
//! used EISPACK's `BISECT`: the Sturm count
//!
//! ```text
//! σ(x) = #{ eigenvalues < x }
//! ```
//!
//! follows from the signs of the recurrence `q_1 = d_1 − x`,
//! `q_i = d_i − x − e_i²/q_{i−1}`, and bisection on σ isolates any
//! eigenvalue to machine precision in ~60 iterations, independent of the
//! others. Combined with [`crate::eigh::tridiagonalize`] this yields
//! `eigvalsh_partial`, an O(n³) → O(n³/3 + k·n) eigenvalue path (the
//! reduction still dominates, but the QL iteration and its eigenvector
//! updates are skipped entirely).

use crate::eigh::{tridiagonalize, EigError};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Number of eigenvalues of the tridiagonal matrix `(d, e)` strictly below
/// `x` (Sturm count). `e[0]` is unused; `e[i]` couples rows `i−1` and `i`,
/// matching the output convention of [`tridiagonalize`].
pub fn sturm_count(d: &[f64], e: &[f64], x: f64) -> usize {
    let n = d.len();
    if n == 0 {
        return 0;
    }
    let mut count = 0usize;
    let mut q = d[0] - x;
    if q < 0.0 {
        count += 1;
    }
    for i in 1..n {
        let ei2 = e[i] * e[i];
        // Safeguarded division: if q underflows to ~0 the standard trick
        // replaces it with a tiny number of the same sign.
        let denom = if q.abs() < f64::MIN_POSITIVE.sqrt() {
            f64::MIN_POSITIVE
                .sqrt()
                .copysign(if q < 0.0 { -1.0 } else { 1.0 })
        } else {
            q
        };
        q = d[i] - x - ei2 / denom;
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// Gershgorin bounds of the tridiagonal matrix.
fn tridiagonal_bounds(d: &[f64], e: &[f64]) -> (f64, f64) {
    let n = d.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = if i > 0 { e[i].abs() } else { 0.0 } + if i + 1 < n { e[i + 1].abs() } else { 0.0 };
        lo = lo.min(d[i] - r);
        hi = hi.max(d[i] + r);
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Bisection for the `k`-th eigenvalue inside pre-widened bounds — the
/// kernel shared by the single-index and sliced entry points.
fn kth_eigenvalue_bounded(d: &[f64], e: &[f64], k: usize, mut lo: f64, mut hi: f64) -> f64 {
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if sturm_count(d, e, mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * (lo.abs() + hi.abs() + 1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Shift lanes of the multi-shift Sturm pass: the recurrence is strictly
/// sequential in the matrix index but embarrassingly parallel across
/// shifts, so evaluating 8 shifts per sweep turns the latency-bound
/// scalar division chain into one vector division per element.
const STURM_LANES: usize = 8;

/// Sturm counts for `STURM_LANES` shifts in one pass over `(d, e)`. Each
/// lane performs exactly the arithmetic of [`sturm_count`] on its own
/// shift (branchless select for the underflow safeguard, same operand
/// order), so per-lane results never depend on what the other lanes hold.
fn sturm_count_multi(d: &[f64], e: &[f64], x: &[f64; STURM_LANES]) -> [usize; STURM_LANES] {
    let n = d.len();
    let mut counts = [0usize; STURM_LANES];
    if n == 0 {
        return counts;
    }
    let tiny = f64::MIN_POSITIVE.sqrt();
    let mut q = [0.0f64; STURM_LANES];
    for l in 0..STURM_LANES {
        q[l] = d[0] - x[l];
        counts[l] += (q[l] < 0.0) as usize;
    }
    for i in 1..n {
        let di = d[i];
        let ei2 = e[i] * e[i];
        for l in 0..STURM_LANES {
            let sign = if q[l] < 0.0 { -1.0 } else { 1.0 };
            let denom = if q[l].abs() < tiny { tiny * sign } else { q[l] };
            q[l] = di - x[l] - ei2 / denom;
            counts[l] += (q[l] < 0.0) as usize;
        }
    }
    counts
}

/// Batched bisection: eigenvalue indices `start + i` for
/// `i < out.len()`, all inside the shared pre-widened bracket, resolved
/// `STURM_LANES` at a time. Converged lanes are frozen (their brackets
/// stop moving), so every index follows exactly the midpoint sequence an
/// independent scalar bisection would — the result is bitwise
/// independent of how indices are grouped into lanes, which is what lets
/// disjoint distributed ranges concatenate to the full-spectrum answer.
fn kth_eigenvalues_batched(
    d: &[f64],
    e: &[f64],
    start: usize,
    lo0: f64,
    hi0: f64,
    out: &mut [f64],
) {
    for (c, chunk) in out.chunks_mut(STURM_LANES).enumerate() {
        let m = chunk.len();
        let mut lo = [lo0; STURM_LANES];
        let mut hi = [hi0; STURM_LANES];
        let mut done = [false; STURM_LANES];
        let mut mid = [lo0; STURM_LANES];
        for _ in 0..120 {
            let mut all_done = true;
            for l in 0..m {
                mid[l] = 0.5 * (lo[l] + hi[l]);
                all_done &= done[l];
            }
            if all_done {
                break;
            }
            let counts = sturm_count_multi(d, e, &mid);
            for l in 0..m {
                if done[l] {
                    continue;
                }
                let k = start + c * STURM_LANES + l;
                if counts[l] <= k {
                    lo[l] = mid[l];
                } else {
                    hi[l] = mid[l];
                }
                if hi[l] - lo[l] <= f64::EPSILON * (lo[l].abs() + hi[l].abs() + 1.0) {
                    done[l] = true;
                }
            }
        }
        for l in 0..m {
            chunk[l] = 0.5 * (lo[l] + hi[l]);
        }
    }
}

/// Gershgorin bounds widened by a safety margin so every eigenvalue lies
/// strictly inside the bisection bracket.
fn widened_bounds(d: &[f64], e: &[f64]) -> (f64, f64) {
    let (mut lo, mut hi) = tridiagonal_bounds(d, e);
    lo -= 1e-8 + 1e-12 * lo.abs();
    hi += 1e-8 + 1e-12 * hi.abs();
    (lo, hi)
}

/// The `k`-th (0-based, ascending) eigenvalue of the tridiagonal matrix,
/// found by bisection on the Sturm count.
pub fn tridiagonal_kth_eigenvalue(d: &[f64], e: &[f64], k: usize) -> f64 {
    let n = d.len();
    assert!(k < n, "eigenvalue index {k} out of range for size {n}");
    let (lo, hi) = widened_bounds(d, e);
    kth_eigenvalue_bounded(d, e, k, lo, hi)
}

/// Spectrum slicing: the lowest `k` eigenvalues (ascending) of the
/// tridiagonal matrix written into `out`, reusing its allocation.
///
/// The Gershgorin bracket is computed once and every index is isolated by an
/// independent Sturm bisection, so the slice parallelizes over Rayon with no
/// cross-index communication — the spectrum-slicing stage of the two-stage
/// eigensolver (see [`crate::blocked`]). Each eigenvalue converges to
/// machine precision regardless of clustering (the Sturm count handles
/// multiplicities exactly).
///
/// # Panics
/// Panics if `k > d.len()`.
pub fn tridiagonal_lowest_eigenvalues_into(d: &[f64], e: &[f64], k: usize, out: &mut Vec<f64>) {
    let n = d.len();
    assert!(k <= n, "requested {k} eigenvalues of a size-{n} matrix");
    out.clear();
    out.resize(k, 0.0);
    if k == 0 {
        return;
    }
    let (lo, hi) = widened_bounds(d, e);
    out.par_chunks_mut(STURM_LANES)
        .enumerate()
        .for_each(|(c, chunk)| {
            kth_eigenvalues_batched(d, e, c * STURM_LANES, lo, hi, chunk);
        });
}

/// Rank-shardable spectrum slicing: eigenvalues with (0-based, ascending)
/// indices in `range` written into `out`, reusing its allocation.
///
/// Each index is isolated by an independent Sturm bisection inside the same
/// widened Gershgorin bracket, so disjoint ranges computed on different
/// message-passing ranks concatenate to exactly the vector a single
/// full-spectrum call would produce — the bisection is deterministic per
/// index and carries no cross-index state. This is the distributed-slicing
/// entry point: `partition_range(n, p, r)` hands each rank its index window
/// and the concatenated `allgather` of the per-rank outputs is ascending by
/// construction.
///
/// # Panics
/// Panics if `range.end > d.len()`.
pub fn tridiagonal_eigenvalues_range_into(
    d: &[f64],
    e: &[f64],
    range: std::ops::Range<usize>,
    out: &mut Vec<f64>,
) {
    let n = d.len();
    assert!(
        range.end <= n,
        "eigenvalue range {range:?} out of bounds for size {n}"
    );
    out.clear();
    out.resize(range.len(), 0.0);
    if range.is_empty() {
        return;
    }
    let (lo, hi) = widened_bounds(d, e);
    let start = range.start;
    out.par_chunks_mut(STURM_LANES)
        .enumerate()
        .for_each(|(c, chunk)| {
            kth_eigenvalues_batched(d, e, start + c * STURM_LANES, lo, hi, chunk);
        });
}

/// Snap an index `range` over the sorted eigenvalues `lambda` forward to
/// cluster boundaries: both endpoints move up to the first index whose gap
/// from its predecessor exceeds `ctol`, so no cluster of near-degenerate
/// eigenvalues straddles a range boundary.
///
/// Used to assign each degenerate cluster to exactly one owner rank in the
/// distributed two-stage solver — the per-cluster Gram–Schmidt and
/// Rayleigh–Ritz work of inverse iteration (see
/// [`crate::inverse_iteration`]) then stays local to that rank. Applying
/// this to every boundary of a `partition_range` tiling yields ranges that
/// still tile `0..lambda.len()` exactly (snapping is monotone and depends
/// only on the boundary index, not on the rank).
pub fn snap_range_to_clusters(
    lambda: &[f64],
    ctol: f64,
    range: std::ops::Range<usize>,
) -> std::ops::Range<usize> {
    let snap = |mut i: usize| {
        while i > 0 && i < lambda.len() && lambda[i] - lambda[i - 1] <= ctol {
            i += 1;
        }
        i.min(lambda.len())
    };
    let start = snap(range.start);
    let end = snap(range.end.max(start));
    start..end
}

/// The lowest `k` eigenvalues (ascending) of a symmetric matrix, via
/// Householder reduction + Sturm bisection — the "occupied states only"
/// path of the era's TBMD band-energy computations.
///
/// # Errors
/// [`EigError::NotSquare`] for rectangular input.
pub fn eigvalsh_partial(a: Matrix, k: usize) -> Result<Vec<f64>, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let k = k.min(n);
    if k == 0 || n == 0 {
        return Ok(vec![]);
    }
    let mut a = a;
    let (d, e) = tridiagonalize(&mut a, false);
    Ok((0..k)
        .map(|i| tridiagonal_kth_eigenvalue(&d, &e, i))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh::eigvalsh;

    fn symmetric_test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn sturm_count_on_diagonal_matrix() {
        let d = [1.0, 3.0, 5.0];
        let e = [0.0, 0.0, 0.0];
        assert_eq!(sturm_count(&d, &e, 0.0), 0);
        assert_eq!(sturm_count(&d, &e, 2.0), 1);
        assert_eq!(sturm_count(&d, &e, 4.0), 2);
        assert_eq!(sturm_count(&d, &e, 6.0), 3);
    }

    #[test]
    fn sturm_count_monotone() {
        let d = [0.5, -1.0, 2.0, 0.0, 1.5];
        let e = [0.0, 0.7, -0.3, 0.9, 0.2];
        let mut prev = 0;
        for k in -40..40 {
            let x = k as f64 * 0.25;
            let c = sturm_count(&d, &e, x);
            assert!(c >= prev, "Sturm count not monotone at x={x}");
            prev = c;
        }
        assert_eq!(prev, 5);
    }

    #[test]
    fn kth_eigenvalue_matches_ql_toeplitz() {
        // Tridiagonal Toeplitz: analytic eigenvalues 2 − 2cos(kπ/(n+1)).
        let n = 14;
        let d = vec![2.0; n];
        let mut e = vec![-1.0; n];
        e[0] = 0.0;
        for k in 0..n {
            let found = tridiagonal_kth_eigenvalue(&d, &e, k);
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((found - expect).abs() < 1e-10, "k={k}: {found} vs {expect}");
        }
    }

    #[test]
    fn partial_matches_full_spectrum() {
        for n in [3usize, 8, 20, 33] {
            let a = symmetric_test_matrix(n, 17 + n as u64);
            let full = eigvalsh(a.clone()).unwrap();
            let k = n / 2 + 1;
            let partial = eigvalsh_partial(a, k).unwrap();
            assert_eq!(partial.len(), k);
            for (i, (p, f)) in partial.iter().zip(&full).enumerate() {
                assert!((p - f).abs() < 1e-9, "n={n}, λ_{i}: {p} vs {f}");
            }
        }
    }

    #[test]
    fn partial_handles_degeneracies() {
        // diag(1,1,1,4) — triple eigenvalue.
        let a = Matrix::from_diagonal(&[4.0, 1.0, 1.0, 1.0]);
        let vals = eigvalsh_partial(a, 4).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
        assert!((vals[3] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn partial_edge_cases() {
        assert!(eigvalsh_partial(Matrix::zeros(0, 0), 3).unwrap().is_empty());
        assert!(eigvalsh_partial(Matrix::identity(4), 0).unwrap().is_empty());
        // k larger than n clamps.
        let vals = eigvalsh_partial(Matrix::from_diagonal(&[2.0, 1.0]), 10).unwrap();
        assert_eq!(vals.len(), 2);
        assert!(matches!(
            eigvalsh_partial(Matrix::zeros(2, 3), 1),
            Err(EigError::NotSquare { .. })
        ));
    }

    #[test]
    fn range_slices_concatenate_to_full_spectrum() {
        let n = 21;
        let a = symmetric_test_matrix(n, 7);
        let mut a = a;
        let (d, e) = tridiagonalize(&mut a, false);
        let mut full = Vec::new();
        tridiagonal_lowest_eigenvalues_into(&d, &e, n, &mut full);
        // Three disjoint ranges must reproduce the full call bitwise.
        let mut out = Vec::new();
        let mut concat = Vec::new();
        for r in [0..7usize, 7..15, 15..21] {
            tridiagonal_eigenvalues_range_into(&d, &e, r, &mut out);
            concat.extend_from_slice(&out);
        }
        assert_eq!(concat.len(), n);
        for (i, (c, f)) in concat.iter().zip(&full).enumerate() {
            assert!(c == f, "λ_{i}: sliced {c} != full {f}");
        }
        // Empty range.
        tridiagonal_eigenvalues_range_into(&d, &e, 4..4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn snapping_keeps_clusters_whole() {
        let lambda = [0.0, 1.0, 1.0 + 1e-9, 1.0 + 2e-9, 2.0, 3.0];
        let ctol = 1e-6;
        // Boundary inside the triple cluster at 1.0 moves past it.
        assert_eq!(snap_range_to_clusters(&lambda, ctol, 0..2), 0..4);
        assert_eq!(snap_range_to_clusters(&lambda, ctol, 2..5), 4..5);
        assert_eq!(snap_range_to_clusters(&lambda, ctol, 3..6), 4..6);
        // Boundaries on gaps are untouched.
        assert_eq!(snap_range_to_clusters(&lambda, ctol, 1..5), 1..5);
        // Snapped partition_range-style tiling still tiles exactly.
        let cuts: Vec<usize> = [0usize, 2, 4, 6]
            .iter()
            .map(|&c| snap_range_to_clusters(&lambda, ctol, c..lambda.len()).start)
            .collect();
        assert_eq!(cuts.last(), Some(&lambda.len()));
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn band_energy_from_partial_spectrum() {
        // The TBMD use-case: lowest n/2 states of a Hamiltonian-like matrix
        // summed with occupation 2 must match the full-solver answer.
        let n = 24;
        let a = symmetric_test_matrix(n, 99);
        let full = eigvalsh(a.clone()).unwrap();
        let occ = n / 2;
        let partial = eigvalsh_partial(a, occ).unwrap();
        let e_full: f64 = full[..occ].iter().sum::<f64>() * 2.0;
        let e_partial: f64 = partial.iter().sum::<f64>() * 2.0;
        assert!((e_full - e_partial).abs() < 1e-8);
    }
}
