//! # tbmd-linalg
//!
//! Dense real linear algebra for the `tbmd` tight-binding molecular dynamics
//! workspace, written from scratch (no BLAS/LAPACK bindings — the 1994-era
//! machines this project models shipped vendor EISPACK/BLAS; we supply the
//! equivalent kernels in pure Rust).
//!
//! Contents:
//! * [`Vec3`] — 3-component vectors for positions/velocities/forces.
//! * [`Matrix`] — dense row-major matrices with cache-blocked and
//!   Rayon-parallel products.
//! * [`eigh`]/[`eigvalsh`] — Householder + implicit-QL symmetric eigensolver
//!   (the per-timestep O(n³) kernel of tight-binding MD).
//! * [`jacobi_eigh`]/[`par_jacobi_eigh`] — cyclic and parallel-ordered Jacobi
//!   eigensolvers; the parallel ordering is shared with the distributed
//!   ring-Jacobi in `tbmd-parallel`.
//! * [`eigvalsh_partial`] — Sturm-sequence bisection for the lowest k
//!   eigenvalues (the era's "occupied states only" optimization).
//! * [`Cholesky`]/[`generalized_eigh`] — SPD factorization and the
//!   `H c = ε S c` reduction used by non-orthogonal tight binding.

pub mod batched;
pub mod bisection;
pub mod blocked;
pub mod budget;
pub mod cholesky;
pub mod eigh;
pub mod inverse_iteration;
pub mod jacobi;
pub mod kernels;
pub mod matrix;
pub mod vec3;

pub use batched::{batch_map, eigenvector_shards_batch, eigh_batch, EighJob, ShardJob};
pub use bisection::{
    eigvalsh_partial, snap_range_to_clusters, sturm_count, tridiagonal_eigenvalues_range_into,
    tridiagonal_kth_eigenvalue, tridiagonal_lowest_eigenvalues_into,
};
pub use blocked::{
    apply_q_blocked, eigh_blocked_into, eigh_partial_into, reduced_eigenvalues_into,
    reduced_eigenvectors_into, reduced_eigenvectors_offset_into, tridiagonalize_blocked_into,
    TRIDIAG_BLOCK,
};
pub use budget::{
    budget_total, configure_budget, effective_width, high_water, leased_threads, parallel_allowed,
    reset_high_water, try_lease, ComputeLease,
};
pub use cholesky::{
    generalized_eigh, generalized_eigh_into, Cholesky, CholeskyError, GeneralizedEigError,
    GeneralizedEighWorkspace,
};
pub use eigh::{
    eig_residual, eigh, eigh_into, eigvalsh, orthogonality_defect, tqli, tridiagonalize,
    tridiagonalize_into, EigError, Eigh, EighWorkspace,
};
pub use inverse_iteration::{
    cluster_tolerance, tridiagonal_eigenvectors_into, tridiagonal_eigenvectors_offset_into,
};
pub use jacobi::{
    jacobi_eigh, jacobi_rotation, off_diagonal_norm, par_jacobi_eigh, par_jacobi_eigh_into,
    round_robin_rounds, JacobiStats, JacobiWorkspace, JACOBI_MAX_SWEEPS, JACOBI_TOL,
};
pub use kernels::{Scalar, GEMM_UNROLL, KERNEL_MIN_DIM};
pub use matrix::Matrix;
pub use vec3::Vec3;
