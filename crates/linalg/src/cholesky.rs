//! Cholesky factorization and the symmetric-definite generalized
//! eigenproblem reduction.
//!
//! Non-orthogonal tight-binding schemes (e.g. DFTB) lead to the generalized
//! problem `H C = S C ε` with a symmetric positive-definite overlap matrix
//! `S`. The standard reduction factors `S = L Lᵀ` and solves the ordinary
//! symmetric problem for `L⁻¹ H L⁻ᵀ`; [`generalized_eigh`] packages the whole
//! pipeline on top of [`crate::eigh::eigh`].

use crate::eigh::{eigh, eigh_into, EigError, Eigh, EighWorkspace};
use crate::matrix::Matrix;

/// Errors from the Cholesky factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum CholeskyError {
    /// A pivot was non-positive: the matrix is not positive definite.
    NotPositiveDefinite {
        pivot_index: usize,
        pivot_value: f64,
    },
    /// The input matrix is not square.
    NotSquare { rows: usize, cols: usize },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite {
                pivot_index,
                pivot_value,
            } => write!(
                f,
                "matrix is not positive definite (pivot {pivot_index} = {pivot_value:.3e})"
            ),
            CholeskyError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    pub fn factor(a: &Matrix) -> Result<Self, CholeskyError> {
        let mut l = Matrix::zeros(0, 0);
        factor_lower_into(a, &mut l)?;
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.forward_substitute(b);
        self.backward_substitute_t(&y)
    }

    /// Solve `L y = b`.
    pub fn forward_substitute(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            let lrow = self.l.row(i);
            for (lv, yv) in lrow.iter().zip(&y).take(i) {
                s -= lv * yv;
            }
            y[i] = s / lrow[i];
        }
        y
    }

    /// Solve `Lᵀ x = y`.
    pub fn backward_substitute_t(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, xv) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xv;
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// `L⁻¹ M` computed column by column (forward substitution per column).
    pub fn solve_lower_matrix(&self, m: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(m.rows(), n);
        let mut out = Matrix::zeros(n, m.cols());
        for j in 0..m.cols() {
            let col = self.forward_substitute(&m.col(j));
            out.set_col(j, &col);
        }
        out
    }

    /// `L⁻ᵀ M` computed column by column (backward substitution per column).
    pub fn solve_lower_t_matrix(&self, m: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(m.rows(), n);
        let mut out = Matrix::zeros(n, m.cols());
        for j in 0..m.cols() {
            let col = self.backward_substitute_t(&m.col(j));
            out.set_col(j, &col);
        }
        out
    }

    /// Determinant of `A` (product of squared pivots).
    pub fn determinant(&self) -> f64 {
        let n = self.l.rows();
        let mut d = 1.0;
        for i in 0..n {
            d *= self.l[(i, i)] * self.l[(i, i)];
        }
        d
    }
}

/// Factor `A = L Lᵀ` into a caller-owned lower-triangular matrix, reusing
/// its allocation — the kernel behind [`Cholesky::factor`] and the
/// allocation-free [`generalized_eigh_into`] pipeline. Returns whether the
/// output buffer had to grow.
fn factor_lower_into(a: &Matrix, l: &mut Matrix) -> Result<bool, CholeskyError> {
    if !a.is_square() {
        return Err(CholeskyError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let grew = l.resize_zeroed(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite {
                pivot_index: j,
                pivot_value: diag,
            });
        }
        let djj = diag.sqrt();
        l[(j, j)] = djj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    Ok(grew)
}

/// In-place `L⁻¹ M`: forward-substitute every column of `m`, staging each in
/// the contiguous `col` buffer so the inner dot products run over contiguous
/// rows of `L`.
fn solve_lower_in_place(l: &Matrix, m: &mut Matrix, col: &mut Vec<f64>) {
    let n = l.rows();
    assert_eq!(m.rows(), n);
    for j in 0..m.cols() {
        col.clear();
        col.extend((0..n).map(|i| m[(i, j)]));
        for i in 0..n {
            let lrow = l.row(i);
            let mut s = col[i];
            for k in 0..i {
                s -= lrow[k] * col[k];
            }
            col[i] = s / lrow[i];
        }
        for (i, &v) in col.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
}

/// In-place `L⁻ᵀ M`: backward-substitute every column of `m` against `Lᵀ`.
fn solve_lower_t_in_place(l: &Matrix, m: &mut Matrix, col: &mut Vec<f64>) {
    let n = l.rows();
    assert_eq!(m.rows(), n);
    for j in 0..m.cols() {
        col.clear();
        col.extend((0..n).map(|i| m[(i, j)]));
        for i in (0..n).rev() {
            let mut s = col[i];
            for (k, cv) in col.iter().enumerate().skip(i + 1) {
                s -= l[(k, i)] * cv;
            }
            col[i] = s / l[(i, i)];
        }
        for (i, &v) in col.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
}

/// Reusable scratch of [`generalized_eigh_into`]: the overlap Cholesky
/// factor, the reduced-problem matrix, the transposition staging buffer, a
/// substitution column, and the dense-eigensolver workspace. Everything
/// grows to the largest `n` seen and is then reused across MD steps — the
/// overlap factorization is recomputed each call (S moves with the atoms)
/// but into the same allocation.
#[derive(Debug, Default, Clone)]
pub struct GeneralizedEighWorkspace {
    l: Matrix,
    red: Matrix,
    tmp: Matrix,
    col: Vec<f64>,
    eigh: EighWorkspace,
    grown: usize,
}

impl GeneralizedEighWorkspace {
    /// Buffer-growth events observed so far (O(1) after warmup).
    pub fn large_alloc_events(&self) -> usize {
        self.grown
    }
}

/// Allocation-free symmetric-definite generalized eigensolver
/// `H c = ε S c`, the workspace-threaded form of [`generalized_eigh`]:
/// factor `S = L Lᵀ`, reduce to the ordinary symmetric problem for
/// `L⁻¹ H L⁻ᵀ`, solve with [`eigh_into`], and back-transform
/// `x = L⁻ᵀ y`. On success `values` is ascending and `vectors` is
/// S-orthonormal column-wise; only the workspace buffers grow, and only up
/// to the largest `n` seen.
///
/// # Errors
/// Same as [`generalized_eigh`].
pub fn generalized_eigh_into(
    h: &Matrix,
    s: &Matrix,
    values: &mut Vec<f64>,
    vectors: &mut Matrix,
    ws: &mut GeneralizedEighWorkspace,
) -> Result<(), GeneralizedEigError> {
    if h.rows() != s.rows() || h.cols() != s.cols() || !h.is_square() {
        return Err(GeneralizedEigError::DimensionMismatch);
    }
    let n = h.rows();
    let grew = factor_lower_into(s, &mut ws.l).map_err(GeneralizedEigError::Overlap)?;
    ws.grown += grew as usize;
    // tmp = L⁻¹ H.
    ws.grown += ws.tmp.resize_zeroed(n, n) as usize;
    ws.tmp.as_mut_slice().copy_from_slice(h.as_slice());
    solve_lower_in_place(&ws.l, &mut ws.tmp, &mut ws.col);
    // red = L⁻¹ (L⁻¹ H)ᵀ = L⁻¹ H L⁻ᵀ (H symmetric).
    ws.grown += ws.red.resize_zeroed(n, n) as usize;
    for i in 0..n {
        for j in 0..n {
            ws.red[(i, j)] = ws.tmp[(j, i)];
        }
    }
    solve_lower_in_place(&ws.l, &mut ws.red, &mut ws.col);
    ws.red.symmetrize();
    eigh_into(&mut ws.red, values, &mut ws.eigh).map_err(GeneralizedEigError::Eig)?;
    // Back-transform eigenvectors: x = L⁻ᵀ y.
    ws.grown += vectors.resize_zeroed(n, n) as usize;
    vectors.as_mut_slice().copy_from_slice(ws.red.as_slice());
    solve_lower_t_in_place(&ws.l, vectors, &mut ws.col);
    Ok(())
}

/// Errors from the generalized eigenproblem driver.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneralizedEigError {
    /// The overlap matrix failed to factor.
    Overlap(CholeskyError),
    /// The reduced ordinary eigenproblem failed.
    Eig(EigError),
    /// H and S dimensions disagree.
    DimensionMismatch,
}

impl std::fmt::Display for GeneralizedEigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeneralizedEigError::Overlap(e) => write!(f, "overlap matrix: {e}"),
            GeneralizedEigError::Eig(e) => write!(f, "reduced problem: {e}"),
            GeneralizedEigError::DimensionMismatch => write!(f, "H/S dimension mismatch"),
        }
    }
}

impl std::error::Error for GeneralizedEigError {}

/// Solve the symmetric-definite generalized eigenproblem `H c = ε S c`.
///
/// Returns eigenvalues ascending and S-orthonormal eigenvectors
/// (`CᵀSC = I`), stored column-wise, exactly like [`Eigh`].
pub fn generalized_eigh(h: &Matrix, s: &Matrix) -> Result<Eigh, GeneralizedEigError> {
    if h.rows() != s.rows() || h.cols() != s.cols() || !h.is_square() {
        return Err(GeneralizedEigError::DimensionMismatch);
    }
    let chol = Cholesky::factor(s).map_err(GeneralizedEigError::Overlap)?;
    // C = L⁻¹ H L⁻ᵀ, built as L⁻¹ (L⁻¹ Hᵀ)ᵀ; H symmetric so Hᵀ = H.
    let linv_h = chol.solve_lower_matrix(h);
    let c = chol.solve_lower_matrix(&linv_h.transpose());
    let mut c = c;
    c.symmetrize(); // round-off symmetrization before the symmetric solver
    let red = eigh(c).map_err(GeneralizedEigError::Eig)?;
    // Back-transform eigenvectors: x = L⁻ᵀ y.
    let vectors = chol.solve_lower_t_matrix(&red.vectors);
    Ok(Eigh {
        values: red.values,
        vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_test_matrix(n: usize, seed: u64) -> Matrix {
        // AᵀA + n·I is comfortably SPD.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let mut s = a.t_matmul(&a);
        for i in 0..n {
            s[(i, i)] += n as f64;
        }
        s
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_test_matrix(12, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!((&rec - &a).max_abs() < 1e-10);
    }

    #[test]
    fn solve_linear_system() {
        let a = spd_test_matrix(9, 5);
        let x_true: Vec<f64> = (0..9).map(|i| (i as f64) * 0.3 - 1.2).collect();
        let b = a.matvec(&x_true);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_diagonal(&[1.0, -2.0, 3.0]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(CholeskyError::NotPositiveDefinite { pivot_index: 1, .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(CholeskyError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::from_diagonal(&[4.0, 9.0, 1.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.determinant() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn generalized_reduces_to_ordinary_for_identity_overlap() {
        let n = 10;
        let mut h = spd_test_matrix(n, 7);
        h.scale(0.1);
        let s = Matrix::identity(n);
        let gen = generalized_eigh(&h, &s).unwrap();
        let ord = eigh(h).unwrap();
        for (a, b) in gen.values.iter().zip(&ord.values) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn generalized_satisfies_pencil_equation() {
        let n = 8;
        let mut h = spd_test_matrix(n, 11);
        h.scale(0.05);
        // A realistic overlap: identity plus small symmetric perturbation.
        let mut s = spd_test_matrix(n, 13);
        s.scale(0.01 / n as f64);
        for i in 0..n {
            s[(i, i)] += 1.0;
        }
        let gen = generalized_eigh(&h, &s).unwrap();
        // Check H c = ε S c for every pair.
        for k in 0..n {
            let c = gen.vectors.col(k);
            let hc = h.matvec(&c);
            let sc = s.matvec(&c);
            for i in 0..n {
                assert!(
                    (hc[i] - gen.values[k] * sc[i]).abs() < 1e-9,
                    "pencil residual too large at k={k}, i={i}"
                );
            }
        }
        // S-orthonormality: CᵀSC = I.
        let sc = s.matmul(&gen.vectors);
        let ctsc = gen.vectors.t_matmul(&sc);
        for i in 0..n {
            for j in 0..n {
                let target = if i == j { 1.0 } else { 0.0 };
                assert!((ctsc[(i, j)] - target).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn generalized_into_matches_allocating_path() {
        let n = 8;
        let mut h = spd_test_matrix(n, 11);
        h.scale(0.05);
        let mut s = spd_test_matrix(n, 13);
        s.scale(0.01 / n as f64);
        for i in 0..n {
            s[(i, i)] += 1.0;
        }
        let reference = generalized_eigh(&h, &s).unwrap();
        let mut ws = GeneralizedEighWorkspace::default();
        let mut values = Vec::new();
        let mut vectors = Matrix::zeros(0, 0);
        generalized_eigh_into(&h, &s, &mut values, &mut vectors, &mut ws).unwrap();
        for (a, b) in values.iter().zip(&reference.values) {
            assert!((a - b).abs() < 1e-12);
        }
        for i in 0..n {
            for k in 0..n {
                assert!((vectors[(i, k)] - reference.vectors[(i, k)]).abs() < 1e-12);
            }
        }
        // Warm second solve must not grow any buffer.
        let warm = ws.large_alloc_events();
        generalized_eigh_into(&h, &s, &mut values, &mut vectors, &mut ws).unwrap();
        assert_eq!(ws.large_alloc_events(), warm);
    }

    #[test]
    fn generalized_rejects_mismatch() {
        let h = Matrix::zeros(3, 3);
        let s = Matrix::identity(4);
        assert!(matches!(
            generalized_eigh(&h, &s),
            Err(GeneralizedEigError::DimensionMismatch)
        ));
    }
}
