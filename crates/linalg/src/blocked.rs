//! Blocked Householder tridiagonalization and blocked reflector application —
//! stage one of the two-stage symmetric eigensolver.
//!
//! The scalar EISPACK `tred2` reduction interleaves rank-2 updates with the
//! trailing matrix one column at a time, so every flop is a memory-bound
//! stride-n access, and its `tqli` companion then spends `O(n³)` more in
//! per-rotation eigenvector column sweeps. The blocked pipeline here follows
//! the LAPACK `sytrd`/`latrd` factorization instead:
//!
//! 1. **Panel factorization** — `NB` Householder reflectors are generated per
//!    panel; the trailing matrix is touched only through `NB` symmetric
//!    matrix–vector products whose corrections against the pending panel
//!    (`V`, `W`) keep the panel numerically exact.
//! 2. **Rank-2k trailing update** — after each panel the trailing block
//!    absorbs `A ← A − V Wᵀ − W Vᵀ` in one GEMM-shaped sweep over contiguous
//!    rows (the SYR2K analogue of the SYRK density-matrix kernel): only the
//!    lower triangle is computed, then mirrored tile-by-tile. Rows are
//!    independent, so the sweep parallelizes over Rayon with a deterministic
//!    partition (each row is written by exactly one task).
//!
//! The reflectors stay packed in the reduced matrix (LAPACK convention:
//! column `j` holds `v_j` below the subdiagonal, `v_j[j+1] = 1` implicit)
//! plus a `tau` array, so stage two can back-transform any subset of
//! tridiagonal eigenvectors with a blocked, GEMM-shaped compact-WY
//! application (`I − V T Vᵀ` per panel) instead of `tqli`'s per-rotation
//! column sweeps. All scratch lives in [`BlockedScratch`] (embedded in
//! [`crate::eigh::EighWorkspace`]), so repeated solves allocate nothing
//! after warmup.

use crate::eigh::{tqli, EigError, EighWorkspace};
use crate::kernels;
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Panel width of the blocked reduction and of the compact-WY application.
/// 32 columns keep the panel (`2 · 32 · n` doubles) L2-resident at the
/// problem sizes TBMD produces while amortizing the trailing sweep well.
pub const TRIDIAG_BLOCK: usize = 32;

/// Row-chunk edge used by the deterministic chunked reductions (`Vᵀ Z`):
/// fixed-size chunks make the partial-sum order independent of the thread
/// count, so parallel runs are bitwise reproducible.
const CHUNK_ROWS: usize = 256;

/// Reusable scratch of the blocked reduction, the compact-WY application and
/// the partial-spectrum path. Buffers grow to the largest size seen, then
/// are reused — the same policy as every other workspace in the project.
#[derive(Debug, Default, Clone)]
pub struct BlockedScratch {
    /// Diagonal of the tridiagonal factor (valid after
    /// [`tridiagonalize_blocked_into`]).
    pub(crate) d: Vec<f64>,
    /// Subdiagonal: `e[0] = 0`, `e[i]` couples rows `i−1` and `i` — the same
    /// convention as [`crate::eigh::tridiagonalize`] and the Sturm kernels.
    pub(crate) e: Vec<f64>,
    /// Householder scales, `tau[j]` for the reflector stored in column `j`.
    pub(crate) tau: Vec<f64>,
    /// Panel reflectors, one *row* per reflector (length-n, explicit unit).
    vpan: Matrix,
    /// Panel update vectors `W`, one row per reflector.
    wpan: Matrix,
    /// Compact-WY triangular factor `T` (NB×NB).
    tmat: Matrix,
    /// `Vᵀ Z` application scratch (NB×k).
    xmat: Matrix,
    /// `T · (Vᵀ Z)` application scratch (NB×k).
    ymat: Matrix,
    /// Per-chunk partial results of the deterministic `Vᵀ Z` reduction.
    partials: Vec<Matrix>,
    /// Householder candidate column / symmetric matvec result.
    colbuf: Vec<f64>,
    pvec: Vec<f64>,
    /// Scratch tridiagonal copy for QL eigenvalue extraction.
    dql: Vec<f64>,
    eql: Vec<f64>,
    /// Full-spectrum fallback: accumulated Q buffer.
    pub(crate) qbuf: Matrix,
}

impl BlockedScratch {
    /// Diagonal of the most recent tridiagonal factor.
    pub fn diagonal(&self) -> &[f64] {
        &self.d
    }

    /// Subdiagonal of the most recent tridiagonal factor (`e[0] = 0`).
    pub fn subdiagonal(&self) -> &[f64] {
        &self.e
    }
}

/// Generate a Householder reflector for `x = [alpha, rest...]` such that
/// `H x = [beta, 0, ...]` with `H = I − τ v vᵀ`, `v[0] = 1`. Returns
/// `(tau, beta)` and overwrites `rest` with `v[1..]` (LAPACK `dlarfg`).
#[inline]
fn householder(alpha: f64, rest: &mut [f64]) -> (f64, f64) {
    let xnorm = rest.iter().map(|x| x * x).sum::<f64>().sqrt();
    if xnorm == 0.0 {
        return (0.0, alpha);
    }
    let beta = -alpha.signum() * alpha.hypot(xnorm);
    let tau = (beta - alpha) / beta;
    let inv = 1.0 / (alpha - beta);
    for x in rest.iter_mut() {
        *x *= inv;
    }
    (tau, beta)
}

/// Blocked Householder reduction of the symmetric matrix `a` to tridiagonal
/// form.
///
/// On return:
/// * `ws.blocked.d` / `ws.blocked.e` hold the tridiagonal factor in the same
///   `(d, e)` convention as [`crate::eigh::tridiagonalize`];
/// * `a`'s strict lower triangle below the first subdiagonal holds the
///   Householder vectors (column `j`: `v_j[j+1] = 1` implicit, `v_j[j+2..]`
///   explicit), `ws.blocked.tau` their scales — everything
///   [`apply_q_blocked`] needs to back-transform eigenvectors;
/// * the rest of `a` is scratch.
///
/// Only the lower triangle of `a` is read.
///
/// # Panics
/// Panics if `a` is not square.
pub fn tridiagonalize_blocked_into(a: &mut Matrix, ws: &mut EighWorkspace) {
    assert!(a.is_square(), "tridiagonalization requires a square matrix");
    let n = a.rows();
    let s = &mut ws.blocked;
    s.d.clear();
    s.d.resize(n, 0.0);
    s.e.clear();
    s.e.resize(n, 0.0);
    s.tau.clear();
    s.tau.resize(n, 0.0);
    if n == 0 {
        return;
    }
    if n == 1 {
        s.d[0] = a[(0, 0)];
        return;
    }
    // ~(4/3)n³ flops: the symmetric matvecs plus the rank-2k sweeps.
    tbmd_trace::add(tbmd_trace::Counter::KernelFlops, 4 * (n as u64).pow(3) / 3);
    s.vpan.resize_zeroed(TRIDIAG_BLOCK, n);
    s.wpan.resize_zeroed(TRIDIAG_BLOCK, n);
    s.colbuf.clear();
    s.colbuf.resize(n, 0.0);
    s.pvec.clear();
    s.pvec.resize(n, 0.0);

    let mut j0 = 0usize;
    while j0 + 2 < n {
        let jb = TRIDIAG_BLOCK.min(n - 2 - j0);
        for jj in 0..jb {
            let j = j0 + jj;
            // --- 1. column j with the pending panel updates applied -------
            let x = &mut s.colbuf;
            for (r, xr) in x.iter_mut().enumerate().take(n).skip(j) {
                *xr = a[(r, j)];
            }
            for p in 0..jj {
                let vp = s.vpan.row(p);
                let wp = s.wpan.row(p);
                let (wj, vj) = (wp[j], vp[j]);
                kernels::axpy2(&mut x[j..n], -wj, &vp[j..n], -vj, &wp[j..n]);
            }
            s.d[j] = x[j];
            // --- 2. Householder reflector annihilating x[j+2..] -----------
            let (head, tail) = x[j + 1..].split_first_mut().expect("j + 1 < n");
            let (tau, beta) = householder(*head, tail);
            s.tau[j] = tau;
            s.e[j + 1] = beta;
            // Pack v into a's column j (unit entry implicit) and the panel.
            {
                let vrow = s.vpan.row_mut(jj);
                vrow[..=j].fill(0.0);
                vrow[j + 1] = 1.0;
                for r in j + 2..n {
                    vrow[r] = x[r];
                    a[(r, j)] = x[r];
                }
            }
            if tau == 0.0 {
                s.wpan.row_mut(jj).fill(0.0);
                continue;
            }
            // --- 3. w = τ(A v − V(Wᵀv) − W(Vᵀv)); w −= (τ/2)(wᵀv)v --------
            // Symmetric matvec on the *panel-start* trailing block, reading
            // only the lower triangle: row r contributes its dot to p[r] and
            // its transpose (scaled by v[r]) to p[lo..r] while the row is
            // hot. Half the memory traffic of the mirrored full-row form,
            // and no mirror maintenance between panels at all.
            let v = s.vpan.row(jj);
            let p = &mut s.pvec;
            let lo = j + 1;
            p[lo..n].fill(0.0);
            for r in lo..n {
                let row = a.row(r);
                p[r] += kernels::dot(&row[lo..=r], &v[lo..=r]);
                kernels::axpy(&mut p[lo..r], v[r], &row[lo..r]);
            }
            for q in 0..jj {
                let vq = s.vpan.row(q);
                let wq = s.wpan.row(q);
                let (wv, vv) = kernels::dot2(&v[lo..n], &wq[lo..n], &vq[lo..n]);
                kernels::axpy2(&mut p[lo..n], -wv, &vq[lo..n], -vv, &wq[lo..n]);
            }
            for pv in p[lo..n].iter_mut() {
                *pv *= tau;
            }
            let wdotv = kernels::dot(&p[lo..n], &v[lo..n]);
            let gamma = -0.5 * tau * wdotv;
            let wrow = s.wpan.row_mut(jj);
            wrow[..lo].fill(0.0);
            for r in lo..n {
                wrow[r] = p[r] + gamma * v[r];
            }
        }
        // --- 4. rank-2k trailing update (SYR2K, lower triangle) -----------
        let t0 = j0 + jb;
        let vpan = &s.vpan;
        let wpan = &s.wpan;
        let ncols = a.cols();
        a.as_mut_slice()[t0 * ncols..]
            .par_chunks_mut(ncols)
            .enumerate()
            .for_each(|(ri, row)| {
                let r = t0 + ri;
                for p in 0..jb {
                    let vp = vpan.row(p);
                    let wp = wpan.row(p);
                    let (vr, wr) = (vp[r], wp[r]);
                    if vr == 0.0 && wr == 0.0 {
                        continue;
                    }
                    kernels::axpy2(&mut row[t0..=r], -vr, &wp[t0..=r], -wr, &vp[t0..=r]);
                }
            });
        j0 = t0;
    }
    // Remaining 2×2 (or smaller) trailing block: read directly.
    if n >= 2 {
        s.d[n - 2] = a[(n - 2, n - 2)];
        s.d[n - 1] = a[(n - 1, n - 1)];
        s.e[n - 1] = a[(n - 1, n - 2)];
    }
}

/// Build the compact-WY triangular factor `T` (forward, columnwise — LAPACK
/// `dlarft`) for the `jb` reflectors whose rows live in `vpan`, restricted to
/// rows `lo..n`. `H_0 H_1 ⋯ H_{jb−1} = I − Vᵀ T V` with `V` the row-packed
/// panel.
fn build_t_factor(vpan: &Matrix, tau: &[f64], jb: usize, lo: usize, tmat: &mut Matrix) {
    let n = vpan.cols();
    tmat.resize_zeroed(jb, jb);
    for i in 0..jb {
        let ti = tau[i];
        tmat[(i, i)] = ti;
        if ti == 0.0 || i == 0 {
            continue;
        }
        // t = −τ_i · V[0..i] v_i  (rows are reflectors).
        let vi = vpan.row(i);
        for p in 0..i {
            let vp = vpan.row(p);
            let dot = kernels::dot(&vp[lo..n], &vi[lo..n]);
            tmat[(p, i)] = -ti * dot;
        }
        // T[0..i, i] = T[0..i, 0..i] · t, in place. Row p reads t[q] only
        // for q ≥ p, so the forward sweep never reads an overwritten entry.
        for p in 0..i {
            let mut acc = 0.0;
            for q in p..i {
                acc += tmat[(p, q)] * tmat[(q, i)];
            }
            tmat[(p, i)] = acc;
        }
    }
}

/// Load panel `[j0, j0+jb)`'s reflector vectors from the packed columns of
/// `a` into explicit rows of `vpan`.
fn load_panel(a: &Matrix, j0: usize, jb: usize, vpan: &mut Matrix) {
    let n = a.rows();
    vpan.resize_zeroed(jb, n);
    for jj in 0..jb {
        let j = j0 + jj;
        let row = vpan.row_mut(jj);
        row.fill(0.0);
        if j + 1 < n {
            row[j + 1] = 1.0;
            for r in j + 2..n {
                row[r] = a[(r, j)];
            }
        }
    }
}

/// `out = V[lo..] Z[lo..]` as a deterministic chunked parallel reduction:
/// fixed-size row chunks are reduced independently and summed in chunk
/// order, so the result is identical for any thread count.
fn vt_z_into(vpan: &Matrix, z: &Matrix, lo: usize, out: &mut Matrix, partials: &mut Vec<Matrix>) {
    let (jb, k) = (vpan.rows(), z.cols());
    let n = z.rows();
    out.resize_zeroed(jb, k);
    let nchunks = (n - lo).div_ceil(CHUNK_ROWS);
    if partials.len() < nchunks {
        partials.resize(nchunks, Matrix::default());
    }
    partials[..nchunks]
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(c, part)| {
            let part = &mut part[0];
            part.resize_zeroed(jb, k);
            let r0 = lo + c * CHUNK_ROWS;
            let r1 = (r0 + CHUNK_ROWS).min(n);
            for r in r0..r1 {
                let zrow = z.row(r);
                for p in 0..jb {
                    let vpr = vpan.row(p)[r];
                    if vpr == 0.0 {
                        continue;
                    }
                    kernels::axpy(part.row_mut(p), vpr, zrow);
                }
            }
        });
    for part in &partials[..nchunks] {
        out.axpy(1.0, part);
    }
}

/// Apply the orthogonal factor `Q = H_0 H_1 ⋯` of a blocked tridiagonal
/// reduction to the `n×k` matrix `z` in place (`z ← Q z`), using blocked
/// compact-WY applications: per panel three GEMM-shaped sweeps
/// (`X = Vᵀ Z`, `Y = T X`, `Z ← Z − V Y`) replace `tqli`'s per-rotation
/// column updates. `a` must be the reflector-packed output of
/// [`tridiagonalize_blocked_into`] run with the same workspace.
///
/// # Panics
/// Panics if `z.rows()` differs from `a.rows()`.
pub fn apply_q_blocked(a: &Matrix, ws: &mut EighWorkspace, z: &mut Matrix) {
    let n = a.rows();
    assert_eq!(z.rows(), n, "apply_q_blocked: row mismatch");
    if n < 3 || z.cols() == 0 {
        return;
    }
    let s = &mut ws.blocked;
    let m = n - 2; // reflector count
                   // ~4nk flops per reflector across the three GEMM-shaped sweeps.
    tbmd_trace::add(
        tbmd_trace::Counter::KernelFlops,
        4 * (m * n * z.cols()) as u64,
    );
    let nfull = m.div_ceil(TRIDIAG_BLOCK);
    // Panels in reverse order: Q Z = B_0 (B_1 (⋯ (B_last Z))).
    for panel in (0..nfull).rev() {
        let j0 = panel * TRIDIAG_BLOCK;
        let jb = TRIDIAG_BLOCK.min(m - j0);
        let lo = j0 + 1;
        load_panel(a, j0, jb, &mut s.vpan);
        build_t_factor(&s.vpan, &s.tau[j0..j0 + jb], jb, lo, &mut s.tmat);
        // X = Vᵀ Z (deterministic chunked reduction).
        vt_z_into(&s.vpan, z, lo, &mut s.xmat, &mut s.partials);
        // Y = T X (small triangular product).
        let k = z.cols();
        s.ymat.resize_zeroed(jb, k);
        for p in 0..jb {
            for q in p..jb {
                let t = s.tmat[(p, q)];
                if t == 0.0 {
                    continue;
                }
                kernels::axpy(s.ymat.row_mut(p), t, s.xmat.row(q));
            }
        }
        // Z ← Z − V Y, row-parallel (each row written by one task).
        let vpan = &s.vpan;
        let ymat = &s.ymat;
        let ncols = z.cols();
        z.as_mut_slice()[lo * ncols..]
            .par_chunks_mut(ncols)
            .enumerate()
            .for_each(|(ri, zrow)| {
                let r = lo + ri;
                for p in 0..jb {
                    let vpr = vpan.row(p)[r];
                    if vpr == 0.0 {
                        continue;
                    }
                    kernels::axpy(zrow, -vpr, ymat.row(p));
                }
            });
    }
}

/// All eigenvalues (ascending) of the tridiagonal factor currently held in
/// the workspace, by implicit-shift QL on a scratch copy — `O(n²)` with a
/// small constant, the fastest route on few cores. The `(d, e)` factor in
/// the workspace is left intact for the eigenvector stage.
///
/// # Errors
/// [`EigError::NoConvergence`] on non-finite input.
pub fn tridiagonal_values_ql_into(
    ws: &mut EighWorkspace,
    values: &mut Vec<f64>,
) -> Result<(), EigError> {
    let s = &mut ws.blocked;
    let n = s.d.len();
    s.dql.clear();
    s.dql.extend_from_slice(&s.d);
    s.eql.clear();
    s.eql.extend_from_slice(&s.e);
    let mut dummy = Matrix::zeros(0, n);
    tqli(&mut s.dql, &mut s.eql, &mut dummy)?;
    s.dql
        .sort_by(|a, b| a.partial_cmp(b).expect("NaN eigenvalue"));
    values.clear();
    values.extend_from_slice(&s.dql);
    Ok(())
}

/// Full-spectrum eigendecomposition through the blocked reduction: a
/// drop-in replacement for [`crate::eigh::eigh_into`] whose reduction and
/// `Q` accumulation are blocked/parallel; only the tridiagonal QL iteration
/// itself remains scalar. On success `a` holds the eigenvectors
/// (column `k` pairs with `values[k]`, ascending).
///
/// # Errors
/// Same contract as [`crate::eigh::eigh_into`].
pub fn eigh_blocked_into(
    a: &mut Matrix,
    values: &mut Vec<f64>,
    ws: &mut EighWorkspace,
) -> Result<(), EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    values.clear();
    if n == 0 {
        return Ok(());
    }
    tridiagonalize_blocked_into(a, ws);
    // Accumulate Q = H_0 ⋯ into the scratch buffer, then rotate with QL.
    let mut q = std::mem::take(&mut ws.blocked.qbuf);
    q.resize_zeroed(n, n);
    for i in 0..n {
        q[(i, i)] = 1.0;
    }
    apply_q_blocked(a, ws, &mut q);
    values.extend_from_slice(&ws.blocked.d);
    ws.e.clear();
    ws.e.extend_from_slice(&ws.blocked.e);
    let result = tqli(values, &mut ws.e, &mut q);
    // Copy eigenvectors back into `a` and stash the buffer before `?` so a
    // failure cannot leak the allocation.
    if result.is_ok() {
        a.as_mut_slice().copy_from_slice(q.as_slice());
    }
    ws.blocked.qbuf = q;
    result?;
    crate::eigh::sort_eigenpairs(values, a, &mut ws.order);
    Ok(())
}

/// All `n` eigenvalues (ascending) of the tridiagonal factor currently in
/// the workspace, choosing the cheaper kernel for the machine: implicit-QL
/// on a scratch copy when few Rayon threads are available (its `O(n²)`
/// constant is small but it is inherently serial), parallel Sturm-sequence
/// spectrum slicing ([`crate::bisection::tridiagonal_lowest_eigenvalues_into`])
/// otherwise.
///
/// # Errors
/// [`EigError::NoConvergence`] on non-finite input (QL kernel only; the
/// bisection kernel cannot fail).
pub fn reduced_eigenvalues_into(
    ws: &mut EighWorkspace,
    values: &mut Vec<f64>,
) -> Result<(), EigError> {
    if rayon::current_num_threads() >= 4 {
        let s = &ws.blocked;
        crate::bisection::tridiagonal_lowest_eigenvalues_into(&s.d, &s.e, s.d.len(), values);
        Ok(())
    } else {
        tridiagonal_values_ql_into(ws, values)
    }
}

/// Eigenvectors of the original matrix for the selected (ascending)
/// eigenvalues `lambda`, given the reflector-packed output `a` of
/// [`tridiagonalize_blocked_into`] run with the same workspace: inverse
/// iteration on the tridiagonal factor followed by the blocked back-transform
/// [`apply_q_blocked`]. On return `z` is `n × lambda.len()` with column `j`
/// pairing `lambda[j]`.
pub fn reduced_eigenvectors_into(
    a: &Matrix,
    lambda: &[f64],
    z: &mut Matrix,
    ws: &mut EighWorkspace,
) {
    reduced_eigenvectors_offset_into(a, lambda, 0, z, ws);
}

/// Offset-aware form of [`reduced_eigenvectors_into`] for distributed
/// spectrum slicing: `lambda` is a contiguous shard of the globally sorted
/// spectrum starting at global eigenvalue index `seed_offset`. With shard
/// boundaries snapped to cluster boundaries
/// ([`crate::bisection::snap_range_to_clusters`] with
/// [`crate::inverse_iteration::cluster_tolerance`]), the columns each rank
/// produces are bitwise identical to the corresponding columns of a single
/// full-window [`reduced_eigenvectors_into`] call.
pub fn reduced_eigenvectors_offset_into(
    a: &Matrix,
    lambda: &[f64],
    seed_offset: usize,
    z: &mut Matrix,
    ws: &mut EighWorkspace,
) {
    crate::inverse_iteration::tridiagonal_eigenvectors_offset_into(
        &ws.blocked.d,
        &ws.blocked.e,
        lambda,
        seed_offset,
        z,
        &mut ws.inviter,
    );
    apply_q_blocked(a, ws, z);
}

/// Two-stage partial eigendecomposition: blocked tridiagonal reduction, all
/// `n` eigenvalues (needed downstream for exact Fermi levels and entropy),
/// and eigenvectors for only the lowest `k` states.
///
/// On success `values` holds **all** `n` eigenvalues ascending, `vectors` is
/// `n × k` (column `j` pairs `values[j]`), and `a` holds the packed
/// reflectors (scratch from the caller's point of view). `k` is clamped to
/// `n`; with `k == n` this is a full solve whose eigenvector path goes
/// through inverse iteration instead of QL rotations.
///
/// # Errors
/// [`EigError::NotSquare`] for rectangular input, [`EigError::NoConvergence`]
/// for non-finite input.
pub fn eigh_partial_into(
    a: &mut Matrix,
    k: usize,
    values: &mut Vec<f64>,
    vectors: &mut Matrix,
    ws: &mut EighWorkspace,
) -> Result<(), EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let k = k.min(n);
    values.clear();
    if n == 0 {
        vectors.resize_zeroed(0, 0);
        return Ok(());
    }
    tridiagonalize_blocked_into(a, ws);
    reduced_eigenvalues_into(ws, values)?;
    reduced_eigenvectors_into(a, &values[..k], vectors, ws);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh::{eig_residual, eigh, orthogonality_defect, tridiagonalize, Eigh};

    fn symmetric_test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    /// Reconstruct Q T Qᵀ from the packed reduction and compare against the
    /// original matrix — the definitive similarity pin.
    fn assert_reconstructs(a: &Matrix, tol: f64) {
        let n = a.rows();
        let mut packed = a.clone();
        let mut ws = EighWorkspace::default();
        tridiagonalize_blocked_into(&mut packed, &mut ws);
        // Z = T in dense form, then Q T, then (Q T) Qᵀ via Q (T Qᵀ)… easier:
        // build Q explicitly by applying to the identity.
        let mut q = Matrix::identity(n);
        apply_q_blocked(&packed, &mut ws, &mut q);
        let d = ws.blocked.diagonal().to_vec();
        let e = ws.blocked.subdiagonal().to_vec();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = d[i];
            if i > 0 {
                t[(i - 1, i)] = e[i];
                t[(i, i - 1)] = e[i];
            }
        }
        let recon = q.matmul(&t).matmul(&q.transpose());
        let scale = a.max_abs().max(1.0);
        assert!(
            (&recon - a).max_abs() < tol * scale,
            "Q T Qᵀ deviates by {} at n={n}",
            (&recon - a).max_abs()
        );
        assert!(
            orthogonality_defect(&q) < tol,
            "Q not orthogonal at n={n}: {}",
            orthogonality_defect(&q)
        );
    }

    #[test]
    fn blocked_reduction_reconstructs_original() {
        for n in [1usize, 2, 3, 4, 5, 8, 31, 32, 33, 64, 65, 100] {
            let a = symmetric_test_matrix(n, 11 + n as u64);
            assert_reconstructs(&a, 1e-12 * n as f64);
        }
    }

    #[test]
    fn offset_sliced_eigenvectors_match_full_window_bitwise() {
        // The distributed-slicing contract: disjoint cluster-snapped shards
        // with global seed offsets reproduce the full-window columns exactly.
        let n = 48;
        let a = symmetric_test_matrix(n, 23);
        let mut packed = a.clone();
        let mut ws = EighWorkspace::default();
        tridiagonalize_blocked_into(&mut packed, &mut ws);
        let mut values = Vec::new();
        reduced_eigenvalues_into(&mut ws, &mut values).unwrap();
        let k = n / 2;
        let mut full = Matrix::zeros(0, 0);
        reduced_eigenvectors_into(&packed, &values[..k], &mut full, &mut ws);
        let ctol = crate::inverse_iteration::cluster_tolerance(
            ws.blocked.diagonal(),
            ws.blocked.subdiagonal(),
        );
        for r in 0..3usize {
            let raw = {
                let per = k / 3;
                let lo = r * per;
                let hi = if r == 2 { k } else { (r + 1) * per };
                lo..hi
            };
            let lo =
                crate::bisection::snap_range_to_clusters(&values[..k], ctol, raw.start..k).start;
            let hi = crate::bisection::snap_range_to_clusters(&values[..k], ctol, raw.end..k).start;
            let mut z = Matrix::zeros(0, 0);
            reduced_eigenvectors_offset_into(&packed, &values[lo..hi], lo, &mut z, &mut ws);
            for (jj, j) in (lo..hi).enumerate() {
                for i in 0..n {
                    assert!(
                        z[(i, jj)] == full[(i, j)],
                        "column {j} row {i}: sliced {} != full {}",
                        z[(i, jj)],
                        full[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_matches_scalar_tridiagonalization_spectrum() {
        // Elimination orders differ, so (d, e) differ — but the spectra of
        // the two tridiagonal factors must agree to round-off.
        for n in [3usize, 10, 40, 75] {
            let a = symmetric_test_matrix(n, 5 + n as u64);
            let mut scalar = a.clone();
            let (d_s, e_s) = tridiagonalize(&mut scalar, false);
            let mut blocked = a.clone();
            let mut ws = EighWorkspace::default();
            tridiagonalize_blocked_into(&mut blocked, &mut ws);
            // Trace is preserved exactly by similarity.
            let tr_s: f64 = d_s.iter().sum();
            let tr_b: f64 = ws.blocked.diagonal().iter().sum();
            assert!((tr_s - tr_b).abs() < 1e-10 * n as f64);
            let mut dummy = Matrix::zeros(0, n);
            let (mut ds, mut es) = (d_s.clone(), e_s.clone());
            tqli(&mut ds, &mut es, &mut dummy).unwrap();
            ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut vals = Vec::new();
            let mut ws2 = ws.clone();
            tridiagonal_values_ql_into(&mut ws2, &mut vals).unwrap();
            for (x, y) in ds.iter().zip(&vals) {
                assert!((x - y).abs() < 1e-12 * n as f64, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn eigh_blocked_matches_eigh() {
        for n in [1usize, 2, 7, 33, 64, 90] {
            let a = symmetric_test_matrix(n, 3 + n as u64);
            let reference = eigh(a.clone()).unwrap();
            let mut vecs = a.clone();
            let mut values = Vec::new();
            let mut ws = EighWorkspace::default();
            eigh_blocked_into(&mut vecs, &mut values, &mut ws).unwrap();
            for (x, y) in values.iter().zip(&reference.values) {
                assert!((x - y).abs() < 1e-10, "n={n}: {x} vs {y}");
            }
            let eig = Eigh {
                values,
                vectors: vecs,
            };
            assert!(eig_residual(&a, &eig) < 1e-9 * n as f64, "residual n={n}");
            assert!(orthogonality_defect(&eig.vectors) < 1e-10 * n as f64);
        }
    }

    #[test]
    fn workspace_reuse_across_sizes() {
        let mut ws = EighWorkspace::default();
        let mut values = Vec::new();
        for &(n, seed) in &[(40usize, 1u64), (12, 2), (64, 3), (5, 4)] {
            let a = symmetric_test_matrix(n, seed);
            let mut vecs = a.clone();
            eigh_blocked_into(&mut vecs, &mut values, &mut ws).unwrap();
            let eig = Eigh {
                values: values.clone(),
                vectors: vecs,
            };
            assert!(eig_residual(&a, &eig) < 1e-9 * n as f64);
        }
    }

    /// Residual and orthogonality of an `n × k` partial eigenvector set.
    fn assert_partial_quality(a: &Matrix, values: &[f64], vectors: &Matrix, tol: f64) {
        let (n, k) = (a.rows(), vectors.cols());
        for (j, &lambda) in values.iter().enumerate().take(k) {
            let v = vectors.col(j);
            let av = a.matvec(&v);
            for i in 0..n {
                assert!(
                    (av[i] - lambda * v[i]).abs() < tol,
                    "residual {} for pair {j} of n={n}",
                    (av[i] - lambda * v[i]).abs()
                );
            }
        }
        let vtv = vectors.t_matmul(vectors);
        for i in 0..k {
            for j in 0..k {
                let target = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vtv[(i, j)] - target).abs() < tol,
                    "orthogonality defect {} at ({i},{j}), n={n}",
                    (vtv[(i, j)] - target).abs()
                );
            }
        }
    }

    #[test]
    fn partial_residual_and_orthogonality_random() {
        let mut ws = EighWorkspace::default();
        let mut values = Vec::new();
        let mut vectors = Matrix::default();
        for n in [1usize, 2, 5, 24, 61, 96] {
            let a = symmetric_test_matrix(n, 77 + n as u64);
            let k = n / 2 + 1;
            let mut packed = a.clone();
            eigh_partial_into(&mut packed, k, &mut values, &mut vectors, &mut ws).unwrap();
            assert_eq!(values.len(), n, "values must cover the whole spectrum");
            assert_eq!((vectors.rows(), vectors.cols()), (n, k.min(n)));
            let full = eigh(a.clone()).unwrap();
            for (x, y) in values.iter().zip(&full.values) {
                assert!((x - y).abs() < 1e-10, "n={n}: {x} vs {y}");
            }
            assert_partial_quality(&a, &values, &vectors, 1e-9 * n as f64);
        }
    }

    #[test]
    fn partial_with_k_equal_n_is_a_full_solve() {
        let n = 40;
        let a = symmetric_test_matrix(n, 1234);
        let mut ws = EighWorkspace::default();
        let mut values = Vec::new();
        let mut vectors = Matrix::default();
        let mut packed = a.clone();
        eigh_partial_into(&mut packed, n, &mut values, &mut vectors, &mut ws).unwrap();
        assert_partial_quality(&a, &values, &vectors, 1e-9 * n as f64);
    }

    #[test]
    fn partial_handles_degenerate_clusters() {
        // Spectrum with exact triple degeneracies plus near-degenerate
        // (1e-9-split) companions — the Fermi-smearing worst case: inverse
        // iteration must keep cluster members orthogonal, and the
        // Rayleigh–Ritz rotation must assign accurate individual vectors.
        let n = 30;
        let mut target = Vec::with_capacity(n);
        for i in 0..n {
            let base = (i / 5) as f64;
            let offset = match i % 5 {
                0..=2 => 0.0,
                3 => 1e-9,
                _ => 0.4,
            };
            target.push(base + offset);
        }
        let q = eigh(symmetric_test_matrix(n, 4242)).unwrap().vectors;
        let a = q
            .matmul(&Matrix::from_diagonal(&target))
            .matmul(&q.transpose());
        let mut ws = EighWorkspace::default();
        let mut values = Vec::new();
        let mut vectors = Matrix::default();
        let mut packed = a.clone();
        let k = 18; // cuts through a cluster boundary
        eigh_partial_into(&mut packed, k, &mut values, &mut vectors, &mut ws).unwrap();
        for (got, want) in values.iter().zip(&target) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert_partial_quality(&a, &values, &vectors, 1e-8);
    }

    #[test]
    fn empty_and_tiny() {
        let mut ws = EighWorkspace::default();
        let mut values = Vec::new();
        let mut a = Matrix::zeros(0, 0);
        eigh_blocked_into(&mut a, &mut values, &mut ws).unwrap();
        assert!(values.is_empty());
        let mut a = Matrix::from_vec(1, 1, vec![4.0]);
        eigh_blocked_into(&mut a, &mut values, &mut ws).unwrap();
        assert_eq!(values, vec![4.0]);
        assert!((a[(0, 0)].abs() - 1.0).abs() < 1e-15);
    }
}
