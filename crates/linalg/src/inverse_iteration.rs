//! Inverse iteration for selected eigenvectors of a symmetric tridiagonal
//! matrix — stage two of the two-stage eigensolver.
//!
//! Given eigenvalues isolated to machine precision (Sturm bisection or QL on
//! the tridiagonal factor, see [`crate::bisection`] and [`crate::blocked`]),
//! each eigenvector follows from a handful of `O(n)` solves against the
//! shifted matrix `T − λI`, factored once per eigenvalue as `PLU` with
//! partial pivoting (LAPACK `stein`/`gttrf` style). Members of a *cluster*
//! of near-equal eigenvalues would all converge to the same dominant
//! direction, so inside a cluster every iterate is Gram–Schmidt
//! reorthogonalized against the finished cluster members, and the whole
//! cluster is finished with a Rayleigh–Ritz rotation (diagonalize
//! `Zᵀ T Z` in the cluster subspace) so near-degenerate — not exactly
//! degenerate — levels still receive accurate individual eigenvectors. That
//! accuracy matters downstream: under Fermi smearing, members of a
//! near-degenerate frontier cluster can carry *different* occupations, and
//! a mixed basis would leak those differences into the density matrix.
//!
//! Total cost is `O(k · n)` per solve sweep plus `O(c³)` per cluster of size
//! `c` — negligible next to the reduction — and all scratch lives in
//! [`InverseIterScratch`], reused across MD steps.

use crate::eigh::{sort_eigenpairs, tqli, tridiagonalize_into};
use crate::kernels;
use crate::matrix::Matrix;

/// Maximum inverse-iteration sweeps per eigenvector. With shifts accurate to
/// machine precision one solve usually suffices; degenerate-cluster members
/// need a couple more after reorthogonalization.
const MAX_SWEEPS: usize = 5;

/// Cluster threshold relative to the matrix scale: consecutive eigenvalues
/// closer than this are reorthogonalized (and Rayleigh–Ritz-rotated) as one
/// group. Over-clustering is safe — the rotation recovers the individual
/// eigenvectors — so the threshold errs wide.
const CLUSTER_RTOL: f64 = 1e-6;

/// Reusable scratch of [`tridiagonal_eigenvectors_into`]: the `PLU` factor
/// arrays, the iterate, the row-major eigenvector staging area and the
/// per-cluster Rayleigh–Ritz buffers.
#[derive(Debug, Default, Clone)]
pub struct InverseIterScratch {
    /// Diagonal of `U`.
    du: Vec<f64>,
    /// First superdiagonal of `U`.
    u1: Vec<f64>,
    /// Second superdiagonal of `U` (filled in by row swaps).
    u2: Vec<f64>,
    /// Elimination multipliers.
    lmul: Vec<f64>,
    /// Row-swap flags of the partial pivoting.
    swapped: Vec<bool>,
    /// Current iterate.
    x: Vec<f64>,
    /// `T · z` scratch for Rayleigh quotients.
    tz: Vec<f64>,
    /// Finished eigenvectors, one *row* each (contiguous per vector for the
    /// Gram–Schmidt sweeps); transposed into the caller's column layout at
    /// the end.
    zrows: Matrix,
    /// Cluster Gram matrix `Zᵀ T Z` / its eigenvector basis.
    cl_b: Matrix,
    /// Rotated cluster rows.
    cl_rot: Matrix,
    cl_d: Vec<f64>,
    cl_e: Vec<f64>,
    cl_order: Vec<usize>,
}

/// Factor `T − shift·I = P L U` with partial pivoting (`gttrf` for a
/// symmetric tridiagonal). `d`/`e` use the crate convention (`e[0]` unused,
/// `e[i]` couples rows `i−1` and `i`).
fn factor_shifted(d: &[f64], e: &[f64], shift: f64, tiny: f64, s: &mut InverseIterScratch) {
    let n = d.len();
    s.du.clear();
    s.du.extend(d.iter().map(|&x| x - shift));
    s.u1.clear();
    s.u1.resize(n, 0.0);
    s.u2.clear();
    s.u2.resize(n, 0.0);
    s.lmul.clear();
    s.lmul.resize(n, 0.0);
    s.swapped.clear();
    s.swapped.resize(n, false);
    let m = n.saturating_sub(1);
    if m > 0 {
        s.u1[..m].copy_from_slice(&e[1..n]);
    }
    for i in 0..m {
        let b = e[i + 1];
        if s.du[i].abs() >= b.abs() {
            // No swap; guard an exactly-singular pivot.
            if s.du[i] == 0.0 {
                s.du[i] = tiny;
            }
            let l = b / s.du[i];
            s.lmul[i] = l;
            s.du[i + 1] -= l * s.u1[i];
            s.u1[i + 1] -= l * s.u2[i];
        } else {
            // Swap rows i and i+1 (|b| > |du[i]| ≥ 0, so b ≠ 0).
            s.swapped[i] = true;
            let (odd, ou1, ou2) = (s.du[i], s.u1[i], s.u2[i]);
            let l = odd / b;
            s.lmul[i] = l;
            s.du[i] = b;
            s.u1[i] = s.du[i + 1];
            s.u2[i] = s.u1[i + 1];
            s.du[i + 1] = ou1 - l * s.u1[i];
            s.u1[i + 1] = ou2 - l * s.u2[i];
        }
    }
    if s.du[n - 1] == 0.0 {
        s.du[n - 1] = tiny;
    }
}

/// Solve `(T − shift·I) x = b` in place using the current factorization.
fn solve_in_place(s: &InverseIterScratch, x: &mut [f64]) {
    let n = x.len();
    for i in 0..n.saturating_sub(1) {
        if s.swapped[i] {
            x.swap(i, i + 1);
        }
        x[i + 1] -= s.lmul[i] * x[i];
    }
    x[n - 1] /= s.du[n - 1];
    if n >= 2 {
        x[n - 2] = (x[n - 2] - s.u1[n - 2] * x[n - 1]) / s.du[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        x[i] = (x[i] - s.u1[i] * x[i + 1] - s.u2[i] * x[i + 2]) / s.du[i];
    }
}

/// Deterministic start vector: a splitmix-style hash of `(index, position)`
/// so repeated runs (and resumed workspaces) are bitwise identical.
#[inline]
fn seeded_entry(idx: usize, pos: usize) -> f64 {
    let mut z = (idx as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(pos as u64)
        .wrapping_add(0x632BE59BD9B4E019);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

#[inline]
fn norm(x: &[f64]) -> f64 {
    kernels::dot(x, x).sqrt()
}

/// Rayleigh–Ritz rotation of the cluster rows `[r0, r1)` of `zrows`:
/// diagonalize `B = Zᵀ T Z` in the cluster subspace and rotate the rows into
/// the Ritz basis, recovering the true eigenvectors of near-degenerate (not
/// exactly degenerate) levels from the arbitrary orthonormal basis inverse
/// iteration produces.
fn rayleigh_ritz_rotate(d: &[f64], e: &[f64], r0: usize, r1: usize, s: &mut InverseIterScratch) {
    let c = r1 - r0;
    let n = d.len();
    if c < 2 {
        return;
    }
    s.cl_b.resize_zeroed(c, c);
    for q in 0..c {
        let zq = s.zrows.row(r0 + q);
        // tz = T z_q.
        s.tz.clear();
        s.tz.resize(n, 0.0);
        for i in 0..n {
            let mut acc = d[i] * zq[i];
            if i > 0 {
                acc += e[i] * zq[i - 1];
            }
            if i + 1 < n {
                acc += e[i + 1] * zq[i + 1];
            }
            s.tz[i] = acc;
        }
        for p in 0..c {
            let zp = s.zrows.row(r0 + p);
            s.cl_b[(p, q)] = kernels::dot(zp, &s.tz);
        }
    }
    s.cl_b.symmetrize();
    // Small dense eigh of B: Householder + QL on the c×c cluster matrix.
    s.cl_d.clear();
    s.cl_d.resize(c, 0.0);
    s.cl_e.clear();
    s.cl_e.resize(c, 0.0);
    tridiagonalize_into(&mut s.cl_b, true, &mut s.cl_d, &mut s.cl_e);
    if tqli(&mut s.cl_d, &mut s.cl_e, &mut s.cl_b).is_err() {
        // Non-finite cluster matrix: leave the MGS basis untouched.
        return;
    }
    sort_eigenpairs(&mut s.cl_d, &mut s.cl_b, &mut s.cl_order);
    // Rotate: new row p = Σ_q U[q, p] · old row q.
    s.cl_rot.resize_zeroed(c, n);
    for p in 0..c {
        for q in 0..c {
            let u = s.cl_b[(q, p)];
            if u == 0.0 {
                continue;
            }
            kernels::axpy(s.cl_rot.row_mut(p), u, s.zrows.row(r0 + q));
        }
    }
    for p in 0..c {
        s.zrows.row_mut(r0 + p).copy_from_slice(s.cl_rot.row(p));
    }
}

/// The cluster-detection tolerance [`tridiagonal_eigenvectors_into`] uses
/// for the tridiagonal matrix `(d, e)`: consecutive eigenvalues closer than
/// this are treated as one degenerate cluster.
///
/// Exposed so distributed callers can snap their eigenvalue-index shards to
/// the *same* cluster boundaries the inverse iteration will see (via
/// [`crate::bisection::snap_range_to_clusters`]), guaranteeing each cluster
/// a single owner rank.
pub fn cluster_tolerance(d: &[f64], e: &[f64]) -> f64 {
    let n = d.len();
    let tnorm = (0..n)
        .map(|i| d[i].abs() + e[i].abs() + if i + 1 < n { e[i + 1].abs() } else { 0.0 })
        .fold(0.0f64, f64::max)
        .max(1.0);
    CLUSTER_RTOL * tnorm
}

/// Eigenvectors of the symmetric tridiagonal matrix `(d, e)` for the
/// pre-computed eigenvalues `lambda` (ascending), written column-wise into
/// `z` (`n × lambda.len()`, column `j` pairs with `lambda[j]`), by inverse
/// iteration with Gram–Schmidt reorthogonalization and Rayleigh–Ritz
/// rotation inside clusters.
///
/// `z` is reshaped with [`Matrix::resize_zeroed`]; after warmup no
/// allocation survives in the hot path.
///
/// # Panics
/// Panics if `d.len() != e.len()`, `lambda.len() > d.len()` or `lambda` is
/// not sorted ascending.
pub fn tridiagonal_eigenvectors_into(
    d: &[f64],
    e: &[f64],
    lambda: &[f64],
    z: &mut Matrix,
    s: &mut InverseIterScratch,
) {
    tridiagonal_eigenvectors_offset_into(d, e, lambda, 0, z, s);
}

/// Offset-aware form of [`tridiagonal_eigenvectors_into`] for distributed
/// spectrum slicing: `lambda` is a contiguous sub-slice of a globally sorted
/// spectrum starting at global index `seed_offset`, and the deterministic
/// start vectors are keyed on the *global* index `seed_offset + j`.
///
/// With shard boundaries snapped to cluster boundaries (so no cluster
/// straddles ranks and the shift-separation perturbation never crosses a
/// boundary — boundary gaps exceed the cluster tolerance, which dwarfs the
/// `10ε` shift separation), the columns produced by disjoint shards are
/// bitwise identical to the corresponding columns of a single full-window
/// call.
pub fn tridiagonal_eigenvectors_offset_into(
    d: &[f64],
    e: &[f64],
    lambda: &[f64],
    seed_offset: usize,
    z: &mut Matrix,
    s: &mut InverseIterScratch,
) {
    let n = d.len();
    let k = lambda.len();
    assert_eq!(e.len(), n, "d/e length mismatch");
    assert!(k <= n, "more eigenvalues requested than the matrix has");
    assert!(
        lambda.windows(2).all(|w| w[0] <= w[1]),
        "eigenvalues must be sorted ascending"
    );
    z.resize_zeroed(n, k);
    if n == 0 || k == 0 {
        return;
    }
    if n == 1 {
        z[(0, 0)] = 1.0;
        return;
    }
    let tnorm = (0..n)
        .map(|i| d[i].abs() + e[i].abs() + if i + 1 < n { e[i + 1].abs() } else { 0.0 })
        .fold(0.0f64, f64::max)
        .max(1.0);
    let tiny = f64::EPSILON * tnorm;
    let ctol = CLUSTER_RTOL * tnorm;
    let sep = 10.0 * f64::EPSILON * tnorm;

    s.zrows.resize_zeroed(k, n);
    s.x.clear();
    s.x.resize(n, 0.0);

    let mut cluster_start = 0usize;
    let mut prev_shift = f64::NEG_INFINITY;
    for j in 0..k {
        // Perturb coincident shifts so successive factorizations differ.
        let mut shift = lambda[j];
        if shift <= prev_shift + sep {
            shift = prev_shift + sep;
        }
        prev_shift = shift;
        if j > 0 && lambda[j] - lambda[j - 1] > ctol {
            cluster_start = j;
        }
        factor_shifted(d, e, shift, tiny, s);
        for (pos, xv) in s.x.iter_mut().enumerate() {
            *xv = seeded_entry(seed_offset + j, pos);
        }
        let inv = 1.0 / norm(&s.x);
        s.x.iter_mut().for_each(|v| *v *= inv);
        // Inverse-iteration sweeps with in-cluster reorthogonalization. The
        // iterate is moved out of the scratch so the factor arrays stay
        // borrowable; it is moved back after the sweeps.
        let mut x = std::mem::take(&mut s.x);
        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            solve_in_place(s, &mut x);
            let growth = norm(&x);
            // Orthogonalize against the finished members of this cluster.
            for p in cluster_start..j {
                let zp = s.zrows.row(p);
                let dot = kernels::dot(&x, zp);
                kernels::axpy(&mut x, -dot, zp);
            }
            let nrm = norm(&x);
            if nrm == 0.0 {
                // Fully projected out: restart from fresh noise.
                for (pos, xv) in x.iter_mut().enumerate() {
                    *xv = seeded_entry((seed_offset + j).wrapping_add(0x5bd1), pos);
                }
                let inv = 1.0 / norm(&x);
                x.iter_mut().for_each(|v| *v *= inv);
                continue;
            }
            let inv = 1.0 / nrm;
            x.iter_mut().for_each(|v| *v *= inv);
            if converged {
                break;
            }
            // One solve amplifies the target component by ~1/|λ−shift|;
            // once the growth hits the shift accuracy floor, do one final
            // polish sweep and stop.
            if growth >= 0.01 / tiny {
                converged = true;
            }
        }
        s.zrows.row_mut(j).copy_from_slice(&x);
        s.x = x;
        // Cluster finished (next value far, or last index): rotate it.
        let cluster_ends = j + 1 == k || lambda[j + 1] - lambda[j] > ctol;
        if cluster_ends && j > cluster_start {
            rayleigh_ritz_rotate(d, e, cluster_start, j + 1, s);
        }
    }
    // Transpose the row-staged vectors into the caller's column layout.
    for j in 0..k {
        let row = s.zrows.row(j);
        for i in 0..n {
            z[(i, j)] = row[i];
        }
    }
}
