//! Process-global compute budget with per-session leases.
//!
//! Every parallel launch in the workspace ultimately lands on one shared
//! Rayon pool. That is fine for a single simulation, but the moment two
//! sessions coexist in one process each one's per-k fan-out grabs the
//! whole pool, and N sessions oversubscribe it N-fold. The budget turns
//! the implicit pool grab into an explicit, accountable lease:
//!
//! * [`configure_budget`] sets the process-wide thread allowance once
//!   (0 = unlimited, the single-run default — nothing changes for
//!   existing callers).
//! * A session calls [`try_lease`] for the width it wants and holds the
//!   returned [`ComputeLease`] for its lifetime; the grant is clamped to
//!   what is left, and `None` means "budget exhausted, wait your turn"
//!   (the serve admission queue's signal).
//! * [`ComputeLease::scoped`] pins the lease's width into a thread-local
//!   for the duration of a step, and every fan-out site consults
//!   [`parallel_allowed`] before going wide. A width-1 lease therefore
//!   runs the whole step serially — bitwise identical to the parallel
//!   run, because every launch site pins serial ≡ parallel.
//!
//! The budget deliberately lives in `tbmd-linalg` (re-exported from
//! `tbmd-parallel` and the `tbmd` facade): it must be visible from
//! [`crate::batched::batch_map`] — the choke point all batched solves go
//! through — and `tbmd-model` sits below `tbmd-parallel` in the crate
//! DAG, so this is the lowest layer every consumer can see.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Total thread allowance for the process. 0 = unlimited (default).
static TOTAL: AtomicUsize = AtomicUsize::new(0);
/// Threads currently out on leases.
static LEASED: AtomicUsize = AtomicUsize::new(0);
/// Highest `LEASED` ever observed since the last [`reset_high_water`].
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Width the current scope may fan out to. 0 = unconstrained.
    static EFFECTIVE_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// Set the process-wide thread allowance. 0 restores the unlimited
/// single-run default. Takes effect for leases granted after the call;
/// outstanding leases keep their grants.
pub fn configure_budget(total_threads: usize) {
    TOTAL.store(total_threads, Ordering::SeqCst);
}

/// The configured allowance (0 = unlimited).
pub fn budget_total() -> usize {
    TOTAL.load(Ordering::SeqCst)
}

/// Threads currently held by live leases.
pub fn leased_threads() -> usize {
    LEASED.load(Ordering::SeqCst)
}

/// The peak concurrent lease total since the last [`reset_high_water`] —
/// what the serve bench asserts never exceeds [`budget_total`].
pub fn high_water() -> usize {
    HIGH_WATER.load(Ordering::SeqCst)
}

/// Reset the high-water mark (the serve bench calls this between runs).
pub fn reset_high_water() {
    let now = LEASED.load(Ordering::SeqCst);
    HIGH_WATER.store(now, Ordering::SeqCst);
    tbmd_trace::set_gauge(tbmd_trace::Gauge::LeaseHighWater, now as f64);
}

/// A granted slice of the process compute budget. Dropping it returns the
/// threads to the pool.
#[derive(Debug)]
pub struct ComputeLease {
    threads: usize,
    /// Whether the grant was debited from a finite budget (and so must be
    /// credited back on drop).
    tracked: bool,
}

impl ComputeLease {
    /// The width this lease allows: 0 = unconstrained, 1 = serial,
    /// n ≥ 2 = may fan out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with this lease's width pinned as the calling thread's
    /// effective fan-out limit; the previous limit is restored afterwards
    /// (scopes nest — an inner lease temporarily shadows an outer one).
    pub fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        EFFECTIVE_WIDTH.with(|w| {
            let prev = w.replace(self.threads);
            let out = f();
            w.set(prev);
            out
        })
    }
}

impl Drop for ComputeLease {
    fn drop(&mut self) {
        if self.tracked {
            LEASED.fetch_sub(self.threads, Ordering::SeqCst);
        }
    }
}

/// Request up to `want` threads from the budget.
///
/// * Unlimited budget (total = 0): always grants an untracked,
///   unconstrained lease — the single-run fast path costs two atomic
///   loads and changes nothing.
/// * Finite budget: grants `min(want, remaining)` (at least 1), or
///   `None` if nothing remains — callers must back off and retry (the
///   serve scheduler parks the tenant in its admission queue).
pub fn try_lease(want: usize) -> Option<ComputeLease> {
    let total = TOTAL.load(Ordering::SeqCst);
    if total == 0 {
        return Some(ComputeLease {
            threads: 0,
            tracked: false,
        });
    }
    let want = want.max(1);
    loop {
        let leased = LEASED.load(Ordering::SeqCst);
        if leased >= total {
            return None;
        }
        let grant = want.min(total - leased);
        if LEASED
            .compare_exchange(leased, leased + grant, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            let peak = HIGH_WATER.fetch_max(leased + grant, Ordering::SeqCst);
            tbmd_trace::set_gauge(
                tbmd_trace::Gauge::LeaseHighWater,
                peak.max(leased + grant) as f64,
            );
            return Some(ComputeLease {
                threads: grant,
                tracked: true,
            });
        }
    }
}

/// The calling thread's effective fan-out width (0 = unconstrained).
pub fn effective_width() -> usize {
    EFFECTIVE_WIDTH.with(Cell::get)
}

/// Whether the current scope may launch a parallel fan-out. `false`
/// exactly when a width-1 lease is pinned — the throttle every batched
/// launch site consults. Serial and parallel launches are pinned bitwise
/// identical everywhere, so flipping this never changes numerics, only
/// scheduling.
pub fn parallel_allowed() -> bool {
    EFFECTIVE_WIDTH.with(Cell::get) != 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The budget is process-global state; tests touching it serialize
    /// here so `cargo test`'s parallel harness can't interleave them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unlimited_budget_grants_unconstrained_untracked_leases() {
        let _g = lock();
        configure_budget(0);
        let lease = try_lease(8).expect("unlimited grant");
        assert_eq!(lease.threads(), 0);
        assert_eq!(leased_threads(), 0, "untracked lease must not debit");
        lease.scoped(|| {
            assert!(parallel_allowed());
            assert_eq!(effective_width(), 0);
        });
    }

    #[test]
    fn finite_budget_clamps_exhausts_and_refunds() {
        let _g = lock();
        configure_budget(4);
        reset_high_water();
        let a = try_lease(3).expect("first grant");
        assert_eq!(a.threads(), 3);
        // Only 1 left: the want is clamped, not refused.
        let b = try_lease(4).expect("clamped grant");
        assert_eq!(b.threads(), 1);
        assert_eq!(leased_threads(), 4);
        assert_eq!(high_water(), 4);
        // Exhausted: the next tenant must wait.
        assert!(try_lease(1).is_none());
        drop(b);
        assert_eq!(leased_threads(), 3);
        let c = try_lease(1).expect("refunded grant");
        assert_eq!(c.threads(), 1);
        drop(c);
        drop(a);
        assert_eq!(leased_threads(), 0);
        assert_eq!(high_water(), 4, "high water survives refunds");
        configure_budget(0);
    }

    #[test]
    fn width_one_lease_pins_serial_and_scopes_nest() {
        let _g = lock();
        configure_budget(2);
        let outer = try_lease(2).expect("outer");
        let serial = ComputeLease {
            threads: 1,
            tracked: false,
        };
        outer.scoped(|| {
            assert_eq!(effective_width(), 2);
            assert!(parallel_allowed());
            serial.scoped(|| {
                assert_eq!(effective_width(), 1);
                assert!(!parallel_allowed(), "width-1 lease must force serial");
            });
            // Inner scope restored the outer width on exit.
            assert_eq!(effective_width(), 2);
        });
        assert_eq!(effective_width(), 0);
        drop(outer);
        configure_budget(0);
    }
}
