//! Batched solve entry points: one launch shape for every fan-out.
//!
//! The workspace has two places that launch many independent dense solves
//! per MD step: the k-point calculator (one Hermitian embedding per
//! k-point) and the sliced spectrum solvers (one inverse-iteration shard
//! per rank or spectrum window). Before this module each site hand-rolled
//! its own `par_iter_mut` cell vector; now both go through [`batch_map`],
//! which pins the semantics every caller relies on:
//!
//! * **Ordered**: results come back in job order regardless of the thread
//!   partition.
//! * **Deterministic**: each job runs exactly once against its own
//!   workspace; no work stealing can split or reorder a job's arithmetic,
//!   so the parallel launch is bitwise identical to the serial one.
//! * **Allocation-shape stable**: jobs borrow caller-owned workspaces;
//!   the launcher allocates only the O(jobs) cell vector.
//!
//! The typed wrappers ([`eigh_batch`], [`eigenvector_shards_batch`]) keep
//! the per-job numerics exactly what the scalar entry points produce —
//! they exist to share the launch shape, not to change any math.

use crate::blocked::reduced_eigenvectors_offset_into;
use crate::eigh::{eigh_into, EigError, EighWorkspace};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Run `f` once per job, optionally in parallel, returning results in job
/// order. `f(idx, job)` gets the job's index in the batch so callers can
/// seed or label per-job state deterministically.
///
/// A parallel request is additionally gated on the process compute budget
/// ([`crate::budget::parallel_allowed`]): a caller running under a width-1
/// lease is silently demoted to the serial launch, which is bitwise
/// identical by the determinism contract above — the budget changes
/// scheduling, never numerics.
pub fn batch_map<J, T, F>(parallel: bool, jobs: &mut [J], f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(usize, &mut J) -> T + Sync,
{
    let parallel = parallel && crate::budget::parallel_allowed();
    struct Cell<'a, J, T> {
        idx: usize,
        job: &'a mut J,
        out: Option<T>,
    }
    let mut cells: Vec<Cell<'_, J, T>> = jobs
        .iter_mut()
        .enumerate()
        .map(|(idx, job)| Cell {
            idx,
            job,
            out: None,
        })
        .collect();
    if parallel {
        cells
            .par_iter_mut()
            .for_each(|c| c.out = Some(f(c.idx, c.job)));
    } else {
        for c in cells.iter_mut() {
            c.out = Some(f(c.idx, c.job));
        }
    }
    cells
        .into_iter()
        .map(|c| c.out.expect("batch_map job did not run"))
        .collect()
}

/// One full eigendecomposition job: `a` is destroyed into its eigenvector
/// matrix, `values` receives the ascending spectrum (the [`eigh_into`]
/// contract).
pub struct EighJob<'a> {
    pub a: &'a mut Matrix,
    pub values: &'a mut Vec<f64>,
    pub ws: &'a mut EighWorkspace,
}

/// Solve a batch of independent full eigenproblems — the per-k launch of
/// `KPointCalculator`. Fails with the first job's error if any job fails;
/// successful jobs' outputs are still written.
pub fn eigh_batch(parallel: bool, jobs: &mut [EighJob<'_>]) -> Result<(), EigError> {
    batch_map(parallel, jobs, |_, j| eigh_into(j.a, j.values, j.ws))
        .into_iter()
        .collect()
}

/// One spectrum-shard eigenvector job over a shared tridiagonal factor:
/// `lambda` is a contiguous shard of the globally sorted spectrum starting
/// at global index `seed_offset`; `z` receives the shard's eigenvector
/// columns (the [`reduced_eigenvectors_offset_into`] contract, including
/// its bitwise offset-seeding guarantee).
pub struct ShardJob<'a> {
    pub lambda: &'a [f64],
    pub seed_offset: usize,
    pub z: &'a mut Matrix,
    pub ws: &'a mut EighWorkspace,
}

/// Solve a batch of spectrum-shard eigenvector jobs against one reduced
/// matrix `a` — the per-slice launch of the sliced/distributed solvers.
/// Each job must carry a workspace holding the tridiagonal factor of `a`
/// (i.e. `tridiagonalize_blocked_into(a-copy, ws)` already ran on it).
pub fn eigenvector_shards_batch(parallel: bool, a: &Matrix, jobs: &mut [ShardJob<'_>]) {
    batch_map(parallel, jobs, |_, j| {
        reduced_eigenvectors_offset_into(a, j.lambda, j.seed_offset, j.z, j.ws)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::{reduced_eigenvalues_into, tridiagonalize_blocked_into};

    fn test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut m = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        m.symmetrize();
        m
    }

    #[test]
    fn batch_map_preserves_job_order() {
        let mut jobs: Vec<usize> = (0..17).collect();
        let out = batch_map(true, &mut jobs, |idx, j| {
            assert_eq!(idx, *j);
            idx * 3
        });
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn eigh_batch_matches_scalar_calls_bitwise() {
        let sizes = [5usize, 12, 20, 33];
        let mut mats: Vec<Matrix> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| test_matrix(n, 100 + i as u64))
            .collect();
        let mut reference: Vec<(Matrix, Vec<f64>)> = mats
            .iter()
            .map(|m| {
                let mut a = m.clone();
                let mut v = Vec::new();
                let mut ws = EighWorkspace::default();
                eigh_into(&mut a, &mut v, &mut ws).unwrap();
                (a, v)
            })
            .collect();
        let mut values: Vec<Vec<f64>> = vec![Vec::new(); mats.len()];
        let mut wss: Vec<EighWorkspace> =
            (0..mats.len()).map(|_| EighWorkspace::default()).collect();
        let mut jobs: Vec<EighJob<'_>> = mats
            .iter_mut()
            .zip(values.iter_mut())
            .zip(wss.iter_mut())
            .map(|((a, values), ws)| EighJob { a, values, ws })
            .collect();
        eigh_batch(true, &mut jobs).unwrap();
        for ((m, v), (rm, rv)) in mats.iter().zip(&values).zip(reference.drain(..)) {
            assert_eq!(*m, rm, "batched eigenvectors must be bitwise identical");
            assert_eq!(*v, rv, "batched eigenvalues must be bitwise identical");
        }
    }

    #[test]
    fn shard_batch_matches_full_window() {
        let n = 30;
        let a = test_matrix(n, 7);
        // Full window reference.
        let mut af = a.clone();
        let mut ws_full = EighWorkspace::default();
        tridiagonalize_blocked_into(&mut af, &mut ws_full);
        let mut values = Vec::new();
        reduced_eigenvalues_into(&mut ws_full, &mut values).unwrap();
        let mut z_full = Matrix::zeros(0, 0);
        reduced_eigenvectors_offset_into(&af, &values, 0, &mut z_full, &mut ws_full);
        // Two shards through the batched launcher. Shard boundaries sit on
        // well-separated eigenvalues of a random matrix (no degeneracies),
        // so the offset-seeding bitwise guarantee applies.
        let mid = n / 2;
        let mut states: Vec<(Matrix, EighWorkspace)> = (0..2)
            .map(|_| {
                let mut ws = EighWorkspace::default();
                let mut ac = a.clone();
                tridiagonalize_blocked_into(&mut ac, &mut ws);
                (ac, ws)
            })
            .collect();
        let (lo_states, hi_states) = states.split_at_mut(1);
        let mut z0 = Matrix::zeros(0, 0);
        let mut z1 = Matrix::zeros(0, 0);
        let mut jobs = vec![
            ShardJob {
                lambda: &values[..mid],
                seed_offset: 0,
                z: &mut z0,
                ws: &mut lo_states[0].1,
            },
            ShardJob {
                lambda: &values[mid..],
                seed_offset: mid,
                z: &mut z1,
                ws: &mut hi_states[0].1,
            },
        ];
        eigenvector_shards_batch(true, &af, &mut jobs);
        for j in 0..mid {
            for i in 0..n {
                assert_eq!(z0[(i, j)].to_bits(), z_full[(i, j)].to_bits());
            }
        }
        for j in mid..n {
            for i in 0..n {
                assert_eq!(z1[(i, j - mid)].to_bits(), z_full[(i, j)].to_bits());
            }
        }
    }
}
