//! Jacobi eigensolvers for real symmetric matrices.
//!
//! Two variants are provided:
//!
//! * [`jacobi_eigh`] — the classical *sequential cyclic* Jacobi method: sweep
//!   all `(p,q)` pairs in row order, annihilating one off-diagonal element at
//!   a time. Quadratically convergent, ~`12n³` flops per sweep.
//! * [`par_jacobi_eigh`] — the *parallel-ordered* (round-robin tournament)
//!   Jacobi method used on distributed-memory machines of the SC'94 era: each
//!   round selects `n/2` disjoint pivot pairs, computes all their rotation
//!   angles from the same matrix state, and applies them concurrently. This
//!   is the shared-memory twin of the message-passing ring Jacobi implemented
//!   in `tbmd-parallel`; both share the [`round_robin_rounds`] schedule.
//!
//! Jacobi is slower than Householder+QL (`eigh`) on a serial machine but was
//! the method of choice for parallel machines because every round exposes
//! `n/2` independent rotations — the property the parallel engines exploit.

use crate::eigh::{EigError, Eigh};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Default relative off-diagonal tolerance for the Jacobi solvers.
pub const JACOBI_TOL: f64 = 1e-12;

/// Default sweep budget; cyclic Jacobi converges in 6–10 sweeps for
/// well-scaled matrices, so 40 is a generous safety margin.
pub const JACOBI_MAX_SWEEPS: usize = 40;

/// Round-robin (chess tournament) schedule: `n-1` rounds, each containing
/// `n/2` disjoint index pairs, which together cover every unordered pair
/// exactly once. `n` must be even (pad odd sizes with a phantom index and
/// drop its pairs; the helper does this automatically).
///
/// The schedule fixes player `n-1` and rotates the rest — the standard
/// construction. Disjointness within a round is what lets all its rotations
/// be computed and applied in parallel.
pub fn round_robin_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return vec![];
    }
    let m = if n.is_multiple_of(2) { n } else { n + 1 }; // phantom index m-1 when odd
    let rounds = m - 1;
    let mut schedule = Vec::with_capacity(rounds);
    // players[0] is fixed, the rest rotate each round.
    let mut players: Vec<usize> = (0..m).collect();
    for _ in 0..rounds {
        let mut pairs = Vec::with_capacity(m / 2);
        for k in 0..m / 2 {
            let a = players[k];
            let b = players[m - 1 - k];
            let (p, q) = if a < b { (a, b) } else { (b, a) };
            if q < n {
                pairs.push((p, q));
            }
        }
        pairs.sort_unstable();
        schedule.push(pairs);
        // Rotate positions 1..m one step.
        players[1..].rotate_right(1);
    }
    schedule
}

/// Compute the Jacobi rotation `(c, s)` that annihilates `a_pq` given the
/// pivot elements, using the numerically stable formulation from Golub & Van
/// Loan §8.5: `t = sign(θ)/(|θ| + sqrt(θ²+1))` with `θ = (a_qq − a_pp)/(2 a_pq)`.
#[inline]
pub fn jacobi_rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    if apq == 0.0 {
        return (1.0, 0.0);
    }
    let theta = (aqq - app) / (2.0 * apq);
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    (c, t * c)
}

/// Root-sum-square of the strict off-diagonal part.
pub fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s.sqrt()
}

/// Outcome statistics of a Jacobi solve, reported for experiment T4.
#[derive(Debug, Clone, Copy)]
pub struct JacobiStats {
    /// Sweeps (cyclic) or rounds/(n-1) (parallel) performed.
    pub sweeps: usize,
    /// Total plane rotations applied.
    pub rotations: usize,
    /// Final off-diagonal norm relative to the Frobenius norm.
    pub final_off: f64,
}

/// Classical sequential cyclic Jacobi eigendecomposition.
///
/// # Errors
/// [`EigError::NoConvergence`] if the off-diagonal norm has not dropped below
/// `tol · ‖A‖_F` after `max_sweeps` sweeps.
pub fn jacobi_eigh(
    mut a: Matrix,
    tol: f64,
    max_sweeps: usize,
) -> Result<(Eigh, JacobiStats), EigError> {
    assert!(a.is_square(), "Jacobi requires a square matrix");
    let n = a.rows();
    let mut v = Matrix::identity(n);
    let fro = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let mut rotations = 0usize;
    let mut sweeps = 0usize;
    if n > 1 {
        while sweeps < max_sweeps {
            let off = off_diagonal_norm(&a);
            if off <= tol * fro {
                break;
            }
            sweeps += 1;
            for p in 0..n - 1 {
                for q in p + 1..n {
                    let apq = a[(p, q)];
                    // Skip elements already at round-off level; classic
                    // thresholding keeps sweeps cheap near convergence.
                    if apq.abs() <= 0.1 * tol * fro / (n as f64) {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(a[(p, p)], a[(q, q)], apq);
                    apply_rotation_sym(&mut a, p, q, c, s);
                    apply_rotation_cols(&mut v, p, q, c, s);
                    rotations += 1;
                }
            }
        }
        let off = off_diagonal_norm(&a);
        if off > tol * fro * 10.0 {
            return Err(EigError::NoConvergence {
                index: 0,
                iterations: sweeps,
            });
        }
    }
    let stats = JacobiStats {
        sweeps,
        rotations,
        final_off: off_diagonal_norm(&a) / fro,
    };
    Ok((finish(a, v), stats))
}

/// Reusable scratch of [`par_jacobi_eigh_into`]: double-buffered column
/// storage for the matrix and the accumulated rotations, the per-round pivot
/// tables, and the round-robin schedule (cached per matrix size). Buffers
/// grow to the largest `n` seen and are then reused, so one solve per MD
/// step performs no allocation after warmup.
#[derive(Debug, Default, Clone)]
pub struct JacobiWorkspace {
    cols: Vec<Vec<f64>>,
    cols_next: Vec<Vec<f64>>,
    vcols: Vec<Vec<f64>>,
    vcols_next: Vec<Vec<f64>>,
    partner: Vec<Option<(usize, f64, f64, bool)>>,
    rots: Vec<(usize, usize, f64, f64)>,
    schedule: Vec<Vec<(usize, usize)>>,
    schedule_n: usize,
    order: Vec<usize>,
}

impl JacobiWorkspace {
    /// Size a `Vec<Vec<f64>>` column store to `n` columns of length `n`,
    /// reusing the inner allocations.
    fn size_store(store: &mut Vec<Vec<f64>>, n: usize) {
        store.resize_with(n, Vec::new);
        for col in store.iter_mut() {
            col.clear();
            col.resize(n, 0.0);
        }
    }
}

/// Parallel-ordered Jacobi eigendecomposition (round-robin rounds, Rayon).
///
/// Allocating convenience wrapper around [`par_jacobi_eigh_into`].
pub fn par_jacobi_eigh(
    mut a: Matrix,
    tol: f64,
    max_sweeps: usize,
) -> Result<(Eigh, JacobiStats), EigError> {
    let mut ws = JacobiWorkspace::default();
    let mut values = Vec::new();
    let stats = par_jacobi_eigh_into(&mut a, &mut values, &mut ws, tol, max_sweeps)?;
    Ok((Eigh { values, vectors: a }, stats))
}

/// Allocation-free parallel-ordered Jacobi eigendecomposition.
///
/// All `n/2` rotations of a round are computed from the same matrix snapshot
/// and applied as one orthogonal factor `J = Π J_k` (the pairs are disjoint,
/// so the product is order-independent). Column and row updates are each
/// embarrassingly parallel in a column-major layout — exactly the structure
/// the distributed ring-Jacobi in `tbmd-parallel` communicates around.
///
/// On success `a` holds the eigenvector matrix (column `k` pairs with
/// `values[k]`, ascending — the [`crate::eigh::eigh_into`] contract) and all
/// working storage lives in `ws`, reused across calls.
///
/// # Errors
/// [`EigError::NoConvergence`] if the off-diagonal norm has not dropped below
/// `tol · ‖A‖_F` after `max_sweeps` sweeps.
pub fn par_jacobi_eigh_into(
    a: &mut Matrix,
    values: &mut Vec<f64>,
    ws: &mut JacobiWorkspace,
    tol: f64,
    max_sweeps: usize,
) -> Result<JacobiStats, EigError> {
    assert!(a.is_square(), "Jacobi requires a square matrix");
    let n = a.rows();
    values.clear();
    if n <= 1 {
        if n == 1 {
            values.push(a[(0, 0)]);
            a[(0, 0)] = 1.0;
        }
        return Ok(JacobiStats {
            sweeps: 0,
            rotations: 0,
            final_off: 0.0,
        });
    }
    let fro = a.frobenius_norm().max(f64::MIN_POSITIVE);
    // Column-major working storage, double-buffered across rounds.
    JacobiWorkspace::size_store(&mut ws.cols, n);
    JacobiWorkspace::size_store(&mut ws.cols_next, n);
    JacobiWorkspace::size_store(&mut ws.vcols, n);
    JacobiWorkspace::size_store(&mut ws.vcols_next, n);
    for (j, col) in ws.cols.iter_mut().enumerate() {
        for (i, v) in col.iter_mut().enumerate() {
            *v = a[(i, j)];
        }
    }
    for (j, col) in ws.vcols.iter_mut().enumerate() {
        col[j] = 1.0;
    }
    if ws.schedule_n != n {
        ws.schedule = round_robin_rounds(n);
        ws.schedule_n = n;
    }
    let mut rotations = 0usize;
    let mut sweeps = 0usize;
    'outer: while sweeps < max_sweeps {
        if off_norm_cols(&ws.cols) <= tol * fro {
            break 'outer;
        }
        sweeps += 1;
        for round in &ws.schedule {
            // 1. Rotation angles from the current snapshot (disjoint pivots).
            ws.rots.clear();
            ws.rots.extend(round.iter().map(|&(p, q)| {
                let (c, s) = jacobi_rotation(ws.cols[p][p], ws.cols[q][q], ws.cols[q][p]);
                (p, q, c, s)
            }));
            rotations += ws.rots.len();
            // partner[j] = (other index, c, s, is_p_side) for paired columns.
            ws.partner.clear();
            ws.partner.resize(n, None);
            for &(p, q, c, s) in &ws.rots {
                ws.partner[p] = Some((q, c, s, true));
                ws.partner[q] = Some((p, c, s, false));
            }
            // 2. Column update  B = A·J : col_p ← c·col_p − s·col_q,
            //    col_q ← s·col_p + c·col_q.  Each new column reads only its
            //    partner, so writing into the second buffer is race-free.
            rotate_columns(&ws.cols, &mut ws.cols_next, &ws.partner);
            std::mem::swap(&mut ws.cols, &mut ws.cols_next);
            // 3. Row update  A' = Jᵀ·B : rows p and q mix. In column storage
            //    this touches only elements (p, j) and (q, j) of each column,
            //    so it is parallel over columns.
            let rots_ref = &ws.rots;
            ws.cols.par_iter_mut().for_each(|col| {
                for &(p, q, c, s) in rots_ref {
                    let (xp, xq) = (col[p], col[q]);
                    col[p] = c * xp - s * xq;
                    col[q] = s * xp + c * xq;
                }
            });
            // 4. Eigenvector update V ← V·J (columns rotate like A's).
            rotate_columns(&ws.vcols, &mut ws.vcols_next, &ws.partner);
            std::mem::swap(&mut ws.vcols, &mut ws.vcols_next);
        }
    }
    let final_off = off_norm_cols(&ws.cols);
    if final_off > tol * fro * 10.0 {
        return Err(EigError::NoConvergence {
            index: 0,
            iterations: sweeps,
        });
    }
    // Sorted eigenpairs: diagonal entries ascending, eigenvector columns
    // permuted to match, written straight into `a`.
    ws.order.clear();
    ws.order.extend(0..n);
    ws.order.sort_by(|&x, &y| {
        ws.cols[x][x]
            .partial_cmp(&ws.cols[y][y])
            .expect("NaN eigenvalue")
    });
    values.extend(ws.order.iter().map(|&k| ws.cols[k][k]));
    for (new_col, &old_col) in ws.order.iter().enumerate() {
        let src = &ws.vcols[old_col];
        for i in 0..n {
            a[(i, new_col)] = src[i];
        }
    }
    Ok(JacobiStats {
        sweeps,
        rotations,
        final_off: final_off / fro,
    })
}

/// Apply one round's disjoint column rotations, reading `src` and writing
/// `dst` (same arithmetic, element order and results as the original
/// per-round rebuild, without its allocations).
fn rotate_columns(
    src: &[Vec<f64>],
    dst: &mut [Vec<f64>],
    partner: &[Option<(usize, f64, f64, bool)>],
) {
    dst.par_chunks_mut(1).enumerate().for_each(|(j, slot)| {
        let out = &mut slot[0];
        match partner[j] {
            None => out.copy_from_slice(&src[j]),
            Some((k, c, s, is_p)) => {
                let (cj, ck) = (&src[j], &src[k]);
                if is_p {
                    for ((o, &x), &y) in out.iter_mut().zip(cj).zip(ck) {
                        *o = c * x - s * y;
                    }
                } else {
                    for ((o, &x), &y) in out.iter_mut().zip(ck).zip(cj) {
                        *o = s * x + c * y;
                    }
                }
            }
        }
    });
}

/// Apply the two-sided rotation `Jᵀ A J` in place, exploiting symmetry.
fn apply_rotation_sym(a: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = a.rows();
    let app = a[(p, p)];
    let aqq = a[(q, q)];
    let apq = a[(p, q)];
    a[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    a[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    a[(p, q)] = 0.0;
    a[(q, p)] = 0.0;
    for k in 0..n {
        if k != p && k != q {
            let akp = a[(k, p)];
            let akq = a[(k, q)];
            a[(k, p)] = c * akp - s * akq;
            a[(p, k)] = a[(k, p)];
            a[(k, q)] = s * akp + c * akq;
            a[(q, k)] = a[(k, q)];
        }
    }
}

/// Rotate columns `p`, `q` of `v`: `v ← v · J(p,q,c,s)`.
fn apply_rotation_cols(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    for k in 0..v.rows() {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

fn off_norm_cols(cols: &[Vec<f64>]) -> f64 {
    let mut s = 0.0;
    for (j, col) in cols.iter().enumerate() {
        for (i, &x) in col.iter().enumerate() {
            if i != j {
                s += x * x;
            }
        }
    }
    s.sqrt()
}

/// Extract sorted eigenpairs from a (nearly) diagonalized matrix and the
/// accumulated rotations.
fn finish(a: Matrix, v: Matrix) -> Eigh {
    let n = a.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| a[(x, x)].partial_cmp(&a[(y, y)]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&k| a[(k, k)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigh { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh::{eig_residual, eigh, orthogonality_defect};

    fn symmetric_test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn round_robin_covers_all_pairs_once() {
        for n in [2usize, 3, 4, 5, 8, 9, 16] {
            let rounds = round_robin_rounds(n);
            let mut seen = std::collections::HashSet::new();
            for round in &rounds {
                let mut used = std::collections::HashSet::new();
                for &(p, q) in round {
                    assert!(p < q && q < n, "bad pair ({p},{q}) for n={n}");
                    // Disjointness within the round.
                    assert!(used.insert(p), "index {p} reused in round (n={n})");
                    assert!(used.insert(q), "index {q} reused in round (n={n})");
                    assert!(seen.insert((p, q)), "pair ({p},{q}) repeated (n={n})");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "pair coverage wrong for n={n}");
        }
    }

    #[test]
    fn rotation_annihilates_pivot() {
        let (app, aqq, apq) = (2.0, -1.0, 0.7);
        let (c, s) = jacobi_rotation(app, aqq, apq);
        // New off-diagonal element of the 2x2 block after JᵀAJ.
        let new_apq = (c * c - s * s) * apq + s * c * (app - aqq);
        assert!(new_apq.abs() < 1e-15);
        assert!((c * c + s * s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cyclic_jacobi_matches_ql() {
        for n in [2usize, 5, 12, 24] {
            let a = symmetric_test_matrix(n, 42 + n as u64);
            let reference = eigh(a.clone()).unwrap();
            let (jac, stats) = jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap();
            assert!(
                stats.sweeps <= 15,
                "too many sweeps at n={n}: {}",
                stats.sweeps
            );
            for (x, y) in jac.values.iter().zip(&reference.values) {
                assert!((x - y).abs() < 1e-9, "n={n}: {x} vs {y}");
            }
            assert!(eig_residual(&a, &jac) < 1e-9);
            assert!(orthogonality_defect(&jac.vectors) < 1e-10);
        }
    }

    #[test]
    fn parallel_jacobi_matches_ql() {
        for n in [2usize, 3, 7, 16, 33] {
            let a = symmetric_test_matrix(n, 7 + n as u64);
            let reference = eigh(a.clone()).unwrap();
            let (jac, _) = par_jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap();
            for (x, y) in jac.values.iter().zip(&reference.values) {
                assert!((x - y).abs() < 1e-9, "n={n}: {x} vs {y}");
            }
            assert!(eig_residual(&a, &jac) < 1e-9, "residual at n={n}");
            assert!(
                orthogonality_defect(&jac.vectors) < 1e-10,
                "orthogonality at n={n}"
            );
        }
    }

    #[test]
    fn diagonal_input_converges_immediately() {
        let a = Matrix::from_diagonal(&[5.0, 1.0, 3.0]);
        let (eig, stats) = jacobi_eigh(a, JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap();
        assert_eq!(stats.sweeps, 0);
        assert_eq!(stats.rotations, 0);
        assert_eq!(eig.values, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn one_by_one_and_trivial() {
        let (eig, _) = par_jacobi_eigh(Matrix::from_vec(1, 1, vec![2.5]), 1e-12, 10).unwrap();
        assert_eq!(eig.values, vec![2.5]);
        assert!(round_robin_rounds(0).is_empty());
        assert!(round_robin_rounds(1).is_empty());
    }

    #[test]
    fn off_diagonal_norm_basics() {
        let mut a = Matrix::identity(3);
        assert_eq!(off_diagonal_norm(&a), 0.0);
        a[(0, 1)] = 3.0;
        a[(1, 0)] = 3.0;
        a[(0, 2)] = 4.0;
        a[(2, 0)] = 4.0;
        assert!((off_diagonal_norm(&a) - (50.0f64).sqrt()).abs() < 1e-14);
    }
}
