//! Register-tiled microkernels for the dense and sparse hot paths.
//!
//! Every routine here is written for autovectorization on a single core:
//! fixed-width accumulator lanes break the latency chain of naive
//! `acc += x*y` reductions (one add per 4–5 cycles) into independent
//! streams the compiler can keep in vector registers, and the GEMM panel
//! kernel unrolls the inner dimension so output rows are loaded and stored
//! once per 4 rank-1 updates instead of once per update. No explicit SIMD
//! intrinsics are used — the loops are shaped so LLVM's autovectorizer
//! emits packed AVX/AVX-512 code — and rustc performs no FMA contraction
//! or reassociation by default, so every kernel has a fixed, documented
//! IEEE summation order. That makes the serial and Rayon-parallel callers
//! bitwise identical by construction: each output element's accumulation
//! order depends only on the inner index, never on the thread partition.
//!
//! All kernels are generic over [`Scalar`] so the f64 production path and
//! the opt-in f32 Chebyshev path (`tbmd-linscale`) instantiate the same
//! code.

/// Crossover below which the blocked/tiled entry points in `matrix.rs` take
/// the short naive loop instead. Register tiling pays panel-setup and
/// remainder-handling overhead that a ≤16×16 product (tiny test cells,
/// 4-orbital blocks) never amortizes — the same reasoning as
/// `TWO_STAGE_MIN_DIM` in `tbmd-model`, which keeps small systems on the
/// one-stage eigensolver. 16 keeps every matrix that fits in two cache
/// lines per row on the naive path while letting real Hamiltonians
/// (N ≥ 32) hit the tiled kernels.
pub const KERNEL_MIN_DIM: usize = 16;

/// Accumulator lanes in [`dot`]. Eight f64 lanes fill one AVX-512 register
/// (or two AVX2 registers) and cover the ~4-cycle add latency at 2
/// adds/cycle throughput.
const DOT_LANES: usize = 8;

/// Accumulator lanes in the shared-operand dots ([`dot2`], [`dot4`]) and
/// the sparse gather dot — fewer lanes per output keeps the register
/// budget bounded when several dots run in one pass.
const DOT2_LANES: usize = 4;

/// Scalar element type of a kernel: the f64 production precision or the
/// f32 mixed-precision Chebyshev path.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
{
    const ZERO: Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// Eight-lane dot product of two contiguous slices.
///
/// Lane `l` accumulates elements `l, l+8, l+16, …`; the lanes are reduced
/// pairwise `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` and the tail (< 8
/// elements) is added last in ascending order. The order is fixed — the
/// result is deterministic and identical from every caller — but it is a
/// *different* fixed order than a single-accumulator loop, so replacing a
/// naive dot with this one is a round-off-level (≤ ~n·ε relative) change.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [T::ZERO; DOT_LANES];
    let mut xc = x.chunks_exact(DOT_LANES);
    let mut yc = y.chunks_exact(DOT_LANES);
    for (cx, cy) in xc.by_ref().zip(yc.by_ref()) {
        for l in 0..DOT_LANES {
            acc[l] += cx[l] * cy[l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        s += a * b;
    }
    s
}

/// Two dots sharing the left operand: `(x·y, x·z)` in one pass.
///
/// Four lanes per output (eight live accumulators). Used where one vector
/// is dotted against two others back to back — e.g. the `w·v` / `v·v`
/// panel corrections in the blocked tridiagonalization — halving the loads
/// of the shared operand.
#[inline]
pub fn dot2<T: Scalar>(x: &[T], y: &[T], z: &[T]) -> (T, T) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    let mut ay = [T::ZERO; DOT2_LANES];
    let mut az = [T::ZERO; DOT2_LANES];
    let n = x.len();
    let whole = n - n % DOT2_LANES;
    let mut i = 0;
    while i < whole {
        for l in 0..DOT2_LANES {
            let xv = x[i + l];
            ay[l] += xv * y[i + l];
            az[l] += xv * z[i + l];
        }
        i += DOT2_LANES;
    }
    let mut sy = (ay[0] + ay[1]) + (ay[2] + ay[3]);
    let mut sz = (az[0] + az[1]) + (az[2] + az[3]);
    while i < n {
        sy += x[i] * y[i];
        sz += x[i] * z[i];
        i += 1;
    }
    (sy, sz)
}

/// Four dots sharing the left operand: `x·yj` for four right-hand sides.
///
/// The SYRK panel kernel uses this to price four output entries per pass
/// over a row, so each element of `x` is loaded once per four entries
/// instead of once per entry.
#[inline]
pub fn dot4<T: Scalar>(x: &[T], y0: &[T], y1: &[T], y2: &[T], y3: &[T]) -> [T; 4] {
    let n = x.len();
    debug_assert!(y0.len() == n && y1.len() == n && y2.len() == n && y3.len() == n);
    let mut a0 = [T::ZERO; DOT2_LANES];
    let mut a1 = [T::ZERO; DOT2_LANES];
    let mut a2 = [T::ZERO; DOT2_LANES];
    let mut a3 = [T::ZERO; DOT2_LANES];
    let whole = n - n % DOT2_LANES;
    let mut i = 0;
    while i < whole {
        for l in 0..DOT2_LANES {
            let xv = x[i + l];
            a0[l] += xv * y0[i + l];
            a1[l] += xv * y1[i + l];
            a2[l] += xv * y2[i + l];
            a3[l] += xv * y3[i + l];
        }
        i += DOT2_LANES;
    }
    let mut s = [
        (a0[0] + a0[1]) + (a0[2] + a0[3]),
        (a1[0] + a1[1]) + (a1[2] + a1[3]),
        (a2[0] + a2[1]) + (a2[2] + a2[3]),
        (a3[0] + a3[1]) + (a3[2] + a3[3]),
    ];
    while i < n {
        let xv = x[i];
        s[0] += xv * y0[i];
        s[1] += xv * y1[i];
        s[2] += xv * y2[i];
        s[3] += xv * y3[i];
        i += 1;
    }
    s
}

/// `y += a * x`. A plain streaming update the autovectorizer already
/// handles; exposed so call sites share one spelling (and one flop count).
#[inline]
pub fn axpy<T: Scalar>(y: &mut [T], a: T, x: &[T]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// `y += a * x + b * w`, evaluated left-to-right per element
/// (`(y + a·x) + b·w`). This is the rank-2 trailing-update shape of the
/// blocked tridiagonalization; fusing the two AXPYs halves the traffic on
/// `y`.
#[inline]
pub fn axpy2<T: Scalar>(y: &mut [T], a: T, x: &[T], b: T, w: &[T]) {
    debug_assert_eq!(y.len(), x.len());
    debug_assert_eq!(y.len(), w.len());
    for i in 0..y.len() {
        y[i] = y[i] + a * x[i] + b * w[i];
    }
}

/// How many `(p, j)` rank-1 updates the GEMM panel kernel fuses per pass
/// over an output row: output rows are loaded/stored once per
/// `GEMM_UNROLL` inner-index steps.
pub const GEMM_UNROLL: usize = 4;

/// GEMM panel kernel: `out_row += Σ_p a_row[p] · b[p][..]` for
/// `p ∈ [p0, p1)`, with `b` given as a row-major slice of row stride
/// `ldb ≥ n`.
///
/// The inner dimension is unrolled by [`GEMM_UNROLL`]: each output element
/// receives `((o + a0·b0) + a1·b1) + a2·b2 + a3·b3`, i.e. the adds land in
/// ascending-`p` order exactly as in a naive `i-k-j` loop, so the result
/// is bitwise identical to that reference order regardless of how callers
/// band the output rows.
#[inline]
pub fn gemm_row<T: Scalar>(orow: &mut [T], arow: &[T], b: &[T], ldb: usize, p0: usize, p1: usize) {
    let n = orow.len();
    let mut p = p0;
    while p + GEMM_UNROLL <= p1 {
        let a0 = arow[p];
        let a1 = arow[p + 1];
        let a2 = arow[p + 2];
        let a3 = arow[p + 3];
        let b0 = &b[p * ldb..p * ldb + n];
        let b1 = &b[(p + 1) * ldb..(p + 1) * ldb + n];
        let b2 = &b[(p + 2) * ldb..(p + 2) * ldb + n];
        let b3 = &b[(p + 3) * ldb..(p + 3) * ldb + n];
        for j in 0..n {
            orow[j] = (((orow[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        p += GEMM_UNROLL;
    }
    while p < p1 {
        let av = arow[p];
        axpy(orow, av, &b[p * ldb..p * ldb + n]);
        p += 1;
    }
}

/// SYRK lower-triangle row block: fill `out[i][0..=i]` for one row `i`
/// with dots of row `i` against rows `0..=i` of `a`, four entries per
/// pass via [`dot4`].
///
/// Each entry's accumulation order depends only on the inner index, so the
/// serial and row-parallel callers agree bitwise.
#[inline]
pub fn syrk_row<T: Scalar>(orow: &mut [T], i: usize, a: &[T], lda: usize) {
    let arow = &a[i * lda..i * lda + lda];
    let mut j = 0;
    while j + 4 <= i + 1 {
        let s = dot4(
            arow,
            &a[j * lda..j * lda + lda],
            &a[(j + 1) * lda..(j + 1) * lda + lda],
            &a[(j + 2) * lda..(j + 2) * lda + lda],
            &a[(j + 3) * lda..(j + 3) * lda + lda],
        );
        orow[j] = s[0];
        orow[j + 1] = s[1];
        orow[j + 2] = s[2];
        orow[j + 3] = s[3];
        j += 4;
    }
    while j <= i {
        orow[j] = dot(arow, &a[j * lda..j * lda + lda]);
        j += 1;
    }
}

/// Gathered sparse dot over an index/value pair list: `Σ (c,v) v·x[c]`.
///
/// Four accumulator lanes hide the gather latency of `x[c]`; the tail is
/// added last in list order. This is the CSR/region row kernel of the
/// linear-scaling Chebyshev engines.
#[inline]
pub fn sparse_dot<T: Scalar>(pairs: &[(usize, T)], x: &[T]) -> T {
    let mut acc = [T::ZERO; DOT2_LANES];
    let mut it = pairs.chunks_exact(DOT2_LANES);
    for c in it.by_ref() {
        for l in 0..DOT2_LANES {
            let (idx, v) = c[l];
            acc[l] += v * x[idx];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &(idx, v) in it.remainder() {
        s += v * x[idx];
    }
    s
}

/// Gathered sparse dot over split index/value slices (CSR row layout).
#[inline]
pub fn sparse_dot_csr<T: Scalar>(idx: &[usize], vals: &[T], x: &[T]) -> T {
    debug_assert_eq!(idx.len(), vals.len());
    let mut acc = [T::ZERO; DOT2_LANES];
    let mut ic = idx.chunks_exact(DOT2_LANES);
    let mut vc = vals.chunks_exact(DOT2_LANES);
    for (ci, cv) in ic.by_ref().zip(vc.by_ref()) {
        for l in 0..DOT2_LANES {
            acc[l] += cv[l] * x[ci[l]];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&i, &v) in ic.remainder().iter().zip(vc.remainder()) {
        s += v * x[i];
    }
    s
}

/// [`sparse_dot_csr`] over compressed `u32` column indices — the layout
/// the mixed-precision f32 operator mirror uses (12 bytes per entry
/// instead of 24, so the f32 recurrence step actually halves memory
/// traffic). Same lane structure and summation order as the other two
/// sparse dots: all three agree bitwise on identical data.
#[inline]
pub fn sparse_dot_u32<T: Scalar>(idx: &[u32], vals: &[T], x: &[T]) -> T {
    debug_assert_eq!(idx.len(), vals.len());
    let mut acc = [T::ZERO; DOT2_LANES];
    let mut ic = idx.chunks_exact(DOT2_LANES);
    let mut vc = vals.chunks_exact(DOT2_LANES);
    for (ci, cv) in ic.by_ref().zip(vc.by_ref()) {
        for l in 0..DOT2_LANES {
            acc[l] += cv[l] * x[ci[l] as usize];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&i, &v) in ic.remainder().iter().zip(vc.remainder()) {
        s += v * x[i as usize];
    }
    s
}

/// Dense row-major matrix–vector product `y = A·x` via [`dot`] per row.
#[inline]
pub fn matvec_rows<T: Scalar>(a: &[T], cols: usize, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), cols);
    for (i, yv) in y.iter_mut().enumerate() {
        *yv = dot(&a[i * cols..(i + 1) * cols], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64, shift: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * scale + shift).collect()
    }

    fn naive_dot(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn dot_matches_naive_to_roundoff() {
        for n in [0, 1, 7, 8, 9, 16, 31, 64, 100] {
            let x = seq(n, 0.37, -3.1);
            let y = seq(n, -0.11, 2.2);
            let tiled = dot(&x, &y);
            let re = naive_dot(&x, &y);
            let scale: f64 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum::<f64>();
            assert!(
                (tiled - re).abs() <= 1e-13 * scale.max(1.0),
                "n={n}: {tiled} vs {re}"
            );
        }
    }

    #[test]
    fn dot_is_deterministic() {
        let x = seq(77, 0.9, -0.4);
        let y = seq(77, -1.3, 0.8);
        assert_eq!(dot(&x, &y).to_bits(), dot(&x, &y).to_bits());
    }

    #[test]
    fn dot2_and_dot4_match_separate_dots_bitwise() {
        // dot2/dot4 use the same 4-lane order as each other, and must be
        // exactly the order-stable value a 4-lane single dot would give.
        for n in [3, 4, 12, 29, 64] {
            let x = seq(n, 0.21, 1.0);
            let y = seq(n, -0.43, 0.5);
            let z = seq(n, 0.77, -2.0);
            let w = seq(n, 0.05, 0.0);
            let (dy, dz) = dot2(&x, &y, &z);
            let s = dot4(&x, &y, &z, &w, &x);
            assert_eq!(dy.to_bits(), s[0].to_bits());
            assert_eq!(dz.to_bits(), s[1].to_bits());
            let (dw, dx) = dot2(&x, &w, &x);
            assert_eq!(dw.to_bits(), s[2].to_bits());
            assert_eq!(dx.to_bits(), s[3].to_bits());
        }
    }

    #[test]
    fn gemm_row_is_bitwise_ascending_p() {
        // The unrolled kernel must match the naive i-k-j accumulation
        // exactly (same add order per element).
        let (k, n) = (13, 9);
        let a = seq(k, 0.3, -1.0);
        let b: Vec<f64> = (0..k * n)
            .map(|i| ((i * 37 % 101) as f64) * 0.01 - 0.5)
            .collect();
        let mut out = seq(n, 0.0, 0.25);
        let mut reference = out.clone();
        gemm_row(&mut out, &a, &b, n, 0, k);
        for p in 0..k {
            for j in 0..n {
                reference[j] += a[p] * b[p * n + j];
            }
        }
        for j in 0..n {
            assert_eq!(out[j].to_bits(), reference[j].to_bits(), "col {j}");
        }
    }

    #[test]
    fn sparse_dots_agree() {
        let x = seq(50, 0.13, -0.7);
        let pairs: Vec<(usize, f64)> = (0..23)
            .map(|i| (i * 2 + 1, (i as f64) * 0.3 - 2.0))
            .collect();
        let idx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let vals: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let a = sparse_dot(&pairs, &x);
        let b = sparse_dot_csr(&idx, &vals, &x);
        assert_eq!(a.to_bits(), b.to_bits());
        let naive: f64 = pairs.iter().map(|&(c, v)| v * x[c]).sum();
        assert!((a - naive).abs() < 1e-13 * naive.abs().max(1.0));
    }

    #[test]
    fn f32_instantiation_tracks_f64() {
        let x = seq(40, 0.17, -1.0);
        let y = seq(40, -0.29, 0.6);
        let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
        let d64 = dot(&x, &y);
        let d32 = dot(&xf, &yf) as f64;
        assert!((d64 - d32).abs() < 1e-4 * d64.abs().max(1.0));
    }

    #[test]
    fn axpy2_left_to_right_order() {
        let mut y = seq(11, 0.4, 1.0);
        let x = seq(11, -0.2, 0.3);
        let w = seq(11, 0.6, -0.9);
        let mut reference = y.clone();
        axpy2(&mut y, 2.0, &x, -0.5, &w);
        for i in 0..11 {
            reference[i] = reference[i] + 2.0 * x[i] + (-0.5) * w[i];
        }
        for i in 0..11 {
            assert_eq!(y[i].to_bits(), reference[i].to_bits());
        }
    }
}
