//! Symmetric eigensolver: Householder tridiagonalization followed by the
//! implicit-shift QL iteration.
//!
//! This is the classic EISPACK/`tred2`+`tqli` pair (Numerical Recipes, ch. 11)
//! that tight-binding MD codes of the early 1990s ran at every timestep. The
//! reduction costs `4n³/3` flops (plus the same again for accumulating the
//! orthogonal transformation) and the QL iteration `~3n³` in the eigenvector
//! update, so the whole solve is O(n³) — the term that dominates a TBMD step
//! and that the parallel engines in `tbmd-parallel` attack.

use crate::matrix::Matrix;

/// Eigendecomposition of a real symmetric matrix.
///
/// Invariants (verified by the test-suite and by property tests):
/// `values` is sorted ascending, `vectors` is orthogonal, and
/// `A · vectors.col(k) = values[k] · vectors.col(k)` for every `k`.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors stored column-wise: column `k` pairs with `values[k]`.
    pub vectors: Matrix,
}

/// Errors the symmetric eigensolvers can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The QL iteration failed to deflate an eigenvalue within the sweep
    /// budget; in practice this only happens for matrices containing NaN or
    /// infinities.
    NoConvergence { index: usize, iterations: usize },
    /// The input matrix is not square.
    NotSquare { rows: usize, cols: usize },
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NoConvergence { index, iterations } => write!(
                f,
                "QL iteration for eigenvalue {index} did not converge within {iterations} iterations"
            ),
            EigError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
        }
    }
}

impl std::error::Error for EigError {}

/// Maximum QL iterations permitted per eigenvalue before reporting failure.
const MAX_QL_ITERS: usize = 64;

/// Full eigendecomposition of a symmetric matrix.
///
/// The input is consumed (the reduction works in place on a copy would force
/// a clone anyway — callers that still need `a` should clone explicitly).
///
/// # Errors
/// [`EigError::NotSquare`] for rectangular input, [`EigError::NoConvergence`]
/// if the QL iteration stalls (non-finite input).
pub fn eigh(mut a: Matrix) -> Result<Eigh, EigError> {
    let mut values = Vec::new();
    let mut ws = EighWorkspace::default();
    eigh_into(&mut a, &mut values, &mut ws)?;
    Ok(Eigh { values, vectors: a })
}

/// Eigenvalues only (skips accumulating the orthogonal transformation and the
/// eigenvector updates — roughly 3× cheaper than [`eigh`]).
pub fn eigvalsh(mut a: Matrix) -> Result<Vec<f64>, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(vec![]);
    }
    let (mut d, mut e) = tridiagonalize(&mut a, false);
    // `a` is garbage in this mode; hand tqli a dummy 0-row matrix so the
    // rotation loop body is a no-op.
    let mut dummy = Matrix::zeros(0, n);
    tqli(&mut d, &mut e, &mut dummy)?;
    d.sort_by(|a, b| a.partial_cmp(b).expect("NaN eigenvalue"));
    Ok(d)
}

/// Reusable scratch for [`eigh_into`] and the blocked/partial solvers in
/// [`crate::blocked`] and [`crate::inverse_iteration`]: the subdiagonal
/// buffer, the sort permutation, and the blocked-pipeline scratch. Buffers
/// grow to the largest `n` seen and are then reused, so repeated solves (one
/// per MD step) perform no allocation after warmup.
#[derive(Debug, Default, Clone)]
pub struct EighWorkspace {
    pub(crate) e: Vec<f64>,
    pub(crate) order: Vec<usize>,
    pub(crate) blocked: crate::blocked::BlockedScratch,
    pub(crate) inviter: crate::inverse_iteration::InverseIterScratch,
}

impl EighWorkspace {
    /// The tridiagonal factor `(d, e)` left in the workspace by
    /// [`crate::blocked::tridiagonalize_blocked_into`] (`e[0]` unused,
    /// `e[i]` couples rows `i−1` and `i`).
    ///
    /// Distributed spectrum slicing needs this to run the rank-shardable
    /// bisection ([`crate::bisection::tridiagonal_eigenvalues_range_into`])
    /// and cluster snapping directly on the factor.
    pub fn tridiagonal_factor(&self) -> (&[f64], &[f64]) {
        (&self.blocked.d, &self.blocked.e)
    }
}

/// Allocation-free eigendecomposition.
///
/// On success `a` is overwritten with the eigenvector matrix (column `k`
/// pairs with `values[k]`, ascending — the same invariants as [`eigh`], which
/// is now a thin wrapper over this). Only `values` and the workspace grow,
/// and only up to the largest `n` seen across calls.
///
/// # Errors
/// Same as [`eigh`].
pub fn eigh_into(
    a: &mut Matrix,
    values: &mut Vec<f64>,
    ws: &mut EighWorkspace,
) -> Result<(), EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    values.clear();
    values.resize(n, 0.0);
    if n == 0 {
        return Ok(());
    }
    ws.e.clear();
    ws.e.resize(n, 0.0);
    tridiagonalize_into(a, true, values, &mut ws.e);
    tqli(values, &mut ws.e, a)?;
    sort_eigenpairs(values, a, &mut ws.order);
    Ok(())
}

/// Householder reduction of a symmetric matrix to tridiagonal form
/// (EISPACK `tred2`).
///
/// On return `a` holds the accumulated orthogonal matrix `Q` such that
/// `Qᵀ A Q = T` when `accumulate` is true (otherwise `a` is scratch). The
/// diagonal of `T` is returned in `d`, the subdiagonal in `e[1..]`.
pub fn tridiagonalize(a: &mut Matrix, accumulate: bool) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tridiagonalize_into(a, accumulate, &mut d, &mut e);
    (d, e)
}

/// [`tridiagonalize`] writing into caller-provided buffers (`d.len() == e.len()
/// == a.rows() >= 1`) — the allocation-free path used by [`eigh_into`].
pub fn tridiagonalize_into(a: &mut Matrix, accumulate: bool, d: &mut [f64], e: &mut [f64]) {
    let n = a.rows();
    assert!(n >= 1 && d.len() == n && e.len() == n);
    if n == 1 {
        d[0] = a[(0, 0)];
        e[0] = 0.0;
        a[(0, 0)] = 1.0;
        return;
    }
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| a[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    a[(i, k)] /= scale;
                    h += a[(i, k)] * a[(i, k)];
                }
                let mut f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    if accumulate {
                        a[(j, i)] = a[(i, j)] / h;
                    }
                    // g = (A u)_j using the lower triangle only.
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += a[(j, k)] * a[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += a[(k, j)] * a[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * a[(i, j)];
                }
                let hh = f / (h + h);
                // Rank-2 update A ← A - u pᵀ - p uᵀ restricted to the
                // leading (l+1)×(l+1) block.
                for j in 0..=l {
                    let fj = a[(i, j)];
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        a[(j, k)] -= fj * e[k] + gj * a[(i, k)];
                    }
                }
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    if accumulate {
        // Accumulate the product of Householder reflectors into `a`.
        for i in 0..n {
            if i > 0 {
                let l = i;
                if d[i] != 0.0 {
                    for j in 0..l {
                        let mut g = 0.0;
                        for k in 0..l {
                            g += a[(i, k)] * a[(k, j)];
                        }
                        for k in 0..l {
                            let delta = g * a[(k, i)];
                            a[(k, j)] -= delta;
                        }
                    }
                }
            }
            d[i] = a[(i, i)];
            a[(i, i)] = 1.0;
            if i > 0 {
                for j in 0..i {
                    a[(j, i)] = 0.0;
                    a[(i, j)] = 0.0;
                }
            }
        }
    } else {
        for i in 0..n {
            d[i] = a[(i, i)];
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix
/// (EISPACK `tql2` / NR `tqli`).
///
/// `d` holds the diagonal, `e[1..]` the subdiagonal on entry; on success `d`
/// holds the (unsorted) eigenvalues. Every plane rotation applied to `T` is
/// simultaneously applied to the columns of `z`, so passing the `Q` from
/// [`tridiagonalize`] yields eigenvectors of the original matrix. Passing a
/// `0×n` matrix skips the eigenvector work entirely.
pub fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), EigError> {
    let n = d.len();
    if n <= 1 {
        return Ok(());
    }
    // Renumber the subdiagonal to e[0..n-1] for convenient indexing.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    let zrows = z.rows();
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Look for a negligible subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] has converged
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(EigError::NoConvergence {
                    index: l,
                    iterations: iter,
                });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.abs().copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Found a zero off-diagonal: deflate and retry.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to eigenvector columns i and i+1.
                for k in 0..zrows {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Sort eigenvalues ascending and permute eigenvector columns to match,
/// in place: the permutation is applied by cycle-following column swaps, so
/// no copy of the (n²-sized) eigenvector matrix is made. `order` is reusable
/// scratch.
pub(crate) fn sort_eigenpairs(d: &mut [f64], z: &mut Matrix, order: &mut Vec<usize>) {
    let n = d.len();
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("NaN eigenvalue"));
    for i in 0..n {
        // order[i] is where position i's final value currently sits; chase
        // the chain past slots already fixed by earlier swaps.
        let mut src = order[i];
        while src < i {
            src = order[src];
        }
        if src != i {
            d.swap(i, src);
            z.swap_cols(i, src);
        }
    }
}

/// Residual `max_k ‖A v_k − λ_k v_k‖∞` — a cheap a-posteriori quality check
/// used by tests and by the eigensolver comparison report (experiment T4).
pub fn eig_residual(a: &Matrix, eig: &Eigh) -> f64 {
    let n = a.rows();
    let mut worst = 0.0f64;
    for k in 0..eig.values.len() {
        let v = eig.vectors.col(k);
        let av = a.matvec(&v);
        for i in 0..n {
            worst = worst.max((av[i] - eig.values[k] * v[i]).abs());
        }
    }
    worst
}

/// Deviation of `Vᵀ V` from the identity, measured as a max-abs entry.
pub fn orthogonality_defect(vectors: &Matrix) -> f64 {
    let vtv = vectors.t_matmul(vectors);
    let n = vtv.rows();
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((vtv[(i, j)] - target).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric_test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diagonal(&[3.0, -1.0, 2.0]);
        let eig = eigh(a).unwrap();
        assert!((eig.values[0] - -1.0).abs() < 1e-14);
        assert!((eig.values[1] - 2.0).abs() < 1e-14);
        assert!((eig.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn two_by_two_analytic() {
        // [[a, b], [b, c]] has eigenvalues (a+c)/2 ± sqrt(((a-c)/2)² + b²).
        let (a, b, c) = (2.0, 1.5, -1.0);
        let m = Matrix::from_vec(2, 2, vec![a, b, b, c]);
        let eig = eigh(m).unwrap();
        let mid = 0.5 * (a + c);
        let rad = (0.25 * (a - c) * (a - c) + b * b).sqrt();
        assert!((eig.values[0] - (mid - rad)).abs() < 1e-14);
        assert!((eig.values[1] - (mid + rad)).abs() < 1e-14);
    }

    #[test]
    fn residual_and_orthogonality_random() {
        for n in [1usize, 2, 3, 5, 16, 40] {
            let a = symmetric_test_matrix(n, n as u64 + 7);
            let eig = eigh(a.clone()).unwrap();
            let scale = a.max_abs().max(1.0);
            assert!(
                eig_residual(&a, &eig) < 1e-10 * scale * n as f64,
                "residual too large at n={n}"
            );
            assert!(
                orthogonality_defect(&eig.vectors) < 1e-11 * n as f64,
                "vectors not orthonormal at n={n}"
            );
        }
    }

    #[test]
    fn values_sorted_ascending() {
        let a = symmetric_test_matrix(24, 99);
        let eig = eigh(a).unwrap();
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn eigvalsh_matches_eigh() {
        let a = symmetric_test_matrix(20, 5);
        let full = eigh(a.clone()).unwrap();
        let vals = eigvalsh(a).unwrap();
        for (a, b) in full.values.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = symmetric_test_matrix(30, 13);
        let tr = a.trace();
        let eig = eigh(a).unwrap();
        let s: f64 = eig.values.iter().sum();
        assert!((tr - s).abs() < 1e-10);
    }

    #[test]
    fn degenerate_eigenvalues_handled() {
        // 3x3 with a double eigenvalue: diag(1, 1, 4) rotated.
        let d = Matrix::from_diagonal(&[1.0, 1.0, 4.0]);
        // Rotate by an arbitrary orthogonal matrix built from a Householder.
        let v = [1.0f64, 2.0, 3.0];
        let nv: f64 = v.iter().map(|x| x * x).sum::<f64>();
        let mut q = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                q[(i, j)] -= 2.0 * v[i] * v[j] / nv;
            }
        }
        let a = q.matmul(&d).matmul(&q.transpose());
        let eig = eigh(a.clone()).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
        assert!((eig.values[2] - 4.0).abs() < 1e-12);
        assert!(eig_residual(&a, &eig) < 1e-11);
    }

    #[test]
    fn already_tridiagonal_input() {
        let n = 10;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = i as f64;
            if i + 1 < n {
                a[(i, i + 1)] = 0.5;
                a[(i + 1, i)] = 0.5;
            }
        }
        let eig = eigh(a.clone()).unwrap();
        assert!(eig_residual(&a, &eig) < 1e-12);
    }

    #[test]
    fn known_tridiagonal_toeplitz_eigenvalues() {
        // The n×n tridiagonal Toeplitz matrix with diagonal a and off-diagonal
        // b has eigenvalues a + 2b·cos(kπ/(n+1)), k = 1..n.
        let n = 12;
        let (a_diag, b_off) = (2.0, -1.0);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = a_diag;
            if i + 1 < n {
                m[(i, i + 1)] = b_off;
                m[(i + 1, i)] = b_off;
            }
        }
        let eig = eigh(m).unwrap();
        let mut expected: Vec<f64> = (1..=n)
            .map(|k| {
                a_diag + 2.0 * b_off * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos()
            })
            .collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in eig.values.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        }
    }

    #[test]
    fn eigh_into_reuses_workspace_across_sizes() {
        let mut ws = EighWorkspace::default();
        let mut values = Vec::new();
        // Alternate sizes to exercise buffer shrink/grow reuse.
        for &(n, seed) in &[(18usize, 3u64), (6, 5), (25, 8), (1, 11)] {
            let a = symmetric_test_matrix(n, seed);
            let mut vectors = a.clone();
            eigh_into(&mut vectors, &mut values, &mut ws).unwrap();
            let reference = eigh(a.clone()).unwrap();
            assert_eq!(values, reference.values, "values differ at n={n}");
            assert_eq!(vectors, reference.vectors, "vectors differ at n={n}");
            assert!(
                eig_residual(
                    &a,
                    &Eigh {
                        values: values.clone(),
                        vectors
                    }
                ) < 1e-10
            );
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(3, 4);
        assert!(matches!(eigh(a), Err(EigError::NotSquare { .. })));
    }

    #[test]
    fn empty_matrix() {
        let eig = eigh(Matrix::zeros(0, 0)).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn one_by_one() {
        let eig = eigh(Matrix::from_vec(1, 1, vec![7.5])).unwrap();
        assert_eq!(eig.values, vec![7.5]);
        assert!((eig.vectors[(0, 0)].abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn similarity_invariance() {
        // Eigenvalues must be invariant under Q A Qᵀ for orthogonal Q.
        let a = symmetric_test_matrix(15, 21);
        let e1 = eigvalsh(a.clone()).unwrap();
        // Build Q from the eigenvectors of another symmetric matrix.
        let q = eigh(symmetric_test_matrix(15, 22)).unwrap().vectors;
        let b = q.matmul(&a).matmul(&q.transpose());
        let e2 = eigvalsh(b).unwrap();
        for (x, y) in e1.iter().zip(&e2) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }
}
