//! A minimal 3-component vector used for atomic positions, velocities and
//! forces throughout the workspace.
//!
//! The type is deliberately `Copy` and operates in plain `f64`; all
//! higher-level containers store `Vec<Vec3>` which is layout-compatible with
//! a flat `[f64]` of length `3n` (guaranteed by `#[repr(C)]`).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the direction of `self`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the vector is exactly zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest absolute component.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Build from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, -2.5, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm(), 13.0);
        assert_eq!(v.norm_sq(), 169.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.3, -2.1, 0.7);
        let b = Vec3::new(0.4, 5.5, -1.2);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(1.0, 2.0, -2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 3.0);
        v[1] = 7.0;
        assert_eq!(v.y, 7.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn sum_and_assign_ops() {
        let vs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 0.0));
        let mut a = Vec3::splat(1.0);
        a += Vec3::splat(2.0);
        a -= Vec3::splat(0.5);
        a *= 2.0;
        a /= 5.0;
        assert_eq!(a, Vec3::splat(1.0));
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(0.1, 0.2, 0.3);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    fn max_abs_and_abs() {
        let v = Vec3::new(-3.0, 2.0, -7.0);
        assert_eq!(v.max_abs(), 7.0);
        assert_eq!(v.abs(), Vec3::new(3.0, 2.0, 7.0));
    }
}
