//! Property-based tests for the linear-algebra kernels.
//!
//! These verify the mathematical invariants that every downstream physics
//! result rests on: eigendecompositions reconstruct their input, orthogonal
//! factors are orthogonal, Cholesky solves invert the product, and the
//! parallel Jacobi ordering agrees with the sequential QL reference.

use proptest::prelude::*;
use tbmd_linalg::{
    eig_residual, eigh, jacobi_eigh, orthogonality_defect, par_jacobi_eigh, Cholesky, Matrix, Vec3,
    JACOBI_MAX_SWEEPS, JACOBI_TOL,
};

/// Strategy: a random symmetric n×n matrix with entries in [-1, 1].
fn symmetric_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |tri| {
            let mut a = Matrix::zeros(n, n);
            let mut it = tri.into_iter();
            for i in 0..n {
                for j in 0..=i {
                    let v = it.next().unwrap();
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
            }
            a
        })
    })
}

/// Strategy: a random symmetric positive-definite matrix (AᵀA + n·I).
fn spd_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
            let a = Matrix::from_vec(n, n, v);
            let mut s = a.t_matmul(&a);
            for i in 0..n {
                s[(i, i)] += n as f64;
            }
            s
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eigh_residual_small(a in symmetric_matrix(20)) {
        let n = a.rows();
        let eig = eigh(a.clone()).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(eig_residual(&a, &eig) < 1e-9 * scale * n as f64);
        prop_assert!(orthogonality_defect(&eig.vectors) < 1e-10 * n as f64);
        // sorted ascending
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn eigh_preserves_trace_and_frobenius(a in symmetric_matrix(16)) {
        let eig = eigh(a.clone()).unwrap();
        let tr: f64 = eig.values.iter().sum();
        prop_assert!((tr - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()));
        // Frobenius norm equals the 2-norm of the spectrum for symmetric A.
        let fro2: f64 = eig.values.iter().map(|x| x * x).sum();
        let afro2 = a.frobenius_norm().powi(2);
        prop_assert!((fro2 - afro2).abs() < 1e-8 * (1.0 + afro2));
    }

    #[test]
    fn jacobi_agrees_with_ql(a in symmetric_matrix(12)) {
        let reference = eigh(a.clone()).unwrap();
        let (cyc, _) = jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap();
        let (par, _) = par_jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap();
        for k in 0..a.rows() {
            prop_assert!((cyc.values[k] - reference.values[k]).abs() < 1e-8);
            prop_assert!((par.values[k] - reference.values[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_solve_inverts(a in spd_matrix(12), seed in 0u64..1000) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 17) as f64 * 0.1 - 0.8).collect();
        let b = a.matvec(&x_true);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(10)) {
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        prop_assert!((&rec - &a).max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn matmul_associative(
        dims in (1usize..8, 1usize..8, 1usize..8, 1usize..8),
        seed in 0u64..100
    ) {
        let (m, k, l, n) = dims;
        let fill = |rows: usize, cols: usize, s: u64| {
            let mut state = s.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let a = fill(m, k, seed + 1);
        let b = fill(k, l, seed + 2);
        let c = fill(l, n, seed + 3);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).max_abs() < 1e-10);
    }

    #[test]
    fn syrk_matches_matmul_transpose(m in 1usize..12, k in 1usize..12, seed in 0u64..200) {
        let fill = |rows: usize, cols: usize, s: u64| {
            let mut state = s.wrapping_mul(0xA24BAED4963EE407) | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let w = fill(m, k, seed);
        let reference = w.matmul(&w.transpose());
        let serial = w.syrk();
        let parallel = w.par_syrk();
        prop_assert!((&serial - &reference).max_abs() < 1e-12);
        // The parallel partition must not change any summation order:
        // bitwise agreement, not just tolerance.
        for i in 0..m {
            for j in 0..m {
                prop_assert_eq!(serial[(i, j)], parallel[(i, j)]);
                // Mirrored halves are exact copies.
                prop_assert_eq!(serial[(i, j)], serial[(j, i)]);
            }
        }
    }

    #[test]
    fn syrk_reuse_tracks_growth(m in 1usize..10, k in 1usize..10, seed in 0u64..50) {
        let fill = |rows: usize, cols: usize, s: u64| {
            let mut state = s.wrapping_mul(0xD1342543DE82EF95) | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let w = fill(m, k, seed);
        let mut out = Matrix::zeros(0, 0);
        let grew_first = w.syrk_reuse(&mut out, false);
        prop_assert!(grew_first || m == 0);
        prop_assert!((&out - &w.syrk()).max_abs() == 0.0);
        // Second pass into the warm buffer: no growth, same answer.
        let grew_again = w.syrk_reuse(&mut out, true);
        prop_assert!(!grew_again);
        prop_assert!((&out - &w.syrk()).max_abs() == 0.0);
    }

    #[test]
    fn vec3_triangle_inequality(ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
                                bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-12);
        // Cauchy–Schwarz
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-12);
    }

    #[test]
    fn transpose_of_product(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..50) {
        let fill = |rows: usize, cols: usize, s: u64| {
            let mut state = s.wrapping_mul(0x2545F4914F6CDD1D) | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let a = fill(m, k, seed);
        let b = fill(k, n, seed + 9);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!((&lhs - &rhs).max_abs() < 1e-12);
    }
}

// ---- Tiled-kernel equivalence (ISSUE 7) -----------------------------------
//
// The register-tiled microkernels claim two different equivalence levels
// against the textbook loops, and both are properties worth fuzzing:
//
//  * `matmul` routes every row through `gemm_row`, whose per-element
//    accumulation order is strictly ascending in the inner index — the
//    same order as the naive i-k-j triple loop. Equivalence is therefore
//    *bitwise*, across the KERNEL_MIN_DIM crossover and the 64-row
//    blocking boundary alike.
//  * `dot`/`matvec` reduce through 8 independent lanes, a genuinely
//    different (pairwise) summation order: equivalence is to roundoff,
//    pinned at 1e-13 relative to the absolute-value sum.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_matmul_is_bitwise_naive_ikj(
        m in 1usize..40, k in 1usize..70, n in 1usize..40, seed in 0u64..200
    ) {
        let fill = |rows: usize, cols: usize, s: u64| {
            let mut state = s.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let a = fill(m, k, seed + 1);
        let b = fill(k, n, seed + 2);
        let tiled = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                prop_assert_eq!(
                    tiled[(i, j)].to_bits(), acc.to_bits(),
                    "matmul[({}, {})] diverged from the naive i-k-j order", i, j
                );
            }
        }
    }

    #[test]
    fn tiled_dot_matches_naive_to_1e13(len in 1usize..300, seed in 0u64..500) {
        let mut state = seed.wrapping_mul(0xA24BAED4963EE407) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let x: Vec<f64> = (0..len).map(|_| next()).collect();
        let y: Vec<f64> = (0..len).map(|_| next()).collect();
        let tiled = tbmd_linalg::kernels::dot(&x, &y);
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let scale: f64 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
        prop_assert!(
            (tiled - naive).abs() <= 1e-13 * scale.max(1.0),
            "dot drifted: {} vs {}", tiled, naive
        );
    }

    #[test]
    fn tiled_matvec_matches_naive_to_1e13(
        m in 1usize..40, n in 1usize..120, seed in 0u64..200
    ) {
        let fill = |rows: usize, cols: usize, s: u64| {
            let mut state = s.wrapping_mul(0xD1342543DE82EF95) | 1;
            Matrix::from_fn(rows, cols, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
        };
        let a = fill(m, n, seed);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 * 0.1 - 0.6).collect();
        let y = a.matvec(&x);
        for i in 0..m {
            let naive: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
            let scale: f64 = (0..n).map(|j| (a[(i, j)] * x[j]).abs()).sum();
            prop_assert!(
                (y[i] - naive).abs() <= 1e-13 * scale.max(1.0),
                "matvec row {} drifted: {} vs {}", i, y[i], naive
            );
        }
    }
}
