//! The one composable run pipeline behind every driver entry point.
//!
//! A [`Session`] owns the persistent [`Engine`] (and the model it borrows),
//! the evaluation counter fault plans are scheduled against, the optional
//! recorder/checkpoint attachments, and the rewind loop of a resilient run.
//! Every `run_simulation*` / `resume_simulation*` function in
//! [`crate::simulation`] is a thin wrapper that builds a session and drives
//! it to completion; callers that want to interleave many simulations in
//! one process instead hold several sessions and pump [`Session::step`]
//! (or [`Session::run_until`]) round-robin — each call advances exactly one
//! MD step, bitwise identical to the step the monolithic driver would have
//! taken.
//!
//! Construction goes through [`SessionBuilder`]:
//!
//! ```no_run
//! # use tbmd::{SessionBuilder, SimulationConfig, SystemSpec};
//! let config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 100);
//! let summary = SessionBuilder::new(config).build().unwrap().run().unwrap();
//! ```

use crate::engine::{Engine, EngineKind};
use crate::simulation::{
    CheckpointConfig, Protocol, RecorderConfig, RecoveryReport, ReshardPolicy, ResilienceOptions,
    SimulationConfig, SimulationSummary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tbmd_ckpt::{
    CheckpointStore, CkptError, RampSnapshot, Snapshot, StatsSnapshot, ThermostatSnapshot,
};
use tbmd_linalg::budget::ComputeLease;
use tbmd_linalg::Vec3;
use tbmd_md::{
    maxwell_boltzmann, relax, MdState, NoseHoover, RdfAccumulator, RelaxOptions, RunningStats,
    TemperatureRamp, Trajectory, VelocityVerlet,
};
use tbmd_model::{
    cached_eigensolver_health, eigensolver_health, DenseSolver, GspTbModel, OccupationScheme,
    TbError, TbModel, Workspace,
};
use tbmd_parallel::FaultPlan;
use tbmd_trace::{
    Counter, Hist, JsonValue, RunRecorder, ScopedSink, StepRecord, TraceSink, TraceSnapshot,
};

/// Map a checkpoint-subsystem error into the driver's error type.
pub(crate) fn ckpt_err(e: CkptError) -> TbError {
    TbError::Checkpoint(e.to_string())
}

/// Fingerprint of the step-count-independent part of a configuration. Two
/// configs that differ only in how *long* they run fingerprint identically,
/// so a run interrupted at step 40 of 100 resumes cleanly into a 500-step
/// request; anything that changes the dynamics (system, engine, timestep,
/// set-points, seed) changes the fingerprint and is rejected on resume.
fn config_fingerprint(config: &SimulationConfig) -> u64 {
    let protocol = match config.protocol {
        Protocol::Nve {
            temperature_k,
            dt_fs,
            ..
        } => format!("nve:{temperature_k:?}:{dt_fs:?}"),
        Protocol::Nvt {
            temperature_k,
            dt_fs,
            tau_fs,
            ..
        } => format!("nvt:{temperature_k:?}:{dt_fs:?}:{tau_fs:?}"),
        Protocol::NvtRamp {
            from_k,
            to_k,
            rate_k_per_fs,
            dt_fs,
            tau_fs,
            ..
        } => format!("ramp:{from_k:?}:{to_k:?}:{rate_k_per_fs:?}:{dt_fs:?}:{tau_fs:?}"),
        Protocol::Relax { .. } => "relax".to_string(),
    };
    let canon = format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{}|{}",
        config.system,
        config.engine,
        protocol,
        config.electronic_kt,
        config.perturb,
        config.seed,
        config.record_stride
    );
    tbmd_ckpt::fingerprint(canon.as_bytes())
}

/// A caller-supplied starting point that overrides the configured system
/// build: the structure the run starts from (a defect cell, a strained box,
/// the endpoint of a previous protocol segment) and, optionally, the exact
/// starting velocities (carried across quench-segment boundaries). With
/// `velocities: None` the protocol draws Maxwell–Boltzmann velocities from
/// the config seed as usual.
///
/// This is the inter-segment perturbation hook of the campaign runner: a
/// multi-segment program runs one [`Session`] per segment, feeding each
/// segment's `final_structure`/`final_velocities` (possibly perturbed in
/// between — e.g. an affine strain increment) into the next session's
/// initial state.
#[derive(Debug, Clone)]
pub struct InitialState {
    pub structure: tbmd_structure::Structure,
    pub velocities: Option<Vec<Vec3>>,
}

impl InitialState {
    /// Start from `structure` with protocol-drawn (seeded Maxwell–Boltzmann)
    /// velocities.
    pub fn from_structure(structure: tbmd_structure::Structure) -> InitialState {
        InitialState {
            structure,
            velocities: None,
        }
    }

    /// Start from an exact phase-space point (structure + velocities) —
    /// what chaining protocol segments bitwise requires.
    pub fn with_velocities(structure: tbmd_structure::Structure, velocities: Vec<Vec3>) -> Self {
        InitialState {
            structure,
            velocities: Some(velocities),
        }
    }
}

/// Fingerprint of an initial-state override: species, positions, cell and
/// (when pinned) velocities, all at bit precision. Folded into the run
/// fingerprint so a snapshot written from one starting structure is never
/// resumed into another.
fn state_fingerprint(initial: &InitialState) -> u64 {
    let s = &initial.structure;
    let mut bytes = Vec::with_capacity(25 * s.n_atoms() + 64);
    bytes.extend_from_slice(format!("{:?}", s.species_slice()).as_bytes());
    for p in s.positions() {
        for c in p.to_array() {
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
    for c in s.cell().lengths.to_array() {
        bytes.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    for periodic in s.cell().periodic {
        bytes.push(periodic as u8);
    }
    match &initial.velocities {
        Some(v) => {
            bytes.push(1);
            for x in v {
                for c in x.to_array() {
                    bytes.extend_from_slice(&c.to_bits().to_le_bytes());
                }
            }
        }
        None => bytes.push(0),
    }
    tbmd_ckpt::fingerprint(&bytes)
}

/// The session's resume-identity fingerprint: the config fingerprint,
/// combined with the initial-state fingerprint when an override is set.
fn run_fingerprint(config: &SimulationConfig, initial: Option<&InitialState>) -> u64 {
    let base = config_fingerprint(config);
    match initial {
        None => base,
        Some(init) => {
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&base.to_le_bytes());
            bytes[8..].copy_from_slice(&state_fingerprint(init).to_le_bytes());
            tbmd_ckpt::fingerprint(&bytes)
        }
    }
}

/// Physics observables folded into a recorder's summary line: temperature
/// statistics over the whole run (Welford, bit-deterministic), the energy
/// endpoint, and the radial distribution function of the final
/// configuration. Everything here is derived from simulation state only —
/// no wall-clock — so equal runs produce byte-equal observables.
fn observables_json(t_stats: &RunningStats, summary: &SimulationSummary) -> JsonValue {
    let mut obs = JsonValue::object();
    let mut temp = JsonValue::object();
    temp.set("samples", t_stats.count());
    if t_stats.count() > 0 {
        temp.set("mean_k", t_stats.mean())
            .set("std_k", t_stats.std_dev())
            .set("min_k", t_stats.min())
            .set("max_k", t_stats.max());
    }
    obs.set("temperature", temp)
        .set("potential_ev", summary.final_potential_energy)
        .set("total_ev", summary.final_total_energy)
        .set("drift_ev", summary.conserved_drift);
    let s = &summary.final_structure;
    // Bins stop at half the shortest periodic edge (the minimum-image
    // validity bound); clusters get a fixed 5 Å window.
    let r_max = s
        .cell()
        .min_periodic_edge()
        .map_or(5.0, |edge| 0.5 * edge)
        .max(1.0);
    let n_bins = 64usize;
    let mut rdf = RdfAccumulator::new(r_max, n_bins);
    rdf.accumulate(s);
    let mut rj = JsonValue::object();
    rj.set("r_max", r_max).set("n_bins", n_bins);
    if let Some((r, g)) = rdf.first_peak() {
        rj.set("first_peak_r", r).set("first_peak_g", g);
    }
    obs.set("rdf", rj);
    obs
}

fn flatten(v: &[Vec3]) -> Vec<f64> {
    v.iter().flat_map(|x| x.to_array()).collect()
}

fn unflatten(v: &[f64]) -> Vec<Vec3> {
    v.chunks_exact(3)
        .map(|c| Vec3 {
            x: c[0],
            y: c[1],
            z: c[2],
        })
        .collect()
}

/// Rebuild an [`MdState`] from a snapshot without re-evaluating forces.
/// Cell, species and masses come from the (deterministic) config build;
/// positions, velocities, forces, potential and clock are restored verbatim
/// so the continued trajectory is bitwise the uninterrupted one.
fn restore_state(
    mut structure: tbmd_structure::Structure,
    snap: &Snapshot,
) -> Result<MdState, TbError> {
    if snap.n_atoms() != structure.n_atoms() {
        return Err(TbError::Checkpoint(format!(
            "snapshot holds {} atoms but the configured system builds {}",
            snap.n_atoms(),
            structure.n_atoms()
        )));
    }
    structure.set_positions(unflatten(&snap.positions));
    Ok(MdState::from_snapshot_parts(
        structure,
        unflatten(&snap.velocities),
        unflatten(&snap.forces),
        snap.potential_energy,
        snap.time_fs,
    ))
}

/// Check a loaded snapshot against the resuming run's fingerprint (config
/// combined with any initial-state override).
fn validate_resume(expect: u64, snap: &Snapshot) -> Result<(), TbError> {
    if snap.config_fingerprint != expect {
        return Err(TbError::Checkpoint(format!(
            "config mismatch: snapshot fingerprint {:#018x} != configured {:#018x} \
             (system/engine/protocol/seed/initial state changed since the snapshot was written)",
            snap.config_fingerprint, expect
        )));
    }
    Ok(())
}

/// The newest usable snapshot of `store` for the run fingerprint, or a
/// typed error if the store is empty or the snapshot belongs to a
/// different run.
fn load_latest_validated(expect: u64, store: &CheckpointStore) -> Result<Snapshot, TbError> {
    let snap = store
        .latest()
        .map_err(ckpt_err)?
        .ok_or_else(|| ckpt_err(CkptError::NoSnapshot))?;
    validate_resume(expect, &snap)?;
    Ok(snap)
}

/// Per-step recording state threaded through the stepper. The recorder
/// itself is owned by the [`Session`] (or borrowed from the caller) and
/// passed in per call, so this struct stays borrow-free.
struct Recording {
    health_stride: usize,
    /// Counter snapshot at the previous step boundary (for per-step deltas).
    prev: TraceSnapshot,
    /// Dense engines get the eigensolver probe; O(N) engines do not.
    probe_health: bool,
    occupation: OccupationScheme,
    /// Step records emitted so far (carried into snapshots so a resumed
    /// recorder knows where the original stream ended).
    recorded: u64,
}

impl Recording {
    fn new(config: &SimulationConfig, options: &RecorderConfig) -> Recording {
        if !tbmd_trace::enabled() {
            tbmd_trace::install(TraceSink::collecting());
        }
        let probe_health = !matches!(
            config.engine,
            EngineKind::LinearScaling { .. } | EngineKind::DistributedLinearScaling { .. }
        );
        let occupation = if config.electronic_kt > 0.0 {
            OccupationScheme::Fermi {
                kt: config.electronic_kt,
            }
        } else {
            OccupationScheme::ZeroTemperature
        };
        Recording {
            health_stride: options.health_stride,
            prev: tbmd_trace::snapshot(),
            probe_health,
            occupation,
            recorded: 0,
        }
    }

    /// Record one completed MD step plus an eigensolver health check: the
    /// cheap incremental probe on the solve's cached eigenpairs every step
    /// when the engine leaves them in `ws`, else the independent full-solve
    /// probe on the stride.
    fn observe(
        &mut self,
        recorder: &mut RunRecorder,
        step: usize,
        state: &MdState,
        conserved_ev: f64,
        model: &dyn TbModel,
        ws: &mut Workspace,
    ) -> Result<(), TbError> {
        let snap = tbmd_trace::snapshot();
        let delta = snap.since(&self.prev);
        self.prev = snap;
        let record = StepRecord {
            step,
            time_fs: state.time_fs,
            potential_ev: state.potential_energy,
            conserved_ev,
            temperature_k: state.temperature(),
            phase_ns: state.last_timings.phase_ns(),
            comm_bytes: delta.counter(Counter::WireBytes),
            alloc_events: delta.counter(Counter::AllocGrowth),
        };
        recorder
            .record_step(&record)
            .map_err(|e| TbError::Recorder(e.to_string()))?;
        self.recorded += 1;
        if self.probe_health && self.health_stride > 0 {
            let health = match cached_eigensolver_health(model, &state.structure, ws, step)? {
                Some(h) => Some(h),
                // No consumable cache (distributed/per-rank solves): pay for
                // the independent full-solve probe, but only on the stride.
                None if step.is_multiple_of(self.health_stride) => Some(eigensolver_health(
                    model,
                    &state.structure,
                    self.occupation,
                    DenseSolver::TwoStage,
                    step,
                )?),
                None => None,
            };
            if let Some(health) = &health {
                recorder
                    .record_health(health)
                    .map_err(|e| TbError::Recorder(e.to_string()))?;
            }
        }
        Ok(())
    }
}

/// The recording attachments a stepping call threads through: the per-step
/// state plus a reborrow of the session's recorder.
type Rec<'a> = Option<(&'a mut Recording, &'a mut RunRecorder)>;

/// Resolved checkpoint attachment of a session: an open (possibly
/// in-memory) store plus the snapshot interval.
struct CkptSpec {
    store: CheckpointStore,
    interval: usize,
}

/// Store + identity data threaded through the stepper when checkpointing
/// is on.
struct CkptCtx {
    store: CheckpointStore,
    interval: usize,
    fingerprint: u64,
    seed: u64,
}

impl CkptCtx {
    fn from_spec(spec: &CkptSpec, fingerprint: u64, seed: u64) -> CkptCtx {
        CkptCtx {
            store: spec.store.clone(),
            interval: spec.interval,
            fingerprint,
            seed,
        }
    }

    fn due(&self, step: usize) -> bool {
        self.interval > 0 && step.is_multiple_of(self.interval)
    }

    /// Encode + atomically publish one snapshot, routing the receipt into
    /// the recorder's `ckpt` line (which also bumps the trace counters) or
    /// straight into the trace registry when no recorder is attached.
    #[allow(clippy::too_many_arguments)]
    fn write(
        &self,
        step: u64,
        state: &MdState,
        rng_state: u64,
        conserved_ref: f64,
        drift: f64,
        t_stats: &RunningStats,
        thermostat: Option<ThermostatSnapshot>,
        ramp: Option<RampSnapshot>,
        rec: &mut Rec<'_>,
    ) -> Result<(), TbError> {
        let (n, mean, m2, min, max) = t_stats.to_raw();
        let snap = Snapshot {
            step,
            time_fs: state.time_fs,
            seed: self.seed,
            config_fingerprint: self.fingerprint,
            rng_state,
            potential_energy: state.potential_energy,
            conserved_ref,
            drift,
            recorded_steps: rec.as_ref().map_or(0, |(r, _)| r.recorded),
            positions: flatten(state.structure.positions()),
            velocities: flatten(&state.velocities),
            forces: flatten(&state.forces),
            temp_stats: StatsSnapshot {
                n,
                mean,
                m2,
                min,
                max,
            },
            thermostat,
            ramp,
        };
        let started = Instant::now();
        let receipt = self.store.write(&snap).map_err(ckpt_err)?;
        let wall_ns = started.elapsed().as_nanos() as u64;
        match rec.as_mut() {
            Some((_, recorder)) => recorder
                .record_ckpt(
                    step as usize,
                    receipt.bytes,
                    wall_ns,
                    &receipt.path.display().to_string(),
                )
                .map_err(|e| TbError::Recorder(e.to_string()))?,
            None => {
                tbmd_trace::add(Counter::CkptWrites, 1);
                tbmd_trace::add(Counter::CkptBytes, receipt.bytes);
                tbmd_trace::add(Counter::CkptNanos, wall_ns);
            }
        }
        Ok(())
    }
}

/// Where a temperature-ramp attempt currently is.
enum RampPhase {
    /// Set-point still moving; the extended energy is not conserved, so no
    /// drift monitoring and no step records.
    Ramping,
    /// Set-point pinned at the target: H' is conserved again.
    Holding { h0: f64, hold_step: usize },
}

/// Protocol-specific state of one attempt.
enum AttemptKind {
    Relax {
        structure: Option<tbmd_structure::Structure>,
        opts: RelaxOptions,
        /// `(energy, iterations, converged)` once the (single-shot) solve ran.
        outcome: Option<(f64, usize, bool)>,
    },
    Nve {
        integrator: VelocityVerlet,
        state: MdState,
        e0: f64,
        step: usize,
        steps: usize,
    },
    Nvt {
        nh: NoseHoover,
        state: MdState,
        h0: f64,
        step: usize,
        steps: usize,
    },
    Ramp {
        nh: NoseHoover,
        state: MdState,
        ramp: TemperatureRamp,
        phase: RampPhase,
        hold_steps: usize,
        steps_total: usize,
    },
}

/// One attempt of a configured simulation: everything the monolithic
/// driver used to hold in loop locals, reified so it can advance one MD
/// step at a time. The engine is borrowed per call, not stored, so a
/// resilient session keeps one engine alive across rewound attempts.
struct Attempt {
    ws: Workspace,
    rng: StdRng,
    trajectory: Option<Trajectory>,
    ckpt: Option<CkptCtx>,
    t_stats: RunningStats,
    drift: f64,
    kind: AttemptKind,
}

impl Attempt {
    /// Everything the driver did before entering its stepping loop:
    /// announce a restore, build the structure, and run the
    /// protocol-specific initialization (which evaluates forces once for a
    /// fresh MD start — a fault can fire here, and the session's rewind
    /// loop treats that exactly like a mid-run failure).
    fn new(
        config: &SimulationConfig,
        initial: Option<&InitialState>,
        engine: &Engine<'_>,
        ckpt: Option<CkptCtx>,
        resume: Option<Snapshot>,
        rec: &mut Rec<'_>,
    ) -> Result<Attempt, TbError> {
        // Announce a restore before any stepping: a `restore` JSONL line
        // when a recorder is attached, a bare counter bump otherwise.
        if let Some(snap) = resume.as_ref() {
            let path = ckpt
                .as_ref()
                .map(|c| c.store.path_for(snap.step).display().to_string())
                .unwrap_or_default();
            match rec.as_mut() {
                Some((recording, recorder)) => {
                    recording.recorded = snap.recorded_steps;
                    recorder
                        .record_restore(snap.step as usize, "resume", &path)
                        .map_err(|e| TbError::Recorder(e.to_string()))?;
                }
                None => tbmd_trace::add(Counter::CkptRestores, 1),
            }
        }
        let structure = match initial {
            Some(init) => init.structure.clone(),
            None => config.system.build(config.perturb, config.seed),
        };
        // Caller-pinned starting velocities (None unless an InitialState
        // carries them); fresh MD starts fall back to Maxwell–Boltzmann.
        let pinned_v = initial.and_then(|init| init.velocities.clone());
        let trajectory = (config.record_stride > 0).then(|| Trajectory::new(config.record_stride));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut ws = Workspace::new();

        let (kind, t_stats, drift) = match config.protocol {
            Protocol::Relax {
                force_tolerance,
                max_iterations,
            } => (
                AttemptKind::Relax {
                    structure: Some(structure),
                    opts: RelaxOptions {
                        force_tolerance,
                        max_iterations,
                        ..Default::default()
                    },
                    outcome: None,
                },
                RunningStats::new(),
                0.0,
            ),
            Protocol::Nve {
                temperature_k,
                steps,
                dt_fs,
            } => {
                let integrator = VelocityVerlet::new(dt_fs);
                let (state, e0, t_stats, drift, start) = match resume.as_ref() {
                    Some(snap) => {
                        rng = StdRng::from_state(snap.rng_state);
                        let state = restore_state(structure, snap)?;
                        let ts = snap.temp_stats;
                        (
                            state,
                            snap.conserved_ref,
                            RunningStats::from_raw(ts.n, ts.mean, ts.m2, ts.min, ts.max),
                            snap.drift,
                            snap.step as usize,
                        )
                    }
                    None => {
                        let v = pinned_v.clone().unwrap_or_else(|| {
                            maxwell_boltzmann(&structure, temperature_k, &mut rng)
                        });
                        let state = MdState::new_with(structure, v, engine, &mut ws)?;
                        let e0 = state.total_energy();
                        (state, e0, RunningStats::new(), 0.0f64, 0usize)
                    }
                };
                (
                    AttemptKind::Nve {
                        integrator,
                        state,
                        e0,
                        step: start,
                        steps,
                    },
                    t_stats,
                    drift,
                )
            }
            Protocol::Nvt {
                temperature_k,
                steps,
                dt_fs,
                tau_fs,
            } => {
                let (state, nh, h0, t_stats, drift, start) = match resume.as_ref() {
                    Some(snap) => {
                        rng = StdRng::from_state(snap.rng_state);
                        let thermo = snap.thermostat.ok_or_else(|| {
                            TbError::Checkpoint("NVT resume needs a THRM section".into())
                        })?;
                        let state = restore_state(structure, snap)?;
                        let mut nh =
                            NoseHoover::with_period(dt_fs, temperature_k, state.n_dof(), tau_fs);
                        nh.target_k = thermo.target_k;
                        nh.q = thermo.q;
                        nh.restore_thermostat_state(thermo.xi, thermo.eta);
                        let ts = snap.temp_stats;
                        (
                            state,
                            nh,
                            snap.conserved_ref,
                            RunningStats::from_raw(ts.n, ts.mean, ts.m2, ts.min, ts.max),
                            snap.drift,
                            snap.step as usize,
                        )
                    }
                    None => {
                        let v = pinned_v.clone().unwrap_or_else(|| {
                            maxwell_boltzmann(&structure, temperature_k, &mut rng)
                        });
                        let state = MdState::new_with(structure, v, engine, &mut ws)?;
                        let nh =
                            NoseHoover::with_period(dt_fs, temperature_k, state.n_dof(), tau_fs);
                        let h0 = nh.conserved_quantity(&state);
                        (state, nh, h0, RunningStats::new(), 0.0f64, 0usize)
                    }
                };
                (
                    AttemptKind::Nvt {
                        nh,
                        state,
                        h0,
                        step: start,
                        steps,
                    },
                    t_stats,
                    drift,
                )
            }
            Protocol::NvtRamp {
                from_k,
                to_k,
                rate_k_per_fs,
                hold_steps,
                dt_fs,
                tau_fs,
            } => {
                // `(hold_step_done, h0, drift)` when the snapshot was taken
                // in (or at the boundary of) the hold phase.
                let mut resume_hold: Option<(u64, f64, f64)> = None;
                let (state, nh, t_stats, steps_total) = match resume.as_ref() {
                    Some(snap) => {
                        rng = StdRng::from_state(snap.rng_state);
                        let thermo = snap.thermostat.ok_or_else(|| {
                            TbError::Checkpoint("ramp resume needs a THRM section".into())
                        })?;
                        let phase = snap.ramp.ok_or_else(|| {
                            TbError::Checkpoint("ramp resume needs a RAMP section".into())
                        })?;
                        let state = restore_state(structure, snap)?;
                        let mut nh = NoseHoover::with_period(dt_fs, from_k, state.n_dof(), tau_fs);
                        nh.target_k = thermo.target_k;
                        nh.q = thermo.q;
                        nh.restore_thermostat_state(thermo.xi, thermo.eta);
                        if phase.holding {
                            resume_hold = Some((phase.hold_step, snap.conserved_ref, snap.drift));
                        }
                        let ts = snap.temp_stats;
                        (
                            state,
                            nh,
                            RunningStats::from_raw(ts.n, ts.mean, ts.m2, ts.min, ts.max),
                            phase.steps_total as usize,
                        )
                    }
                    None => {
                        let v = pinned_v.clone().unwrap_or_else(|| {
                            maxwell_boltzmann(&structure, from_k.max(1.0), &mut rng)
                        });
                        let state = MdState::new_with(structure, v, engine, &mut ws)?;
                        let nh = NoseHoover::with_period(dt_fs, from_k, state.n_dof(), tau_fs);
                        (state, nh, RunningStats::new(), 0usize)
                    }
                };
                let ramp = TemperatureRamp {
                    rate_k_per_fs: rate_k_per_fs.abs() * (to_k - from_k).signum(),
                    target_k: to_k,
                };
                let (phase, drift) = match resume_hold {
                    Some((done, h_ref, drift)) => (
                        RampPhase::Holding {
                            h0: h_ref,
                            hold_step: done as usize,
                        },
                        drift,
                    ),
                    None => (RampPhase::Ramping, 0.0),
                };
                (
                    AttemptKind::Ramp {
                        nh,
                        state,
                        ramp,
                        phase,
                        hold_steps,
                        steps_total,
                    },
                    t_stats,
                    drift,
                )
            }
        };
        Ok(Attempt {
            ws,
            rng,
            trajectory,
            ckpt,
            t_stats,
            drift,
            kind,
        })
    }

    /// Advance one MD step (one iteration of the driver's old loop body;
    /// a relaxation runs to convergence in its single step). Returns `true`
    /// once the protocol is complete — possibly without doing work, when a
    /// resumed attempt is already past its final step.
    fn step(
        &mut self,
        engine: &Engine<'_>,
        model: &dyn TbModel,
        rec: &mut Rec<'_>,
    ) -> Result<bool, TbError> {
        match &mut self.kind {
            AttemptKind::Relax {
                structure,
                opts,
                outcome,
            } => {
                if outcome.is_some() {
                    return Ok(true);
                }
                let mut s = structure.take().expect("relax structure present");
                let result = relax(&mut s, engine, opts)?;
                *outcome = Some((result.energy, result.iterations, result.converged));
                *structure = Some(s);
                Ok(true)
            }
            AttemptKind::Nve {
                integrator,
                state,
                e0,
                step,
                steps,
            } => {
                if *step >= *steps {
                    return Ok(true);
                }
                *step += 1;
                let now = *step;
                integrator.step_with(state, engine, &mut self.ws)?;
                self.t_stats.push(state.temperature());
                self.drift = self.drift.max((state.total_energy() - *e0).abs());
                if let Some(tr) = self.trajectory.as_mut() {
                    tr.observe(state);
                }
                if let Some((recording, recorder)) = rec.as_mut() {
                    recording.observe(
                        recorder,
                        now,
                        state,
                        state.total_energy(),
                        model,
                        &mut self.ws,
                    )?;
                }
                if let Some(c) = self.ckpt.as_ref() {
                    if c.due(now) {
                        c.write(
                            now as u64,
                            state,
                            self.rng.state(),
                            *e0,
                            self.drift,
                            &self.t_stats,
                            None,
                            None,
                            rec,
                        )?;
                    }
                }
                Ok(*step >= *steps)
            }
            AttemptKind::Nvt {
                nh,
                state,
                h0,
                step,
                steps,
            } => {
                if *step >= *steps {
                    return Ok(true);
                }
                *step += 1;
                let now = *step;
                nh.step_with(state, engine, &mut self.ws)?;
                self.t_stats.push(state.temperature());
                self.drift = self.drift.max((nh.conserved_quantity(state) - *h0).abs());
                if let Some(tr) = self.trajectory.as_mut() {
                    tr.observe(state);
                }
                if let Some((recording, recorder)) = rec.as_mut() {
                    recording.observe(
                        recorder,
                        now,
                        state,
                        nh.conserved_quantity(state),
                        model,
                        &mut self.ws,
                    )?;
                }
                if let Some(c) = self.ckpt.as_ref() {
                    if c.due(now) {
                        let (xi, eta) = nh.thermostat_state();
                        c.write(
                            now as u64,
                            state,
                            self.rng.state(),
                            *h0,
                            self.drift,
                            &self.t_stats,
                            Some(ThermostatSnapshot {
                                xi,
                                eta,
                                target_k: nh.target_k,
                                q: nh.q,
                            }),
                            None,
                            rec,
                        )?;
                    }
                }
                Ok(*step >= *steps)
            }
            AttemptKind::Ramp {
                nh,
                state,
                ramp,
                phase,
                hold_steps,
                steps_total,
            } => match phase {
                // Ramp phase: the extended-system quantity is not conserved
                // (the set-point changes every step), so no drift monitoring
                // and no step records until the ramp reaches its target.
                RampPhase::Ramping => {
                    let still_ramping = ramp.advance(nh);
                    nh.step_with(state, engine, &mut self.ws)?;
                    *steps_total += 1;
                    self.t_stats.push(state.temperature());
                    if let Some(tr) = self.trajectory.as_mut() {
                        tr.observe(state);
                    }
                    if let Some(c) = self.ckpt.as_ref() {
                        if c.due(*steps_total) {
                            let (xi, eta) = nh.thermostat_state();
                            // At the ramp→hold boundary the hold phase's
                            // conserved reference is already a pure function
                            // of this state; store it so a resume lands in
                            // the hold with the right H'₀.
                            let h_ref = if still_ramping {
                                0.0
                            } else {
                                nh.conserved_quantity(state)
                            };
                            c.write(
                                *steps_total as u64,
                                state,
                                self.rng.state(),
                                h_ref,
                                0.0,
                                &self.t_stats,
                                Some(ThermostatSnapshot {
                                    xi,
                                    eta,
                                    target_k: nh.target_k,
                                    q: nh.q,
                                }),
                                Some(RampSnapshot {
                                    holding: !still_ramping,
                                    hold_step: 0,
                                    steps_total: *steps_total as u64,
                                }),
                                rec,
                            )?;
                        }
                    }
                    if !still_ramping {
                        // Hold phase: the set-point is fixed at the target,
                        // so H' is a real conserved quantity again.
                        *phase = RampPhase::Holding {
                            h0: nh.conserved_quantity(state),
                            hold_step: 0,
                        };
                        return Ok(*hold_steps == 0);
                    }
                    Ok(false)
                }
                RampPhase::Holding { h0, hold_step } => {
                    if *hold_step >= *hold_steps {
                        return Ok(true);
                    }
                    *hold_step += 1;
                    let now = *hold_step;
                    nh.step_with(state, engine, &mut self.ws)?;
                    *steps_total += 1;
                    self.t_stats.push(state.temperature());
                    self.drift = self.drift.max((nh.conserved_quantity(state) - *h0).abs());
                    if let Some(tr) = self.trajectory.as_mut() {
                        tr.observe(state);
                    }
                    if let Some((recording, recorder)) = rec.as_mut() {
                        recording.observe(
                            recorder,
                            now,
                            state,
                            nh.conserved_quantity(state),
                            model,
                            &mut self.ws,
                        )?;
                    }
                    if let Some(c) = self.ckpt.as_ref() {
                        if c.due(*steps_total) {
                            let (xi, eta) = nh.thermostat_state();
                            c.write(
                                *steps_total as u64,
                                state,
                                self.rng.state(),
                                *h0,
                                self.drift,
                                &self.t_stats,
                                Some(ThermostatSnapshot {
                                    xi,
                                    eta,
                                    target_k: nh.target_k,
                                    q: nh.q,
                                }),
                                Some(RampSnapshot {
                                    holding: true,
                                    hold_step: now as u64,
                                    steps_total: *steps_total as u64,
                                }),
                                rec,
                            )?;
                        }
                    }
                    Ok(*hold_step >= *hold_steps)
                }
            },
        }
    }

    /// Consume the finished attempt into the run summary.
    fn finish(self) -> SimulationSummary {
        match self.kind {
            AttemptKind::Relax {
                structure, outcome, ..
            } => {
                let (energy, iterations, converged) =
                    outcome.expect("finish called before the relaxation ran");
                SimulationSummary {
                    final_potential_energy: energy,
                    final_total_energy: energy,
                    mean_temperature_k: 0.0,
                    conserved_drift: 0.0,
                    steps: iterations,
                    converged,
                    trajectory: None,
                    final_structure: structure.expect("relax structure present"),
                    final_velocities: Vec::new(),
                }
            }
            AttemptKind::Nve { state, steps, .. } | AttemptKind::Nvt { state, steps, .. } => {
                SimulationSummary {
                    final_potential_energy: state.potential_energy,
                    final_total_energy: state.total_energy(),
                    mean_temperature_k: self.t_stats.mean(),
                    conserved_drift: self.drift,
                    steps,
                    converged: true,
                    trajectory: self.trajectory,
                    final_velocities: state.velocities.clone(),
                    final_structure: state.structure,
                }
            }
            AttemptKind::Ramp {
                state, steps_total, ..
            } => SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: self.t_stats.mean(),
                conserved_drift: self.drift,
                steps: steps_total,
                converged: true,
                trajectory: self.trajectory,
                final_velocities: state.velocities.clone(),
                final_structure: state.structure,
            },
        }
    }
}

/// Where the session's recorder lives.
enum RecorderSlot<'r> {
    /// Borrowed from the caller (the `run_simulation_recorded` wrappers —
    /// the caller keeps ownership and calls `finish()` itself).
    Borrowed(&'r mut RunRecorder),
    /// Owned by the session (service tenants — reclaim it with
    /// [`Session::take_recorder`]).
    Owned(Box<RunRecorder>),
}

impl RecorderSlot<'_> {
    fn as_mut(&mut self) -> &mut RunRecorder {
        match self {
            RecorderSlot::Borrowed(r) => r,
            RecorderSlot::Owned(r) => r,
        }
    }
}

/// What checkpointing a builder asked for, before the store is opened.
enum CkptRequest {
    Dir(CheckpointConfig),
    Store {
        store: CheckpointStore,
        interval: usize,
    },
}

/// Result of one [`Session::step`] / [`Session::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The protocol has more steps to run.
    Running,
    /// The run is complete; the summary is available via
    /// [`Session::take_summary`] (or was already returned by `run`).
    Done,
}

/// Builder for a [`Session`]: configuration first, then the optional
/// attachments (recorder, checkpoint store, fault schedule, resilience
/// policy, compute-budget lease), then [`SessionBuilder::build`].
pub struct SessionBuilder<'r> {
    config: SimulationConfig,
    recorder: Option<RecorderSlot<'r>>,
    recorder_opts: RecorderConfig,
    checkpoint: Option<CkptRequest>,
    faults: Vec<FaultPlan>,
    resilience: Option<ResilienceOptions>,
    resume: bool,
    lease: Option<ComputeLease>,
    telemetry: Option<ScopedSink>,
    initial: Option<InitialState>,
}

impl<'r> SessionBuilder<'r> {
    pub fn new(config: SimulationConfig) -> SessionBuilder<'r> {
        SessionBuilder {
            config,
            recorder: None,
            recorder_opts: RecorderConfig::standard(),
            checkpoint: None,
            faults: Vec::new(),
            resilience: None,
            resume: false,
            lease: None,
            telemetry: None,
            initial: None,
        }
    }

    /// Stream JSONL step records into a caller-owned recorder. The
    /// `options.checkpoint` directory (if any) doubles as the session's
    /// checkpoint store unless [`SessionBuilder::checkpoint`] /
    /// [`SessionBuilder::checkpoint_store`] names one explicitly.
    pub fn record(mut self, recorder: &'r mut RunRecorder, options: RecorderConfig) -> Self {
        self.recorder = Some(RecorderSlot::Borrowed(recorder));
        self.recorder_opts = options;
        self
    }

    /// Like [`SessionBuilder::record`], but the session owns the recorder —
    /// what a service tenant uses (reclaim it with
    /// [`Session::take_recorder`] after the run).
    pub fn record_owned(mut self, recorder: RunRecorder, options: RecorderConfig) -> Self {
        self.recorder = Some(RecorderSlot::Owned(Box::new(recorder)));
        self.recorder_opts = options;
        self
    }

    /// Write a `TBCK` snapshot every `ckpt.interval` steps into `ckpt.dir`
    /// (atomic publish, newest-`retain` rotation).
    pub fn checkpoint(mut self, ckpt: &CheckpointConfig) -> Self {
        self.checkpoint = Some(CkptRequest::Dir(ckpt.clone()));
        self
    }

    /// Checkpoint through an already-open store (e.g.
    /// [`CheckpointStore::in_memory`] for disk-free service tenants).
    pub fn checkpoint_store(mut self, store: CheckpointStore, interval: usize) -> Self {
        self.checkpoint = Some(CkptRequest::Store { store, interval });
        self
    }

    /// Schedule fault injections: the i-th plan is armed at the start of
    /// the i-th attempt, against the engine's persistent evaluation
    /// counter.
    pub fn faults(mut self, faults: &[FaultPlan]) -> Self {
        self.faults = faults.to_vec();
        self
    }

    /// Recover from rank failures by rewinding to the newest snapshot,
    /// following `options.policy`, giving up after `options.max_recoveries`
    /// recoveries. Also makes the first attempt auto-resume from whatever
    /// the checkpoint store already holds.
    pub fn resilience(mut self, options: ResilienceOptions) -> Self {
        self.resilience = Some(options);
        self
    }

    /// Resume from the newest usable snapshot of the checkpoint store;
    /// an empty store or a config mismatch fails [`SessionBuilder::build`].
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Pin a compute-budget lease: every step of this session runs inside
    /// [`ComputeLease::scoped`], so a width-1 lease serializes its fan-outs
    /// (bitwise identically) instead of grabbing the shared pool.
    pub fn lease(mut self, lease: ComputeLease) -> Self {
        self.lease = Some(lease);
        self
    }

    /// Attribute this session's trace events to a labelled
    /// [`ScopedSink`]: every [`Session::step`] enters the scope, so the
    /// sink accumulates this session's counters, phase times and latency
    /// histograms alongside the process-global registry — the per-tenant
    /// view the serve scheduler reads for its `stats` verb. No effect
    /// unless a collecting global sink is installed.
    pub fn telemetry(mut self, sink: ScopedSink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Start from an explicit [`InitialState`] instead of building the
    /// configured system: the campaign runner's inter-segment hook (defect
    /// cells, strained boxes, the carried endpoint of a previous protocol
    /// segment). The state's fingerprint is folded into the session's
    /// checkpoint identity, so snapshots never resume across different
    /// starting states.
    pub fn initial_state(mut self, state: InitialState) -> Self {
        self.initial = Some(state);
        self
    }

    /// Resolve the attachments and build the engine. Fails on an unusable
    /// checkpoint store or a failed required-resume load; engine
    /// construction itself is infallible.
    pub fn build(self) -> Result<Session<'r>, TbError> {
        let config = self.config;
        if let Some(init) = self.initial.as_ref() {
            if let Some(v) = init.velocities.as_ref() {
                if v.len() != init.structure.n_atoms() {
                    return Err(TbError::Config(format!(
                        "initial state carries {} velocities for {} atoms",
                        v.len(),
                        init.structure.n_atoms()
                    )));
                }
            }
        }
        let fingerprint = run_fingerprint(&config, self.initial.as_ref());
        let request = self
            .checkpoint
            .or_else(|| self.recorder_opts.checkpoint.clone().map(CkptRequest::Dir));
        let checkpoint = match request {
            Some(CkptRequest::Dir(c)) => Some(CkptSpec {
                store: CheckpointStore::open(&c.dir, c.retain).map_err(ckpt_err)?,
                interval: c.interval,
            }),
            Some(CkptRequest::Store { store, interval }) => Some(CkptSpec { store, interval }),
            None => None,
        };
        let pending_resume = if self.resume {
            let spec = checkpoint.as_ref().ok_or_else(|| {
                TbError::Checkpoint("resume_simulation_recorded needs options.checkpoint".into())
            })?;
            Some(load_latest_validated(fingerprint, &spec.store)?)
        } else {
            None
        };
        let recording = self
            .recorder
            .as_ref()
            .map(|_| Recording::new(&config, &self.recorder_opts));
        // The session owns both the model and the engine that borrows it.
        // The model lives in a Box (a stable heap address), the engine is
        // declared before the model so it drops first, and `&mut model` /
        // `Box::into_inner` are never exposed — so the unsafe lifetime
        // extension below can never observe a dangling model.
        let model = Box::new(config.system.model());
        let model_ref: &'static GspTbModel = unsafe { &*(model.as_ref() as *const GspTbModel) };
        let engine = Engine::build(config.engine, model_ref, config.electronic_kt);
        let report = RecoveryReport {
            final_ranks: engine.active_ranks(),
            ..RecoveryReport::default()
        };
        Ok(Session {
            engine,
            model,
            config,
            recorder: self.recorder,
            recording,
            checkpoint,
            faults: self.faults.into_iter(),
            resilience: self.resilience,
            report,
            pending_resume,
            auto_resume: self.resilience.is_some(),
            attempt: None,
            outcome: None,
            done: false,
            steps_done: 0,
            alloc_events: 0,
            lease: self.lease,
            telemetry: self.telemetry,
            initial: self.initial,
            fingerprint,
        })
    }
}

/// A simulation in flight: the persistent engine, the protocol state, and
/// the rewind loop, advanced one MD step per [`Session::step`] call. See
/// the module docs for the builder lifecycle.
pub struct Session<'r> {
    // Field order is load-bearing: the engine borrows the boxed model
    // (via an unsafe 'static extension in `SessionBuilder::build`), so it
    // must be dropped first. Rust drops fields in declaration order.
    engine: Engine<'static>,
    #[allow(dead_code)]
    model: Box<GspTbModel>,
    config: SimulationConfig,
    recorder: Option<RecorderSlot<'r>>,
    recording: Option<Recording>,
    checkpoint: Option<CkptSpec>,
    faults: std::vec::IntoIter<FaultPlan>,
    resilience: Option<ResilienceOptions>,
    report: RecoveryReport,
    pending_resume: Option<Snapshot>,
    /// Resilient mode: reload the newest snapshot at the start of every
    /// attempt (a failure before the first snapshot restarts from scratch).
    auto_resume: bool,
    attempt: Option<Attempt>,
    outcome: Option<SimulationSummary>,
    done: bool,
    steps_done: usize,
    /// Workspace/pool growth events folded in from completed attempts;
    /// the live attempt's count is added on read.
    alloc_events: u64,
    lease: Option<ComputeLease>,
    telemetry: Option<ScopedSink>,
    /// Caller-supplied starting state override (see [`InitialState`]).
    initial: Option<InitialState>,
    /// Resume-identity fingerprint: config + initial-state override.
    fingerprint: u64,
}

impl<'r> Session<'r> {
    /// The configuration this session runs.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The persistent engine (its evaluation counter and rank set survive
    /// rewinds).
    pub fn engine(&self) -> &Engine<'static> {
        &self.engine
    }

    /// Force/energy evaluations performed so far, across all attempts.
    pub fn evaluations(&self) -> u64 {
        self.engine.evaluations()
    }

    /// MD steps this session has executed (across rewinds; a relaxation
    /// counts as one).
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Whether the run is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rewind statistics (recoveries, blamed ranks, final rank count).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Workspace/pool growth events attributed to *this* session — its own
    /// workspaces across all attempts, not a process-global count, so O(1)
    /// allocation assertions stay meaningful when many sessions multiplex
    /// one process.
    pub fn large_alloc_events(&self) -> u64 {
        self.alloc_events
            + self
                .attempt
                .as_ref()
                .map_or(0, |a| a.ws.large_alloc_events() as u64)
    }

    /// The scoped telemetry sink attached at build time, if any.
    pub fn telemetry(&self) -> Option<&ScopedSink> {
        self.telemetry.as_ref()
    }

    /// Attach (or replace) a compute-budget lease mid-run — what the serve
    /// scheduler does when an admitted tenant's lease is granted.
    pub fn set_lease(&mut self, lease: ComputeLease) {
        self.lease = Some(lease);
    }

    /// Release the session's lease back to the budget.
    pub fn take_lease(&mut self) -> Option<ComputeLease> {
        self.lease.take()
    }

    /// Reclaim a session-owned recorder (tenants call `finish()` on it to
    /// emit the summary line). `None` for borrowed or absent recorders.
    pub fn take_recorder(&mut self) -> Option<RunRecorder> {
        match self.recorder.take() {
            Some(RecorderSlot::Owned(r)) => Some(*r),
            other => {
                self.recorder = other;
                None
            }
        }
    }

    /// The finished run's summary (at most once, after [`SessionStatus::Done`]).
    pub fn take_summary(&mut self) -> Option<SimulationSummary> {
        self.outcome.take()
    }

    /// Advance one MD step (running the rewind loop as needed). On a rank
    /// failure with resilience enabled, the recovery — re-shard, snapshot
    /// reload, re-init — happens inside this call and stepping continues,
    /// so one `step()` always makes forward progress or returns an error.
    pub fn step(&mut self) -> Result<SessionStatus, TbError> {
        if self.done {
            return Ok(SessionStatus::Done);
        }
        // Telemetry: everything this step records lands in the session's
        // scoped sink too (the per-tenant view), the step wall time feeds
        // the Step histogram, and an armed timeline gets one "step"
        // interval. With tracing disabled this whole block is one relaxed
        // atomic load and two `None`s — no clocks are read.
        let _scope = self.telemetry.as_ref().map(|s| s.enter());
        let step_clock = if tbmd_trace::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        let step_span = if tbmd_trace::timeline::is_enabled() {
            Some(tbmd_trace::timeline::span("step"))
        } else {
            None
        };
        // Hold the lease outside `self` while its scope wraps the advance,
        // so the closure can borrow `self` mutably.
        let lease = self.lease.take();
        let result = loop {
            let advanced = match lease.as_ref() {
                Some(l) => l.scoped(|| self.advance()),
                None => self.advance(),
            };
            match advanced {
                Ok(finished) => {
                    self.steps_done += 1;
                    if finished {
                        self.finish_attempt();
                        break Ok(SessionStatus::Done);
                    }
                    break Ok(SessionStatus::Running);
                }
                Err(TbError::RankFailure {
                    detail,
                    failed_ranks,
                }) if self.resilience.is_some() => {
                    if let Err(e) = self.recover(detail, failed_ranks) {
                        self.done = true;
                        break Err(e);
                    }
                }
                Err(e) => {
                    self.done = true;
                    break Err(e);
                }
            }
        };
        self.lease = lease;
        if let Some(t0) = step_clock {
            tbmd_trace::record_ns(Hist::Step, t0.elapsed().as_nanos() as u64);
        }
        if let Some(span) = step_span {
            span.finish();
        }
        result
    }

    /// Drive the session to completion and return the summary — the
    /// monolithic entry points in [`crate::simulation`] are this.
    pub fn run(&mut self) -> Result<SimulationSummary, TbError> {
        while self.step()? == SessionStatus::Running {}
        self.take_summary()
            .ok_or_else(|| TbError::Checkpoint("session already ran to completion".into()))
    }

    /// Step until the session has executed at least `target_steps` MD steps
    /// (or finished) — the quantum a round-robin scheduler hands each
    /// tenant.
    pub fn run_until(&mut self, target_steps: usize) -> Result<SessionStatus, TbError> {
        while !self.done && self.steps_done < target_steps {
            self.step()?;
        }
        Ok(if self.done {
            SessionStatus::Done
        } else {
            SessionStatus::Running
        })
    }

    /// Ensure an attempt exists, then advance it one step.
    fn advance(&mut self) -> Result<bool, TbError> {
        if self.attempt.is_none() {
            self.begin_attempt()?;
        }
        let mut rec: Rec<'_> = match (self.recording.as_mut(), self.recorder.as_mut()) {
            (Some(recording), Some(slot)) => Some((recording, slot.as_mut())),
            _ => None,
        };
        self.attempt.as_mut().expect("attempt just ensured").step(
            &self.engine,
            self.model.as_ref(),
            &mut rec,
        )
    }

    /// Start the next attempt: arm the next fault plan, pick the resume
    /// snapshot (explicit for a required resume, the newest usable one in
    /// resilient mode, none otherwise), and run the protocol init.
    fn begin_attempt(&mut self) -> Result<(), TbError> {
        if let Some(plan) = self.faults.next() {
            self.engine.inject_fault(plan);
        }
        let resume = if let Some(snap) = self.pending_resume.take() {
            Some(snap)
        } else if self.auto_resume {
            match self.checkpoint.as_ref() {
                // A failure before the first snapshot (or an unusable one)
                // restarts from scratch.
                Some(spec) => match load_latest_validated(self.fingerprint, &spec.store) {
                    Ok(snap) => Some(snap),
                    Err(TbError::Checkpoint(_)) => None,
                    Err(e) => return Err(e),
                },
                None => None,
            }
        } else {
            None
        };
        let ckpt = self
            .checkpoint
            .as_ref()
            .map(|spec| CkptCtx::from_spec(spec, self.fingerprint, self.config.seed));
        let mut rec: Rec<'_> = match (self.recording.as_mut(), self.recorder.as_mut()) {
            (Some(recording), Some(slot)) => Some((recording, slot.as_mut())),
            _ => None,
        };
        let attempt = Attempt::new(
            &self.config,
            self.initial.as_ref(),
            &self.engine,
            ckpt,
            resume,
            &mut rec,
        )?;
        self.attempt = Some(attempt);
        Ok(())
    }

    /// Handle one rank failure under the resilience policy; errors once the
    /// recovery budget is exhausted.
    fn recover(&mut self, detail: String, failed_ranks: Vec<usize>) -> Result<(), TbError> {
        let options = self.resilience.expect("recover only runs when resilient");
        if self.report.recoveries >= options.max_recoveries {
            return Err(TbError::RankFailure {
                detail: format!(
                    "gave up after {} recoveries: {detail}",
                    options.max_recoveries
                ),
                failed_ranks,
            });
        }
        self.report.recoveries += 1;
        tbmd_trace::add(Counter::Recoveries, 1);
        match options.policy {
            ReshardPolicy::Respawn => {
                self.engine.respawn_full_ranks();
            }
            ReshardPolicy::Shrink => {
                self.engine.shrink_ranks(failed_ranks.len().max(1));
            }
        }
        self.report.failed_ranks.extend(failed_ranks);
        if let Some(failed) = self.attempt.take() {
            self.alloc_events += failed.ws.large_alloc_events() as u64;
        }
        Ok(())
    }

    fn finish_attempt(&mut self) {
        let attempt = self.attempt.take().expect("finished attempt present");
        self.alloc_events += attempt.ws.large_alloc_events() as u64;
        self.report.final_ranks = self.engine.active_ranks();
        let t_stats = attempt.t_stats.clone();
        let summary = attempt.finish();
        if let Some(slot) = self.recorder.as_mut() {
            slot.as_mut()
                .set_observables(observables_json(&t_stats, &summary));
        }
        self.outcome = Some(summary);
        self.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::run_simulation;
    use crate::system::SystemSpec;

    fn nve_config(seed: u64, steps: usize) -> SimulationConfig {
        let mut c = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, steps);
        c.seed = seed;
        c
    }

    /// The stepwise session must retrace the monolithic driver bit for bit.
    #[test]
    fn stepwise_session_matches_run_simulation_bitwise() {
        let config = nve_config(11, 8);
        let reference = run_simulation(&config).expect("reference run");
        let mut session = SessionBuilder::new(config).build().expect("build");
        let mut calls = 0usize;
        while session.step().expect("step") == SessionStatus::Running {
            calls += 1;
        }
        assert_eq!(calls + 1, 8, "one MD step per step() call");
        let summary = session.take_summary().expect("summary");
        assert_eq!(
            summary.final_total_energy.to_bits(),
            reference.final_total_energy.to_bits()
        );
        for (a, b) in summary
            .final_structure
            .positions()
            .iter()
            .zip(reference.final_structure.positions())
        {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        for (a, b) in summary
            .final_velocities
            .iter()
            .zip(&reference.final_velocities)
        {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
        }
    }

    /// Two interleaved sessions must not perturb each other's trajectories.
    #[test]
    fn interleaved_sessions_match_serial_runs() {
        let ca = nve_config(21, 6);
        let cb = nve_config(22, 6);
        let ra = run_simulation(&ca).expect("serial a");
        let rb = run_simulation(&cb).expect("serial b");
        let mut sa = SessionBuilder::new(ca).build().expect("a");
        let mut sb = SessionBuilder::new(cb).build().expect("b");
        loop {
            let a = sa.step().expect("a step");
            let b = sb.step().expect("b step");
            if a == SessionStatus::Done && b == SessionStatus::Done {
                break;
            }
        }
        let (sa, sb) = (sa.take_summary().unwrap(), sb.take_summary().unwrap());
        assert_eq!(
            sa.final_total_energy.to_bits(),
            ra.final_total_energy.to_bits()
        );
        assert_eq!(
            sb.final_total_energy.to_bits(),
            rb.final_total_energy.to_bits()
        );
    }

    #[test]
    fn run_until_paces_in_quanta() {
        let config = nve_config(31, 10);
        let mut session = SessionBuilder::new(config).build().expect("build");
        assert_eq!(
            session.run_until(4).expect("quantum"),
            SessionStatus::Running
        );
        assert_eq!(session.steps_done(), 4);
        assert_eq!(session.run_until(100).expect("rest"), SessionStatus::Done);
        assert_eq!(session.steps_done(), 10);
        assert!(session.take_summary().is_some());
    }
}
