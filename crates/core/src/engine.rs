//! Engine selection: one enum over every force engine in the workspace.

use serde::{Deserialize, Serialize};
use tbmd_linscale::{DistributedLinearScalingTb, LinearScalingTb};
use tbmd_model::{
    ForceEvaluation, ForceProvider, OccupationScheme, TbCalculator, TbError, TbModel, Workspace,
};
use tbmd_parallel::{DistributedTb, Eigensolver, FaultPlan, RecvTimeoutPolicy, SharedMemoryTb};
use tbmd_structure::Structure;

/// Which engine evaluates energies and forces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum EngineKind {
    /// Serial reference calculator (Householder+QL).
    #[default]
    Serial,
    /// Shared-memory Rayon engine with the QL eigensolver.
    Shared,
    /// Shared-memory Rayon engine with the parallel-ordered Jacobi solver.
    SharedJacobi,
    /// Message-passing engine on `ranks` virtual ranks.
    Distributed { ranks: usize },
    /// O(N) Chebyshev engine with the given localization radius (Å) and
    /// expansion order.
    LinearScaling { r_loc: f64, order: usize },
    /// Message-passing O(N) engine (see DESIGN.md experiment F8).
    DistributedLinearScaling {
        ranks: usize,
        r_loc: f64,
        order: usize,
    },
}

/// A constructed engine borrowing its model.
pub enum Engine<'m> {
    Serial(TbCalculator<'m>),
    Shared(SharedMemoryTb<'m>),
    Distributed(DistributedTb<'m>),
    LinearScaling(LinearScalingTb<'m>),
    DistributedLinearScaling(DistributedLinearScalingTb<'m>),
}

impl<'m> Engine<'m> {
    /// Build an engine of the requested kind over any tight-binding model,
    /// with the given electronic smearing (eV; 0 selects zero-temperature
    /// filling where the engine supports it).
    ///
    /// Accepts `&dyn TbModel`, so concrete references like
    /// `&GspTbModel` (what [`crate::SystemSpec::model`] returns) coerce at
    /// the call site.
    pub fn build(kind: EngineKind, model: &'m dyn TbModel, kt: f64) -> Engine<'m> {
        let occ = if kt > 0.0 {
            OccupationScheme::Fermi { kt }
        } else {
            OccupationScheme::ZeroTemperature
        };
        match kind {
            EngineKind::Serial => Engine::Serial(TbCalculator::with_occupation(model, occ)),
            EngineKind::Shared => Engine::Shared(SharedMemoryTb::new(model).with_occupation(occ)),
            EngineKind::SharedJacobi => Engine::Shared(
                SharedMemoryTb::new(model)
                    .with_occupation(occ)
                    .with_eigensolver(Eigensolver::ParallelJacobi),
            ),
            EngineKind::Distributed { ranks } => {
                Engine::Distributed(DistributedTb::new(model, ranks).with_occupation(occ))
            }
            EngineKind::LinearScaling { r_loc, order } => Engine::LinearScaling(
                LinearScalingTb::new(model)
                    .with_r_loc(r_loc)
                    .with_order(order)
                    .with_kt(kt.max(0.05)),
            ),
            EngineKind::DistributedLinearScaling {
                ranks,
                r_loc,
                order,
            } => Engine::DistributedLinearScaling(
                DistributedLinearScalingTb::new(model, ranks)
                    .with_r_loc(r_loc)
                    .with_order(order)
                    .with_kt(kt.max(0.05)),
            ),
        }
    }

    /// Arm a fault-injection plan on the underlying distributed engine.
    /// Returns `false` (and arms nothing) for engines without virtual
    /// ranks — serial and shared-memory paths have no rank to kill.
    pub fn inject_fault(&self, plan: FaultPlan) -> bool {
        match self {
            Engine::Distributed(e) => {
                e.set_fault_plan(plan);
                true
            }
            Engine::DistributedLinearScaling(e) => {
                e.set_fault_plan(plan);
                true
            }
            Engine::Serial(_) | Engine::Shared(_) | Engine::LinearScaling(_) => false,
        }
    }

    /// Ranks the next evaluation will launch: the configured count minus
    /// any dropped by [`Engine::shrink_ranks`]. 1 for engines without
    /// virtual ranks.
    pub fn active_ranks(&self) -> usize {
        match self {
            Engine::Distributed(e) => e.active_ranks(),
            Engine::DistributedLinearScaling(e) => e.active_ranks(),
            Engine::Serial(_) | Engine::Shared(_) | Engine::LinearScaling(_) => 1,
        }
    }

    /// Shrink-to-fit re-sharding after a rank failure: drop `n_failed`
    /// ranks from the active set (never below 1) and return the new count.
    /// The next evaluation re-partitions every spectrum slice and atom
    /// block over the survivors. No-op (returns 1) for rankless engines.
    pub fn shrink_ranks(&self, n_failed: usize) -> usize {
        match self {
            Engine::Distributed(e) => e.shrink_ranks(n_failed),
            Engine::DistributedLinearScaling(e) => e.shrink_ranks(n_failed),
            Engine::Serial(_) | Engine::Shared(_) | Engine::LinearScaling(_) => 1,
        }
    }

    /// Restore the full configured rank count (virtual ranks are threads,
    /// so "respawning" is free) and return it.
    pub fn respawn_full_ranks(&self) -> usize {
        match self {
            Engine::Distributed(e) => e.respawn_full_ranks(),
            Engine::DistributedLinearScaling(e) => e.respawn_full_ranks(),
            Engine::Serial(_) | Engine::Shared(_) | Engine::LinearScaling(_) => 1,
        }
    }

    /// Set the failure-detection window policy on the underlying
    /// distributed engine. Returns `false` (and sets nothing) for engines
    /// without virtual ranks.
    pub fn set_recv_timeout(&self, policy: RecvTimeoutPolicy) -> bool {
        match self {
            Engine::Distributed(e) => {
                e.set_recv_timeout(policy);
                true
            }
            Engine::DistributedLinearScaling(e) => {
                e.set_recv_timeout(policy);
                true
            }
            Engine::Serial(_) | Engine::Shared(_) | Engine::LinearScaling(_) => false,
        }
    }

    /// Evaluations performed by this engine instance (fault plans are
    /// 1-based against this count; 0 for engines that do not count).
    pub fn evaluations(&self) -> u64 {
        match self {
            Engine::Distributed(e) => e.evaluations(),
            Engine::DistributedLinearScaling(e) => e.evaluations(),
            Engine::Serial(_) | Engine::Shared(_) | Engine::LinearScaling(_) => 0,
        }
    }
}

impl ForceProvider for Engine<'_> {
    fn evaluate(&self, s: &Structure) -> Result<ForceEvaluation, TbError> {
        match self {
            Engine::Serial(e) => e.evaluate(s),
            Engine::Shared(e) => e.evaluate(s),
            Engine::Distributed(e) => e.evaluate(s),
            Engine::LinearScaling(e) => e.evaluate(s),
            Engine::DistributedLinearScaling(e) => e.evaluate(s),
        }
    }

    fn evaluate_with(&self, s: &Structure, ws: &mut Workspace) -> Result<ForceEvaluation, TbError> {
        match self {
            Engine::Serial(e) => e.evaluate_with(s, ws),
            Engine::Shared(e) => e.evaluate_with(s, ws),
            Engine::Distributed(e) => e.evaluate_with(s, ws),
            Engine::LinearScaling(e) => e.evaluate_with(s, ws),
            Engine::DistributedLinearScaling(e) => e.evaluate_with(s, ws),
        }
    }

    fn energy_only(&self, s: &Structure) -> Result<f64, TbError> {
        match self {
            Engine::Serial(e) => e.energy_only(s),
            Engine::Shared(e) => e.energy_only(s),
            Engine::Distributed(e) => e.energy_only(s),
            Engine::LinearScaling(e) => e.energy_only(s),
            Engine::DistributedLinearScaling(e) => e.energy_only(s),
        }
    }

    fn provider_name(&self) -> &str {
        match self {
            Engine::Serial(e) => e.provider_name(),
            Engine::Shared(e) => e.provider_name(),
            Engine::Distributed(e) => e.provider_name(),
            Engine::LinearScaling(e) => e.provider_name(),
            Engine::DistributedLinearScaling(e) => e.provider_name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbmd_model::silicon_gsp;
    use tbmd_structure::{bulk_diamond, Species};

    #[test]
    fn all_engines_agree_on_perfect_crystal() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let kinds = [
            EngineKind::Serial,
            EngineKind::Shared,
            EngineKind::SharedJacobi,
            EngineKind::Distributed { ranks: 2 },
        ];
        let reference = Engine::build(EngineKind::Serial, &model, 0.1)
            .evaluate(&s)
            .unwrap()
            .energy;
        for kind in kinds {
            let engine = Engine::build(kind, &model, 0.1);
            let e = engine.evaluate(&s).unwrap().energy;
            assert!((e - reference).abs() < 1e-6, "{kind:?}: {e} vs {reference}");
        }
    }

    #[test]
    fn linear_scaling_engine_close_on_mermin_free_energy() {
        // The O(N) engine computes the full Mermin free energy (band +
        // repulsive + entropy) from Chebyshev moments; at infinite r_loc and
        // high order it must match the dense-diagonalization serial result.
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let serial = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.3 });
        let r = serial.compute(&s).unwrap();
        let engine = Engine::build(
            EngineKind::LinearScaling {
                r_loc: f64::INFINITY,
                order: 400,
            },
            &model,
            0.3,
        );
        let e = engine.evaluate(&s).unwrap().energy;
        assert!((e - r.energy).abs() < 1e-2, "{e} vs {}", r.energy);
    }

    #[test]
    fn distributed_linear_scaling_kind() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let shared = Engine::build(
            EngineKind::LinearScaling {
                r_loc: 5.0,
                order: 120,
            },
            &model,
            0.3,
        );
        let dist = Engine::build(
            EngineKind::DistributedLinearScaling {
                ranks: 2,
                r_loc: 5.0,
                order: 120,
            },
            &model,
            0.3,
        );
        let a = shared.evaluate(&s).unwrap().energy;
        let b = dist.evaluate(&s).unwrap().energy;
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        assert_eq!(dist.provider_name(), "distributed-linear-scaling-tb");
    }

    #[test]
    fn default_kind_is_serial() {
        assert_eq!(EngineKind::default(), EngineKind::Serial);
    }

    #[test]
    fn engine_names() {
        let model = silicon_gsp();
        assert_eq!(
            Engine::build(EngineKind::Serial, &model, 0.1).provider_name(),
            "serial-tb"
        );
        assert_eq!(
            Engine::build(EngineKind::Distributed { ranks: 2 }, &model, 0.1).provider_name(),
            "distributed-tb"
        );
        assert_eq!(
            Engine::build(
                EngineKind::LinearScaling {
                    r_loc: 5.0,
                    order: 64
                },
                &model,
                0.2
            )
            .provider_name(),
            "linear-scaling-tb"
        );
    }
}
