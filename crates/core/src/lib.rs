//! # tbmd — parallel tight-binding molecular dynamics
//!
//! The public facade of the workspace: re-exports the structure builders,
//! tight-binding models, MD integrators, parallel engines and the O(N)
//! engine, and adds the high-level [`SimulationConfig`]/[`run_simulation`]
//! driver plus the [`Engine`]/[`EngineKind`] selection layer.
//!
//! ## Quick start
//!
//! ```
//! use tbmd::{run_simulation, SimulationConfig, SystemSpec};
//!
//! let config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 5);
//! let summary = run_simulation(&config).unwrap();
//! assert!(summary.conserved_drift < 0.05); // NVE energy conservation
//! ```

pub mod engine;
pub mod session;
pub mod simulation;
pub mod system;

pub use engine::{Engine, EngineKind};
pub use session::{InitialState, Session, SessionBuilder, SessionStatus};
pub use simulation::{
    resume_simulation, resume_simulation_recorded, run_manifest, run_simulation,
    run_simulation_checkpointed, run_simulation_recorded, run_simulation_resilient,
    run_simulation_resilient_with, CheckpointConfig, Protocol, RecorderConfig, RecoveryReport,
    ReshardPolicy, ResilienceOptions, SimulationConfig, SimulationSummary,
};
pub use system::SystemSpec;

// Re-export the component crates under stable names.
pub use tbmd_linalg as linalg;
pub use tbmd_linscale as linscale;
pub use tbmd_md as md;
pub use tbmd_model as model;
pub use tbmd_parallel as parallel;
pub use tbmd_structure as structure;
pub use tbmd_trace as trace;

// The most common types at the top level.
pub use tbmd_ckpt::{
    CheckpointStore, CkptError, FsBackend, MemoryBackend, RampSnapshot, Snapshot, SnapshotBackend,
    StatsSnapshot, ThermostatSnapshot, WriteReceipt,
};
pub use tbmd_linalg::budget::{configure_budget, try_lease, ComputeLease};
pub use tbmd_linalg::{Matrix, Vec3};
pub use tbmd_linscale::{DistributedLinearScalingTb, LinearScalingTb, Precision};
pub use tbmd_md::{
    maxwell_boltzmann, normal_modes, relax, MdState, NormalModes, NoseHoover, RelaxOptions,
    TemperatureRamp, Trajectory, VelocityVerlet,
};
pub use tbmd_model::{
    band_structure, carbon_xwch, pressure, silicon_gsp, silicon_nonortho_demo, stress_tensor,
    ForceProvider, NonOrthoCalculator, OccupationScheme, TbCalculator, TbError, TbModel, Workspace,
};
pub use tbmd_parallel::{
    default_recv_timeout, live_vmp_workers, DistributedSolver, DistributedTb, FaultKind, FaultPlan,
    MachineProfile, RecvTimeoutPolicy, SharedMemoryTb,
};
pub use tbmd_structure::{Cell, NeighborList, Species, Structure, VerletNeighborList};
pub use tbmd_trace::{
    Hist, HistogramSet, RunManifest, RunRecorder, ScopedSink, TraceSink, WatchdogStatus,
};
