//! High-level simulation driver: system + engine + protocol in one call.
//!
//! This is the public API a downstream user reaches for first; the examples
//! in the repository root are thin wrappers around it.

use crate::engine::{Engine, EngineKind};
use crate::system::SystemSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;
use tbmd_ckpt::{
    CheckpointStore, CkptError, RampSnapshot, Snapshot, StatsSnapshot, ThermostatSnapshot,
};
use tbmd_linalg::Vec3;
use tbmd_md::{
    maxwell_boltzmann, relax, MdState, NoseHoover, RelaxOptions, RunningStats, TemperatureRamp,
    Trajectory, VelocityVerlet,
};
use tbmd_model::{
    cached_eigensolver_health, eigensolver_health, DenseSolver, OccupationScheme, TbError, TbModel,
    Workspace,
};
use tbmd_parallel::FaultPlan;
use tbmd_trace::{
    git_describe, Counter, RunManifest, RunRecorder, StepRecord, TraceSink, TraceSnapshot,
};

/// What to do with the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Microcanonical dynamics from a Maxwell–Boltzmann start.
    Nve {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
    },
    /// Nosé–Hoover canonical dynamics.
    Nvt {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Nosé–Hoover dynamics with a thermostat ramp from `from_k` to `to_k`
    /// at `rate_k_per_fs`, then `hold_steps` at the target. `tau_fs` is the
    /// thermostat period (Q = g·k_B·T·τ²; ≈ 50–100 fs for covalent solids).
    NvtRamp {
        from_k: f64,
        to_k: f64,
        rate_k_per_fs: f64,
        hold_steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Conjugate-gradient relaxation to a force tolerance.
    Relax {
        force_tolerance: f64,
        max_iterations: usize,
    },
}

/// Full simulation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Which structure/model to simulate.
    pub system: SystemSpec,
    /// Engine selection.
    pub engine: EngineKind,
    /// What to run.
    pub protocol: Protocol,
    /// Electronic smearing (eV).
    pub electronic_kt: f64,
    /// Initial random displacement amplitude (Å).
    pub perturb: f64,
    /// RNG seed (velocities + perturbation).
    pub seed: u64,
    /// Trajectory recording stride in steps (0 disables).
    pub record_stride: usize,
}

impl SimulationConfig {
    /// A reasonable default NVE run for a system.
    pub fn nve(system: SystemSpec, temperature_k: f64, steps: usize) -> Self {
        SimulationConfig {
            system,
            engine: EngineKind::Serial,
            protocol: Protocol::Nve {
                temperature_k,
                steps,
                dt_fs: 1.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 42,
            record_stride: 0,
        }
    }
}

/// Periodic-snapshot policy for a checkpointed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory the `TBCK` snapshots live in (created if missing).
    pub dir: PathBuf,
    /// Steps between snapshots (0 disables writing; resume still works
    /// against whatever the directory already holds).
    pub interval: usize,
    /// Keep only the newest `retain` snapshots (0 keeps all). Keeping a few
    /// lets [`resume_simulation`] fall back past a torn newest file.
    pub retain: usize,
}

impl CheckpointConfig {
    /// Snapshot into `dir` every `interval` steps, keeping the newest 3.
    pub fn every(dir: impl Into<PathBuf>, interval: usize) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            interval,
            retain: 3,
        }
    }
}

/// Summary statistics of a finished simulation.
#[derive(Debug, Clone)]
pub struct SimulationSummary {
    /// Final potential energy (eV).
    pub final_potential_energy: f64,
    /// Final total energy (eV; = potential for relaxations).
    pub final_total_energy: f64,
    /// Mean temperature over the run (K; 0 for relaxations).
    pub mean_temperature_k: f64,
    /// Peak |ΔE| of the conserved quantity over the run (eV; total energy
    /// for NVE, the Nosé–Hoover extended energy for NVT, and the extended
    /// energy over the constant-temperature hold phase for ramps).
    pub conserved_drift: f64,
    /// Steps (MD) or iterations (relaxation) executed.
    pub steps: usize,
    /// Whether a relaxation converged (always true for MD).
    pub converged: bool,
    /// Recorded trajectory, when requested. A resumed run records only the
    /// frames since the snapshot (earlier frames live in the original run).
    pub trajectory: Option<Trajectory>,
    /// Final configuration.
    pub final_structure: tbmd_structure::Structure,
    /// Final velocities (Å/fs; empty for relaxations). Together with
    /// `final_structure` this pins a trajectory endpoint bit-for-bit, which
    /// is what the kill-and-resume equivalence tests compare.
    pub final_velocities: Vec<Vec3>,
}

/// Knobs of the recorded-run path ([`run_simulation_recorded`]).
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Eigensolver health-probe stride in MD steps (0 disables the probe).
    /// Probes run only on dense-diagonalization engines; the O(N) Chebyshev
    /// engines have no eigenpairs to check.
    pub health_stride: usize,
    /// Periodic snapshots alongside the JSONL stream (`ckpt` lines record
    /// each write).
    pub checkpoint: Option<CheckpointConfig>,
}

impl RecorderConfig {
    /// The default health-probe stride (every 25 steps).
    pub const DEFAULT_HEALTH_STRIDE: usize = 25;

    /// The default recorded-run knobs (health probe every 25 steps, no
    /// checkpointing).
    pub fn standard() -> Self {
        RecorderConfig {
            health_stride: Self::DEFAULT_HEALTH_STRIDE,
            checkpoint: None,
        }
    }
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig::standard()
    }
}

/// The manifest line identifying a run of `config`
/// (`RunRecorder::to_path`/`in_memory` want it up front).
pub fn run_manifest(config: &SimulationConfig) -> RunManifest {
    let structure = config.system.build(config.perturb, config.seed);
    let n_ranks = match config.engine {
        EngineKind::Distributed { ranks } => ranks,
        EngineKind::DistributedLinearScaling { ranks, .. } => ranks,
        _ => 1,
    };
    RunManifest {
        model: config.system.model().name().to_string(),
        engine: format!("{:?}", config.engine),
        n_atoms: structure.n_atoms(),
        n_ranks,
        protocol: format!("{:?}", config.protocol),
        seed: config.seed,
        git_describe: git_describe(),
    }
}

/// Per-step recording state threaded through the MD loops.
struct Recording<'r> {
    recorder: &'r mut RunRecorder,
    health_stride: usize,
    /// Counter snapshot at the previous step boundary (for per-step deltas).
    prev: TraceSnapshot,
    /// Dense engines get the eigensolver probe; O(N) engines do not.
    probe_health: bool,
    occupation: OccupationScheme,
    /// Step records emitted so far (carried into snapshots so a resumed
    /// recorder knows where the original stream ended).
    recorded: u64,
}

impl Recording<'_> {
    /// Record one completed MD step plus an eigensolver health check: the
    /// cheap incremental probe on the solve's cached eigenpairs every step
    /// when the engine leaves them in `ws`, else the independent full-solve
    /// probe on the stride.
    fn observe(
        &mut self,
        step: usize,
        state: &MdState,
        conserved_ev: f64,
        model: &dyn TbModel,
        ws: &mut Workspace,
    ) -> Result<(), TbError> {
        let snap = tbmd_trace::snapshot();
        let delta = snap.since(&self.prev);
        self.prev = snap;
        let record = StepRecord {
            step,
            time_fs: state.time_fs,
            potential_ev: state.potential_energy,
            conserved_ev,
            temperature_k: state.temperature(),
            phase_ns: state.last_timings.phase_ns(),
            comm_bytes: delta.counter(Counter::WireBytes),
            alloc_events: delta.counter(Counter::AllocGrowth),
        };
        self.recorder
            .record_step(&record)
            .map_err(|e| TbError::Recorder(e.to_string()))?;
        self.recorded += 1;
        if self.probe_health && self.health_stride > 0 {
            let health = match cached_eigensolver_health(model, &state.structure, ws, step)? {
                Some(h) => Some(h),
                // No consumable cache (distributed/per-rank solves): pay for
                // the independent full-solve probe, but only on the stride.
                None if step.is_multiple_of(self.health_stride) => Some(eigensolver_health(
                    model,
                    &state.structure,
                    self.occupation,
                    DenseSolver::TwoStage,
                    step,
                )?),
                None => None,
            };
            if let Some(health) = &health {
                self.recorder
                    .record_health(health)
                    .map_err(|e| TbError::Recorder(e.to_string()))?;
            }
        }
        Ok(())
    }
}

/// Map a checkpoint-subsystem error into the driver's error type.
fn ckpt_err(e: CkptError) -> TbError {
    TbError::Checkpoint(e.to_string())
}

/// Fingerprint of the step-count-independent part of a configuration. Two
/// configs that differ only in how *long* they run fingerprint identically,
/// so a run interrupted at step 40 of 100 resumes cleanly into a 500-step
/// request; anything that changes the dynamics (system, engine, timestep,
/// set-points, seed) changes the fingerprint and is rejected on resume.
fn config_fingerprint(config: &SimulationConfig) -> u64 {
    let protocol = match config.protocol {
        Protocol::Nve {
            temperature_k,
            dt_fs,
            ..
        } => format!("nve:{temperature_k:?}:{dt_fs:?}"),
        Protocol::Nvt {
            temperature_k,
            dt_fs,
            tau_fs,
            ..
        } => format!("nvt:{temperature_k:?}:{dt_fs:?}:{tau_fs:?}"),
        Protocol::NvtRamp {
            from_k,
            to_k,
            rate_k_per_fs,
            dt_fs,
            tau_fs,
            ..
        } => format!("ramp:{from_k:?}:{to_k:?}:{rate_k_per_fs:?}:{dt_fs:?}:{tau_fs:?}"),
        Protocol::Relax { .. } => "relax".to_string(),
    };
    let canon = format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{}|{}",
        config.system,
        config.engine,
        protocol,
        config.electronic_kt,
        config.perturb,
        config.seed,
        config.record_stride
    );
    tbmd_ckpt::fingerprint(canon.as_bytes())
}

fn flatten(v: &[Vec3]) -> Vec<f64> {
    v.iter().flat_map(|x| x.to_array()).collect()
}

fn unflatten(v: &[f64]) -> Vec<Vec3> {
    v.chunks_exact(3)
        .map(|c| Vec3 {
            x: c[0],
            y: c[1],
            z: c[2],
        })
        .collect()
}

/// Open store + identity data threaded through the MD loops when
/// checkpointing is on.
struct CkptCtx {
    store: CheckpointStore,
    interval: usize,
    fingerprint: u64,
    seed: u64,
}

impl CkptCtx {
    fn open(ckpt: &CheckpointConfig, config: &SimulationConfig) -> Result<CkptCtx, TbError> {
        Ok(CkptCtx {
            store: CheckpointStore::open(&ckpt.dir, ckpt.retain).map_err(ckpt_err)?,
            interval: ckpt.interval,
            fingerprint: config_fingerprint(config),
            seed: config.seed,
        })
    }

    fn due(&self, step: usize) -> bool {
        self.interval > 0 && step.is_multiple_of(self.interval)
    }

    /// Encode + atomically publish one snapshot, routing the receipt into
    /// the recorder's `ckpt` line (which also bumps the trace counters) or
    /// straight into the trace registry when no recorder is attached.
    #[allow(clippy::too_many_arguments)]
    fn write(
        &self,
        step: u64,
        state: &MdState,
        rng_state: u64,
        conserved_ref: f64,
        drift: f64,
        t_stats: &RunningStats,
        thermostat: Option<ThermostatSnapshot>,
        ramp: Option<RampSnapshot>,
        recording: &mut Option<Recording<'_>>,
    ) -> Result<(), TbError> {
        let (n, mean, m2, min, max) = t_stats.to_raw();
        let snap = Snapshot {
            step,
            time_fs: state.time_fs,
            seed: self.seed,
            config_fingerprint: self.fingerprint,
            rng_state,
            potential_energy: state.potential_energy,
            conserved_ref,
            drift,
            recorded_steps: recording.as_ref().map_or(0, |r| r.recorded),
            positions: flatten(state.structure.positions()),
            velocities: flatten(&state.velocities),
            forces: flatten(&state.forces),
            temp_stats: StatsSnapshot {
                n,
                mean,
                m2,
                min,
                max,
            },
            thermostat,
            ramp,
        };
        let started = Instant::now();
        let receipt = self.store.write(&snap).map_err(ckpt_err)?;
        let wall_ns = started.elapsed().as_nanos() as u64;
        match recording.as_mut() {
            Some(rec) => rec
                .recorder
                .record_ckpt(
                    step as usize,
                    receipt.bytes,
                    wall_ns,
                    &receipt.path.display().to_string(),
                )
                .map_err(|e| TbError::Recorder(e.to_string()))?,
            None => {
                tbmd_trace::add(Counter::CkptWrites, 1);
                tbmd_trace::add(Counter::CkptBytes, receipt.bytes);
                tbmd_trace::add(Counter::CkptNanos, wall_ns);
            }
        }
        Ok(())
    }
}

/// Rebuild an [`MdState`] from a snapshot without re-evaluating forces.
/// Cell, species and masses come from the (deterministic) config build;
/// positions, velocities, forces, potential and clock are restored verbatim
/// so the continued trajectory is bitwise the uninterrupted one.
fn restore_state(
    mut structure: tbmd_structure::Structure,
    snap: &Snapshot,
) -> Result<MdState, TbError> {
    if snap.n_atoms() != structure.n_atoms() {
        return Err(TbError::Checkpoint(format!(
            "snapshot holds {} atoms but the configured system builds {}",
            snap.n_atoms(),
            structure.n_atoms()
        )));
    }
    structure.set_positions(unflatten(&snap.positions));
    Ok(MdState::from_snapshot_parts(
        structure,
        unflatten(&snap.velocities),
        unflatten(&snap.forces),
        snap.potential_energy,
        snap.time_fs,
    ))
}

/// Check a loaded snapshot against the resuming configuration.
fn validate_resume(config: &SimulationConfig, snap: &Snapshot) -> Result<(), TbError> {
    let expect = config_fingerprint(config);
    if snap.config_fingerprint != expect {
        return Err(TbError::Checkpoint(format!(
            "config mismatch: snapshot fingerprint {:#018x} != configured {:#018x} \
             (system/engine/protocol/seed changed since the snapshot was written)",
            snap.config_fingerprint, expect
        )));
    }
    Ok(())
}

/// Load the newest usable snapshot of `ckpt.dir` for `config`, or a typed
/// error if the store is empty or the snapshot belongs to a different run.
fn load_resume_snapshot(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
) -> Result<Snapshot, TbError> {
    let store = CheckpointStore::open(&ckpt.dir, ckpt.retain).map_err(ckpt_err)?;
    let snap = store
        .latest()
        .map_err(ckpt_err)?
        .ok_or_else(|| ckpt_err(CkptError::NoSnapshot))?;
    validate_resume(config, &snap)?;
    Ok(snap)
}

/// Run a configured simulation to completion.
pub fn run_simulation(config: &SimulationConfig) -> Result<SimulationSummary, TbError> {
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    run_simulation_impl(config, &engine, &model, None, None, None)
}

/// [`run_simulation`] writing a `TBCK` snapshot every `ckpt.interval` steps
/// (atomic publish, newest-`retain` rotation). A run killed at any point can
/// be continued with [`resume_simulation`]; the continuation is bitwise the
/// uninterrupted trajectory.
pub fn run_simulation_checkpointed(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
) -> Result<SimulationSummary, TbError> {
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    run_simulation_impl(config, &engine, &model, None, Some(ckpt), None)
}

/// Continue an interrupted run from the newest usable snapshot in
/// `ckpt.dir`. The snapshot must have been written by the same
/// configuration (modulo step counts — resuming into a longer run is fine);
/// anything else is a typed [`TbError::Checkpoint`]. Checkpointing stays on,
/// so the resumed run keeps extending the same store.
pub fn resume_simulation(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
) -> Result<SimulationSummary, TbError> {
    let snap = load_resume_snapshot(config, ckpt)?;
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    run_simulation_impl(config, &engine, &model, None, Some(ckpt), Some(snap))
}

/// What a resilient driver does with the rank set after a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReshardPolicy {
    /// Re-spawn the failed ranks and retry at the configured width.
    /// Virtual ranks are threads, so respawning is free, and the retried
    /// trajectory is *bitwise* the uninterrupted one: the same rank count
    /// means the same reduction-tree grouping, hence the same
    /// floating-point sums.
    #[default]
    Respawn,
    /// Continue on the survivors: the next evaluation recomputes every
    /// spectrum-slice boundary over P − f ranks via the same Sturm
    /// partitioner, so the dead rank's shards are redistributed
    /// automatically. The continued trajectory agrees with the
    /// uninterrupted one only to summation accuracy (the allreduce
    /// grouping changes with the rank count, and float addition is not
    /// associative).
    Shrink,
}

/// Knobs of [`run_simulation_resilient_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceOptions {
    /// Rank-set policy after each failure.
    pub policy: ReshardPolicy,
    /// Give up after this many recoveries (the N+1st failure is returned).
    pub max_recoveries: usize,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            policy: ReshardPolicy::Respawn,
            max_recoveries: 2,
        }
    }
}

/// What it took to finish a resilient run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Rewind-and-retry cycles before the successful attempt.
    pub recoveries: usize,
    /// Every rank blamed across the failures, in failure order.
    pub failed_ranks: Vec<usize>,
    /// Active rank count of the engine at the end: the configured count
    /// under [`ReshardPolicy::Respawn`], the survivor count under
    /// [`ReshardPolicy::Shrink`], 1 for rankless engines.
    pub final_ranks: usize,
}

/// Drive a (possibly fault-injected) run to completion, recovering from the
/// newest snapshot after every distributed rank failure — the
/// kill-and-resume loop of an elastic batch scheduler, in miniature.
///
/// One engine lives across all attempts, so `faults` are scheduled against
/// a single monotone evaluation counter: the i-th plan is armed at the
/// start of the i-th attempt and fires at most once (the rewind after a
/// recovery finds the one-shot slot already empty). A failure before the
/// first snapshot restarts from scratch. After each failure the rank set
/// follows `options.policy`; gives up after `options.max_recoveries`
/// recoveries and returns the last [`TbError::RankFailure`].
pub fn run_simulation_resilient_with(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
    faults: &[FaultPlan],
    options: ResilienceOptions,
) -> Result<(SimulationSummary, RecoveryReport), TbError> {
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    let mut queue = faults.iter().copied();
    let mut report = RecoveryReport {
        final_ranks: engine.active_ranks(),
        ..RecoveryReport::default()
    };
    loop {
        if let Some(plan) = queue.next() {
            engine.inject_fault(plan);
        }
        let resume = match load_resume_snapshot(config, ckpt) {
            Ok(snap) => Some(snap),
            Err(TbError::Checkpoint(_)) => None,
            Err(e) => return Err(e),
        };
        match run_simulation_impl(config, &engine, &model, None, Some(ckpt), resume) {
            Ok(summary) => {
                report.final_ranks = engine.active_ranks();
                return Ok((summary, report));
            }
            Err(TbError::RankFailure {
                detail,
                failed_ranks,
            }) => {
                if report.recoveries >= options.max_recoveries {
                    return Err(TbError::RankFailure {
                        detail: format!(
                            "gave up after {} recoveries: {detail}",
                            options.max_recoveries
                        ),
                        failed_ranks,
                    });
                }
                report.recoveries += 1;
                tbmd_trace::add(Counter::Recoveries, 1);
                match options.policy {
                    ReshardPolicy::Respawn => {
                        engine.respawn_full_ranks();
                    }
                    ReshardPolicy::Shrink => {
                        engine.shrink_ranks(failed_ranks.len().max(1));
                    }
                }
                report.failed_ranks.extend(failed_ranks);
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`run_simulation_resilient_with`] with the historical signature: at most
/// one fault, the [`ReshardPolicy::Respawn`] policy (so the recovered
/// endpoint is bitwise the clean one), and a plain recovery count.
pub fn run_simulation_resilient(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
    fault: Option<FaultPlan>,
    max_recoveries: usize,
) -> Result<(SimulationSummary, usize), TbError> {
    let faults: Vec<FaultPlan> = fault.into_iter().collect();
    let options = ResilienceOptions {
        policy: ReshardPolicy::Respawn,
        max_recoveries,
    };
    run_simulation_resilient_with(config, ckpt, &faults, options)
        .map(|(summary, report)| (summary, report.recoveries))
}

/// [`run_simulation`] streaming one JSONL `step` record per MD step (plus
/// watchdog `warn` lines and periodic `eig_health` probes) into `recorder`.
///
/// Installs a collecting [`TraceSink`] if tracing is still disabled, so the
/// records carry wire-byte and allocation counters. The caller keeps
/// ownership of the recorder and calls [`RunRecorder::finish`] when done.
pub fn run_simulation_recorded(
    config: &SimulationConfig,
    recorder: &mut RunRecorder,
    options: RecorderConfig,
) -> Result<SimulationSummary, TbError> {
    let recording = build_recording(config, recorder, &options);
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    run_simulation_impl(
        config,
        &engine,
        &model,
        Some(recording),
        options.checkpoint.as_ref(),
        None,
    )
}

/// [`resume_simulation`] with a JSONL recorder attached: continues from the
/// newest snapshot of `options.checkpoint` (required) and opens the stream
/// with a `restore` line.
pub fn resume_simulation_recorded(
    config: &SimulationConfig,
    recorder: &mut RunRecorder,
    options: RecorderConfig,
) -> Result<SimulationSummary, TbError> {
    let ckpt = options.checkpoint.as_ref().ok_or_else(|| {
        TbError::Checkpoint("resume_simulation_recorded needs options.checkpoint".into())
    })?;
    let snap = load_resume_snapshot(config, ckpt)?;
    let recording = build_recording(config, recorder, &options);
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    run_simulation_impl(
        config,
        &engine,
        &model,
        Some(recording),
        Some(ckpt),
        Some(snap),
    )
}

fn build_recording<'r>(
    config: &SimulationConfig,
    recorder: &'r mut RunRecorder,
    options: &RecorderConfig,
) -> Recording<'r> {
    if !tbmd_trace::enabled() {
        tbmd_trace::install(TraceSink::collecting());
    }
    let probe_health = !matches!(
        config.engine,
        EngineKind::LinearScaling { .. } | EngineKind::DistributedLinearScaling { .. }
    );
    let occupation = if config.electronic_kt > 0.0 {
        OccupationScheme::Fermi {
            kt: config.electronic_kt,
        }
    } else {
        OccupationScheme::ZeroTemperature
    };
    Recording {
        recorder,
        health_stride: options.health_stride,
        prev: tbmd_trace::snapshot(),
        probe_health,
        occupation,
        recorded: 0,
    }
}

/// One attempt of a configured simulation over an already-built engine.
///
/// The engine is borrowed, not built, so a resilient driver can keep one
/// engine alive across rewinds: its evaluation counter (which fault plans
/// are scheduled against) and its active rank count (which a shrink
/// re-shard adjusts) both persist from attempt to attempt.
fn run_simulation_impl(
    config: &SimulationConfig,
    engine: &Engine<'_>,
    model: &dyn TbModel,
    mut recording: Option<Recording<'_>>,
    checkpoint: Option<&CheckpointConfig>,
    resume: Option<Snapshot>,
) -> Result<SimulationSummary, TbError> {
    let ckpt = match checkpoint {
        Some(c) => Some(CkptCtx::open(c, config)?),
        None => None,
    };
    // Announce a restore before any stepping: a `restore` JSONL line when a
    // recorder is attached, a bare counter bump otherwise.
    if let Some(snap) = resume.as_ref() {
        let path = ckpt
            .as_ref()
            .map(|c| c.store.path_for(snap.step).display().to_string())
            .unwrap_or_default();
        match recording.as_mut() {
            Some(rec) => {
                rec.recorded = snap.recorded_steps;
                rec.recorder
                    .record_restore(snap.step as usize, "resume", &path)
                    .map_err(|e| TbError::Recorder(e.to_string()))?;
            }
            None => tbmd_trace::add(Counter::CkptRestores, 1),
        }
    }
    let mut structure = config.system.build(config.perturb, config.seed);
    let mut trajectory = (config.record_stride > 0).then(|| Trajectory::new(config.record_stride));

    match config.protocol {
        Protocol::Relax {
            force_tolerance,
            max_iterations,
        } => {
            let opts = RelaxOptions {
                force_tolerance,
                max_iterations,
                ..Default::default()
            };
            let result = relax(&mut structure, engine, &opts)?;
            Ok(SimulationSummary {
                final_potential_energy: result.energy,
                final_total_energy: result.energy,
                mean_temperature_k: 0.0,
                conserved_drift: 0.0,
                steps: result.iterations,
                converged: result.converged,
                trajectory: None,
                final_structure: structure,
                final_velocities: Vec::new(),
            })
        }
        Protocol::Nve {
            temperature_k,
            steps,
            dt_fs,
        } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut ws = Workspace::new();
            let integrator = VelocityVerlet::new(dt_fs);
            let (mut state, e0, mut t_stats, mut drift, start) = match resume.as_ref() {
                Some(snap) => {
                    rng = StdRng::from_state(snap.rng_state);
                    let state = restore_state(structure, snap)?;
                    let ts = snap.temp_stats;
                    (
                        state,
                        snap.conserved_ref,
                        RunningStats::from_raw(ts.n, ts.mean, ts.m2, ts.min, ts.max),
                        snap.drift,
                        snap.step as usize,
                    )
                }
                None => {
                    let v = maxwell_boltzmann(&structure, temperature_k, &mut rng);
                    let state = MdState::new_with(structure, v, engine, &mut ws)?;
                    let e0 = state.total_energy();
                    (state, e0, RunningStats::new(), 0.0f64, 0usize)
                }
            };
            for step in (start + 1)..=steps {
                integrator.step_with(&mut state, engine, &mut ws)?;
                t_stats.push(state.temperature());
                drift = drift.max((state.total_energy() - e0).abs());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if let Some(rec) = recording.as_mut() {
                    rec.observe(step, &state, state.total_energy(), model, &mut ws)?;
                }
                if let Some(c) = ckpt.as_ref() {
                    if c.due(step) {
                        c.write(
                            step as u64,
                            &state,
                            rng.state(),
                            e0,
                            drift,
                            &t_stats,
                            None,
                            None,
                            &mut recording,
                        )?;
                    }
                }
            }
            Ok(SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: t_stats.mean(),
                conserved_drift: drift,
                steps,
                converged: true,
                trajectory,
                final_velocities: state.velocities.clone(),
                final_structure: state.structure,
            })
        }
        Protocol::Nvt {
            temperature_k,
            steps,
            dt_fs,
            tau_fs,
        } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut ws = Workspace::new();
            let (mut state, mut nh, h0, mut t_stats, mut drift, start) = match resume.as_ref() {
                Some(snap) => {
                    rng = StdRng::from_state(snap.rng_state);
                    let thermo = snap.thermostat.ok_or_else(|| {
                        TbError::Checkpoint("NVT resume needs a THRM section".into())
                    })?;
                    let state = restore_state(structure, snap)?;
                    let mut nh =
                        NoseHoover::with_period(dt_fs, temperature_k, state.n_dof(), tau_fs);
                    nh.target_k = thermo.target_k;
                    nh.q = thermo.q;
                    nh.restore_thermostat_state(thermo.xi, thermo.eta);
                    let ts = snap.temp_stats;
                    (
                        state,
                        nh,
                        snap.conserved_ref,
                        RunningStats::from_raw(ts.n, ts.mean, ts.m2, ts.min, ts.max),
                        snap.drift,
                        snap.step as usize,
                    )
                }
                None => {
                    let v = maxwell_boltzmann(&structure, temperature_k, &mut rng);
                    let state = MdState::new_with(structure, v, engine, &mut ws)?;
                    let nh = NoseHoover::with_period(dt_fs, temperature_k, state.n_dof(), tau_fs);
                    let h0 = nh.conserved_quantity(&state);
                    (state, nh, h0, RunningStats::new(), 0.0f64, 0usize)
                }
            };
            for step in (start + 1)..=steps {
                nh.step_with(&mut state, engine, &mut ws)?;
                t_stats.push(state.temperature());
                drift = drift.max((nh.conserved_quantity(&state) - h0).abs());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if let Some(rec) = recording.as_mut() {
                    rec.observe(step, &state, nh.conserved_quantity(&state), model, &mut ws)?;
                }
                if let Some(c) = ckpt.as_ref() {
                    if c.due(step) {
                        let (xi, eta) = nh.thermostat_state();
                        c.write(
                            step as u64,
                            &state,
                            rng.state(),
                            h0,
                            drift,
                            &t_stats,
                            Some(ThermostatSnapshot {
                                xi,
                                eta,
                                target_k: nh.target_k,
                                q: nh.q,
                            }),
                            None,
                            &mut recording,
                        )?;
                    }
                }
            }
            Ok(SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: t_stats.mean(),
                conserved_drift: drift,
                steps,
                converged: true,
                trajectory,
                final_velocities: state.velocities.clone(),
                final_structure: state.structure,
            })
        }
        Protocol::NvtRamp {
            from_k,
            to_k,
            rate_k_per_fs,
            hold_steps,
            dt_fs,
            tau_fs,
        } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut ws = Workspace::new();
            // `(hold_step_done, h0, drift)` when the snapshot was taken in
            // (or at the boundary of) the hold phase.
            let mut resume_hold: Option<(u64, f64, f64)> = None;
            let (mut state, mut nh, mut t_stats, mut steps_total) = match resume.as_ref() {
                Some(snap) => {
                    rng = StdRng::from_state(snap.rng_state);
                    let thermo = snap.thermostat.ok_or_else(|| {
                        TbError::Checkpoint("ramp resume needs a THRM section".into())
                    })?;
                    let phase = snap.ramp.ok_or_else(|| {
                        TbError::Checkpoint("ramp resume needs a RAMP section".into())
                    })?;
                    let state = restore_state(structure, snap)?;
                    let mut nh = NoseHoover::with_period(dt_fs, from_k, state.n_dof(), tau_fs);
                    nh.target_k = thermo.target_k;
                    nh.q = thermo.q;
                    nh.restore_thermostat_state(thermo.xi, thermo.eta);
                    if phase.holding {
                        resume_hold = Some((phase.hold_step, snap.conserved_ref, snap.drift));
                    }
                    let ts = snap.temp_stats;
                    (
                        state,
                        nh,
                        RunningStats::from_raw(ts.n, ts.mean, ts.m2, ts.min, ts.max),
                        phase.steps_total as usize,
                    )
                }
                None => {
                    let v = maxwell_boltzmann(&structure, from_k.max(1.0), &mut rng);
                    let state = MdState::new_with(structure, v, engine, &mut ws)?;
                    let nh = NoseHoover::with_period(dt_fs, from_k, state.n_dof(), tau_fs);
                    (state, nh, RunningStats::new(), 0usize)
                }
            };
            let ramp = TemperatureRamp {
                rate_k_per_fs: rate_k_per_fs.abs() * (to_k - from_k).signum(),
                target_k: to_k,
            };
            // Ramp phase (skipped when resuming into the hold phase). The
            // extended-system quantity is not conserved here (the thermostat
            // set-point changes every step), so the drift monitor only
            // starts once the ramp reaches its target.
            if resume_hold.is_none() {
                loop {
                    let still_ramping = ramp.advance(&mut nh);
                    nh.step_with(&mut state, engine, &mut ws)?;
                    steps_total += 1;
                    t_stats.push(state.temperature());
                    if let Some(tr) = trajectory.as_mut() {
                        tr.observe(&state);
                    }
                    if let Some(c) = ckpt.as_ref() {
                        if c.due(steps_total) {
                            let (xi, eta) = nh.thermostat_state();
                            // At the ramp→hold boundary the hold phase's
                            // conserved reference is already a pure function
                            // of this state; store it so a resume lands in
                            // the hold with the right H'₀.
                            let h_ref = if still_ramping {
                                0.0
                            } else {
                                nh.conserved_quantity(&state)
                            };
                            c.write(
                                steps_total as u64,
                                &state,
                                rng.state(),
                                h_ref,
                                0.0,
                                &t_stats,
                                Some(ThermostatSnapshot {
                                    xi,
                                    eta,
                                    target_k: nh.target_k,
                                    q: nh.q,
                                }),
                                Some(RampSnapshot {
                                    holding: !still_ramping,
                                    hold_step: 0,
                                    steps_total: steps_total as u64,
                                }),
                                &mut recording,
                            )?;
                        }
                    }
                    if !still_ramping {
                        break;
                    }
                }
            }
            // Hold phase: the set-point is fixed at `to_k`, so H' is a real
            // conserved quantity again — measure its peak excursion.
            let (hold_start, h0, mut drift) = match resume_hold {
                Some((done, h_ref, drift)) => (done as usize, h_ref, drift),
                None => (0usize, nh.conserved_quantity(&state), 0.0f64),
            };
            // Step records (and the drift watchdog) start here too: during
            // the ramp the extended energy is not conserved, so feeding it
            // to the watchdog would only produce spurious warns.
            for hold_step in (hold_start + 1)..=hold_steps {
                nh.step_with(&mut state, engine, &mut ws)?;
                steps_total += 1;
                t_stats.push(state.temperature());
                drift = drift.max((nh.conserved_quantity(&state) - h0).abs());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if let Some(rec) = recording.as_mut() {
                    rec.observe(
                        hold_step,
                        &state,
                        nh.conserved_quantity(&state),
                        model,
                        &mut ws,
                    )?;
                }
                if let Some(c) = ckpt.as_ref() {
                    if c.due(steps_total) {
                        let (xi, eta) = nh.thermostat_state();
                        c.write(
                            steps_total as u64,
                            &state,
                            rng.state(),
                            h0,
                            drift,
                            &t_stats,
                            Some(ThermostatSnapshot {
                                xi,
                                eta,
                                target_k: nh.target_k,
                                q: nh.q,
                            }),
                            Some(RampSnapshot {
                                holding: true,
                                hold_step: hold_step as u64,
                                steps_total: steps_total as u64,
                            }),
                            &mut recording,
                        )?;
                    }
                }
            }
            Ok(SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: t_stats.mean(),
                conserved_drift: drift,
                steps: steps_total,
                converged: true,
                trajectory,
                final_velocities: state.velocities.clone(),
                final_structure: state.structure,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nve_summary_sane() {
        let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 10);
        config.record_stride = 2;
        let summary = run_simulation(&config).unwrap();
        assert_eq!(summary.steps, 10);
        assert!(summary.converged);
        assert!(summary.mean_temperature_k > 100.0 && summary.mean_temperature_k < 600.0);
        assert!(summary.conserved_drift < 0.05);
        let traj = summary.trajectory.as_ref().unwrap();
        assert_eq!(traj.len(), 5);
    }

    #[test]
    fn relax_protocol() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::Relax {
                force_tolerance: 2e-2,
                max_iterations: 100,
            },
            electronic_kt: 0.1,
            perturb: 0.08,
            seed: 3,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        assert!(summary.converged, "relaxation failed: {summary:?}");
        assert!(summary.final_potential_energy < 0.0);
    }

    #[test]
    fn nvt_tracks_target() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::Nvt {
                temperature_k: 500.0,
                steps: 25,
                dt_fs: 1.0,
                tau_fs: 30.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 5,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        assert!(summary.mean_temperature_k > 250.0 && summary.mean_temperature_k < 800.0);
    }

    #[test]
    fn ramp_protocol_heats() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::NvtRamp {
                from_k: 100.0,
                to_k: 110.0,
                rate_k_per_fs: 0.5,
                hold_steps: 3,
                dt_fs: 1.0,
                tau_fs: 50.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 9,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        // 10 K at 0.5 K/fs = 20 steps of ramp + 3 hold.
        assert_eq!(summary.steps, 23);
        // The hold phase measures a real extended-energy drift now: finite,
        // nonzero, and small for 3 steps of a well-thermostatted crystal.
        assert!(
            summary.conserved_drift > 0.0 && summary.conserved_drift < 0.05,
            "hold-phase drift {} eV",
            summary.conserved_drift
        );
    }
}
