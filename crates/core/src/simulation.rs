//! High-level simulation driver: system + engine + protocol in one call.
//!
//! This is the public API a downstream user reaches for first; the examples
//! in the repository root are thin wrappers around it.

use crate::engine::{Engine, EngineKind};
use crate::system::SystemSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tbmd_md::{
    maxwell_boltzmann, relax, MdState, NoseHoover, RelaxOptions, RunningStats, TemperatureRamp,
    Trajectory, VelocityVerlet,
};
use tbmd_model::{eigensolver_health, DenseSolver, OccupationScheme, TbError, TbModel, Workspace};
use tbmd_trace::{
    git_describe, Counter, RunManifest, RunRecorder, StepRecord, TraceSink, TraceSnapshot,
};

/// What to do with the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Microcanonical dynamics from a Maxwell–Boltzmann start.
    Nve {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
    },
    /// Nosé–Hoover canonical dynamics.
    Nvt {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Nosé–Hoover dynamics with a thermostat ramp from `from_k` to `to_k`
    /// at `rate_k_per_fs`, then `hold_steps` at the target. `tau_fs` is the
    /// thermostat period (Q = g·k_B·T·τ²; ≈ 50–100 fs for covalent solids).
    NvtRamp {
        from_k: f64,
        to_k: f64,
        rate_k_per_fs: f64,
        hold_steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Conjugate-gradient relaxation to a force tolerance.
    Relax {
        force_tolerance: f64,
        max_iterations: usize,
    },
}

/// Full simulation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Which structure/model to simulate.
    pub system: SystemSpec,
    /// Engine selection.
    pub engine: EngineKind,
    /// What to run.
    pub protocol: Protocol,
    /// Electronic smearing (eV).
    pub electronic_kt: f64,
    /// Initial random displacement amplitude (Å).
    pub perturb: f64,
    /// RNG seed (velocities + perturbation).
    pub seed: u64,
    /// Trajectory recording stride in steps (0 disables).
    pub record_stride: usize,
}

impl SimulationConfig {
    /// A reasonable default NVE run for a system.
    pub fn nve(system: SystemSpec, temperature_k: f64, steps: usize) -> Self {
        SimulationConfig {
            system,
            engine: EngineKind::Serial,
            protocol: Protocol::Nve {
                temperature_k,
                steps,
                dt_fs: 1.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 42,
            record_stride: 0,
        }
    }
}

/// Summary statistics of a finished simulation.
#[derive(Debug, Clone)]
pub struct SimulationSummary {
    /// Final potential energy (eV).
    pub final_potential_energy: f64,
    /// Final total energy (eV; = potential for relaxations).
    pub final_total_energy: f64,
    /// Mean temperature over the run (K; 0 for relaxations).
    pub mean_temperature_k: f64,
    /// Peak |ΔE| of the conserved quantity over the run (eV; total energy
    /// for NVE, the Nosé–Hoover extended energy for NVT, and the extended
    /// energy over the constant-temperature hold phase for ramps).
    pub conserved_drift: f64,
    /// Steps (MD) or iterations (relaxation) executed.
    pub steps: usize,
    /// Whether a relaxation converged (always true for MD).
    pub converged: bool,
    /// Recorded trajectory, when requested.
    pub trajectory: Option<Trajectory>,
    /// Final configuration.
    pub final_structure: tbmd_structure::Structure,
}

/// Knobs of the recorded-run path ([`run_simulation_recorded`]).
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Eigensolver health-probe stride in MD steps (0 disables the probe).
    /// Probes run only on dense-diagonalization engines; the O(N) Chebyshev
    /// engines have no eigenpairs to check.
    pub health_stride: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { health_stride: 25 }
    }
}

/// The manifest line identifying a run of `config`
/// (`RunRecorder::to_path`/`in_memory` want it up front).
pub fn run_manifest(config: &SimulationConfig) -> RunManifest {
    let structure = config.system.build(config.perturb, config.seed);
    let n_ranks = match config.engine {
        EngineKind::Distributed { ranks } => ranks,
        EngineKind::DistributedLinearScaling { ranks, .. } => ranks,
        _ => 1,
    };
    RunManifest {
        model: config.system.model().name().to_string(),
        engine: format!("{:?}", config.engine),
        n_atoms: structure.n_atoms(),
        n_ranks,
        protocol: format!("{:?}", config.protocol),
        seed: config.seed,
        git_describe: git_describe(),
    }
}

/// Per-step recording state threaded through the MD loops.
struct Recording<'r> {
    recorder: &'r mut RunRecorder,
    health_stride: usize,
    /// Counter snapshot at the previous step boundary (for per-step deltas).
    prev: TraceSnapshot,
    /// Dense engines get the eigensolver probe; O(N) engines do not.
    probe_health: bool,
    occupation: OccupationScheme,
}

impl Recording<'_> {
    /// Record one completed MD step (and, on the stride, a health probe).
    fn observe(
        &mut self,
        step: usize,
        state: &MdState,
        conserved_ev: f64,
        model: &dyn TbModel,
    ) -> Result<(), TbError> {
        let snap = tbmd_trace::snapshot();
        let delta = snap.since(&self.prev);
        self.prev = snap;
        let record = StepRecord {
            step,
            time_fs: state.time_fs,
            potential_ev: state.potential_energy,
            conserved_ev,
            temperature_k: state.temperature(),
            phase_ns: state.last_timings.phase_ns(),
            comm_bytes: delta.counter(Counter::WireBytes),
            alloc_events: delta.counter(Counter::AllocGrowth),
        };
        self.recorder
            .record_step(&record)
            .map_err(|e| TbError::Recorder(e.to_string()))?;
        if self.probe_health && self.health_stride > 0 && step.is_multiple_of(self.health_stride) {
            let health = eigensolver_health(
                model,
                &state.structure,
                self.occupation,
                DenseSolver::TwoStage,
                step,
            )?;
            self.recorder
                .record_health(&health)
                .map_err(|e| TbError::Recorder(e.to_string()))?;
        }
        Ok(())
    }
}

/// Run a configured simulation to completion.
pub fn run_simulation(config: &SimulationConfig) -> Result<SimulationSummary, TbError> {
    run_simulation_impl(config, None)
}

/// [`run_simulation`] streaming one JSONL `step` record per MD step (plus
/// watchdog `warn` lines and periodic `eig_health` probes) into `recorder`.
///
/// Installs a collecting [`TraceSink`] if tracing is still disabled, so the
/// records carry wire-byte and allocation counters. The caller keeps
/// ownership of the recorder and calls [`RunRecorder::finish`] when done.
pub fn run_simulation_recorded(
    config: &SimulationConfig,
    recorder: &mut RunRecorder,
    options: RecorderConfig,
) -> Result<SimulationSummary, TbError> {
    if !tbmd_trace::enabled() {
        tbmd_trace::install(TraceSink::collecting());
    }
    let probe_health = !matches!(
        config.engine,
        EngineKind::LinearScaling { .. } | EngineKind::DistributedLinearScaling { .. }
    );
    let occupation = if config.electronic_kt > 0.0 {
        OccupationScheme::Fermi {
            kt: config.electronic_kt,
        }
    } else {
        OccupationScheme::ZeroTemperature
    };
    let recording = Recording {
        recorder,
        health_stride: options.health_stride,
        prev: tbmd_trace::snapshot(),
        probe_health,
        occupation,
    };
    run_simulation_impl(config, Some(recording))
}

fn run_simulation_impl(
    config: &SimulationConfig,
    mut recording: Option<Recording<'_>>,
) -> Result<SimulationSummary, TbError> {
    let model = config.system.model();
    let engine = Engine::build(config.engine, &model, config.electronic_kt);
    let mut structure = config.system.build(config.perturb, config.seed);
    let mut trajectory = (config.record_stride > 0).then(|| Trajectory::new(config.record_stride));

    match config.protocol {
        Protocol::Relax {
            force_tolerance,
            max_iterations,
        } => {
            let opts = RelaxOptions {
                force_tolerance,
                max_iterations,
                ..Default::default()
            };
            let result = relax(&mut structure, &engine, &opts)?;
            Ok(SimulationSummary {
                final_potential_energy: result.energy,
                final_total_energy: result.energy,
                mean_temperature_k: 0.0,
                conserved_drift: 0.0,
                steps: result.iterations,
                converged: result.converged,
                trajectory: None,
                final_structure: structure,
            })
        }
        Protocol::Nve {
            temperature_k,
            steps,
            dt_fs,
        } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let v = maxwell_boltzmann(&structure, temperature_k, &mut rng);
            let mut ws = Workspace::new();
            let mut state = MdState::new_with(structure, v, &engine, &mut ws)?;
            let integrator = VelocityVerlet::new(dt_fs);
            let e0 = state.total_energy();
            let mut t_stats = RunningStats::new();
            let mut drift: f64 = 0.0;
            for step in 1..=steps {
                integrator.step_with(&mut state, &engine, &mut ws)?;
                t_stats.push(state.temperature());
                drift = drift.max((state.total_energy() - e0).abs());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if let Some(rec) = recording.as_mut() {
                    rec.observe(step, &state, state.total_energy(), &model)?;
                }
            }
            Ok(SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: t_stats.mean(),
                conserved_drift: drift,
                steps,
                converged: true,
                trajectory,
                final_structure: state.structure,
            })
        }
        Protocol::Nvt {
            temperature_k,
            steps,
            dt_fs,
            tau_fs,
        } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let v = maxwell_boltzmann(&structure, temperature_k, &mut rng);
            let mut ws = Workspace::new();
            let mut state = MdState::new_with(structure, v, &engine, &mut ws)?;
            let mut nh = NoseHoover::with_period(dt_fs, temperature_k, state.n_dof(), tau_fs);
            let h0 = nh.conserved_quantity(&state);
            let mut t_stats = RunningStats::new();
            let mut drift: f64 = 0.0;
            for step in 1..=steps {
                nh.step_with(&mut state, &engine, &mut ws)?;
                t_stats.push(state.temperature());
                drift = drift.max((nh.conserved_quantity(&state) - h0).abs());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if let Some(rec) = recording.as_mut() {
                    rec.observe(step, &state, nh.conserved_quantity(&state), &model)?;
                }
            }
            Ok(SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: t_stats.mean(),
                conserved_drift: drift,
                steps,
                converged: true,
                trajectory,
                final_structure: state.structure,
            })
        }
        Protocol::NvtRamp {
            from_k,
            to_k,
            rate_k_per_fs,
            hold_steps,
            dt_fs,
            tau_fs,
        } => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let v = maxwell_boltzmann(&structure, from_k.max(1.0), &mut rng);
            let mut ws = Workspace::new();
            let mut state = MdState::new_with(structure, v, &engine, &mut ws)?;
            let mut nh = NoseHoover::with_period(dt_fs, from_k, state.n_dof(), tau_fs);
            let ramp = TemperatureRamp {
                rate_k_per_fs: rate_k_per_fs.abs() * (to_k - from_k).signum(),
                target_k: to_k,
            };
            let mut t_stats = RunningStats::new();
            let mut steps_total = 0usize;
            // Ramp phase. The extended-system quantity is not conserved here
            // (the thermostat set-point changes every step), so the drift
            // monitor only starts once the ramp reaches its target.
            loop {
                let still_ramping = ramp.advance(&mut nh);
                nh.step_with(&mut state, &engine, &mut ws)?;
                steps_total += 1;
                t_stats.push(state.temperature());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if !still_ramping {
                    break;
                }
            }
            // Hold phase: the set-point is fixed at `to_k`, so H' is a real
            // conserved quantity again — measure its peak excursion.
            let h0 = nh.conserved_quantity(&state);
            let mut drift: f64 = 0.0;
            // Step records (and the drift watchdog) start here too: during
            // the ramp the extended energy is not conserved, so feeding it
            // to the watchdog would only produce spurious warns.
            for hold_step in 1..=hold_steps {
                nh.step_with(&mut state, &engine, &mut ws)?;
                steps_total += 1;
                t_stats.push(state.temperature());
                drift = drift.max((nh.conserved_quantity(&state) - h0).abs());
                if let Some(tr) = trajectory.as_mut() {
                    tr.observe(&state);
                }
                if let Some(rec) = recording.as_mut() {
                    rec.observe(hold_step, &state, nh.conserved_quantity(&state), &model)?;
                }
            }
            Ok(SimulationSummary {
                final_potential_energy: state.potential_energy,
                final_total_energy: state.total_energy(),
                mean_temperature_k: t_stats.mean(),
                conserved_drift: drift,
                steps: steps_total,
                converged: true,
                trajectory,
                final_structure: state.structure,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nve_summary_sane() {
        let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 10);
        config.record_stride = 2;
        let summary = run_simulation(&config).unwrap();
        assert_eq!(summary.steps, 10);
        assert!(summary.converged);
        assert!(summary.mean_temperature_k > 100.0 && summary.mean_temperature_k < 600.0);
        assert!(summary.conserved_drift < 0.05);
        let traj = summary.trajectory.as_ref().unwrap();
        assert_eq!(traj.len(), 5);
    }

    #[test]
    fn relax_protocol() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::Relax {
                force_tolerance: 2e-2,
                max_iterations: 100,
            },
            electronic_kt: 0.1,
            perturb: 0.08,
            seed: 3,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        assert!(summary.converged, "relaxation failed: {summary:?}");
        assert!(summary.final_potential_energy < 0.0);
    }

    #[test]
    fn nvt_tracks_target() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::Nvt {
                temperature_k: 500.0,
                steps: 25,
                dt_fs: 1.0,
                tau_fs: 30.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 5,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        assert!(summary.mean_temperature_k > 250.0 && summary.mean_temperature_k < 800.0);
    }

    #[test]
    fn ramp_protocol_heats() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::NvtRamp {
                from_k: 100.0,
                to_k: 110.0,
                rate_k_per_fs: 0.5,
                hold_steps: 3,
                dt_fs: 1.0,
                tau_fs: 50.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 9,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        // 10 K at 0.5 K/fs = 20 steps of ramp + 3 hold.
        assert_eq!(summary.steps, 23);
        // The hold phase measures a real extended-energy drift now: finite,
        // nonzero, and small for 3 steps of a well-thermostatted crystal.
        assert!(
            summary.conserved_drift > 0.0 && summary.conserved_drift < 0.05,
            "hold-phase drift {} eV",
            summary.conserved_drift
        );
    }
}
