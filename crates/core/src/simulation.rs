//! High-level simulation driver: system + engine + protocol in one call.
//!
//! This is the public API a downstream user reaches for first; the examples
//! in the repository root are thin wrappers around it. Since the session
//! refactor every entry point here delegates to
//! [`SessionBuilder`](crate::session::SessionBuilder) — the types below
//! (configs, summary, policies) are the vocabulary, the session is the
//! machine. Callers that want to interleave several runs in one process
//! (or pace a run step-by-step) use [`crate::session`] directly.

use crate::engine::EngineKind;
use crate::session::SessionBuilder;
use crate::system::SystemSpec;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use tbmd_linalg::Vec3;
use tbmd_md::Trajectory;
use tbmd_model::{TbError, TbModel};
use tbmd_parallel::FaultPlan;
use tbmd_trace::{git_describe, RunManifest, RunRecorder};

/// What to do with the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Microcanonical dynamics from a Maxwell–Boltzmann start.
    Nve {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
    },
    /// Nosé–Hoover canonical dynamics.
    Nvt {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Nosé–Hoover dynamics with a thermostat ramp from `from_k` to `to_k`
    /// at `rate_k_per_fs`, then `hold_steps` at the target. `tau_fs` is the
    /// thermostat period (Q = g·k_B·T·τ²; ≈ 50–100 fs for covalent solids).
    NvtRamp {
        from_k: f64,
        to_k: f64,
        rate_k_per_fs: f64,
        hold_steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Conjugate-gradient relaxation to a force tolerance.
    Relax {
        force_tolerance: f64,
        max_iterations: usize,
    },
}

/// Full simulation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Which structure/model to simulate.
    pub system: SystemSpec,
    /// Engine selection.
    pub engine: EngineKind,
    /// What to run.
    pub protocol: Protocol,
    /// Electronic smearing (eV).
    pub electronic_kt: f64,
    /// Initial random displacement amplitude (Å).
    pub perturb: f64,
    /// RNG seed (velocities + perturbation).
    pub seed: u64,
    /// Trajectory recording stride in steps (0 disables).
    pub record_stride: usize,
}

impl SimulationConfig {
    /// A reasonable default NVE run for a system.
    pub fn nve(system: SystemSpec, temperature_k: f64, steps: usize) -> Self {
        SimulationConfig {
            system,
            engine: EngineKind::Serial,
            protocol: Protocol::Nve {
                temperature_k,
                steps,
                dt_fs: 1.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 42,
            record_stride: 0,
        }
    }
}

/// Periodic-snapshot policy for a checkpointed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory the `TBCK` snapshots live in (created if missing).
    pub dir: PathBuf,
    /// Steps between snapshots (0 disables writing; resume still works
    /// against whatever the directory already holds).
    pub interval: usize,
    /// Keep only the newest `retain` snapshots (0 keeps all). Keeping a few
    /// lets [`resume_simulation`] fall back past a torn newest file.
    pub retain: usize,
}

impl CheckpointConfig {
    /// Snapshot into `dir` every `interval` steps, keeping the newest 3.
    pub fn every(dir: impl Into<PathBuf>, interval: usize) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            interval,
            retain: 3,
        }
    }
}

/// Summary statistics of a finished simulation.
#[derive(Debug, Clone)]
pub struct SimulationSummary {
    /// Final potential energy (eV).
    pub final_potential_energy: f64,
    /// Final total energy (eV; = potential for relaxations).
    pub final_total_energy: f64,
    /// Mean temperature over the run (K; 0 for relaxations).
    pub mean_temperature_k: f64,
    /// Peak |ΔE| of the conserved quantity over the run (eV; total energy
    /// for NVE, the Nosé–Hoover extended energy for NVT, and the extended
    /// energy over the constant-temperature hold phase for ramps).
    pub conserved_drift: f64,
    /// Steps (MD) or iterations (relaxation) executed.
    pub steps: usize,
    /// Whether a relaxation converged (always true for MD).
    pub converged: bool,
    /// Recorded trajectory, when requested. A resumed run records only the
    /// frames since the snapshot (earlier frames live in the original run).
    pub trajectory: Option<Trajectory>,
    /// Final configuration.
    pub final_structure: tbmd_structure::Structure,
    /// Final velocities (Å/fs; empty for relaxations). Together with
    /// `final_structure` this pins a trajectory endpoint bit-for-bit, which
    /// is what the kill-and-resume equivalence tests compare.
    pub final_velocities: Vec<Vec3>,
}

/// Knobs of the recorded-run path ([`run_simulation_recorded`]).
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Eigensolver health-probe stride in MD steps (0 disables the probe).
    /// Probes run only on dense-diagonalization engines; the O(N) Chebyshev
    /// engines have no eigenpairs to check.
    pub health_stride: usize,
    /// Periodic snapshots alongside the JSONL stream (`ckpt` lines record
    /// each write).
    pub checkpoint: Option<CheckpointConfig>,
}

impl RecorderConfig {
    /// The default health-probe stride (every 25 steps).
    pub const DEFAULT_HEALTH_STRIDE: usize = 25;

    /// The default recorded-run knobs (health probe every 25 steps, no
    /// checkpointing).
    pub fn standard() -> Self {
        RecorderConfig {
            health_stride: Self::DEFAULT_HEALTH_STRIDE,
            checkpoint: None,
        }
    }
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig::standard()
    }
}

/// The manifest line identifying a run of `config`
/// (`RunRecorder::to_path`/`in_memory` want it up front).
pub fn run_manifest(config: &SimulationConfig) -> RunManifest {
    let structure = config.system.build(config.perturb, config.seed);
    let n_ranks = match config.engine {
        EngineKind::Distributed { ranks } => ranks,
        EngineKind::DistributedLinearScaling { ranks, .. } => ranks,
        _ => 1,
    };
    RunManifest {
        model: config.system.model().name().to_string(),
        engine: format!("{:?}", config.engine),
        n_atoms: structure.n_atoms(),
        n_ranks,
        protocol: format!("{:?}", config.protocol),
        seed: config.seed,
        git_describe: git_describe(),
    }
}

/// Run a configured simulation to completion.
pub fn run_simulation(config: &SimulationConfig) -> Result<SimulationSummary, TbError> {
    SessionBuilder::new(*config).build()?.run()
}

/// [`run_simulation`] writing a `TBCK` snapshot every `ckpt.interval` steps
/// (atomic publish, newest-`retain` rotation). A run killed at any point can
/// be continued with [`resume_simulation`]; the continuation is bitwise the
/// uninterrupted trajectory.
pub fn run_simulation_checkpointed(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
) -> Result<SimulationSummary, TbError> {
    SessionBuilder::new(*config).checkpoint(ckpt).build()?.run()
}

/// Continue an interrupted run from the newest usable snapshot in
/// `ckpt.dir`. The snapshot must have been written by the same
/// configuration (modulo step counts — resuming into a longer run is fine);
/// anything else is a typed [`TbError::Checkpoint`]. Checkpointing stays on,
/// so the resumed run keeps extending the same store.
pub fn resume_simulation(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
) -> Result<SimulationSummary, TbError> {
    SessionBuilder::new(*config)
        .checkpoint(ckpt)
        .resume()
        .build()?
        .run()
}

/// What a resilient driver does with the rank set after a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReshardPolicy {
    /// Re-spawn the failed ranks and retry at the configured width.
    /// Virtual ranks are threads, so respawning is free, and the retried
    /// trajectory is *bitwise* the uninterrupted one: the same rank count
    /// means the same reduction-tree grouping, hence the same
    /// floating-point sums.
    #[default]
    Respawn,
    /// Continue on the survivors: the next evaluation recomputes every
    /// spectrum-slice boundary over P − f ranks via the same Sturm
    /// partitioner, so the dead rank's shards are redistributed
    /// automatically. The continued trajectory agrees with the
    /// uninterrupted one only to summation accuracy (the allreduce
    /// grouping changes with the rank count, and float addition is not
    /// associative).
    Shrink,
}

/// Knobs of [`run_simulation_resilient_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceOptions {
    /// Rank-set policy after each failure.
    pub policy: ReshardPolicy,
    /// Give up after this many recoveries (the N+1st failure is returned).
    pub max_recoveries: usize,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            policy: ReshardPolicy::Respawn,
            max_recoveries: 2,
        }
    }
}

/// What it took to finish a resilient run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Rewind-and-retry cycles before the successful attempt.
    pub recoveries: usize,
    /// Every rank blamed across the failures, in failure order.
    pub failed_ranks: Vec<usize>,
    /// Active rank count of the engine at the end: the configured count
    /// under [`ReshardPolicy::Respawn`], the survivor count under
    /// [`ReshardPolicy::Shrink`], 1 for rankless engines.
    pub final_ranks: usize,
}

/// Drive a (possibly fault-injected) run to completion, recovering from the
/// newest snapshot after every distributed rank failure — the
/// kill-and-resume loop of an elastic batch scheduler, in miniature.
///
/// One engine lives across all attempts, so `faults` are scheduled against
/// a single monotone evaluation counter: the i-th plan is armed at the
/// start of the i-th attempt and fires at most once (the rewind after a
/// recovery finds the one-shot slot already empty). A failure before the
/// first snapshot restarts from scratch. After each failure the rank set
/// follows `options.policy`; gives up after `options.max_recoveries`
/// recoveries and returns the last [`TbError::RankFailure`].
pub fn run_simulation_resilient_with(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
    faults: &[FaultPlan],
    options: ResilienceOptions,
) -> Result<(SimulationSummary, RecoveryReport), TbError> {
    let mut session = SessionBuilder::new(*config)
        .checkpoint(ckpt)
        .faults(faults)
        .resilience(options)
        .build()?;
    let summary = session.run()?;
    Ok((summary, session.recovery_report().clone()))
}

/// [`run_simulation_resilient_with`] with the historical signature: at most
/// one fault, the [`ReshardPolicy::Respawn`] policy (so the recovered
/// endpoint is bitwise the clean one), and a plain recovery count.
pub fn run_simulation_resilient(
    config: &SimulationConfig,
    ckpt: &CheckpointConfig,
    fault: Option<FaultPlan>,
    max_recoveries: usize,
) -> Result<(SimulationSummary, usize), TbError> {
    let faults: Vec<FaultPlan> = fault.into_iter().collect();
    let options = ResilienceOptions {
        policy: ReshardPolicy::Respawn,
        max_recoveries,
    };
    run_simulation_resilient_with(config, ckpt, &faults, options)
        .map(|(summary, report)| (summary, report.recoveries))
}

/// [`run_simulation`] streaming one JSONL `step` record per MD step (plus
/// watchdog `warn` lines and periodic `eig_health` probes) into `recorder`.
///
/// Installs a collecting [`tbmd_trace::TraceSink`] if tracing is still
/// disabled, so the records carry wire-byte and allocation counters. The
/// caller keeps ownership of the recorder and calls [`RunRecorder::finish`]
/// when done.
pub fn run_simulation_recorded(
    config: &SimulationConfig,
    recorder: &mut RunRecorder,
    options: RecorderConfig,
) -> Result<SimulationSummary, TbError> {
    SessionBuilder::new(*config)
        .record(recorder, options)
        .build()?
        .run()
}

/// [`resume_simulation`] with a JSONL recorder attached: continues from the
/// newest snapshot of `options.checkpoint` (required) and opens the stream
/// with a `restore` line.
pub fn resume_simulation_recorded(
    config: &SimulationConfig,
    recorder: &mut RunRecorder,
    options: RecorderConfig,
) -> Result<SimulationSummary, TbError> {
    SessionBuilder::new(*config)
        .record(recorder, options)
        .resume()
        .build()?
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nve_summary_sane() {
        let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 10);
        config.record_stride = 2;
        let summary = run_simulation(&config).unwrap();
        assert_eq!(summary.steps, 10);
        assert!(summary.converged);
        assert!(summary.mean_temperature_k > 100.0 && summary.mean_temperature_k < 600.0);
        assert!(summary.conserved_drift < 0.05);
        let traj = summary.trajectory.as_ref().unwrap();
        assert_eq!(traj.len(), 5);
    }

    #[test]
    fn relax_protocol() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::Relax {
                force_tolerance: 2e-2,
                max_iterations: 100,
            },
            electronic_kt: 0.1,
            perturb: 0.08,
            seed: 3,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        assert!(summary.converged, "relaxation failed: {summary:?}");
        assert!(summary.final_potential_energy < 0.0);
    }

    #[test]
    fn nvt_tracks_target() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::Nvt {
                temperature_k: 500.0,
                steps: 25,
                dt_fs: 1.0,
                tau_fs: 30.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 5,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        assert!(summary.mean_temperature_k > 250.0 && summary.mean_temperature_k < 800.0);
    }

    #[test]
    fn ramp_protocol_heats() {
        let config = SimulationConfig {
            system: SystemSpec::SiliconDiamond { reps: 1 },
            engine: EngineKind::Serial,
            protocol: Protocol::NvtRamp {
                from_k: 100.0,
                to_k: 110.0,
                rate_k_per_fs: 0.5,
                hold_steps: 3,
                dt_fs: 1.0,
                tau_fs: 50.0,
            },
            electronic_kt: 0.1,
            perturb: 0.0,
            seed: 9,
            record_stride: 0,
        };
        let summary = run_simulation(&config).unwrap();
        // 10 K at 0.5 K/fs = 20 steps of ramp + 3 hold.
        assert_eq!(summary.steps, 23);
        // The hold phase measures a real extended-energy drift now: finite,
        // nonzero, and small for 3 steps of a well-thermostatted crystal.
        assert!(
            summary.conserved_drift > 0.0 && summary.conserved_drift < 0.05,
            "hold-phase drift {} eV",
            summary.conserved_drift
        );
    }
}
