//! Named benchmark systems: the workloads the evaluation section runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tbmd_model::{carbon_xwch, silicon_gsp, GspTbModel};
use tbmd_structure::{bulk_diamond, fullerene_c60, graphene_sheet, nanotube, Species, Structure};

/// A system specification that can be materialized into a structure and its
/// matching tight-binding model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemSpec {
    /// Periodic silicon diamond supercell of `reps³` conventional cells
    /// (8·reps³ atoms) — the canonical TBMD benchmark series.
    SiliconDiamond { reps: usize },
    /// Periodic carbon diamond supercell.
    CarbonDiamond { reps: usize },
    /// Periodic graphene sheet of `nx × ny` rectangular 4-atom cells.
    Graphene { nx: usize, ny: usize },
    /// `(n,m)` single-wall carbon nanotube of `cells` translational cells.
    Nanotube { n: u32, m: u32, cells: usize },
    /// The C₆₀ fullerene cluster.
    C60,
}

impl SystemSpec {
    /// Build the structure, optionally displacing every atom by up to
    /// `perturb` Å with the given RNG seed (0 disables).
    pub fn build(&self, perturb: f64, seed: u64) -> Structure {
        let mut s = match *self {
            SystemSpec::SiliconDiamond { reps } => bulk_diamond(Species::Silicon, reps, reps, reps),
            SystemSpec::CarbonDiamond { reps } => bulk_diamond(Species::Carbon, reps, reps, reps),
            SystemSpec::Graphene { nx, ny } => graphene_sheet(1.42, nx, ny),
            SystemSpec::Nanotube { n, m, cells } => nanotube(n, m, cells, 1.42),
            SystemSpec::C60 => fullerene_c60(1.44),
        };
        if perturb > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed);
            s.perturb(&mut rng, perturb);
        }
        s
    }

    /// The tight-binding model parametrizing this system.
    pub fn model(&self) -> GspTbModel {
        match self {
            SystemSpec::SiliconDiamond { .. } => silicon_gsp(),
            _ => carbon_xwch(),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            SystemSpec::SiliconDiamond { reps } => format!("Si-diamond {0}x{0}x{0}", reps),
            SystemSpec::CarbonDiamond { reps } => format!("C-diamond {0}x{0}x{0}", reps),
            SystemSpec::Graphene { nx, ny } => format!("graphene {nx}x{ny}"),
            SystemSpec::Nanotube { n, m, cells } => format!("({n},{m}) tube x{cells}"),
            SystemSpec::C60 => "C60".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbmd_model::TbModel;

    #[test]
    fn builds_expected_sizes() {
        assert_eq!(
            SystemSpec::SiliconDiamond { reps: 2 }
                .build(0.0, 0)
                .n_atoms(),
            64
        );
        assert_eq!(SystemSpec::C60.build(0.0, 0).n_atoms(), 60);
        assert_eq!(
            SystemSpec::Nanotube {
                n: 10,
                m: 0,
                cells: 3
            }
            .build(0.0, 0)
            .n_atoms(),
            120
        );
        assert_eq!(
            SystemSpec::Graphene { nx: 2, ny: 2 }
                .build(0.0, 0)
                .n_atoms(),
            16
        );
    }

    #[test]
    fn model_matches_species() {
        let si = SystemSpec::SiliconDiamond { reps: 1 };
        assert!(si.model().supports(Species::Silicon));
        let c60 = SystemSpec::C60;
        assert!(c60.model().supports(Species::Carbon));
    }

    #[test]
    fn perturbation_deterministic() {
        let spec = SystemSpec::C60;
        let a = spec.build(0.05, 7);
        let b = spec.build(0.05, 7);
        let c = spec.build(0.05, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn labels() {
        assert_eq!(
            SystemSpec::SiliconDiamond { reps: 3 }.label(),
            "Si-diamond 3x3x3"
        );
        assert_eq!(
            SystemSpec::Nanotube {
                n: 10,
                m: 0,
                cells: 2
            }
            .label(),
            "(10,0) tube x2"
        );
    }
}
