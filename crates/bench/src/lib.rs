//! # tbmd-bench
//!
//! Benchmark harness for the reproduction: shared CLI parsing, table
//! formatting (text or JSON) and check-gate helpers used by the report
//! binaries (one per experiment in DESIGN.md, `src/bin/report_*.rs`) and
//! the Criterion benches (`benches/*.rs`).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub use tbmd_trace::JsonValue;

/// Parsed command line of a report binary: positional arguments, a `check`
/// flag anywhere, and `--json <path>` for machine-readable output.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    positional: Vec<String>,
    /// CI gate mode (`check` appeared anywhere on the command line).
    pub check: bool,
    /// Mirror the report as JSON to this path.
    pub json: Option<PathBuf>,
    /// Previous run's JSON artifact to diff against (`--prev <path>`).
    /// Check mode treats a missing file as "first run": pass with a note.
    pub prev: Option<PathBuf>,
    /// Regression threshold for timing ratios (`--threshold <x>`): current
    /// wall times may be at most `x` times the previous artifact's.
    pub threshold: Option<f64>,
}

impl BenchArgs {
    /// Parse the process arguments (everything after the binary name).
    pub fn parse() -> BenchArgs {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (testable variant of [`parse`]).
    ///
    /// [`parse`]: BenchArgs::parse
    pub fn from_args(args: impl IntoIterator<Item = String>) -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            if a == "check" {
                out.check = true;
            } else if a == "--json" {
                out.json = iter.next().map(PathBuf::from);
            } else if a == "--prev" {
                out.prev = iter.next().map(PathBuf::from);
            } else if a == "--threshold" {
                out.threshold = iter.next().and_then(|s| s.parse().ok());
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Positional argument `i` (0-based, flags excluded) as `usize`.
    pub fn pos_usize(&self, i: usize, default: usize) -> usize {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// The `--threshold` value, or `default` when absent.
    pub fn threshold_or(&self, default: f64) -> f64 {
        self.threshold.unwrap_or(default)
    }
}

/// Diff a freshly generated baseline document against a previous CI
/// artifact. Returns one human-readable violation per regression; an empty
/// list means the gate passes.
///
/// Gates applied to each engine row of the `engines` section, matched by
/// `(engine, n_atoms)`:
/// * `total_ms` may grow to at most `time_ratio` × the previous value
///   (loose — CI hosts are noisy);
/// * `wire_bytes` must match within 1% (near-exact — communication volume
///   is deterministic, so real growth is an algorithmic regression).
///
/// Rows present on only one side are ignored: adding an engine or a size
/// to the bench must not fail the gate for unrelated history.
pub fn compare_baselines(
    current: &JsonValue,
    previous: &JsonValue,
    time_ratio: f64,
) -> Vec<String> {
    let rows = |doc: &JsonValue| -> Vec<(String, f64, f64, f64)> {
        doc.get("engines")
            .and_then(|e| e.as_array())
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| {
                        let engine = r.get("engine")?.as_str()?.to_string();
                        let n = r.get("n_atoms")?.as_f64()?;
                        let total = r.get("total_ms")?.as_f64()?;
                        let wire = r.get("wire_bytes")?.as_f64()?;
                        Some((engine, n, total, wire))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let prev_rows = rows(previous);
    let mut violations = Vec::new();
    for (engine, n, total, wire) in rows(current) {
        let Some((_, _, prev_total, prev_wire)) = prev_rows
            .iter()
            .find(|(e, pn, _, _)| *e == engine && *pn == n)
        else {
            continue;
        };
        if *prev_total > 0.0 && total > prev_total * time_ratio {
            violations.push(format!(
                "{engine}/N={n}: total {total:.3} ms exceeds {time_ratio:.2}x previous ({prev_total:.3} ms)"
            ));
        }
        let wire_tol = (prev_wire * 0.01).max(1.0);
        if (wire - prev_wire).abs() > wire_tol {
            violations.push(format!(
                "{engine}/N={n}: wire bytes {wire:.0} vs previous {prev_wire:.0} (>1% drift)"
            ));
        }
    }
    violations
}

/// One aligned table of a report, printable as era-style text or JSON.
#[derive(Debug, Clone)]
pub struct ReportTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> ReportTable {
        ReportTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "{}", self.title);
        self.rows.push(cells);
        self
    }

    /// Print as an aligned text table in the style of the era's papers.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("  {}", header_line.join("   "));
        println!("  {}", "-".repeat(header_line.join("   ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("  {}", line.join("   "));
        }
    }

    /// `{"title": ..., "headers": [...], "rows": [[...], ...]}`.
    pub fn to_json(&self) -> JsonValue {
        let headers: Vec<JsonValue> = self.headers.iter().map(|h| h.as_str().into()).collect();
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::from(
                    r.iter()
                        .map(|c| c.as_str().into())
                        .collect::<Vec<JsonValue>>(),
                )
            })
            .collect();
        let mut v = JsonValue::object();
        v.set("title", self.title.as_str())
            .set("headers", JsonValue::from(headers))
            .set("rows", JsonValue::from(rows));
        v
    }
}

/// A whole report: named tables plus free-form notes, emitted as text and
/// optionally mirrored to `--json <path>`.
#[derive(Debug, Clone)]
pub struct Report {
    pub name: String,
    pub tables: Vec<ReportTable>,
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(name: impl Into<String>) -> Report {
        Report {
            name: name.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn table(&mut self, table: ReportTable) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// A shape-check / commentary line printed after the tables.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    /// `{"report": ..., "tables": [...], "notes": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        let tables: Vec<JsonValue> = self.tables.iter().map(|t| t.to_json()).collect();
        let notes: Vec<JsonValue> = self.notes.iter().map(|n| n.as_str().into()).collect();
        let mut v = JsonValue::object();
        v.set("report", self.name.as_str())
            .set("tables", JsonValue::from(tables))
            .set("notes", JsonValue::from(notes));
        v
    }

    /// Print the text report; mirror it to `args.json` when requested.
    pub fn emit(&self, args: &BenchArgs) {
        for t in &self.tables {
            t.print();
        }
        if !self.notes.is_empty() {
            println!();
            for n in &self.notes {
                println!("{n}");
            }
        }
        if let Some(path) = &args.json {
            write_json(path, &self.to_json());
        }
    }
}

/// Write a JSON document to `path` (single trailing newline). Aborts the
/// report on failure — a CI artifact silently missing is worse than a
/// non-zero exit.
pub fn write_json(path: &Path, value: &JsonValue) {
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(f, "{}", value.to_compact())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
}

/// CI gate verdict: prints `CHECK PASSED`/`CHECK FAILED` and exits non-zero
/// on failure.
pub fn check_gate(pass: bool, detail: &str) {
    if pass {
        println!("\nCHECK PASSED: {detail}");
    } else {
        println!("\nCHECK FAILED: {detail}");
        std::process::exit(1);
    }
}

/// Milliseconds with three decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Seconds with three decimals.
pub fn fmt_s(x: f64) -> String {
    format!("{x:.3}")
}

/// Fixed-point with `k` decimals.
pub fn fmt_f(x: f64, k: usize) -> String {
    format!("{x:.k$}")
}

/// Scientific notation with two decimals.
pub fn fmt_e(x: f64) -> String {
    format!("{x:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.000");
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_e(0.000123), "1.23e-4");
        assert_eq!(fmt_s(1.23456), "1.235");
    }

    #[test]
    fn table_does_not_panic() {
        let mut t = ReportTable::new("test", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()])
            .row(vec!["333".into(), "4".into()]);
        t.print();
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let args = BenchArgs::from_args(
            ["4", "check", "--json", "out.json", "7"]
                .into_iter()
                .map(String::from),
        );
        assert!(args.check);
        assert_eq!(args.json.as_deref(), Some(Path::new("out.json")));
        assert_eq!(args.pos_usize(0, 0), 4);
        assert_eq!(args.pos_usize(1, 0), 7);
        assert_eq!(args.pos_usize(2, 9), 9);
        assert!(args.prev.is_none());
        assert_eq!(args.threshold_or(1.6), 1.6);
    }

    #[test]
    fn args_parse_prev_and_threshold() {
        let args = BenchArgs::from_args(
            ["check", "--prev", "old.json", "--threshold", "1.4"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.prev.as_deref(), Some(Path::new("old.json")));
        assert_eq!(args.threshold_or(1.6), 1.4);
    }

    fn engines_doc(engine: &str, n_atoms: usize, total_ms: f64, wire: u64) -> JsonValue {
        let mut row = JsonValue::object();
        row.set("engine", engine)
            .set("n_atoms", n_atoms)
            .set("total_ms", total_ms)
            .set("wire_bytes", wire);
        let mut doc = JsonValue::object();
        doc.set("engines", JsonValue::from(vec![row]));
        doc
    }

    #[test]
    fn baseline_diff_gates_time_and_wire() {
        let prev = engines_doc("serial", 8, 10.0, 1000);

        // Within the ratio and identical wire bytes: clean.
        let ok = engines_doc("serial", 8, 14.0, 1000);
        assert!(compare_baselines(&ok, &prev, 1.6).is_empty());

        // 2x slower: timing violation.
        let slow = engines_doc("serial", 8, 20.0, 1000);
        let v = compare_baselines(&slow, &prev, 1.6);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("total"), "{v:?}");

        // 5% more wire traffic: deterministic-volume violation.
        let chatty = engines_doc("serial", 8, 10.0, 1050);
        let v = compare_baselines(&chatty, &prev, 1.6);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("wire"), "{v:?}");

        // Unmatched rows (new engine/size) never violate.
        let new_row = engines_doc("shared", 64, 500.0, 9999);
        assert!(compare_baselines(&new_row, &prev, 1.6).is_empty());
    }

    #[test]
    fn report_json_roundtrips() {
        let mut t = ReportTable::new("T", &["n", "v"]);
        t.row(vec!["1".into(), "x".into()]);
        let mut r = Report::new("demo");
        r.table(t).note("shape check line");
        let text = r.to_json().to_compact();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.get("report").unwrap().as_str().unwrap(), "demo");
        let tables = parsed.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].get("rows").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[1]
                .as_str()
                .unwrap(),
            "x"
        );
    }
}
