//! # tbmd-bench
//!
//! Benchmark harness for the reproduction: shared table formatting and
//! workload helpers used by the report binaries (one per experiment in
//! DESIGN.md, `src/bin/report_*.rs`) and the Criterion benches
//! (`benches/*.rs`).

use std::time::Duration;

/// Print an aligned text table in the style of the era's papers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("  {}", header_line.join("   "));
    println!("  {}", "-".repeat(header_line.join("   ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", line.join("   "));
    }
}

/// Milliseconds with three decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Seconds with three decimals.
pub fn fmt_s(x: f64) -> String {
    format!("{x:.3}")
}

/// Fixed-point with `k` decimals.
pub fn fmt_f(x: f64, k: usize) -> String {
    format!("{x:.k$}")
}

/// Scientific notation with two decimals.
pub fn fmt_e(x: f64) -> String {
    format!("{x:.2e}")
}

/// Parse CLI argument `position` as `usize` with a default.
pub fn arg_usize(position: usize, default: usize) -> usize {
    std::env::args()
        .nth(position)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.000");
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_e(0.000123), "1.23e-4");
        assert_eq!(fmt_s(1.23456), "1.235");
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            "test",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
