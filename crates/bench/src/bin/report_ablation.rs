//! **Ablation study** — the design choices DESIGN.md calls out, each toggled
//! in isolation:
//!
//! * (a) occupation scheme: zero-temperature filling vs Fermi smearing —
//!   smearing costs a tiny Mermin free-energy offset but keeps forces
//!   continuous through level crossings (the reason it is the MD default);
//! * (b) neighbour-list strategy: brute-force O(N²) vs linked-cell O(N);
//! * (c) eigensolver within the shared-memory engine: Householder+QL vs
//!   parallel-ordered Jacobi (serial cost of the parallel-friendly choice).
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_ablation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tbmd::parallel::{Eigensolver, SharedMemoryTb};
use tbmd::{
    maxwell_boltzmann, silicon_gsp, ForceProvider, MdState, OccupationScheme, Species,
    TbCalculator, VelocityVerlet,
};
use tbmd_bench::{fmt_e, fmt_ms, fmt_s, BenchArgs, Report, ReportTable};
use tbmd_model::TbModel;
use tbmd_structure::NeighborList;

fn main() {
    let args = BenchArgs::parse();
    let model = silicon_gsp();
    let mut report = Report::new("ablation");

    // (a) occupation-scheme ablation: NVE drift at high temperature, where
    // level crossings occur.
    let mut occ_table = ReportTable::new(
        "Ablation (a): occupation scheme vs NVE drift, Si-8 at 2000 K, 40 fs",
        &["occupations", "peak |ΔE|/eV", "relative"],
    );
    for (label, occ) in [
        ("zero-temperature", OccupationScheme::ZeroTemperature),
        ("Fermi kT=0.05 eV", OccupationScheme::Fermi { kt: 0.05 }),
        ("Fermi kT=0.10 eV", OccupationScheme::Fermi { kt: 0.1 }),
        ("Fermi kT=0.30 eV", OccupationScheme::Fermi { kt: 0.3 }),
    ] {
        let calc = TbCalculator::with_occupation(&model, occ);
        let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let v = maxwell_boltzmann(&s, 2000.0, &mut rng);
        let mut state = MdState::new(s, v, &calc).expect("init");
        let vv = VelocityVerlet::new(1.0);
        let e0 = state.total_energy();
        let mut peak: f64 = 0.0;
        for _ in 0..40 {
            vv.step(&mut state, &calc).expect("step");
            peak = peak.max((state.total_energy() - e0).abs());
        }
        occ_table.row(vec![label.to_string(), fmt_e(peak), fmt_e(peak / e0.abs())]);
    }
    report.table(occ_table);
    report.note("Reading (a): smearing does not degrade (and near crossings improves)");
    report.note("conservation; it is the default for force continuity.");

    // (b) neighbour-list strategy timing.
    let mut nl_table = ReportTable::new(
        "Ablation (b): neighbour-list strategy (identical entry sets asserted)",
        &["N", "brute O(N²)/ms", "linked O(N)/ms", "speedup"],
    );
    for reps in [3usize, 4, 5] {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        let cutoff = model.cutoff();
        let t0 = Instant::now();
        let brute = NeighborList::build_brute_force(&s, cutoff);
        let t_brute = t0.elapsed();
        let t0 = Instant::now();
        let linked = NeighborList::build_linked_cell(&s, cutoff);
        let t_linked = t0.elapsed();
        assert_eq!(brute.n_entries(), linked.n_entries());
        nl_table.row(vec![
            s.n_atoms().to_string(),
            fmt_ms(t_brute),
            fmt_ms(t_linked),
            fmt_s(t_brute.as_secs_f64() / t_linked.as_secs_f64()),
        ]);
    }
    report.table(nl_table);

    // (c) eigensolver choice inside the shared-memory engine.
    let mut solver_table = ReportTable::new(
        "Ablation (c): eigensolver in the shared-memory engine, Si-64",
        &["solver", "t/ms (serial host)", "energy/eV"],
    );
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    for (label, solver) in [
        ("Householder+QL", Eigensolver::HouseholderQl),
        ("parallel Jacobi", Eigensolver::ParallelJacobi),
    ] {
        let engine = SharedMemoryTb::new(&model).with_eigensolver(solver);
        let t0 = Instant::now();
        let eval = engine.evaluate(&s).expect("evaluation");
        let t = t0.elapsed();
        solver_table.row(vec![
            label.to_string(),
            fmt_ms(t),
            format!("{:.6}", eval.energy),
        ]);
    }
    report.table(solver_table);
    report.note("Reading (c): QL wins on one core; Jacobi's n/2-way rotation parallelism");
    report.note("is why the distributed engine uses it anyway (see T2/T4).");
    report.emit(&args);
}
