//! **Experiment K1** — microkernel throughput: register-tiled GEMM/SYRK
//! against the textbook triple loops, and the f32 versus f64 Chebyshev
//! recurrence step on a real silicon localization region.
//!
//! Expected shape: the tiled kernels keep the exact naive i-k-j summation
//! order (GEMM is *bitwise* equal to the reference) while the multi-lane
//! panels autovectorize, so GFLOP/s should improve by well over the noise
//! floor at N ≥ 128. The f32 sparse recurrence step halves the memory
//! traffic of the f64 one and should never be slower.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_kernels [-- max_n [check]]`
//!
//! With `check` anywhere on the command line the binary exits non-zero
//! unless (a) tiled GEMM reproduces the naive loop bitwise, (b) tiled GEMM
//! at the largest size is no slower than 0.9× naive, and (c) the f32
//! Chebyshev step is no slower than 1.3× the f64 step — the CI smoke gate
//! for the kernel layer.

use std::time::Instant;
use tbmd::linalg::Matrix;
use tbmd::{silicon_gsp, Species};
use tbmd_bench::{check_gate, fmt_f, BenchArgs, Report, ReportTable};
use tbmd_linscale::{F32Region, LocalRegion, SparseH};
use tbmd_model::{OrbitalIndex, TbModel};
use tbmd_structure::NeighborList;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

/// Naive i-k-j GEMM — the summation-order reference the tiled kernel must
/// reproduce bitwise.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Naive lower-triangle SYRK (W·Wᵀ) with the same ascending-k order.
fn naive_syrk(w: &Matrix) -> Matrix {
    let (m, k) = (w.rows(), w.cols());
    let mut out = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..=i {
            let mut acc = 0.0;
            for p in 0..k {
                acc += w[(i, p)] * w[(j, p)];
            }
            out[(i, j)] = acc;
            out[(j, i)] = acc;
        }
    }
    out
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.unwrap())
}

fn main() {
    let args = BenchArgs::parse();
    let max_n = args.pos_usize(0, 256).max(64);

    // ---- K1a: GEMM / SYRK GFLOP/s, tiled vs naive. ----
    let mut t_gemm = ReportTable::new(
        "K1a: tiled vs naive dense kernels (f64)",
        &[
            "kernel",
            "n",
            "naive GFLOP/s",
            "tiled GFLOP/s",
            "speedup",
            "bitwise",
        ],
    );
    let mut gemm_speedup_last = 0.0;
    let mut all_bitwise = true;
    let mut n = 64usize;
    while n <= max_n {
        let a = random_matrix(n, n, n as u64);
        let b = random_matrix(n, n, n as u64 + 1);
        let reps = (256 / n).max(2);
        let flops = 2.0 * (n as f64).powi(3);
        let (t_naive, reference) = best_of(reps, || naive_matmul(&a, &b));
        let (t_tiled, tiled) = best_of(reps, || a.matmul(&b));
        let bitwise =
            (0..n).all(|i| (0..n).all(|j| tiled[(i, j)].to_bits() == reference[(i, j)].to_bits()));
        all_bitwise &= bitwise;
        gemm_speedup_last = t_naive / t_tiled;
        t_gemm.row(vec![
            "GEMM".into(),
            n.to_string(),
            fmt_f(flops / t_naive / 1e9, 2),
            fmt_f(flops / t_tiled / 1e9, 2),
            fmt_f(gemm_speedup_last, 2),
            bitwise.to_string(),
        ]);

        let w = random_matrix(n, n / 2, n as u64 + 2);
        let flops = (n * (n + 1) * (n / 2)) as f64;
        let (t_naive, reference) = best_of(reps, || naive_syrk(&w));
        let (t_tiled, tiled) = best_of(reps, || w.syrk());
        let close =
            (0..n).all(|i| (0..n).all(|j| (tiled[(i, j)] - reference[(i, j)]).abs() < 1e-12));
        t_gemm.row(vec![
            "SYRK".into(),
            n.to_string(),
            fmt_f(flops / t_naive / 1e9, 2),
            fmt_f(flops / t_tiled / 1e9, 2),
            fmt_f(t_naive / t_tiled, 2),
            format!("{close} (1e-12)"),
        ]);
        n *= 2;
    }

    // ---- K1b: Chebyshev recurrence step, f64 vs f32, on a real region. ----
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let model = silicon_gsp();
    let nl = NeighborList::build(&s, model.cutoff());
    let index = OrbitalIndex::new(&s);
    let h = SparseH::build(&s, &nl, &model, &index);
    let region = LocalRegion::build(&s, &index, &h, 0, f64::INFINITY);
    let region32 = F32Region::from_region(&region);
    let rl = region.len();
    let (shift, scale) = (0.5, 10.0);
    let steps = 2000usize;

    let x64: Vec<f64> = (0..rl).map(|i| ((i % 7) as f64) * 0.1 - 0.3).collect();
    let mut y64 = Vec::with_capacity(rl);
    let (t64, _) = best_of(5, || {
        let mut x = x64.clone();
        for _ in 0..steps {
            region.matvec_scaled_into(&x, shift, scale, &mut y64);
            std::mem::swap(&mut x, &mut y64);
        }
        x[0]
    });
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
    let mut y32 = Vec::with_capacity(rl);
    let (t32, _) = best_of(5, || {
        let mut x = x32.clone();
        for _ in 0..steps {
            region32.matvec_scaled_into(&x, shift as f32, scale as f32, &mut y32);
            std::mem::swap(&mut x, &mut y32);
        }
        x[0]
    });
    let ns64 = t64 / steps as f64 * 1e9;
    let ns32 = t32 / steps as f64 * 1e9;
    let mut t_cheb = ReportTable::new(
        "K1b: Chebyshev recurrence step, Si-64 untruncated region",
        &["precision", "orbitals", "nnz", "ns/step", "vs f64"],
    );
    t_cheb.row(vec![
        "f64".into(),
        rl.to_string(),
        region.nnz().to_string(),
        fmt_f(ns64, 1),
        "1.00".into(),
    ]);
    t_cheb.row(vec![
        "f32".into(),
        rl.to_string(),
        region.nnz().to_string(),
        fmt_f(ns32, 1),
        fmt_f(t32 / t64, 2),
    ]);

    let mut report = Report::new("kernels");
    report
        .table(t_gemm)
        .table(t_cheb)
        .note("Shape check: tiled GEMM bitwise-equal to the naive i-k-j loop at every")
        .note("size; throughput gains grow with n as panels stay cache-resident; the")
        .note("f32 recurrence step moves half the bytes of the f64 one.");
    report.emit(&args);

    if args.check {
        check_gate(
            all_bitwise,
            &format!("tiled GEMM bitwise-equal to naive reference: {all_bitwise}"),
        );
        check_gate(
            gemm_speedup_last >= 0.9,
            &format!("tiled GEMM at n={max_n} is {gemm_speedup_last:.2}x naive (floor 0.9x)"),
        );
        check_gate(
            t32 <= 1.3 * t64,
            &format!(
                "f32 Chebyshev step {:.1} ns vs f64 {:.1} ns (ceiling 1.3x)",
                ns32, ns64
            ),
        );
    }
}
