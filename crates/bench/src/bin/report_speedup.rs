//! **Experiment T2** — fixed-size (strong-scaling) speedup and efficiency
//! versus processor count, for the message-passing engine priced on an era
//! machine model.
//!
//! Expected shape: near-linear speedup at small P decaying as the
//! communication terms (rotation allgathers, column migration, the O(N²)
//! density-matrix allreduce) grow relative to the O(N³/P) compute share.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_speedup [-- reps max_p]`

use tbmd::parallel::{estimate_cost, scaling, MachineProfile};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species, TbCalculator};
use tbmd_bench::{fmt_e, fmt_f, fmt_s, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let reps = args.pos_usize(0, 2);
    let max_p = args.pos_usize(1, 16);
    let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
    let model = silicon_gsp();
    let serial = TbCalculator::new(&model);
    let reference = serial.evaluate(&s).expect("serial");
    let machine = MachineProfile::intel_paragon();

    println!(
        "workload: Si diamond, N = {} atoms ({} orbitals); machine model: {}",
        s.n_atoms(),
        s.n_orbitals(),
        machine.name
    );

    let mut table = ReportTable::new(
        "T2: strong scaling of one TBMD step (distributed engine, era cost model)",
        &[
            "P",
            "|ΔE|/eV",
            "msgs",
            "MB",
            "comp/s",
            "comm/s",
            "total/s",
            "speedup",
            "efficiency",
        ],
    );
    let mut baseline = None;
    let mut p = 1usize;
    while p <= max_p {
        let engine = DistributedTb::new(&model, p);
        let eval = engine.evaluate(&s).expect("distributed");
        let report = engine.last_report().expect("report");
        let est = estimate_cost(&machine, &report.stats);
        let (speedup, eff) = match &baseline {
            None => {
                baseline = Some(est.clone());
                (1.0, 1.0)
            }
            Some(base) => {
                let sc = scaling(base, &est, p);
                (sc.speedup, sc.efficiency)
            }
        };
        table.row(vec![
            p.to_string(),
            fmt_e((eval.energy - reference.energy).abs()),
            report.stats.total_messages().to_string(),
            fmt_f(report.stats.total_bytes() as f64 / 1e6, 2),
            fmt_s(est.comp_s),
            fmt_s(est.comm_s),
            fmt_s(est.total_s()),
            fmt_f(speedup, 2),
            format!("{}%", fmt_f(100.0 * eff, 1)),
        ]);
        p *= 2;
    }
    let mut report = Report::new("speedup");
    report
        .table(table)
        .note("Shape check: efficiency decays monotonically with P; |ΔE| at round-off.");
    report.emit(&args);
}
