//! **Experiment T4** — eigensolver comparison: Householder+QL versus cyclic
//! Jacobi versus parallel-ordered Jacobi versus the distributed ring Jacobi,
//! on random symmetric matrices and on real TB Hamiltonians.
//!
//! Expected shape: QL is the fastest serial algorithm; Jacobi costs a small
//! constant factor more but exposes n/2-way parallelism per round; the
//! distributed version reproduces the same spectrum bit-for-bit to round-off
//! while adding measurable ring traffic. Residuals all sit at round-off.
//!
//! The second table covers the two-stage blocked solver (ISSUE 2): blocked
//! Householder reduction + compact-WY full solve, and the partial path
//! (Sturm/QL values + inverse-iteration vectors for the lowest n/2 states)
//! — each with residual and orthogonality columns.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_eigensolvers [-- max_n [check]]`
//!
//! With `check` anywhere on the command line the binary exits non-zero
//! unless every residual, orthogonality defect and eigenvalue deviation is
//! at round-off — the CI smoke gate for the eigensolver stack.

use std::time::Instant;
use tbmd::linalg::{
    eig_residual, eigh, eigh_blocked_into, eigh_partial_into, jacobi_eigh, orthogonality_defect,
    par_jacobi_eigh, EighWorkspace, Matrix, JACOBI_MAX_SWEEPS, JACOBI_TOL,
};
use tbmd::parallel::ring_jacobi_eigh;
use tbmd::{silicon_gsp, Species};
use tbmd_bench::{check_gate, fmt_e, fmt_ms, BenchArgs, Report, ReportTable};
use tbmd_model::{build_hamiltonian, OrbitalIndex, TbModel};
use tbmd_structure::NeighborList;

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn tb_hamiltonian(reps: usize) -> Matrix {
    let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
    let model = silicon_gsp();
    let nl = NeighborList::build(&s, model.cutoff());
    let index = OrbitalIndex::new(&s);
    build_hamiltonian(&s, &nl, &model, &index)
}

fn main() {
    let args = BenchArgs::parse();
    let max_n = args.pos_usize(0, 256);
    let mut check_worst = 0.0f64;
    let mut t4 = ReportTable::new(
        "T4: symmetric eigensolver comparison (vectors included)",
        &[
            "matrix",
            "QL/ms",
            "cycJac/ms",
            "parJac/ms",
            "ringJac(P=4)/ms",
            "sweeps",
            "QL residual",
            "max |Δλ|",
            "ring msgs",
        ],
    );
    let mut t4b = ReportTable::new(
        "T4b: two-stage blocked solver (full + partial spectrum)",
        &[
            "matrix",
            "QL/ms",
            "blkFull/ms",
            "partial/ms",
            "k",
            "blk resid",
            "blk orth",
            "part resid",
            "part orth",
            "max |Δλ|",
        ],
    );
    let mut matrices: Vec<(String, Matrix)> = Vec::new();
    let mut n = 64usize;
    while n <= max_n {
        matrices.push((format!("random {n}"), random_symmetric(n, n as u64)));
        n *= 2;
    }
    matrices.push(("Si-8 H (32)".into(), tb_hamiltonian(1)));
    matrices.push(("Si-64 H (256)".into(), tb_hamiltonian(2)));

    for (label, a) in &matrices {
        // Householder + QL.
        let t0 = Instant::now();
        let ql = eigh(a.clone()).expect("QL");
        let t_ql = t0.elapsed();
        // Cyclic Jacobi.
        let t0 = Instant::now();
        let (cyc, cyc_stats) =
            jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).expect("Jacobi");
        let t_cyc = t0.elapsed();
        // Parallel-ordered Jacobi.
        let t0 = Instant::now();
        let (par, _) =
            par_jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).expect("parallel Jacobi");
        let t_par = t0.elapsed();
        // Distributed ring Jacobi on 4 virtual ranks.
        let t0 = Instant::now();
        let (ring, ring_report) = ring_jacobi_eigh(a, 4, JACOBI_TOL, JACOBI_MAX_SWEEPS);
        let t_ring = t0.elapsed();

        let max_dev = |other: &tbmd::linalg::Eigh| -> f64 {
            ql.values
                .iter()
                .zip(&other.values)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        };
        t4.row(vec![
            label.clone(),
            fmt_ms(t_ql),
            fmt_ms(t_cyc),
            fmt_ms(t_par),
            fmt_ms(t_ring),
            cyc_stats.sweeps.to_string(),
            fmt_e(eig_residual(a, &ql)),
            fmt_e(max_dev(&cyc).max(max_dev(&par)).max(max_dev(&ring))),
            ring_report.stats.total_messages().to_string(),
        ]);

        // --- Two-stage blocked solver (full and partial spectrum). ---
        let n = a.rows();
        let mut ws = EighWorkspace::default();
        let mut blk = a.clone();
        let mut blk_values = Vec::new();
        let t0 = Instant::now();
        eigh_blocked_into(&mut blk, &mut blk_values, &mut ws).expect("blocked");
        let t_blk = t0.elapsed();
        let blk_eig = tbmd::linalg::Eigh {
            values: blk_values,
            vectors: blk,
        };
        let blk_resid = eig_residual(a, &blk_eig);
        let blk_orth = orthogonality_defect(&blk_eig.vectors);

        // Partial spectrum at half filling (the TBMD occupied window).
        let k = (n / 2).max(1);
        let mut part_a = a.clone();
        let mut part_values = Vec::new();
        let mut part_vectors = Matrix::default();
        let t0 = Instant::now();
        eigh_partial_into(&mut part_a, k, &mut part_values, &mut part_vectors, &mut ws)
            .expect("partial");
        let t_part = t0.elapsed();
        let part_eig = tbmd::linalg::Eigh {
            values: part_values[..k].to_vec(),
            vectors: part_vectors,
        };
        let part_resid = eig_residual(a, &part_eig);
        let part_orth = orthogonality_defect(&part_eig.vectors);
        let blk_dev = max_dev(&blk_eig);
        let part_dev: f64 = ql
            .values
            .iter()
            .zip(&part_eig.values)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);

        let scale = 1.0 / (n as f64);
        for q in [
            blk_resid * scale,
            blk_orth * scale,
            part_resid * scale,
            part_orth * scale,
            blk_dev,
            part_dev,
        ] {
            check_worst = check_worst.max(q);
        }
        t4b.row(vec![
            label.clone(),
            fmt_ms(t_ql),
            fmt_ms(t_blk),
            fmt_ms(t_part),
            k.to_string(),
            fmt_e(blk_resid),
            fmt_e(blk_orth),
            fmt_e(part_resid),
            fmt_e(part_orth),
            fmt_e(blk_dev.max(part_dev)),
        ]);
    }
    let mut report = Report::new("eigensolvers");
    report
        .table(t4)
        .table(t4b)
        .note("Shape check: QL fastest serially; Jacobi ~6–10 sweeps; all solvers")
        .note("agree to ≲1e-8; ring traffic present only in the distributed solver.")
        .note("Two-stage: partial path computes only the lowest k eigenvectors, so")
        .note("it undercuts every full solve; residuals/orthogonality at round-off.");
    report.emit(&args);
    if args.check {
        const CHECK_TOL: f64 = 1e-8;
        check_gate(
            check_worst < CHECK_TOL,
            &format!("worst normalized defect {check_worst:.2e} (tolerance {CHECK_TOL:.0e})"),
        );
    }
}
