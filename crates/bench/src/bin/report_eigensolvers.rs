//! **Experiment T4** — eigensolver comparison: Householder+QL versus cyclic
//! Jacobi versus parallel-ordered Jacobi versus the distributed ring Jacobi,
//! on random symmetric matrices and on real TB Hamiltonians.
//!
//! Expected shape: QL is the fastest serial algorithm; Jacobi costs a small
//! constant factor more but exposes n/2-way parallelism per round; the
//! distributed version reproduces the same spectrum bit-for-bit to round-off
//! while adding measurable ring traffic. Residuals all sit at round-off.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_eigensolvers [-- max_n]`

use std::time::Instant;
use tbmd::linalg::{
    eig_residual, eigh, jacobi_eigh, par_jacobi_eigh, Matrix, JACOBI_MAX_SWEEPS, JACOBI_TOL,
};
use tbmd::parallel::ring_jacobi_eigh;
use tbmd::{silicon_gsp, Species};
use tbmd_bench::{arg_usize, fmt_e, fmt_ms, print_table};
use tbmd_model::{build_hamiltonian, OrbitalIndex, TbModel};
use tbmd_structure::NeighborList;

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn tb_hamiltonian(reps: usize) -> Matrix {
    let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
    let model = silicon_gsp();
    let nl = NeighborList::build(&s, model.cutoff());
    let index = OrbitalIndex::new(&s);
    build_hamiltonian(&s, &nl, &model, &index)
}

fn main() {
    let max_n = arg_usize(1, 256);
    let mut rows = Vec::new();
    let mut matrices: Vec<(String, Matrix)> = Vec::new();
    let mut n = 64usize;
    while n <= max_n {
        matrices.push((format!("random {n}"), random_symmetric(n, n as u64)));
        n *= 2;
    }
    matrices.push(("Si-8 H (32)".into(), tb_hamiltonian(1)));
    matrices.push(("Si-64 H (256)".into(), tb_hamiltonian(2)));

    for (label, a) in &matrices {
        // Householder + QL.
        let t0 = Instant::now();
        let ql = eigh(a.clone()).expect("QL");
        let t_ql = t0.elapsed();
        // Cyclic Jacobi.
        let t0 = Instant::now();
        let (cyc, cyc_stats) =
            jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).expect("Jacobi");
        let t_cyc = t0.elapsed();
        // Parallel-ordered Jacobi.
        let t0 = Instant::now();
        let (par, _) =
            par_jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).expect("parallel Jacobi");
        let t_par = t0.elapsed();
        // Distributed ring Jacobi on 4 virtual ranks.
        let t0 = Instant::now();
        let (ring, ring_report) = ring_jacobi_eigh(a, 4, JACOBI_TOL, JACOBI_MAX_SWEEPS);
        let t_ring = t0.elapsed();

        let max_dev = |other: &tbmd::linalg::Eigh| -> f64 {
            ql.values
                .iter()
                .zip(&other.values)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        };
        rows.push(vec![
            label.clone(),
            fmt_ms(t_ql),
            fmt_ms(t_cyc),
            fmt_ms(t_par),
            fmt_ms(t_ring),
            cyc_stats.sweeps.to_string(),
            fmt_e(eig_residual(a, &ql)),
            fmt_e(max_dev(&cyc).max(max_dev(&par)).max(max_dev(&ring))),
            ring_report.stats.total_messages().to_string(),
        ]);
    }
    print_table(
        "T4: symmetric eigensolver comparison (vectors included)",
        &[
            "matrix",
            "QL/ms",
            "cycJac/ms",
            "parJac/ms",
            "ringJac(P=4)/ms",
            "sweeps",
            "QL residual",
            "max |Δλ|",
            "ring msgs",
        ],
        &rows,
    );
    println!("\nShape check: QL fastest serially; Jacobi ~6–10 sweeps; all solvers");
    println!("agree to ≲1e-8; ring traffic present only in the distributed solver.");
}
