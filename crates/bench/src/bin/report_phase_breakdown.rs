//! **Experiment T1** — per-phase serial timing breakdown of one TBMD step
//! versus system size.
//!
//! Regenerates the canonical "where does the time go" table: neighbour-list
//! build, Hamiltonian assembly, diagonalization, density matrix, forces.
//! Expected shape: diagonalization is O(N³) and its share grows with N until
//! it dominates — the observation that motivated both the parallel
//! eigensolvers and the O(N) methods.
//!
//! The table is measured through a persistent [`Workspace`], so the
//! neighbour column reflects the amortized skin-list path (refreshes, not
//! rebuilds) and the density column the in-place SYRK kernel; the `nl` column
//! reports rebuild/refresh counts over the samples. A cold (fresh-workspace)
//! evaluation is cross-checked against the warm one to 1e-10.
//!
//! A second table shows the same breakdown for the message-passing
//! [`DistributedTb`] engine (rank 0's wall clock per phase, all virtual
//! ranks time-sharing this host), with the collective windows carved out
//! into a dedicated `comm` column.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_phase_breakdown [-- max_reps]`

use tbmd::linscale::{LinearScalingTb, Precision};
use tbmd::trace::{Counter, TraceSink};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species, TbCalculator, Workspace};
use tbmd_bench::{fmt_f, fmt_ms, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let max_reps = args.pos_usize(0, 3);
    let model = silicon_gsp();
    let calc = TbCalculator::new(&model);
    // Collecting sink so the kernel-layer counters (kernel_flops,
    // f32_chebyshev_steps, precision_fallbacks) land in the tables below.
    tbmd::trace::install(TraceSink::collecting());

    let mut t1 = ReportTable::new(
        "T1: per-phase time per TBMD force evaluation, Si diamond supercells (serial, this host)",
        &[
            "N",
            "orbitals",
            "nbrs/ms",
            "H/ms",
            "diag/ms",
            "density/ms",
            "forces/ms",
            "total/ms",
            "diag share",
            "kern GF/s",
            "nl",
        ],
    );
    for reps in 1..=max_reps {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        // Warm once, then measure an averaged step through the same
        // workspace — the steady state an MD loop sees.
        let mut ws = Workspace::new();
        let warmup = calc.evaluate_with(&s, &mut ws).expect("evaluation");
        let n_samples = if s.n_atoms() <= 64 { 3 } else { 1 };
        let mut acc = tbmd::model::PhaseTimings::default();
        let mut eval = None;
        let before = tbmd::trace::snapshot();
        for _ in 0..n_samples {
            let e = calc.evaluate_with(&s, &mut ws).expect("evaluation");
            acc.accumulate(&e.timings);
            eval = Some(e);
        }
        let kernel_flops = tbmd::trace::snapshot()
            .since(&before)
            .counter(Counter::KernelFlops);
        // Equivalence check: the cold path must agree to 1e-10.
        let warm = eval.expect("at least one sample");
        let de = (warm.energy - warmup.energy).abs();
        let df = warm
            .forces
            .iter()
            .zip(&warmup.forces)
            .map(|(a, b)| (*a - *b).max_abs())
            .fold(0.0f64, f64::max);
        let cold = calc.evaluate(&s).expect("evaluation");
        let de_cold = (warm.energy - cold.energy).abs();
        assert!(
            de < 1e-10 && de_cold < 1e-10 && df < 1e-10,
            "warm/cold paths diverged"
        );
        let scale = 1.0 / n_samples as f64;
        let t = |d: std::time::Duration| d.mul_f64(scale);
        let total = t(acc.total());
        let diag_share = acc.diagonalize.as_secs_f64() / acc.total().as_secs_f64();
        t1.row(vec![
            s.n_atoms().to_string(),
            s.n_orbitals().to_string(),
            fmt_ms(t(acc.neighbors)),
            fmt_ms(t(acc.hamiltonian)),
            fmt_ms(t(acc.diagonalize)),
            fmt_ms(t(acc.density)),
            fmt_ms(t(acc.forces)),
            fmt_ms(total),
            format!("{}%", fmt_f(100.0 * diag_share, 1)),
            fmt_f(kernel_flops as f64 / 1e9 / acc.total().as_secs_f64(), 2),
            format!("{}r/{}f", acc.nl_rebuilds, acc.nl_refreshes),
        ]);
    }

    // Distributed engine: per-phase wall times measured on rank 0, through
    // the engine's persistent per-rank workspace pool (warm steady state).
    let mut t1b = ReportTable::new(
        "T1b: per-phase time, distributed two-stage sliced engine (rank 0 wall clock)",
        &[
            "N",
            "P",
            "nbrs/ms",
            "H/ms",
            "diag/ms",
            "density/ms",
            "forces/ms",
            "comm/ms",
            "total/ms",
            "diag share",
        ],
    );
    for reps in 1..=max_reps.min(2) {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        for p in [2usize, 4] {
            let mut ws = Workspace::new();
            let dist = DistributedTb::new(&model, p);
            dist.evaluate_with(&s, &mut ws).expect("evaluation"); // warmup
            let eval = dist.evaluate_with(&s, &mut ws).expect("evaluation");
            let t = &eval.timings;
            let diag_share = t.diagonalize.as_secs_f64() / t.total().as_secs_f64();
            t1b.row(vec![
                s.n_atoms().to_string(),
                p.to_string(),
                fmt_ms(t.neighbors),
                fmt_ms(t.hamiltonian),
                fmt_ms(t.diagonalize),
                fmt_ms(t.density),
                fmt_ms(t.forces),
                fmt_ms(t.communication),
                fmt_ms(t.total()),
                format!("{}%", fmt_f(100.0 * diag_share, 1)),
            ]);
        }
    }
    // O(N) engine precision: the f64 reference against the gated mixed
    // f32-tail path, surfacing the f32_chebyshev_steps and
    // precision_fallbacks counters alongside the energy agreement.
    let mut t1c = ReportTable::new(
        "T1c: linear-scaling engine precision (Si-64, warm, order 350)",
        &["precision", "eval/ms", "f32 steps", "fallbacks", "|ΔE|/eV"],
    );
    {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
        let mut e_f64 = 0.0;
        for (label, precision) in [("f64", Precision::F64), ("mixed-f32", Precision::MixedF32)] {
            let engine = LinearScalingTb::new(&model).with_precision(precision);
            let mut ws = Workspace::new();
            engine.evaluate_with(&s, &mut ws).expect("warmup");
            let before = tbmd::trace::snapshot();
            let t0 = std::time::Instant::now();
            let eval = engine.evaluate_with(&s, &mut ws).expect("evaluation");
            let wall = t0.elapsed();
            let delta = tbmd::trace::snapshot().since(&before);
            if precision == Precision::F64 {
                e_f64 = eval.energy;
            }
            t1c.row(vec![
                label.to_string(),
                fmt_ms(wall),
                delta.counter(Counter::F32ChebyshevSteps).to_string(),
                delta.counter(Counter::PrecisionFallbacks).to_string(),
                format!("{:.2e}", (eval.energy - e_f64).abs()),
            ]);
        }
    }

    let mut report = Report::new("phase_breakdown");
    report
        .table(t1)
        .table(t1b)
        .table(t1c)
        .note("Shape check: diag/ms grows ~N³ and its share increases with N.")
        .note("nl = neighbour-list rebuilds/refreshes over the measured samples (static atoms: all refreshes).")
        .note("All P virtual ranks time-share this host, so distributed totals exceed")
        .note("serial ones; the per-phase *shape* (diag dominating, density next) is the datum.");
    report.emit(&args);
}
