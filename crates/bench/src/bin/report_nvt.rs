//! **Experiment T3** — Nosé–Hoover NVT validation: the thermostat holds the
//! target temperature on average, and the extended-system conserved quantity
//! stays flat to the era's published criterion (better than one part in 10⁴
//! over the run).
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_nvt [-- steps]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::md::RunningStats;
use tbmd::{carbon_xwch, maxwell_boltzmann, silicon_gsp, MdState, NoseHoover, TbCalculator};
use tbmd_bench::{fmt_e, fmt_f, BenchArgs, Report, ReportTable};
use tbmd_model::TbModel;

fn main() {
    let args = BenchArgs::parse();
    let steps = args.pos_usize(0, 80);
    let si = silicon_gsp();
    let c = carbon_xwch();

    let cases: Vec<(&str, &dyn TbModel, tbmd::Structure, f64)> = vec![
        (
            "Si-8",
            &si,
            tbmd::structure::bulk_diamond(tbmd::Species::Silicon, 1, 1, 1),
            300.0,
        ),
        (
            "Si-8",
            &si,
            tbmd::structure::bulk_diamond(tbmd::Species::Silicon, 1, 1, 1),
            1500.0,
        ),
        ("C60", &c, tbmd::structure::fullerene_c60(1.44), 1000.0),
        ("C60", &c, tbmd::structure::fullerene_c60(1.44), 3000.0),
    ];

    let mut table = ReportTable::new(
        format!(
            "T3: Nosé–Hoover NVT validation ({steps} steps, 1 fs, τ = 25 fs, mean over 2nd half)"
        ),
        &[
            "system",
            "target T/K",
            "mean T/K",
            "σ(T)/K",
            "peak |ΔH'|/eV",
            "relative",
        ],
    );
    for (label, model, structure, target) in cases {
        let calc = TbCalculator::new(model);
        let mut rng = StdRng::seed_from_u64(5);
        // Standard lattice-start trick: initialize kinetic T at twice the
        // target, since equipartition immediately converts half of it into
        // potential energy of the phonons.
        let v = maxwell_boltzmann(&structure, 2.0 * target, &mut rng);
        let mut state = MdState::new(structure, v, &calc).expect("init");
        let mut nh = NoseHoover::with_period(1.0, target, state.n_dof(), 25.0);
        let h0 = nh.conserved_quantity(&state);
        let mut t_stats = RunningStats::new();
        let mut peak_dh: f64 = 0.0;
        for step in 0..steps {
            nh.step(&mut state, &calc).expect("step");
            if step >= steps / 2 {
                t_stats.push(state.temperature());
            }
            peak_dh = peak_dh.max((nh.conserved_quantity(&state) - h0).abs());
        }
        table.row(vec![
            label.to_string(),
            format!("{target:.0}"),
            fmt_f(t_stats.mean(), 1),
            fmt_f(t_stats.std_dev(), 1),
            fmt_e(peak_dh),
            fmt_e(peak_dh / h0.abs()),
        ]);
    }
    let mut report = Report::new("nvt");
    report
        .table(table)
        .note("Shape check: mean T within a few σ/√steps of target; relative")
        .note("conserved-quantity excursion ≲ 1e-4 — the published TBMD criterion.");
    report.emit(&args);
}
