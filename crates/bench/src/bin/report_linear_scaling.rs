//! **Experiment F5** — O(N) Chebyshev Fermi-operator expansion versus exact
//! diagonalization: accuracy knobs and the time-versus-N crossover.
//!
//! Three sub-tables: (a) energy/force error versus Chebyshev order at fixed
//! radius, (b) error versus localization radius at fixed order, (c) wall
//! time and ops/atom versus N for both engines. Expected: spectral
//! convergence in the order, exponential-ish radius convergence for gapped
//! Si, flat ops/atom (the O(N) signature) and a dense-engine N³ blow-up.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_linear_scaling [-- max_reps]`

use std::time::Instant;
use tbmd::{silicon_gsp, ForceProvider, LinearScalingTb, OccupationScheme, Species, TbCalculator};
use tbmd_bench::{fmt_e, fmt_f, fmt_s, BenchArgs, Report, ReportTable};

fn max_force_dev(a: &[tbmd::Vec3], b: &[tbmd::Vec3]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).max_abs())
        .fold(0.0, f64::max)
}

fn main() {
    let args = BenchArgs::parse();
    let max_reps = args.pos_usize(0, 3);
    let kt = 0.3;
    let model = silicon_gsp();
    let dense = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt });

    // (a) order convergence, untruncated, 8 atoms (perturbed so forces are
    // non-trivial).
    let mut s8 = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        s8.perturb(&mut rng, 0.05);
    }
    let ref8 = dense.compute(&s8).expect("dense");
    let e_ref8 = ref8.band_energy + ref8.repulsive_energy;
    let mut f5a = ReportTable::new(
        "F5a: Chebyshev-order convergence (Si 8 atoms, untruncated, kT = 0.3 eV)",
        &["order", "|ΔE|/atom/eV", "max |ΔF|/eV/Å"],
    );
    for order in [50usize, 100, 200, 400] {
        let engine = LinearScalingTb::new(&model).with_kt(kt).with_order(order);
        let eval = engine.evaluate(&s8).expect("O(N)");
        f5a.row(vec![
            order.to_string(),
            fmt_e((eval.energy - e_ref8).abs() / 8.0),
            fmt_e(max_force_dev(&eval.forces, &ref8.forces)),
        ]);
    }

    // (b) radius convergence at order 250, 64 atoms (perturbed).
    let mut s64 = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        s64.perturb(&mut rng, 0.05);
    }
    let ref64 = dense.compute(&s64).expect("dense");
    let e_ref64 = ref64.band_energy + ref64.repulsive_energy;
    let mut f5b = ReportTable::new(
        "F5b: localization-radius convergence (Si 64 atoms, order 250)",
        &[
            "r_loc/Å",
            "orbitals/region",
            "|ΔE|/atom/eV",
            "max |ΔF|/eV/Å",
        ],
    );
    for r_loc in [3.0f64, 4.0, 5.2, 6.5] {
        let engine = LinearScalingTb::new(&model)
            .with_kt(kt)
            .with_order(250)
            .with_r_loc(r_loc);
        let eval = engine.evaluate(&s64).expect("O(N)");
        let report = engine.last_report().expect("report");
        f5b.row(vec![
            fmt_f(r_loc, 1),
            (report.total_region_orbitals / s64.n_atoms()).to_string(),
            fmt_e((eval.energy - e_ref64).abs() / 64.0),
            fmt_e(max_force_dev(&eval.forces, &ref64.forces)),
        ]);
    }

    // (c) time vs N crossover.
    let mut f5c = ReportTable::new(
        "F5c: dense O(N³) vs linear-scaling wall time per force evaluation (this host)",
        &["N", "dense/s", "O(N)/s", "dense/O(N)", "Mops/atom (O(N))"],
    );
    for reps in 1..=max_reps {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        let n = s.n_atoms();
        let t0 = Instant::now();
        let _ = dense.compute(&s).expect("dense");
        let t_dense = t0.elapsed().as_secs_f64();
        let engine = LinearScalingTb::new(&model)
            .with_kt(kt)
            .with_order(200)
            .with_r_loc(5.0);
        let t0 = Instant::now();
        let _ = engine.evaluate(&s).expect("O(N)");
        let t_on = t0.elapsed().as_secs_f64();
        let report = engine.last_report().expect("report");
        f5c.row(vec![
            n.to_string(),
            fmt_s(t_dense),
            fmt_s(t_on),
            fmt_f(t_dense / t_on, 2),
            fmt_f(report.total_matvec_ops as f64 / n as f64 / 1e6, 2),
        ]);
    }
    let mut report = Report::new("linear_scaling");
    report
        .table(f5a)
        .table(f5b)
        .table(f5c)
        .note("Shape check: F5a error falls spectrally with order; F5b error falls")
        .note("with radius; F5c Mops/atom flat while the dense/O(N) ratio grows with N")
        .note("— the crossover the 1994 linear-scaling papers reported at a few hundred atoms.");
    report.emit(&args);
}
