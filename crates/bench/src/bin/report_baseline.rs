//! **Baseline** — the machine-readable headline record of the whole bench
//! suite: per-phase timings (including the distributed `communication`
//! phase), wire traffic, eigensolver quality and physics-watchdog verdicts,
//! aggregated into one `BENCH_phase.json`.
//!
//! Sections:
//! * `engines` — T1/T1b condensed: per-phase wall time of one warm force
//!   evaluation for the serial, shared-memory and distributed engines at
//!   two system sizes, with the distributed engine's measured wire bytes.
//! * `eigensolver` — T4b condensed: QL vs two-stage blocked vs partial
//!   solve on the Si-64 Hamiltonian, with residual/orthogonality defects.
//! * `comm_solvers` — F2b condensed: sliced vs ring-Jacobi wire bytes at
//!   N = 64, P = 4.
//! * `watchdogs` — short recorded NVE runs per engine; the JSONL recorder's
//!   drift-watchdog verdict and warn count.
//! * `serve` — two Si-8 tenants through the session multiplexer under a
//!   one-thread compute budget: admission must serialize them (max one
//!   active) while both endpoints stay bitwise the standalone runs.
//! * `campaign` — the Si vacancy-formation headline: a two-cell
//!   pristine/vacancy relax campaign through `tbmd-campaign`, run twice;
//!   the formation energy must be finite, eV-scale, and bitwise stable
//!   (`report_campaign` runs the full matrix/resume/multiplex gate).
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_baseline [-- [--json path]]`
//!
//! Check mode (CI gate): `-- check` regenerates the file, parses it back,
//! and exits non-zero unless every section is present and healthy: ≥ 6
//! engine rows each carrying a `communication` phase, sliced traffic below
//! ring-Jacobi, and every watchdog green.

use std::path::PathBuf;
use std::time::Instant;

use tbmd::linalg::{
    eig_residual, eigh, eigh_blocked_into, eigh_partial_into, orthogonality_defect, EighWorkspace,
};
use tbmd::model::PhaseTimings;
use tbmd::trace::{git_describe, Counter, JsonValue, Phase};
use tbmd::{
    live_vmp_workers, run_manifest, run_simulation_checkpointed, run_simulation_recorded,
    run_simulation_resilient_with, silicon_gsp, CheckpointConfig, CheckpointStore,
    DistributedSolver, DistributedTb, EngineKind, FaultKind, FaultPlan, ForceProvider, Hist,
    RecorderConfig, ResilienceOptions, RunRecorder, SessionBuilder, SessionStatus, SharedMemoryTb,
    SimulationConfig, Species, Structure, SystemSpec, TbCalculator, TraceSink, Workspace,
};
use tbmd_bench::{check_gate, compare_baselines, fmt_ms, write_json, BenchArgs, ReportTable};
use tbmd_campaign::{run_campaign, CampaignSpec, RunOptions};
use tbmd_model::{build_hamiltonian, OrbitalIndex, TbModel};
use tbmd_serve::{JobSpec, Multiplexer};
use tbmd_structure::NeighborList;

/// One warm force evaluation through a persistent workspace — the steady
/// state an MD loop sees.
fn warm_timings(engine: &dyn ForceProvider, s: &Structure) -> PhaseTimings {
    let mut ws = Workspace::new();
    engine.evaluate_with(s, &mut ws).expect("warmup");
    // Per-phase minimum over a few warm samples: the noise-robust
    // estimator of steady-state cost on a time-shared host (a mean or a
    // single draw folds scheduler preemptions into the baseline).
    let mut best = engine
        .evaluate_with(s, &mut ws)
        .expect("evaluation")
        .timings;
    for _ in 0..2 {
        let t = engine
            .evaluate_with(s, &mut ws)
            .expect("evaluation")
            .timings;
        best.neighbors = best.neighbors.min(t.neighbors);
        best.hamiltonian = best.hamiltonian.min(t.hamiltonian);
        best.diagonalize = best.diagonalize.min(t.diagonalize);
        best.density = best.density.min(t.density);
        best.forces = best.forces.min(t.forces);
        best.communication = best.communication.min(t.communication);
    }
    best
}

fn phases_json(t: &PhaseTimings) -> JsonValue {
    let mut v = JsonValue::object();
    for p in Phase::ALL {
        v.set(p.name(), t.phase(p).as_secs_f64() * 1e3);
    }
    v
}

#[allow(clippy::too_many_arguments)]
fn engine_entry(
    engines: &mut Vec<JsonValue>,
    table: &mut ReportTable,
    label: &str,
    s: &Structure,
    ranks: usize,
    t: &PhaseTimings,
    wire_bytes: u64,
    wire_messages: u64,
) {
    let mut v = JsonValue::object();
    v.set("engine", label)
        .set("n_atoms", s.n_atoms())
        .set("n_ranks", ranks)
        .set("phase_ms", phases_json(t))
        .set("total_ms", t.total().as_secs_f64() * 1e3)
        .set("wire_bytes", wire_bytes)
        .set("wire_messages", wire_messages);
    engines.push(v);
    table.row(vec![
        label.to_string(),
        s.n_atoms().to_string(),
        ranks.to_string(),
        fmt_ms(t.neighbors),
        fmt_ms(t.hamiltonian),
        fmt_ms(t.diagonalize),
        fmt_ms(t.density),
        fmt_ms(t.forces),
        fmt_ms(t.communication),
        fmt_ms(t.total()),
        wire_bytes.to_string(),
    ]);
}

fn main() {
    let args = BenchArgs::parse();
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_phase.json"));
    let model = silicon_gsp();
    let mut root = JsonValue::object();
    root.set("report", "baseline")
        .set("git_describe", git_describe());

    // --- Engines: per-phase breakdown at two sizes (T1/T1b condensed).
    let mut engines: Vec<JsonValue> = Vec::new();
    let mut engine_table = ReportTable::new(
        "Baseline: warm per-phase time per force evaluation (this host)",
        &[
            "engine",
            "N",
            "P",
            "nbrs/ms",
            "H/ms",
            "diag/ms",
            "density/ms",
            "forces/ms",
            "comm/ms",
            "total/ms",
            "wire B",
        ],
    );
    for reps in [1usize, 2] {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        let serial = TbCalculator::new(&model);
        let t = warm_timings(&serial, &s);
        engine_entry(&mut engines, &mut engine_table, "serial", &s, 1, &t, 0, 0);

        let shared = SharedMemoryTb::new(&model);
        let t = warm_timings(&shared, &s);
        engine_entry(&mut engines, &mut engine_table, "shared", &s, 1, &t, 0, 0);

        let dist = DistributedTb::new(&model, 4);
        let t = warm_timings(&dist, &s);
        let rep = dist.last_report().expect("distributed report");
        engine_entry(
            &mut engines,
            &mut engine_table,
            "distributed",
            &s,
            4,
            &t,
            rep.stats.total_bytes(),
            rep.stats.total_messages(),
        );
    }
    root.set("engines", engines);

    // --- Eigensolver headline (T4b condensed): Si-64 Hamiltonian.
    let h = {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
        let nl = NeighborList::build(&s, model.cutoff());
        let index = OrbitalIndex::new(&s);
        build_hamiltonian(&s, &nl, &model, &index)
    };
    let n = h.rows();
    let t0 = Instant::now();
    let ql = eigh(h.clone()).expect("QL");
    let t_ql = t0.elapsed();
    let mut ws = EighWorkspace::default();
    let mut blk = h.clone();
    let mut blk_values = Vec::new();
    let t0 = Instant::now();
    eigh_blocked_into(&mut blk, &mut blk_values, &mut ws).expect("blocked");
    let t_blk = t0.elapsed();
    let blk_eig = tbmd::linalg::Eigh {
        values: blk_values,
        vectors: blk,
    };
    let k = n / 2;
    let mut part_a = h.clone();
    let mut part_values = Vec::new();
    let mut part_vectors = tbmd::Matrix::default();
    let t0 = Instant::now();
    eigh_partial_into(&mut part_a, k, &mut part_values, &mut part_vectors, &mut ws)
        .expect("partial");
    let t_part = t0.elapsed();
    let part_eig = tbmd::linalg::Eigh {
        values: part_values[..k].to_vec(),
        vectors: part_vectors,
    };
    let worst_resid = eig_residual(&h, &blk_eig).max(eig_residual(&h, &part_eig));
    let worst_orth =
        orthogonality_defect(&blk_eig.vectors).max(orthogonality_defect(&part_eig.vectors));
    let max_dev = ql
        .values
        .iter()
        .zip(&blk_eig.values)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    let mut eig = JsonValue::object();
    eig.set("matrix", format!("Si-64 H ({n})"))
        .set("ql_ms", t_ql.as_secs_f64() * 1e3)
        .set("blocked_ms", t_blk.as_secs_f64() * 1e3)
        .set("partial_ms", t_part.as_secs_f64() * 1e3)
        .set("partial_k", k)
        .set("worst_residual", worst_resid)
        .set("worst_orthogonality", worst_orth)
        .set("max_eigenvalue_dev", max_dev);
    root.set("eigensolver", eig);
    let mut eig_table = ReportTable::new(
        "Baseline: two-stage eigensolver headline (Si-64 H)",
        &[
            "QL/ms",
            "blocked/ms",
            "partial/ms",
            "worst resid",
            "worst orth",
        ],
    );
    eig_table.row(vec![
        fmt_ms(t_ql),
        fmt_ms(t_blk),
        fmt_ms(t_part),
        format!("{worst_resid:.2e}"),
        format!("{worst_orth:.2e}"),
    ]);

    // --- Kernel-layer headline (K1 condensed): tiled GEMM throughput vs
    // the naive i-k-j loop at n = 256, and the f32 vs f64 Chebyshev
    // recurrence step on the untruncated Si-64 region. `report_kernels`
    // runs the full sweep with the bitwise gates; this keeps the headline
    // numbers in BENCH_phase.json.
    let kernels = {
        let n = 256usize;
        let mut state = 0x9E3779B97F4A7C15u64 | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let a = tbmd::Matrix::from_fn(n, n, |_, _| next());
        let b = tbmd::Matrix::from_fn(n, n, |_, _| next());
        let flops = 2.0 * (n as f64).powi(3);
        let t0 = Instant::now();
        let mut naive = tbmd::Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..n {
                    acc += a[(i, p)] * b[(p, j)];
                }
                naive[(i, j)] = acc;
            }
        }
        let t_naive = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let tiled = a.matmul(&b);
        let t_tiled = t0.elapsed().as_secs_f64();
        assert!(
            (0..n).all(|i| (0..n).all(|j| tiled[(i, j)].to_bits() == naive[(i, j)].to_bits())),
            "tiled GEMM diverged from the naive summation order"
        );
        let sr = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
        let nlr = NeighborList::build(&sr, model.cutoff());
        let idx = OrbitalIndex::new(&sr);
        let sh = tbmd::linscale::SparseH::build(&sr, &nlr, &model, &idx);
        let region = tbmd::linscale::LocalRegion::build(&sr, &idx, &sh, 0, f64::INFINITY);
        let region32 = tbmd::linscale::F32Region::from_region(&region);
        let steps = 2000usize;
        let x64: Vec<f64> = (0..region.len())
            .map(|i| ((i % 7) as f64) * 0.1 - 0.3)
            .collect();
        let mut y64 = Vec::new();
        let t0 = Instant::now();
        {
            let mut x = x64.clone();
            for _ in 0..steps {
                region.matvec_scaled_into(&x, 0.5, 10.0, &mut y64);
                std::mem::swap(&mut x, &mut y64);
            }
        }
        let cheb64_ns = t0.elapsed().as_secs_f64() / steps as f64 * 1e9;
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let mut y32 = Vec::new();
        let t0 = Instant::now();
        {
            let mut x = x32.clone();
            for _ in 0..steps {
                region32.matvec_scaled_into(&x, 0.5, 10.0, &mut y32);
                std::mem::swap(&mut x, &mut y32);
            }
        }
        let cheb32_ns = t0.elapsed().as_secs_f64() / steps as f64 * 1e9;
        let mut k = JsonValue::object();
        k.set("gemm_n", n)
            .set("gemm_naive_gflops", flops / t_naive / 1e9)
            .set("gemm_tiled_gflops", flops / t_tiled / 1e9)
            .set("gemm_speedup", t_naive / t_tiled)
            .set("gemm_bitwise", true)
            .set("cheb_f64_ns_per_step", cheb64_ns)
            .set("cheb_f32_ns_per_step", cheb32_ns)
            .set("cheb_f32_vs_f64", cheb32_ns / cheb64_ns);
        k
    };
    let mut kernel_table = ReportTable::new(
        "Baseline: kernel-layer headline (GEMM n=256, Chebyshev step Si-64)",
        &[
            "naive GFLOP/s",
            "tiled GFLOP/s",
            "speedup",
            "cheb f64 ns",
            "cheb f32 ns",
            "f32/f64",
        ],
    );
    kernel_table.row(vec![
        format!(
            "{:.2}",
            kernels.get("gemm_naive_gflops").unwrap().as_f64().unwrap()
        ),
        format!(
            "{:.2}",
            kernels.get("gemm_tiled_gflops").unwrap().as_f64().unwrap()
        ),
        format!(
            "{:.2}",
            kernels.get("gemm_speedup").unwrap().as_f64().unwrap()
        ),
        format!(
            "{:.1}",
            kernels
                .get("cheb_f64_ns_per_step")
                .unwrap()
                .as_f64()
                .unwrap()
        ),
        format!(
            "{:.1}",
            kernels
                .get("cheb_f32_ns_per_step")
                .unwrap()
                .as_f64()
                .unwrap()
        ),
        format!(
            "{:.2}",
            kernels.get("cheb_f32_vs_f64").unwrap().as_f64().unwrap()
        ),
    ]);
    root.set("kernels", kernels);

    // --- Communication headline (F2b condensed): sliced vs ring at P = 4.
    let s64 = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let sliced = DistributedTb::new(&model, 4);
    sliced.evaluate(&s64).expect("sliced");
    let sliced_bytes = sliced.last_report().expect("report").stats.total_bytes();
    let ring = DistributedTb::new(&model, 4).with_solver(DistributedSolver::RingJacobi);
    ring.evaluate(&s64).expect("ring");
    let ring_bytes = ring.last_report().expect("report").stats.total_bytes();
    let mut comm = JsonValue::object();
    comm.set("n_atoms", s64.n_atoms())
        .set("n_ranks", 4usize)
        .set("sliced_bytes", sliced_bytes)
        .set("ring_jacobi_bytes", ring_bytes)
        .set("ratio", ring_bytes as f64 / sliced_bytes.max(1) as f64);
    root.set("comm_solvers", comm);

    // --- Watchdogs: short recorded NVE runs per engine (Si-8, 15 steps).
    let mut watchdogs: Vec<JsonValue> = Vec::new();
    let mut wd_table = ReportTable::new(
        "Baseline: drift-watchdog verdicts, 15-step recorded NVE (Si-8, 300 K)",
        &["engine", "steps", "warns", "ok", "worst drift/eV"],
    );
    for (label, engine) in [
        ("serial", EngineKind::Serial),
        ("shared", EngineKind::Shared),
        ("distributed", EngineKind::Distributed { ranks: 2 }),
    ] {
        let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 15);
        config.engine = engine;
        let manifest = run_manifest(&config);
        let mut rec = RunRecorder::in_memory(&manifest);
        run_simulation_recorded(
            &config,
            &mut rec,
            RecorderConfig {
                health_stride: 5,
                ..RecorderConfig::standard()
            },
        )
        .expect("recorded run");
        let summary = rec.finish().expect("summary");
        let mut v = summary.watchdog.to_json();
        v.set("engine", label)
            .set("steps", summary.steps)
            .set("warns", summary.warns);
        wd_table.row(vec![
            label.to_string(),
            summary.steps.to_string(),
            summary.warns.to_string(),
            summary.watchdog.ok.to_string(),
            format!("{:.2e}", summary.watchdog.worst_drift_ev),
        ]);
        watchdogs.push(v);
    }
    root.set("watchdogs", watchdogs);

    // --- Checkpoint subsystem headline: snapshot write/load cost for a
    // Si-64 NVE run, with the write cost amortized to an interval-100
    // cadence against the measured step time (`report_checkpoint` runs the
    // full size sweep; this keeps the headline in BENCH_phase.json).
    let ckpt_dir = std::env::temp_dir().join(format!("tbmd_bench_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let ckpt_cfg = CheckpointConfig {
        dir: ckpt_dir.clone(),
        interval: 3,
        retain: 0,
    };
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 2 }, 300.0, 6);
    config.perturb = 0.02;
    tbmd::trace::install(TraceSink::collecting());
    let before = tbmd::trace::snapshot();
    let t0 = Instant::now();
    run_simulation_checkpointed(&config, &ckpt_cfg).expect("checkpointed run");
    let wall = t0.elapsed();
    let delta = tbmd::trace::snapshot().since(&before);
    tbmd::trace::install(TraceSink::disabled());
    let writes = delta.counter(Counter::CkptWrites).max(1);
    let write_ms = delta.counter(Counter::CkptNanos) as f64 / writes as f64 / 1e6;
    let snapshot_bytes = delta.counter(Counter::CkptBytes) / writes;
    let store = CheckpointStore::open(&ckpt_dir, 0).expect("store");
    let t0 = Instant::now();
    let latest = store.latest().expect("load").expect("snapshot present");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let step_ms = wall.as_secs_f64() * 1e3 / 6.0;
    // One write per 100 steps, as a fraction of 100 steps of MD.
    let overhead_pct = write_ms / (100.0 * step_ms) * 100.0;
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut ckpt = JsonValue::object();
    ckpt.set("n_atoms", 64usize)
        .set("snapshot_step", latest.step)
        .set("writes", writes)
        .set("snapshot_bytes", snapshot_bytes)
        .set("write_ms", write_ms)
        .set("load_ms", load_ms)
        .set("step_ms", step_ms)
        .set("overhead_pct_interval100", overhead_pct);
    root.set("checkpoint", ckpt);
    let mut ckpt_table = ReportTable::new(
        "Baseline: checkpoint write/load cost (Si-64 NVE)",
        &["N", "bytes", "write/ms", "load/ms", "step/ms", "ovh@100/%"],
    );
    ckpt_table.row(vec![
        "64".to_string(),
        snapshot_bytes.to_string(),
        fmt_ms(std::time::Duration::from_secs_f64(write_ms / 1e3)),
        fmt_ms(std::time::Duration::from_secs_f64(load_ms / 1e3)),
        fmt_ms(std::time::Duration::from_secs_f64(step_ms / 1e3)),
        format!("{overhead_pct:.3}"),
    ]);

    // --- Elastic-recovery headline: a P=3 distributed NVE run loses a
    // rank mid-trajectory; the resilient driver rewinds to the newest
    // snapshot, respawns, and must land on the bitwise clean endpoint with
    // zero leaked worker threads (`report_chaos` runs the full kill+stall
    // suite; this keeps the headline in BENCH_phase.json).
    let rec_dir = std::env::temp_dir().join(format!("tbmd_bench_recover_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&rec_dir);
    let rec_ckpt = CheckpointConfig {
        dir: rec_dir.clone(),
        interval: 4,
        retain: 3,
    };
    let mut rec_config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 12);
    rec_config.engine = EngineKind::Distributed { ranks: 3 };
    rec_config.perturb = 0.02;
    let rec_clean = tbmd::run_simulation(&rec_config).expect("clean reference");
    let kill = FaultPlan {
        rank: 1,
        at_evaluation: 8, // MD step 7: past the step-4 snapshot
        kind: FaultKind::Kill,
    };
    let t0 = Instant::now();
    let (recovered, rec_report) = run_simulation_resilient_with(
        &rec_config,
        &rec_ckpt,
        &[kill],
        ResilienceOptions::default(),
    )
    .expect("resilient run");
    let recover_wall = t0.elapsed();
    let _ = std::fs::remove_dir_all(&rec_dir);
    let rec_bitwise = {
        let bits = |v: &[tbmd::Vec3]| -> Vec<u64> {
            v.iter()
                .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
                .collect()
        };
        bits(rec_clean.final_structure.positions()) == bits(recovered.final_structure.positions())
            && bits(&rec_clean.final_velocities) == bits(&recovered.final_velocities)
    };
    let rec_leaked = live_vmp_workers();
    let mut recovery = JsonValue::object();
    recovery
        .set("engine", "distributed/3")
        .set("steps", 12usize)
        .set("recoveries", rec_report.recoveries)
        .set("failed_ranks", format!("{:?}", rec_report.failed_ranks))
        .set("final_ranks", rec_report.final_ranks)
        .set("bitwise_equal", rec_bitwise)
        .set("leaked_workers", rec_leaked as u64)
        .set("recover_wall_ms", recover_wall.as_secs_f64() * 1e3);
    root.set("recovery", recovery);
    let mut rec_table = ReportTable::new(
        "Baseline: elastic rank recovery (Si-8, P=3, kill at step 7, Respawn)",
        &["recoveries", "final P", "bitwise", "leaked", "recover/ms"],
    );
    rec_table.row(vec![
        rec_report.recoveries.to_string(),
        rec_report.final_ranks.to_string(),
        rec_bitwise.to_string(),
        rec_leaked.to_string(),
        format!("{:.1}", recover_wall.as_secs_f64() * 1e3),
    ]);

    // --- Serve headline: two Si-8 NVE tenants through the session
    // multiplexer under a one-thread compute budget — the second job must
    // wait in the admission queue, and both endpoints must stay bitwise the
    // standalone trajectories (`report_serve` runs the full K-tenant
    // latency sweep; this keeps the headline in BENCH_phase.json).
    let serve = {
        let mut configs = Vec::new();
        for (i, temp) in [300.0, 450.0].iter().enumerate() {
            let mut c = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, *temp, 10);
            c.seed = 900 + i as u64;
            configs.push(c);
        }
        let reference: Vec<_> = configs
            .iter()
            .map(|c| tbmd::run_simulation(c).expect("standalone tenant"))
            .collect();
        tbmd::configure_budget(1);
        tbmd::parallel::reset_high_water();
        let mut mux = Multiplexer::new();
        for (i, c) in configs.iter().enumerate() {
            let mut spec = JobSpec::new(format!("tenant-{i}"), *c);
            spec.quantum = 4;
            spec.threads = 1;
            mux.submit(spec, std::io::sink());
        }
        let t0 = Instant::now();
        let mut max_active = 0usize;
        loop {
            let busy = mux.tick();
            max_active = max_active.max(mux.active());
            if !busy {
                break;
            }
        }
        let serve_wall = t0.elapsed();
        let mut reports = mux.drain();
        let hw = tbmd::parallel::high_water();
        tbmd::configure_budget(0);
        reports.sort_by(|a, b| a.name.cmp(&b.name));
        let bits = |v: &[tbmd::Vec3]| -> Vec<u64> {
            v.iter()
                .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
                .collect()
        };
        let bitwise = reports.len() == 2
            && reports.iter().zip(&reference).all(|(r, c)| {
                r.outcome.as_ref().is_ok_and(|s| {
                    s.final_total_energy.to_bits() == c.final_total_energy.to_bits()
                        && bits(s.final_structure.positions())
                            == bits(c.final_structure.positions())
                })
            });
        let mut v = JsonValue::object();
        v.set("tenants", 2usize)
            .set("steps_per_tenant", 10usize)
            .set("budget_threads", 1usize)
            .set("max_active", max_active)
            .set("high_water", hw)
            .set("bitwise_equal", bitwise)
            .set("wall_ms", serve_wall.as_secs_f64() * 1e3);
        (v, max_active, hw, bitwise, serve_wall)
    };
    let (serve_json, serve_max_active, serve_hw, serve_bitwise, serve_wall) = serve;
    root.set("serve", serve_json);

    // --- Telemetry headline: Si-8 NVE with the collecting sink (latency
    // histograms live) vs the disabled sink — overhead ratio and the p99
    // per-step latency the histograms reconstruct (`report_telemetry`
    // applies the tight gate; this keeps the numbers in BENCH_phase.json).
    let telemetry = {
        let mut c = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 16);
        c.seed = 23;
        let run = |sink: TraceSink| -> std::time::Duration {
            tbmd::trace::install(sink);
            let mut session = SessionBuilder::new(c).build().expect("telemetry session");
            let t0 = Instant::now();
            while session.step().expect("telemetry step") != SessionStatus::Done {}
            t0.elapsed()
        };
        let mut off = f64::INFINITY;
        let mut on = f64::INFINITY;
        let mut step_hist = tbmd::trace::histograms().hist(Hist::Step).clone();
        for _ in 0..3 {
            off = off.min(run(TraceSink::disabled()).as_secs_f64() * 1e3);
            on = on.min(run(TraceSink::collecting()).as_secs_f64() * 1e3);
            step_hist = tbmd::trace::histograms().hist(Hist::Step).clone();
            tbmd::trace::install(TraceSink::disabled());
        }
        let ratio = on / off;
        let p99_ms = step_hist.percentile_ns(0.99).unwrap_or(f64::NAN) * 1e-6;
        let mut v = JsonValue::object();
        v.set("disabled_ms", off)
            .set("collecting_ms", on)
            .set("overhead_ratio", ratio)
            .set("step_count", step_hist.count())
            .set("p99_step_ms", p99_ms);
        (v, off, on, ratio, p99_ms, step_hist.count())
    };
    let (
        telemetry_json,
        telemetry_off,
        telemetry_on,
        telemetry_ratio,
        telemetry_p99,
        telemetry_steps,
    ) = telemetry;
    root.set("telemetry", telemetry_json);

    // --- Campaign headline: Si vacancy formation energy through the
    // declarative campaign runner, run twice for a bitwise-stability flag
    // (`report_campaign` applies the full matrix/resume/multiplex gate;
    // this keeps the headline number in BENCH_phase.json).
    let campaign = {
        const SPEC: &str = r#"{
            "name": "baseline-vacancy",
            "seed": 13,
            "structures": [{"label": "si1", "system": "si", "reps": 1}],
            "perturbations": [
                {"label": "pristine", "kind": "pristine"},
                {"label": "vac0", "kind": "vacancy", "site": 0}
            ],
            "protocols": [{"label": "relax", "kind": "relax",
                           "force_tolerance": 1e-3, "max_iterations": 200}],
            "engines": ["serial"]
        }"#;
        let spec = CampaignSpec::from_json(SPEC).expect("campaign spec");
        let t0 = Instant::now();
        let first = run_campaign(&spec, &RunOptions::default()).expect("campaign run");
        let campaign_wall = t0.elapsed();
        let second = run_campaign(&spec, &RunOptions::default()).expect("campaign rerun");
        let keys = |r: &tbmd_campaign::CampaignReport| -> Vec<String> {
            r.rows.iter().map(|c| c.deterministic_key()).collect()
        };
        let stable = first.complete && keys(&first) == keys(&second);
        let formation = first
            .rows
            .iter()
            .find(|r| !r.pristine)
            .and_then(|r| r.formation_ev)
            .unwrap_or(f64::NAN);
        let mut v = JsonValue::object();
        v.set("cells", first.rows.len())
            .set("vacancy_formation_ev", formation)
            .set("bitwise_repeat", stable)
            .set("wall_ms", campaign_wall.as_secs_f64() * 1e3);
        (v, first.rows.len(), formation, stable, campaign_wall)
    };
    let (campaign_json, campaign_cells, campaign_formation, campaign_stable, campaign_wall) =
        campaign;
    root.set("campaign", campaign_json);

    let mut telemetry_table = ReportTable::new(
        "Baseline: telemetry overhead (Si-8 NVE, 16 steps, min of 3)",
        &["off/ms", "on/ms", "ratio", "steps", "p99 step/ms"],
    );
    telemetry_table.row(vec![
        format!("{telemetry_off:.3}"),
        format!("{telemetry_on:.3}"),
        format!("{telemetry_ratio:.4}"),
        telemetry_steps.to_string(),
        format!("{telemetry_p99:.4}"),
    ]);
    let mut serve_table = ReportTable::new(
        "Baseline: multiplexed serve (2 Si-8 NVE tenants, budget 1 thread)",
        &["tenants", "budget", "max act.", "hw", "bitwise", "wall/ms"],
    );
    serve_table.row(vec![
        "2".to_string(),
        "1".to_string(),
        serve_max_active.to_string(),
        serve_hw.to_string(),
        serve_bitwise.to_string(),
        format!("{:.1}", serve_wall.as_secs_f64() * 1e3),
    ]);
    let mut campaign_table = ReportTable::new(
        "Baseline: vacancy-formation campaign (Si-8 pristine/vac0 relax, serial)",
        &["cells", "E_form/eV", "bitwise", "wall/ms"],
    );
    campaign_table.row(vec![
        campaign_cells.to_string(),
        format!("{campaign_formation:.6}"),
        campaign_stable.to_string(),
        format!("{:.1}", campaign_wall.as_secs_f64() * 1e3),
    ]);

    engine_table.print();
    eig_table.print();
    kernel_table.print();
    wd_table.print();
    ckpt_table.print();
    rec_table.print();
    serve_table.print();
    telemetry_table.print();
    campaign_table.print();
    println!(
        "\nsliced vs ring-Jacobi wire bytes at N = {}, P = 4: {} vs {} ({:.1}x)",
        s64.n_atoms(),
        sliced_bytes,
        ring_bytes,
        ring_bytes as f64 / sliced_bytes.max(1) as f64
    );
    write_json(&path, &root);

    if args.check {
        let text = std::fs::read_to_string(&path).expect("read baseline json");
        let v = JsonValue::parse(&text).expect("parse baseline json");
        let engines_ok = v
            .get("engines")
            .and_then(|e| e.as_array())
            .is_some_and(|rows| {
                rows.len() >= 6
                    && rows.iter().all(|r| {
                        r.get("phase_ms")
                            .and_then(|p| p.get("communication"))
                            .and_then(|c| c.as_f64())
                            .is_some()
                    })
            });
        let comm_ok = v
            .get("comm_solvers")
            .map(|c| {
                let sliced = c
                    .get("sliced_bytes")
                    .and_then(|x| x.as_f64())
                    .unwrap_or(f64::MAX);
                let ring = c
                    .get("ring_jacobi_bytes")
                    .and_then(|x| x.as_f64())
                    .unwrap_or(0.0);
                sliced < ring
            })
            .unwrap_or(false);
        let watchdogs_ok = v
            .get("watchdogs")
            .and_then(|w| w.as_array())
            .is_some_and(|rows| {
                rows.len() >= 3
                    && rows
                        .iter()
                        .all(|r| r.get("ok").and_then(|o| o.as_bool()) == Some(true))
            });
        let eig_ok = v
            .get("eigensolver")
            .and_then(|e| e.get("worst_residual"))
            .and_then(|r| r.as_f64())
            .is_some_and(|r| r.is_finite() && r < 1e-6 * n as f64);
        let ckpt_ok = v
            .get("checkpoint")
            .and_then(|c| c.get("overhead_pct_interval100"))
            .and_then(|o| o.as_f64())
            .is_some_and(|o| o.is_finite() && o < 5.0);
        let recovery_ok = v.get("recovery").is_some_and(|r| {
            r.get("recoveries").and_then(|x| x.as_f64()) == Some(1.0)
                && r.get("bitwise_equal").and_then(|x| x.as_bool()) == Some(true)
                && r.get("leaked_workers").and_then(|x| x.as_f64()) == Some(0.0)
        });
        let serve_ok = v.get("serve").is_some_and(|s| {
            s.get("bitwise_equal").and_then(|x| x.as_bool()) == Some(true)
                && s.get("max_active").and_then(|x| x.as_f64()) == Some(1.0)
                && s.get("high_water")
                    .and_then(|x| x.as_f64())
                    .is_some_and(|hw| hw <= 1.0)
        });
        // Loose sanity bound only — the tight <2% overhead gate lives in
        // `report_telemetry -- check`, run on its own quiet process.
        let telemetry_ok = v.get("telemetry").is_some_and(|t| {
            t.get("overhead_ratio")
                .and_then(|x| x.as_f64())
                .is_some_and(|r| r.is_finite() && r < 1.5)
                && t.get("step_count").and_then(|x| x.as_f64()) == Some(16.0)
                && t.get("p99_step_ms")
                    .and_then(|x| x.as_f64())
                    .is_some_and(|p| p.is_finite() && p > 0.0)
        });
        // Sanity only — the full matrix/resume/multiplex gate lives in
        // `report_campaign -- check`, run on its own quiet process.
        let campaign_ok = v.get("campaign").is_some_and(|c| {
            c.get("vacancy_formation_ev")
                .and_then(|x| x.as_f64())
                .is_some_and(|e| e.is_finite() && e > 0.0 && e < 20.0)
                && c.get("bitwise_repeat").and_then(|x| x.as_bool()) == Some(true)
                && c.get("cells").and_then(|x| x.as_f64()) == Some(2.0)
        });

        // Regression gate against the previous CI artifact: loose on wall
        // times (noisy hosts), near-exact on wire bytes. A missing artifact
        // (first run, expired retention) passes with a note.
        let mut prev_ok = true;
        let mut prev_note = "no --prev artifact given".to_string();
        if let Some(prev_path) = &args.prev {
            match std::fs::read_to_string(prev_path) {
                Ok(text) => {
                    let prev = JsonValue::parse(&text).expect("parse previous baseline");
                    let ratio = args.threshold_or(1.6);
                    let violations = compare_baselines(&v, &prev, ratio);
                    prev_ok = violations.is_empty();
                    prev_note = if prev_ok {
                        format!("within {ratio:.2}x of previous artifact")
                    } else {
                        violations.join("; ")
                    };
                }
                Err(_) => {
                    prev_note = format!(
                        "previous artifact {} missing — skipping diff",
                        prev_path.display()
                    );
                }
            }
        }
        check_gate(
            engines_ok
                && comm_ok
                && watchdogs_ok
                && eig_ok
                && ckpt_ok
                && recovery_ok
                && serve_ok
                && telemetry_ok
                && campaign_ok
                && prev_ok,
            &format!(
                "engines(comm phase)={engines_ok}, sliced<ring={comm_ok}, watchdogs green={watchdogs_ok}, eig residual={eig_ok}, ckpt overhead={ckpt_ok}, recovery={recovery_ok}, serve={serve_ok}, telemetry={telemetry_ok}, campaign={campaign_ok}, regression: {prev_note}"
            ),
        );
    }
}
