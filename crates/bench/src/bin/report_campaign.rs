//! **Campaign** — declarative experiment-campaign runner (ISSUE 10
//! acceptance bench).
//!
//! Sections:
//! * `matrix` — an 8-cell Si-8 campaign (pristine/vacancy × short NVE /
//!   2-segment quench × serial/shared) run twice under a 2-thread
//!   [`tbmd::configure_budget`] cap: every deterministic row (formation
//!   energy, drift, RDF first peak, endpoint fingerprint) must be bitwise
//!   identical across the two invocations, every cell must report
//!   step-latency percentiles, and the lease high-water mark must stay
//!   within the budget.
//! * `resume` — the same campaign killed after 3 cells and re-invoked
//!   against its result directory: the completed cells must be reused from
//!   their fingerprinted result files (not re-run) and the stitched report
//!   must match the uninterrupted one on every deterministic observable.
//! * `multiplex` — the campaign fanned out through the `tbmd-serve`
//!   multiplexer instead of running inline: endpoints bitwise the same,
//!   and the result files it writes (cells retire in completion order,
//!   not matrix order) fully reusable by a follow-up inline resume.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_campaign
//!       [-- [check] [--json path]]`
//!
//! Check mode (CI gate): exits non-zero unless the matrix expands to ≥ 8
//! cells, the budget holds, both invocations agree bitwise, the resumed
//! campaign skips every completed cell, and the multiplexed endpoints
//! match inline.

use std::path::PathBuf;
use std::time::Instant;

use tbmd::parallel::{budget_total, high_water, reset_high_water};
use tbmd::trace::{git_describe, JsonValue};
use tbmd_bench::{check_gate, fmt_f, write_json, BenchArgs, ReportTable};
use tbmd_campaign::{run_campaign, CampaignReport, CampaignSpec, RunOptions};

const BUDGET: usize = 2;
const KILL_AFTER: usize = 3;

/// 1 structure × 2 perturbations × 2 protocols × 2 engines = 8 cells.
const SPEC: &str = r#"{
    "name": "bench-matrix",
    "seed": 29,
    "structures": [{"label": "si1", "system": "si", "reps": 1}],
    "perturbations": [
        {"label": "pristine", "kind": "pristine"},
        {"label": "vac0", "kind": "vacancy", "site": 0}
    ],
    "protocols": [
        {"label": "nve", "kind": "nve", "temperature_k": 300, "steps": 6},
        {"label": "quench", "kind": "quench", "from_k": 600, "to_k": 300,
         "segments": 2, "rate_k_per_fs": 25, "hold_steps": 2}
    ],
    "engines": ["serial", "shared"]
}"#;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tbmd_report_campaign_{tag}_{}", std::process::id()))
}

/// Deterministic row keys plus formation-energy bits — everything the two
/// invocations must agree on (wall-clock latency deliberately excluded).
fn report_keys(report: &CampaignReport) -> Vec<(String, Option<u64>)> {
    report
        .rows
        .iter()
        .map(|r| (r.deterministic_key(), r.formation_ev.map(f64::to_bits)))
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let spec = CampaignSpec::from_json(SPEC).expect("parse campaign spec");
    let n_cells = spec.expand().len();
    let mut root = JsonValue::object();
    root.set("report", "campaign")
        .set("git_describe", git_describe())
        .set("cells", n_cells)
        .set("budget_threads", BUDGET);

    // --- Matrix twice under a 2-thread budget: bitwise reproducibility.
    tbmd::configure_budget(BUDGET);
    reset_high_water();
    let t0 = Instant::now();
    let first = run_campaign(&spec, &RunOptions::default()).expect("first invocation");
    let first_wall = t0.elapsed();
    let second = run_campaign(&spec, &RunOptions::default()).expect("second invocation");
    let hw = high_water();
    let budget = budget_total();
    let budget_ok = budget == BUDGET && hw <= BUDGET;
    let bitwise = first.complete
        && second.complete
        && first.rows.len() == n_cells
        && report_keys(&first) == report_keys(&second);
    let latency_ok = first
        .rows
        .iter()
        .all(|r| r.step_samples > 0 && r.step_p95_ns.is_some_and(|p| p.is_finite() && p > 0.0));
    let formation_ok = first
        .rows
        .iter()
        .filter(|r| !r.pristine)
        .all(|r| r.formation_ev.is_some_and(f64::is_finite));
    let mut matrix = JsonValue::object();
    matrix
        .set("cells", n_cells)
        .set("wall_ms", first_wall.as_secs_f64() * 1e3)
        .set("high_water", hw)
        .set("budget_respected", budget_ok)
        .set("bitwise_across_invocations", bitwise)
        .set("latency_rows_populated", latency_ok)
        .set("formation_rows_populated", formation_ok);
    root.set("matrix", matrix);

    // --- Kill after 3 cells, resume against the result directory.
    let dir = scratch_dir("resume");
    let _ = std::fs::remove_dir_all(&dir);
    let killed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            stop_after: Some(KILL_AFTER),
            ..RunOptions::default()
        },
    )
    .expect("killed invocation");
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("resumed invocation");
    let _ = std::fs::remove_dir_all(&dir);
    let resume_ok = !killed.complete
        && killed.executed == KILL_AFTER
        && resumed.complete
        && resumed.reused == KILL_AFTER
        && resumed.executed == n_cells - KILL_AFTER
        && report_keys(&resumed) == report_keys(&first);
    let mut resume = JsonValue::object();
    resume
        .set("killed_after", KILL_AFTER)
        .set("reused", resumed.reused)
        .set("executed", resumed.executed)
        .set(
            "matches_uninterrupted",
            report_keys(&resumed) == report_keys(&first),
        )
        .set("ok", resume_ok);
    root.set("resume", resume);

    // --- Multiplexed fan-out must reproduce the inline physics, and its
    // result files — written in completion order, with the 1-segment NVE
    // cells retiring before the 2-segment quenches — must each hold the
    // row of the cell they are named for, so a resume reuses all of them.
    let mux_dir = scratch_dir("mux");
    let _ = std::fs::remove_dir_all(&mux_dir);
    let multiplexed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(mux_dir.clone()),
            multiplex: true,
            quantum: 4,
            ..RunOptions::default()
        },
    )
    .expect("multiplexed invocation");
    let mux_resumed = run_campaign(
        &spec,
        &RunOptions {
            dir: Some(mux_dir.clone()),
            ..RunOptions::default()
        },
    )
    .expect("resume from multiplexed result files");
    let _ = std::fs::remove_dir_all(&mux_dir);
    tbmd::configure_budget(0);
    let mux_bitwise = report_keys(&multiplexed) == report_keys(&first);
    let mux_resume_ok = mux_resumed.reused == n_cells
        && mux_resumed.executed == 0
        && report_keys(&mux_resumed) == report_keys(&first);
    let mut mux = JsonValue::object();
    mux.set("bitwise_vs_inline", mux_bitwise)
        .set("resume_reused", mux_resumed.reused)
        .set("resume_ok", mux_resume_ok);
    root.set("multiplex", mux);

    let mut cells_json = Vec::new();
    let mut table = ReportTable::new(
        format!("Campaign: {n_cells} cells, budget {BUDGET} threads (lease high-water {hw})"),
        &[
            "cell",
            "atoms",
            "steps",
            "E_pot/eV",
            "E_form/eV",
            "drift/eV",
            "g(r) pk/Å",
            "p95/µs",
        ],
    );
    for row in &first.rows {
        table.row(vec![
            row.name.clone(),
            row.n_atoms.to_string(),
            row.steps.to_string(),
            fmt_f(row.potential_ev, 6),
            row.formation_ev.map_or("ref".into(), |e| fmt_f(e, 6)),
            format!("{:.2e}", row.drift_ev),
            row.rdf_peak_r.map_or("-".into(), |r| fmt_f(r, 3)),
            row.step_p95_ns.map_or("-".into(), |p| fmt_f(p * 1e-3, 1)),
        ]);
        cells_json.push(row.to_json());
    }
    root.set("rows", JsonValue::from(cells_json));
    table.print();
    println!(
        "\n{n_cells} cells in {} ms; resume reused {}/{} cells; multiplexed bitwise={mux_bitwise}",
        fmt_f(first_wall.as_secs_f64() * 1e3, 1),
        resumed.reused,
        n_cells,
    );

    if let Some(path) = &args.json {
        write_json(path, &root);
    }

    if args.check {
        check_gate(
            n_cells >= 8
                && budget_ok
                && bitwise
                && latency_ok
                && formation_ok
                && resume_ok
                && mux_bitwise
                && mux_resume_ok,
            &format!(
                "cells={n_cells} (≥8), budget respected={budget_ok} (high-water {hw} ≤ {BUDGET}), \
                 bitwise across invocations={bitwise}, latency rows={latency_ok}, \
                 formation rows={formation_ok}, resume={resume_ok} \
                 (reused {}/{KILL_AFTER}), multiplex bitwise={mux_bitwise}, \
                 multiplex resume={mux_resume_ok} (reused {}/{n_cells})",
                resumed.reused, mux_resumed.reused
            ),
        );
    }
}
