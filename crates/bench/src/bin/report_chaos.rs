//! **Chaos recovery** — elastic rank recovery under repeated injected
//! faults (ISSUE 6 acceptance bench).
//!
//! Sections:
//! * `cancellation` — a rank frozen for 60 s inside a VMP collective is
//!   detected by its peers' receive windows and *cancelled*: the whole
//!   launch returns in ~the detection window, not the stall duration, with
//!   zero leaked worker threads and only the frozen rank blamed.
//! * `respawn` — a P=3 distributed trajectory survives a kill *and* a
//!   stall in sequence under [`ReshardPolicy::Respawn`]: two rewinds, a
//!   bitwise-identical endpoint versus the run that never crashed, and a
//!   bounded kill-detect-rewind-finish wall time.
//! * `shrink` — the same trajectory under [`ReshardPolicy::Shrink`]
//!   finishes on the survivors (final_ranks = P−1), with the endpoint
//!   matching the clean run to summation accuracy (the allreduce grouping
//!   changes with the rank count, so bitwise identity is not expected).
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_chaos [-- [check] [--json path]]`

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tbmd::parallel::{vmp_run_opts, VmpFault, VmpOptions};
use tbmd::trace::JsonValue;
use tbmd::{
    live_vmp_workers, run_simulation, run_simulation_resilient_with, CheckpointConfig, EngineKind,
    FaultKind, FaultPlan, ReshardPolicy, ResilienceOptions, SimulationConfig, SimulationSummary,
    SystemSpec, Vec3,
};
use tbmd_bench::{check_gate, fmt_f, write_json, BenchArgs, ReportTable};

/// Frozen-rank duration: long enough that finishing in bounded time proves
/// cancellation reclaimed the worker instead of waiting the stall out.
const STALL_MS: u64 = 60_000;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbmd_chaos_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[Vec3]) -> Vec<u64> {
    v.iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn endpoints_equal(a: &SimulationSummary, b: &SimulationSummary) -> bool {
    bits(a.final_structure.positions()) == bits(b.final_structure.positions())
        && bits(&a.final_velocities) == bits(&b.final_velocities)
}

/// Largest per-component |Δ| over endpoint positions and velocities (Å,
/// Å/fs — one number since both must be tiny).
fn endpoint_max_diff(a: &SimulationSummary, b: &SimulationSummary) -> f64 {
    let component = |p: &Vec3, q: &Vec3| {
        (p.x - q.x)
            .abs()
            .max((p.y - q.y).abs())
            .max((p.z - q.z).abs())
    };
    let mut m = 0.0f64;
    for (p, q) in a
        .final_structure
        .positions()
        .iter()
        .zip(b.final_structure.positions())
    {
        m = m.max(component(p, q));
    }
    for (p, q) in a.final_velocities.iter().zip(&b.final_velocities) {
        m = m.max(component(p, q));
    }
    m
}

/// The P=3 distributed trajectory every section drives: Si-8 NVE, 12
/// steps, snapshots every 4.
fn chaos_config() -> SimulationConfig {
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 12);
    config.engine = EngineKind::Distributed { ranks: 3 };
    config.perturb = 0.02;
    config
}

/// Kill rank 1 at evaluation 8 (MD step 7, past the step-4 snapshot), then
/// freeze rank 2 at evaluation 12 (step 8 of the first retry). Plans are
/// scheduled against the persistent engine's monotone evaluation counter,
/// so the second plan lands inside the second attempt's range.
fn chaos_faults() -> Vec<FaultPlan> {
    vec![
        FaultPlan {
            rank: 1,
            at_evaluation: 8,
            kind: FaultKind::Kill,
        },
        FaultPlan {
            rank: 2,
            at_evaluation: 12,
            kind: FaultKind::Stall { ms: STALL_MS },
        },
    ]
}

fn main() {
    let args = BenchArgs::parse();
    let mut root = JsonValue::object();
    root.set("report", "chaos");

    // --- VMP-level cancellation: error in ~window, not ~stall.
    let opts = VmpOptions {
        recv_timeout: Some(Duration::from_millis(200)),
        fault: Some(VmpFault {
            rank: 2,
            kind: FaultKind::Stall { ms: STALL_MS },
        }),
    };
    let t0 = Instant::now();
    let err = vmp_run_opts::<(), _>(3, opts, |mut rank| {
        let mut data = vec![rank.id() as f64; 8];
        rank.allreduce_sum(1, &mut data);
    })
    .expect_err("a frozen rank must surface as an error, not a hang");
    let cancel_wall = t0.elapsed();
    let blamed = err.failed_ranks();
    let cancel_leaked = live_vmp_workers();
    let cancel_ok =
        cancel_wall < Duration::from_secs(10) && blamed == vec![2] && cancel_leaked == 0;
    let mut cancel_table = ReportTable::new(
        "Chaos: VMP stall cancellation (P=3, rank 2 frozen 60 s, window 200 ms)",
        &["detect+drain/ms", "blamed", "leaked workers"],
    );
    cancel_table.row(vec![
        fmt_f(cancel_wall.as_secs_f64() * 1e3, 1),
        format!("{blamed:?}"),
        cancel_leaked.to_string(),
    ]);
    let mut v = JsonValue::object();
    v.set("stall_ms", STALL_MS)
        .set("window_ms", 200u64)
        .set("wall_ms", cancel_wall.as_secs_f64() * 1e3)
        .set("blamed_ranks", format!("{blamed:?}"))
        .set("leaked_workers", cancel_leaked as u64)
        .set("pass", cancel_ok);
    root.set("cancellation", v);

    // --- Clean reference trajectory (never crashes).
    let config = chaos_config();
    let t0 = Instant::now();
    let clean = run_simulation(&config).expect("clean run");
    let clean_wall = t0.elapsed();

    // --- Respawn: kill then stall, bitwise endpoint, bounded wall.
    let dir = scratch("respawn");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 3,
    };
    let t0 = Instant::now();
    let (respawned, respawn_report) = run_simulation_resilient_with(
        &config,
        &ckpt,
        &chaos_faults(),
        ResilienceOptions {
            policy: ReshardPolicy::Respawn,
            max_recoveries: 3,
        },
    )
    .expect("respawn recovery");
    let respawn_wall = t0.elapsed();
    let _ = std::fs::remove_dir_all(&dir);
    let respawn_bitwise = endpoints_equal(&clean, &respawned);
    let respawn_leaked = live_vmp_workers();
    // The stall is 60 s; recovery must be paid in detection windows, not
    // stall durations.
    let respawn_bound = clean_wall * 10 + Duration::from_secs(15);
    let respawn_ok = respawn_report.recoveries == 2
        && respawn_report.final_ranks == 3
        && respawn_bitwise
        && respawn_wall < respawn_bound
        && respawn_leaked == 0;
    let mut respawn_table = ReportTable::new(
        "Chaos: resilient kill+stall, Respawn policy (Si-8, P=3, 12 steps)",
        &[
            "recoveries",
            "final P",
            "bitwise",
            "clean/ms",
            "chaos/ms",
            "leaked",
        ],
    );
    respawn_table.row(vec![
        respawn_report.recoveries.to_string(),
        respawn_report.final_ranks.to_string(),
        respawn_bitwise.to_string(),
        fmt_f(clean_wall.as_secs_f64() * 1e3, 1),
        fmt_f(respawn_wall.as_secs_f64() * 1e3, 1),
        respawn_leaked.to_string(),
    ]);
    let mut v = JsonValue::object();
    v.set("recoveries", respawn_report.recoveries)
        .set("failed_ranks", format!("{:?}", respawn_report.failed_ranks))
        .set("final_ranks", respawn_report.final_ranks)
        .set("bitwise_equal", respawn_bitwise)
        .set("clean_wall_ms", clean_wall.as_secs_f64() * 1e3)
        .set("chaos_wall_ms", respawn_wall.as_secs_f64() * 1e3)
        .set("leaked_workers", respawn_leaked as u64)
        .set("pass", respawn_ok);
    root.set("respawn", v);

    // --- Shrink: finish on the survivors after the kill.
    let dir = scratch("shrink");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 3,
    };
    let kill_only = vec![FaultPlan {
        rank: 1,
        at_evaluation: 8,
        kind: FaultKind::Kill,
    }];
    let (shrunk, shrink_report) = run_simulation_resilient_with(
        &config,
        &ckpt,
        &kill_only,
        ResilienceOptions {
            policy: ReshardPolicy::Shrink,
            max_recoveries: 2,
        },
    )
    .expect("shrink recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let shrink_diff = endpoint_max_diff(&clean, &shrunk);
    let shrink_leaked = live_vmp_workers();
    let shrink_ok = shrink_report.recoveries == 1
        && shrink_report.final_ranks == 2
        && shrink_diff < 1e-8
        && shrink_leaked == 0;
    let mut shrink_table = ReportTable::new(
        "Chaos: resilient kill, Shrink policy (Si-8, P=3 → 2 survivors)",
        &["recoveries", "final P", "max |Δ| vs clean", "leaked"],
    );
    shrink_table.row(vec![
        shrink_report.recoveries.to_string(),
        shrink_report.final_ranks.to_string(),
        format!("{shrink_diff:.2e}"),
        shrink_leaked.to_string(),
    ]);
    let mut v = JsonValue::object();
    v.set("recoveries", shrink_report.recoveries)
        .set("failed_ranks", format!("{:?}", shrink_report.failed_ranks))
        .set("final_ranks", shrink_report.final_ranks)
        .set("endpoint_max_diff", shrink_diff)
        .set("tolerance", 1e-8)
        .set("leaked_workers", shrink_leaked as u64)
        .set("pass", shrink_ok);
    root.set("shrink", v);

    cancel_table.print();
    respawn_table.print();
    shrink_table.print();
    println!(
        "\ncancellation {}ms (stall {}s), respawn {} recoveries bitwise={respawn_bitwise}, \
         shrink P={} |Δ|={shrink_diff:.2e}",
        fmt_f(cancel_wall.as_secs_f64() * 1e3, 0),
        STALL_MS / 1000,
        respawn_report.recoveries,
        shrink_report.final_ranks,
    );
    if let Some(path) = &args.json {
        write_json(path, &root);
    }

    if args.check {
        check_gate(
            cancel_ok && respawn_ok && shrink_ok,
            &format!(
                "cancellation bounded+clean = {cancel_ok}, respawn bitwise double recovery = \
                 {respawn_ok}, shrink to survivors = {shrink_ok}"
            ),
        );
    }
}
