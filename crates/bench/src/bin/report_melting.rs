//! **Experiment F4** — radial distribution function of silicon: crystalline
//! at 300 K versus disordered at high temperature.
//!
//! The cold g(r) shows the diamond shells (2.35, 3.84 Å); after a Nosé–Hoover
//! temperature ramp (0.5 K/fs, the literature protocol) and a hold at 3000 K
//! the second shell washes out — loss of crystalline order. Short by the
//! era's 10 ps standards so it completes in minutes; pass a larger hold for
//! production curves.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_melting [-- hold_steps]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::md::RdfAccumulator;
use tbmd::{
    maxwell_boltzmann, silicon_gsp, MdState, NoseHoover, Species, TbCalculator, TemperatureRamp,
};
use tbmd_bench::{fmt_f, BenchArgs, Report, ReportTable};

fn rdf_rows(rdf: &RdfAccumulator) -> Vec<(f64, f64)> {
    rdf.finish().into_iter().step_by(6).collect()
}

fn main() {
    let args = BenchArgs::parse();
    let hold_steps = args.pos_usize(0, 120);
    let t_hot = 3000.0;
    let model = silicon_gsp();
    let calc = TbCalculator::new(&model);
    let structure = tbmd::structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let mut rng = StdRng::seed_from_u64(7);
    let v = maxwell_boltzmann(&structure, 300.0, &mut rng);
    let mut state = MdState::new(structure, v, &calc).expect("init");
    let mut nh = NoseHoover::with_period(1.0, 300.0, state.n_dof(), 50.0);

    let mut rdf_cold = RdfAccumulator::new(5.4, 108);
    for _ in 0..25 {
        nh.step(&mut state, &calc).expect("step");
        rdf_cold.accumulate(&state.structure);
    }

    // Ramp at 0.5 K/fs to t_hot. (5400 steps for 300→3000 K.)
    let ramp = TemperatureRamp {
        rate_k_per_fs: 0.5,
        target_k: t_hot,
    };
    while ramp.advance(&mut nh) {
        nh.step(&mut state, &calc).expect("step");
    }
    let mut rdf_hot = RdfAccumulator::new(5.4, 108);
    for step in 0..hold_steps {
        nh.step(&mut state, &calc).expect("step");
        if step >= hold_steps / 3 {
            rdf_hot.accumulate(&state.structure);
        }
    }

    let cold = rdf_rows(&rdf_cold);
    let hot = rdf_rows(&rdf_hot);
    let mut table = ReportTable::new(
        format!("F4: Si g(r), 300 K vs {t_hot:.0} K (64 atoms, ramp 0.5 K/fs)"),
        &["r/Å", "g(r) cold", "g(r) hot"],
    );
    for ((r, gc), (_, gh)) in cold.iter().zip(&hot) {
        table.row(vec![fmt_f(*r, 2), fmt_f(*gc, 2), fmt_f(*gh, 2)]);
    }

    let shell = |rdf: &RdfAccumulator, r0: f64| -> f64 {
        rdf.finish()
            .into_iter()
            .filter(|(r, _)| (r - r0).abs() < 0.25)
            .map(|(_, g)| g)
            .fold(0.0, f64::max)
    };
    let mut report = Report::new("melting");
    report
        .table(table)
        .note(format!(
            "second shell g(3.84 Å): {:.2} (cold) → {:.2} (hot); first-peak r: {:.2} → {:.2} Å",
            shell(&rdf_cold, 3.84),
            shell(&rdf_hot, 3.84),
            rdf_cold.first_peak().map(|p| p.0).unwrap_or(0.0),
            rdf_hot.first_peak().map(|p| p.0).unwrap_or(0.0),
        ))
        .note("Shape check: crystalline shells sharp at 300 K; second shell strongly")
        .note("suppressed and valleys filled at 3000 K (loss of long-range order).");
    report.emit(&args);
}
