//! **Experiment F8** — isogranular (weak) scaling of the *distributed O(N)*
//! engine against the distributed dense engine: the figure that closes the
//! 1994 story.
//!
//! At fixed atoms-per-rank, the dense engine's estimated time per step rises
//! steeply (per-rank compute O((N/P)·N²) plus an O(N²) density allreduce);
//! the Chebyshev engine's stays near-flat (per-rank compute O(N/P), traffic
//! O(N)). Linear-scaling methods made big-machine TBMD *scalable*, not just
//! faster.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_on_scaling`

use tbmd::linscale::DistributedLinearScalingTb;
use tbmd::parallel::{estimate_cost, MachineProfile};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species};
use tbmd_bench::{fmt_f, fmt_s, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let machine = MachineProfile::intel_paragon();
    let model = silicon_gsp();
    println!(
        "isogranular comparison, 8 atoms/rank, machine model: {} (O(N): order 150, r_loc 5 Å)",
        machine.name
    );

    let mut table = ReportTable::new(
        "F8: weak scaling — dense O(N³) vs distributed O(N) TBMD step (est. era seconds)",
        &[
            "P",
            "N",
            "dense/s",
            "O(N)/s",
            "dense/O(N)",
            "O(N) comm frac",
        ],
    );
    for (p, (nx, ny, nz)) in [
        (1usize, (1usize, 1usize, 1usize)),
        (2, (2, 1, 1)),
        (4, (2, 2, 1)),
        (8, (2, 2, 2)),
    ] {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, nx, ny, nz);

        let dense = DistributedTb::new(&model, p);
        dense.evaluate(&s).expect("dense evaluation");
        let dense_est = estimate_cost(&machine, &dense.last_report().expect("report").stats);

        let on = DistributedLinearScalingTb::new(&model, p)
            .with_kt(0.3)
            .with_order(150)
            .with_r_loc(5.0);
        on.evaluate(&s).expect("O(N) evaluation");
        let on_est = estimate_cost(&machine, &on.last_report().expect("report").stats);

        table.row(vec![
            p.to_string(),
            s.n_atoms().to_string(),
            fmt_s(dense_est.total_s()),
            fmt_s(on_est.total_s()),
            fmt_f(dense_est.total_s() / on_est.total_s(), 2),
            format!("{}%", fmt_f(100.0 * on_est.comm_fraction(), 1)),
        ]);
    }
    let mut report = Report::new("on_scaling");
    report
        .table(table)
        .note("Shape check: the dense column RISES with P at fixed N/P; the O(N)")
        .note("column stays near-flat — linear-scaling methods restore weak scaling.");
    report.emit(&args);
}
