//! **Experiment F2** — communication vs computation fraction across era
//! machines.
//!
//! The same measured execution (per-rank flops, messages, bytes of the
//! distributed engine) priced on all three bundled machine models shows how
//! the network:CPU balance of the host machine moves the parallel-efficiency
//! sweet spot — the Delta's thin network suffers where the Paragon's fat
//! mesh shrugs.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_comm_model [-- reps]`

use tbmd::parallel::{estimate_cost, MachineProfile};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species};
use tbmd_bench::{arg_usize, fmt_f, fmt_s, print_table};

fn main() {
    let reps = arg_usize(1, 2);
    let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
    let model = silicon_gsp();
    println!("workload: one TBMD step, Si N = {} atoms", s.n_atoms());

    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let engine = DistributedTb::new(&model, p);
        engine.evaluate(&s).expect("evaluation");
        let report = engine.last_report().expect("report");
        for machine in MachineProfile::all() {
            let est = estimate_cost(&machine, &report.stats);
            rows.push(vec![
                p.to_string(),
                machine.name.clone(),
                fmt_s(est.comp_s),
                fmt_s(est.comm_s),
                format!("{}%", fmt_f(100.0 * est.comm_fraction(), 1)),
            ]);
        }
    }
    print_table(
        "F2: communication share of one TBMD step across era machines",
        &["P", "machine", "comp/s", "comm/s", "comm fraction"],
        &rows,
    );
    println!("\nShape check: comm fraction grows with P on every machine and is");
    println!("largest on the lowest-bandwidth network (Delta/CM-5 > Paragon).");
}
