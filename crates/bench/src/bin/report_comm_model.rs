//! **Experiment F2** — communication vs computation fraction across era
//! machines, and sliced vs ring-Jacobi wire-byte comparison.
//!
//! The same measured execution (per-rank flops, messages, bytes of the
//! distributed engine) priced on all three bundled machine models shows how
//! the network:CPU balance of the host machine moves the parallel-efficiency
//! sweet spot — the Delta's thin network suffers where the Paragon's fat
//! mesh shrugs. A second table compares the default two-stage sliced
//! eigensolver's measured traffic against the ring-Jacobi reference: the
//! sliced solver replaces O(sweeps·N²)-byte column rotations with one O(N²)
//! ρ allreduce plus an O(N) spectrum allgather.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_comm_model [-- reps] [--json path]`
//!
//! Check mode (CI gate): `-- 2 check` asserts that the sliced solver moves
//! strictly fewer total bytes than ring-Jacobi at N = 64, P = 4 and exits
//! non-zero otherwise.

use tbmd::parallel::{estimate_cost, MachineProfile};
use tbmd::{silicon_gsp, DistributedSolver, DistributedTb, ForceProvider, Species};
use tbmd_bench::{check_gate, fmt_f, fmt_s, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let reps = args.pos_usize(0, 2);
    let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
    let model = silicon_gsp();
    println!("workload: one TBMD step, Si N = {} atoms", s.n_atoms());

    let mut machines = ReportTable::new(
        "F2: communication share of one TBMD step across era machines (sliced solver)",
        &["P", "machine", "comp/s", "comm/s", "comm fraction"],
    );
    let mut solvers = ReportTable::new(
        "F2b: total wire bytes, two-stage sliced vs ring-Jacobi reference",
        &["P", "sliced/B", "ring-Jacobi/B", "ratio", "ring sweeps"],
    );
    let mut check_result: Option<(u64, u64)> = None;
    for p in [2usize, 4, 8] {
        let engine = DistributedTb::new(&model, p);
        engine.evaluate(&s).expect("evaluation");
        let report = engine.last_report().expect("report");
        for machine in MachineProfile::all() {
            let est = estimate_cost(&machine, &report.stats);
            machines.row(vec![
                p.to_string(),
                machine.name.clone(),
                fmt_s(est.comp_s),
                fmt_s(est.comm_s),
                format!("{}%", fmt_f(100.0 * est.comm_fraction(), 1)),
            ]);
        }
        let ring = DistributedTb::new(&model, p).with_solver(DistributedSolver::RingJacobi);
        ring.evaluate(&s).expect("evaluation");
        let ring_report = ring.last_report().expect("report");
        let sliced_bytes = report.stats.total_bytes();
        let ring_bytes = ring_report.stats.total_bytes();
        solvers.row(vec![
            p.to_string(),
            sliced_bytes.to_string(),
            ring_bytes.to_string(),
            format!(
                "{}x",
                fmt_f(ring_bytes as f64 / sliced_bytes.max(1) as f64, 1)
            ),
            ring_report.jacobi_sweeps.to_string(),
        ]);
        if p == 4 {
            check_result = Some((sliced_bytes, ring_bytes));
        }
    }
    let mut report = Report::new("comm_model");
    report
        .table(machines)
        .table(solvers)
        .note("Shape check: comm fraction grows with P on every machine and is")
        .note("largest on the lowest-bandwidth network (Delta/CM-5 > Paragon).")
        .note("The sliced solver's byte total sits far below ring-Jacobi at every P.");
    report.emit(&args);

    if args.check {
        let (sliced, ring) = check_result.expect("P=4 row measured");
        check_gate(
            sliced < ring,
            &format!(
                "sliced solver moved {sliced} bytes, ring-Jacobi {ring} bytes (N = {}, P = 4)",
                s.n_atoms()
            ),
        );
    }
}
