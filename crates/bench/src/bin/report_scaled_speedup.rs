//! **Experiment F1** — scaled-speedup (isogranular) curve: grow the problem
//! with the machine, keeping atoms-per-rank fixed, and watch the estimated
//! time per step.
//!
//! With O(N³) diagonalization, perfectly scaled TBMD is impossible — the
//! per-rank compute grows as (N/P)·N² — so the curve *rises* with P even
//! before communication costs; this is exactly the wall the era papers
//! documented and the O(N) methods broke (compare report_linear_scaling).
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_scaled_speedup [-- atoms_per_rank_reps]`

use tbmd::parallel::{estimate_cost, MachineProfile};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, Species};
use tbmd_bench::{fmt_f, fmt_s, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    // Grain: one diamond cell (8 atoms) per rank by default.
    let grain_reps = args.pos_usize(0, 1);
    let machine = MachineProfile::intel_paragon();
    let model = silicon_gsp();

    println!(
        "isogranular scaling: {} atoms per rank; machine model: {}",
        8 * grain_reps * grain_reps * grain_reps,
        machine.name
    );

    let mut table = ReportTable::new(
        "F1: isogranular (scaled) TBMD step time, fixed atoms/rank",
        &["P", "N", "N/P", "comp/s", "comm/s", "total/s", "comm frac"],
    );
    // P = k³ so the supercell stays cubic: 1, 8 ranks (k=1,2) plus an
    // elongated 2-cell step for k between.
    for (p, (nx, ny, nz)) in [
        (1usize, (1usize, 1usize, 1usize)),
        (2, (2, 1, 1)),
        (4, (2, 2, 1)),
        (8, (2, 2, 2)),
    ] {
        let s = tbmd::structure::bulk_diamond(
            Species::Silicon,
            nx * grain_reps,
            ny * grain_reps,
            nz * grain_reps,
        );
        let engine = DistributedTb::new(&model, p);
        engine.evaluate(&s).expect("distributed evaluation");
        let report = engine.last_report().expect("report");
        let est = estimate_cost(&machine, &report.stats);
        table.row(vec![
            p.to_string(),
            s.n_atoms().to_string(),
            (s.n_atoms() / p).to_string(),
            fmt_s(est.comp_s),
            fmt_s(est.comm_s),
            fmt_s(est.total_s()),
            format!("{}%", fmt_f(100.0 * est.comm_fraction(), 1)),
        ]);
    }
    let mut report = Report::new("scaled_speedup");
    report
        .table(table)
        .note("Shape check: total/s RISES with P at fixed N/P — the O(N³) wall;")
        .note("the O(N) engine (report_linear_scaling) is how 1994 broke it.");
    report.emit(&args);
}
