//! **Serve** — multiplexed trajectory service under a shared compute
//! budget (ISSUE 8 acceptance bench).
//!
//! Sections:
//! * `roundrobin` — K Si-8 NVE tenants advanced one step at a time by a
//!   manual round-robin over [`tbmd::Session`]s, with per-`step()` wall
//!   latencies (p50/p95) and a bitwise comparison of every endpoint
//!   against its standalone `run_simulation`.
//! * `service` — the same K tenants through the [`tbmd_serve::Multiplexer`]
//!   scheduling loop with a 2-thread [`tbmd::configure_budget`] cap:
//!   admission must queue jobs past the cap (max concurrent tenants and
//!   the lease pool's high-water mark both ≤ budget), every tenant must
//!   stream a complete JSONL record set, and every endpoint must again be
//!   bitwise the standalone one.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_serve [-- [K] [check] [--json path]]`
//!
//! Check mode (CI gate): exits non-zero unless both sections hold — bitwise
//! endpoints, budget respected, all tenants finished.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tbmd::parallel::{budget_total, high_water, reset_high_water};
use tbmd::trace::{git_describe, JsonValue};
use tbmd::{
    configure_budget, run_simulation, SessionBuilder, SessionStatus, SimulationConfig,
    SimulationSummary, SystemSpec, Vec3,
};
use tbmd_bench::{check_gate, fmt_f, write_json, BenchArgs, ReportTable};
use tbmd_serve::{JobSpec, Multiplexer};

const STEPS: usize = 24;
const BUDGET: usize = 2;

fn bits(v: &[Vec3]) -> Vec<u64> {
    v.iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn endpoints_equal(a: &SimulationSummary, b: &SimulationSummary) -> bool {
    bits(a.final_structure.positions()) == bits(b.final_structure.positions())
        && bits(&a.final_velocities) == bits(&b.final_velocities)
        && a.final_total_energy.to_bits() == b.final_total_energy.to_bits()
}

/// Tenant i: Si-8 NVE at a per-tenant temperature and seed.
fn tenant_config(i: usize) -> SimulationConfig {
    let mut c = SimulationConfig::nve(
        SystemSpec::SiliconDiamond { reps: 1 },
        300.0 + 25.0 * i as f64,
        STEPS,
    );
    c.seed = 100 + i as u64;
    c
}

/// A Vec<u8> sink whose contents survive the recorder (tenant JSONL
/// streams land here instead of a socket).
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = BenchArgs::parse();
    let k = args.pos_usize(0, 4).max(2);
    let mut root = JsonValue::object();
    root.set("report", "serve")
        .set("git_describe", git_describe())
        .set("tenants", k)
        .set("steps_per_tenant", STEPS);

    let configs: Vec<SimulationConfig> = (0..k).map(tenant_config).collect();

    // --- Sequential baseline: the K trajectories one after another.
    let t0 = Instant::now();
    let reference: Vec<SimulationSummary> = configs
        .iter()
        .map(|c| run_simulation(c).expect("sequential run"))
        .collect();
    let seq_wall = t0.elapsed();

    // --- Round-robin over raw sessions: per-step scheduling latency.
    let mut sessions: Vec<_> = configs
        .iter()
        .map(|c| Some(SessionBuilder::new(*c).build().expect("session")))
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(k * STEPS);
    let mut endpoints: Vec<Option<SimulationSummary>> = (0..k).map(|_| None).collect();
    let t0 = Instant::now();
    loop {
        let mut any = false;
        for (i, slot) in sessions.iter_mut().enumerate() {
            let Some(session) = slot.as_mut() else {
                continue;
            };
            any = true;
            let t = Instant::now();
            let status = session.step().expect("session step");
            latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
            if status == SessionStatus::Done {
                endpoints[i] = session.take_summary();
                *slot = None;
            }
        }
        if !any {
            break;
        }
    }
    let rr_wall = t0.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p95) = (
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.95),
    );
    let rr_bitwise = endpoints
        .iter()
        .zip(&reference)
        .all(|(e, r)| e.as_ref().is_some_and(|e| endpoints_equal(e, r)));
    let mut rr = JsonValue::object();
    rr.set("wall_ms", rr_wall.as_secs_f64() * 1e3)
        .set("p50_step_ms", p50)
        .set("p95_step_ms", p95)
        .set("bitwise_equal", rr_bitwise);
    root.set("roundrobin", rr);

    // --- Service path: the Multiplexer under a finite budget. With
    // `threads: 1` per job and a budget of 2, at most two tenants hold
    // leases at once; the rest wait in the admission queue.
    configure_budget(BUDGET);
    reset_high_water();
    let mut mux = Multiplexer::new();
    let sinks: Vec<Buf> = (0..k).map(|_| Buf::default()).collect();
    for (i, c) in configs.iter().enumerate() {
        let mut spec = JobSpec::new(format!("tenant-{i}"), *c);
        spec.quantum = 6;
        spec.threads = 1;
        spec.checkpoint_interval = 8;
        mux.submit(spec, sinks[i].clone());
    }
    let mut max_active = 0usize;
    let t0 = Instant::now();
    loop {
        let busy = mux.tick();
        max_active = max_active.max(mux.active());
        if !busy {
            break;
        }
    }
    let serve_wall = t0.elapsed();
    let mut reports = mux.drain();
    let hw = high_water();
    let budget = budget_total();
    configure_budget(0);

    reports.sort_by(|a, b| a.name.cmp(&b.name));
    let all_ok = reports.len() == k && reports.iter().all(|r| r.outcome.is_ok());
    let serve_bitwise = all_ok
        && reports.iter().all(|r| {
            let i: usize = r.name.trim_start_matches("tenant-").parse().unwrap();
            r.outcome
                .as_ref()
                .is_ok_and(|s| endpoints_equal(s, &reference[i]))
        });
    // Every tenant's stream must be complete: manifest first, one step
    // line per MD step, summary last.
    let streams_ok = sinks.iter().all(|buf| {
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap_or_default();
        let lines: Vec<JsonValue> = text
            .lines()
            .filter_map(|l| JsonValue::parse(l).ok())
            .collect();
        let ty = |l: &JsonValue| l.get("type").and_then(|t| t.as_str().map(String::from));
        lines.len() == text.lines().count()
            && lines
                .first()
                .is_some_and(|l| ty(l).as_deref() == Some("manifest"))
            && lines
                .last()
                .is_some_and(|l| ty(l).as_deref() == Some("summary"))
            && lines
                .iter()
                .filter(|l| ty(l).as_deref() == Some("step"))
                .count()
                == STEPS
    });
    let budget_ok = hw <= budget && max_active <= BUDGET && budget == BUDGET;
    let total_steps = (k * STEPS) as f64;
    let seq_rate = total_steps / seq_wall.as_secs_f64();
    let serve_rate = total_steps / serve_wall.as_secs_f64();
    let mut service = JsonValue::object();
    service
        .set("budget_threads", BUDGET)
        .set("high_water", hw)
        .set("max_active", max_active)
        .set("wall_ms", serve_wall.as_secs_f64() * 1e3)
        .set("sequential_wall_ms", seq_wall.as_secs_f64() * 1e3)
        .set("steps_per_s", serve_rate)
        .set("sequential_steps_per_s", seq_rate)
        .set("bitwise_equal", serve_bitwise)
        .set("streams_complete", streams_ok)
        .set("budget_respected", budget_ok);
    root.set("service", service);

    let mut table = ReportTable::new(
        format!("Serve: {k} Si-8 tenants × {STEPS} steps (budget {BUDGET} threads)"),
        &[
            "mode", "wall/ms", "steps/s", "p50/ms", "p95/ms", "max act.", "hw", "bitwise",
        ],
    );
    table.row(vec![
        "sequential".into(),
        fmt_f(seq_wall.as_secs_f64() * 1e3, 1),
        fmt_f(seq_rate, 1),
        "-".into(),
        "-".into(),
        "1".into(),
        "-".into(),
        "ref".into(),
    ]);
    table.row(vec![
        "round-robin".into(),
        fmt_f(rr_wall.as_secs_f64() * 1e3, 1),
        fmt_f(total_steps / rr_wall.as_secs_f64(), 1),
        fmt_f(p50, 2),
        fmt_f(p95, 2),
        k.to_string(),
        "-".into(),
        rr_bitwise.to_string(),
    ]);
    table.row(vec![
        "service".into(),
        fmt_f(serve_wall.as_secs_f64() * 1e3, 1),
        fmt_f(serve_rate, 1),
        "-".into(),
        "-".into(),
        max_active.to_string(),
        hw.to_string(),
        serve_bitwise.to_string(),
    ]);
    table.print();
    println!(
        "\n{k} tenants: sequential {} ms, multiplexed {} ms; admission held {max_active} \
         concurrent (budget {BUDGET}), lease high-water {hw}",
        fmt_f(seq_wall.as_secs_f64() * 1e3, 1),
        fmt_f(serve_wall.as_secs_f64() * 1e3, 1),
    );

    if let Some(path) = &args.json {
        write_json(path, &root);
    }

    if args.check {
        check_gate(
            rr_bitwise && serve_bitwise && streams_ok && budget_ok && all_ok,
            &format!(
                "roundrobin bitwise={rr_bitwise}, service bitwise={serve_bitwise}, \
                 streams complete={streams_ok}, budget respected={budget_ok} \
                 (high-water {hw} ≤ {BUDGET}, max active {max_active}), all finished={all_ok}"
            ),
        );
    }
}
