//! **Experiment F6** — the engines on the era's marquee carbon workloads:
//! C₆₀ and a (10,0) nanotube segment.
//!
//! Per-step cost by engine (serial / shared-memory / distributed / O(N)),
//! with the engines' energies cross-checked. Carbon clusters and tubes are
//! near-metallic, so the O(N) column needs a high expansion order — the
//! method's documented weakness outside gapped systems.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_applications`

use std::time::Instant;
use tbmd::{
    carbon_xwch, DistributedTb, ForceProvider, LinearScalingTb, SharedMemoryTb, TbCalculator,
};
use tbmd_bench::{fmt_e, fmt_s, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let model = carbon_xwch();
    let systems: Vec<(&str, tbmd::Structure)> = vec![
        ("C60 fullerene", tbmd_structure::fullerene_c60(1.44)),
        (
            "(10,0) tube x2 (80 C)",
            tbmd_structure::nanotube(10, 0, 2, 1.42),
        ),
    ];

    let mut table = ReportTable::new(
        "F6: per-force-evaluation wall time by engine, carbon applications (this host)",
        &[
            "system",
            "N",
            "serial/s",
            "shared/s",
            "dist(P=4)/s",
            "O(N)/s",
            "max dense |ΔE|/eV",
            "O(N) |ΔE|/atom",
        ],
    );
    for (label, s) in &systems {
        let serial = TbCalculator::new(&model);
        let t0 = Instant::now();
        let ref_eval = serial.evaluate(s).expect("serial");
        let t_serial = t0.elapsed().as_secs_f64();

        let shared = SharedMemoryTb::new(&model);
        let t0 = Instant::now();
        let sh_eval = shared.evaluate(s).expect("shared");
        let t_shared = t0.elapsed().as_secs_f64();

        let dist = DistributedTb::new(&model, 4);
        let t0 = Instant::now();
        let d_eval = dist.evaluate(s).expect("distributed");
        let t_dist = t0.elapsed().as_secs_f64();

        let on = LinearScalingTb::new(&model).with_kt(0.3).with_order(300);
        let t0 = Instant::now();
        let on_eval = on.evaluate(s).expect("O(N)");
        let t_on = t0.elapsed().as_secs_f64();
        // The O(N) energy omits the entropy term; compare band+rep.
        let serial_smeared =
            TbCalculator::with_occupation(&model, tbmd::OccupationScheme::Fermi { kt: 0.3 });
        let r = serial_smeared.compute(s).expect("dense smeared");
        let e_band_rep = r.band_energy + r.repulsive_energy;

        table.row(vec![
            label.to_string(),
            s.n_atoms().to_string(),
            fmt_s(t_serial),
            fmt_s(t_shared),
            fmt_s(t_dist),
            fmt_s(t_on),
            fmt_e(
                (sh_eval.energy - ref_eval.energy)
                    .abs()
                    .max((d_eval.energy - ref_eval.energy).abs()),
            ),
            fmt_e((on_eval.energy - e_band_rep).abs() / s.n_atoms() as f64),
        ]);
    }
    let mut report = Report::new("applications");
    report
        .table(table)
        .note("Shape check: dense engines agree to round-off; the O(N) per-atom")
        .note("error is larger here than for gapped Si (near-metallic π system) —")
        .note("the documented domain boundary of Fermi-operator truncation.");
    report.emit(&args);
}
