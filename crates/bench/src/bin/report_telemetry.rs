//! **Telemetry** — the observability stack must be near-free when on and
//! exactly free when off (ISSUE 9 acceptance bench).
//!
//! Sections:
//! * `overhead` — interleaved Si-8 NVE runs with the disabled sink vs a
//!   collecting sink (histograms live, scoped sink entered per step). The
//!   min-of-N walls must stay within the overhead gate (default 2%,
//!   `--threshold` to override as a ratio), and every run's endpoint
//!   energy must be bitwise identical across both modes.
//! * `histograms` — the latency distributions the collecting run filled
//!   in: count, mean and p50/p90/p99 per non-empty histogram, plus a
//!   sanity bound (step count ≥ MD steps, p50 ≤ p99 ≤ 2× max bucket).
//! * `timeline` — a short run under the span-timeline recorder, exported
//!   as Chrome `trace_event` JSON and parsed back through the in-tree
//!   parser: phase spans must nest inside their MD step spans.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_telemetry
//!       [-- [check] [--json path] [--threshold x]]`
//!
//! Check mode (CI gate): exits non-zero unless the overhead ratio passes,
//! endpoints are bitwise stable, the histograms are populated and ordered,
//! and the chrome trace round-trips with correct nesting.

use std::time::{Duration, Instant};

use tbmd::trace::timeline;
use tbmd::trace::{git_describe, Hist, HistogramSet, JsonValue, ScopedSink};
use tbmd::{SessionBuilder, SessionStatus, SimulationConfig, SystemSpec, TraceSink};
use tbmd_bench::{check_gate, fmt_f, write_json, BenchArgs, ReportTable};

const STEPS: usize = 32;
const REPS: usize = 7;

fn config() -> SimulationConfig {
    let mut c = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, STEPS);
    c.seed = 17;
    c
}

/// One full Si-8 session under the given sink mode. Returns the stepping
/// wall time, the endpoint energy bits, and (for collecting runs) the
/// global histograms the run filled in.
fn run_once(collecting: bool) -> (Duration, u64, HistogramSet) {
    if collecting {
        tbmd::trace::install(TraceSink::collecting());
    } else {
        tbmd::trace::install(TraceSink::disabled());
    }
    // A per-tenant scope like the serve scheduler attaches, so the scoped
    // fan-out cost is part of what the gate measures.
    let scope = collecting.then(|| ScopedSink::new("bench"));
    let mut builder = SessionBuilder::new(config());
    if let Some(s) = &scope {
        builder = builder.telemetry(s.clone());
    }
    let mut session = builder.build().expect("session");
    let t0 = Instant::now();
    while session.step().expect("session step") != SessionStatus::Done {}
    let wall = t0.elapsed();
    let hists = tbmd::trace::histograms();
    tbmd::trace::install(TraceSink::disabled());
    let summary = session.take_summary().expect("summary");
    (wall, summary.final_total_energy.to_bits(), hists)
}

/// Phase/step nesting check over the parsed chrome trace: every event
/// below depth 0 must sit inside some depth-0 interval on its thread.
fn nesting_holds(parsed: &JsonValue) -> (usize, usize, bool) {
    let Some(events) = parsed.get("traceEvents").and_then(|v| v.as_array()) else {
        return (0, 0, false);
    };
    let mut intervals = Vec::new(); // (tid, depth, start, end, is_step)
    for ev in events {
        let (Some(ts), Some(dur), Some(tid)) = (
            ev.get("ts").and_then(|v| v.as_f64()),
            ev.get("dur").and_then(|v| v.as_f64()),
            ev.get("tid").and_then(|v| v.as_f64()),
        ) else {
            return (0, 0, false);
        };
        let depth = ev
            .get("args")
            .and_then(|a| a.get("depth"))
            .and_then(|d| d.as_f64())
            .unwrap_or(0.0) as u16;
        let is_step = ev.get("name").and_then(|n| n.as_str()) == Some("step");
        intervals.push((tid as usize, depth, ts, ts + dur, is_step));
    }
    let steps = intervals.iter().filter(|iv| iv.4).count();
    let mut nested = true;
    let mut children = 0;
    for iv in intervals.iter().filter(|iv| iv.1 > 0) {
        children += 1;
        // Timestamps are rounded to microseconds on export; allow that
        // rounding at both edges.
        let contained = intervals
            .iter()
            .any(|p| p.1 == 0 && p.0 == iv.0 && p.2 <= iv.2 + 1e-3 && iv.3 <= p.3 + 1e-3);
        nested &= contained;
    }
    (steps, children, nested)
}

fn main() {
    let args = BenchArgs::parse();
    let gate_ratio = args.threshold_or(1.02);
    let mut root = JsonValue::object();
    root.set("report", "telemetry")
        .set("git_describe", git_describe())
        .set("steps", STEPS)
        .set("reps", REPS);

    // --- Overhead: interleaved disabled/collecting repeats.
    let mut off_walls = Vec::with_capacity(REPS);
    let mut on_walls = Vec::with_capacity(REPS);
    let mut energies = Vec::with_capacity(2 * REPS);
    let mut last_hists = HistogramSet::default();
    for _ in 0..REPS {
        let (w, e, _) = run_once(false);
        off_walls.push(w.as_secs_f64() * 1e3);
        energies.push(e);
        let (w, e, h) = run_once(true);
        on_walls.push(w.as_secs_f64() * 1e3);
        energies.push(e);
        last_hists = h;
    }
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let (off_ms, on_ms) = (min(&off_walls), min(&on_walls));
    let ratio = on_ms / off_ms;
    let bitwise = energies.windows(2).all(|w| w[0] == w[1]);

    let mut t = ReportTable::new(
        format!("Telemetry overhead (Si-8 NVE, {STEPS} steps, min of {REPS})"),
        &["mode", "wall_ms", "ratio"],
    );
    t.row(vec!["disabled".into(), fmt_f(off_ms, 3), fmt_f(1.0, 4)])
        .row(vec!["collecting".into(), fmt_f(on_ms, 3), fmt_f(ratio, 4)]);
    t.print();
    let mut overhead = JsonValue::object();
    overhead
        .set("disabled_ms", off_ms)
        .set("collecting_ms", on_ms)
        .set("ratio", ratio)
        .set("bitwise_identical", bitwise);
    root.set("overhead", overhead);

    // --- Histograms from the last collecting run.
    let mut t = ReportTable::new(
        "Latency histograms (collecting run)",
        &["hist", "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms"],
    );
    let mut hist_rows = Vec::new();
    for h in Hist::ALL {
        let snap = last_hists.hist(h);
        if snap.is_empty() {
            continue;
        }
        let [p50, p90, p99] = snap.quantiles_ns().expect("non-empty");
        t.row(vec![
            h.name().trim_end_matches("_ns").to_string(),
            snap.count().to_string(),
            fmt_f(snap.mean_ns().unwrap_or(0.0) * 1e-6, 4),
            fmt_f(p50 * 1e-6, 4),
            fmt_f(p90 * 1e-6, 4),
            fmt_f(p99 * 1e-6, 4),
        ]);
        let mut row = JsonValue::object();
        row.set("hist", h.name().trim_end_matches("_ns"))
            .set("count", snap.count())
            .set("p50_ms", p50 * 1e-6)
            .set("p90_ms", p90 * 1e-6)
            .set("p99_ms", p99 * 1e-6);
        hist_rows.push(row);
    }
    t.print();
    root.set("histograms", JsonValue::Array(hist_rows));
    let step = last_hists.hist(Hist::Step);
    let hist_ok = step.count() >= STEPS as u64
        && step
            .quantiles_ns()
            .map(|[p50, p90, p99]| p50 <= p90 && p90 <= p99)
            .unwrap_or(false);

    // --- Timeline: capture, export, parse back, check the nesting.
    timeline::enable(0);
    tbmd::trace::install(TraceSink::collecting());
    let mut session = SessionBuilder::new(config()).build().expect("session");
    for _ in 0..6 {
        session.step().expect("session step");
    }
    let chrome = timeline::export_chrome().to_compact();
    tbmd::trace::install(TraceSink::disabled());
    timeline::disable();
    drop(session);
    let parsed = JsonValue::parse(&chrome);
    let (step_events, child_events, nested) =
        parsed.as_ref().map(nesting_holds).unwrap_or((0, 0, false));
    let timeline_ok = parsed.is_ok() && step_events >= 6 && child_events > 0 && nested;
    let mut t = ReportTable::new(
        "Span timeline (6 steps, chrome trace round-trip)",
        &["step_spans", "nested_spans", "bytes", "nesting_ok"],
    );
    t.row(vec![
        step_events.to_string(),
        child_events.to_string(),
        chrome.len().to_string(),
        nested.to_string(),
    ]);
    t.print();
    let mut tl = JsonValue::object();
    tl.set("step_spans", step_events)
        .set("nested_spans", child_events)
        .set("export_bytes", chrome.len())
        .set("round_trip_ok", timeline_ok);
    root.set("timeline", tl);

    println!(
        "\noverhead ratio {ratio:.4} (gate {gate_ratio:.2}); endpoints bitwise: {bitwise}; \
         step hist count {} (>= {STEPS}); timeline nested: {nested}",
        step.count()
    );
    if let Some(path) = &args.json {
        write_json(path, &root);
    }
    if args.check {
        let overhead_ok = ratio <= gate_ratio;
        check_gate(
            overhead_ok && bitwise && hist_ok && timeline_ok,
            &format!(
                "overhead {ratio:.4} <= {gate_ratio:.2}: {overhead_ok}, bitwise: {bitwise}, \
                 histograms: {hist_ok}, timeline: {timeline_ok}"
            ),
        );
    }
}
