//! **Checkpoint/restart** — cost and correctness of the `tbmd-ckpt`
//! subsystem (ISSUE 5 acceptance bench).
//!
//! Sections:
//! * `snapshots` — TBCK snapshot size and write/load latency versus system
//!   size (Si-8/64/216), measured through the real driver path
//!   ([`run_simulation_checkpointed`]) with the trace counters as the
//!   stopwatch.
//! * `overhead` — the acceptance number: one snapshot write per 100 MD
//!   steps at the largest size, as a percentage of 100 steps of MD. Must
//!   stay below 5%.
//! * `recovery` — a distributed run loses a rank mid-trajectory
//!   (fault injection), the resilient driver rewinds to the last snapshot,
//!   and the finished trajectory must be bitwise identical to a run that
//!   never crashed; wall time of the whole kill-detect-rewind-finish cycle.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_checkpoint [-- [max_reps] [check] [--json path]]`
//!
//! `max_reps` (default 3 = Si-216) bounds the size sweep; `check` gates on
//! overhead < 5%, a successful single-recovery, and bitwise equivalence.

use std::path::PathBuf;
use std::time::Instant;

use tbmd::trace::{Counter, JsonValue};
use tbmd::{
    run_simulation, run_simulation_checkpointed, run_simulation_resilient, CheckpointConfig,
    CheckpointStore, EngineKind, FaultKind, FaultPlan, SimulationConfig, SimulationSummary,
    SystemSpec, TraceSink, Vec3,
};
use tbmd_bench::{check_gate, fmt_f, write_json, BenchArgs, ReportTable};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tbmd_ckpt_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[Vec3]) -> Vec<u64> {
    v.iter()
        .flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn endpoints_equal(a: &SimulationSummary, b: &SimulationSummary) -> bool {
    bits(a.final_structure.positions()) == bits(b.final_structure.positions())
        && bits(&a.final_velocities) == bits(&b.final_velocities)
        && a.conserved_drift.to_bits() == b.conserved_drift.to_bits()
}

struct SnapshotCost {
    n_atoms: usize,
    snapshot_bytes: u64,
    write_ms: f64,
    load_ms: f64,
    step_ms: f64,
}

/// Short checkpointed NVE run at `reps`³ Si cells: two snapshot writes, one
/// load, and the wall-clock step time they amortize against.
fn snapshot_cost(reps: usize) -> SnapshotCost {
    let dir = scratch(&format!("n{reps}"));
    let cfg = CheckpointConfig {
        dir: dir.clone(),
        interval: 2,
        retain: 0,
    };
    let steps = 4usize;
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps }, 300.0, steps);
    config.perturb = 0.02;

    tbmd::trace::install(TraceSink::collecting());
    let before = tbmd::trace::snapshot();
    let t0 = Instant::now();
    let summary = run_simulation_checkpointed(&config, &cfg).expect("checkpointed run");
    let wall = t0.elapsed();
    let delta = tbmd::trace::snapshot().since(&before);
    tbmd::trace::install(TraceSink::disabled());

    let writes = delta.counter(Counter::CkptWrites).max(1);
    let store = CheckpointStore::open(&dir, 0).expect("store");
    let t0 = Instant::now();
    let latest = store.latest().expect("load").expect("snapshot present");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(latest.step as usize, steps, "newest snapshot at the end");
    let n_atoms = summary.final_structure.n_atoms();
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotCost {
        n_atoms,
        snapshot_bytes: delta.counter(Counter::CkptBytes) / writes,
        write_ms: delta.counter(Counter::CkptNanos) as f64 / writes as f64 / 1e6,
        load_ms,
        step_ms: wall.as_secs_f64() * 1e3 / steps as f64,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let max_reps = args.pos_usize(0, 3).clamp(1, 4);
    let mut root = JsonValue::object();
    root.set("report", "checkpoint");

    // --- Snapshot cost vs system size.
    let mut table = ReportTable::new(
        "Checkpoint: TBCK snapshot cost vs system size (NVE, interval 2)",
        &["N", "bytes", "write/ms", "load/ms", "step/ms", "ovh@100/%"],
    );
    let mut snapshots: Vec<JsonValue> = Vec::new();
    let mut overhead_at_largest = f64::NAN;
    for reps in 1..=max_reps {
        let c = snapshot_cost(reps);
        // One write per 100 steps as a fraction of 100 steps of MD: the
        // acceptance cadence of a production run.
        let overhead_pct = c.write_ms / (100.0 * c.step_ms) * 100.0;
        overhead_at_largest = overhead_pct;
        table.row(vec![
            c.n_atoms.to_string(),
            c.snapshot_bytes.to_string(),
            fmt_f(c.write_ms, 3),
            fmt_f(c.load_ms, 3),
            fmt_f(c.step_ms, 3),
            fmt_f(overhead_pct, 4),
        ]);
        let mut v = JsonValue::object();
        v.set("n_atoms", c.n_atoms)
            .set("snapshot_bytes", c.snapshot_bytes)
            .set("write_ms", c.write_ms)
            .set("load_ms", c.load_ms)
            .set("step_ms", c.step_ms)
            .set("overhead_pct_interval100", overhead_pct);
        snapshots.push(v);
    }
    root.set("snapshots", snapshots);
    let mut overhead = JsonValue::object();
    overhead
        .set("interval", 100usize)
        .set("overhead_pct", overhead_at_largest)
        .set("budget_pct", 5.0);
    root.set("overhead", overhead);

    // --- Distributed kill + recovery: wall time and bitwise equivalence.
    let dir = scratch("recovery");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        interval: 4,
        retain: 3,
    };
    let mut config = SimulationConfig::nve(SystemSpec::SiliconDiamond { reps: 1 }, 300.0, 12);
    config.engine = EngineKind::Distributed { ranks: 2 };
    config.perturb = 0.02;
    let t0 = Instant::now();
    let clean = run_simulation(&config).expect("clean run");
    let clean_wall = t0.elapsed();
    let fault = FaultPlan {
        rank: 1,
        at_evaluation: 8, // MD step 7: after the step-4 snapshot
        kind: FaultKind::Kill,
    };
    let t0 = Instant::now();
    let (recovered, recoveries) =
        run_simulation_resilient(&config, &ckpt, Some(fault), 2).expect("resilient run");
    let recover_wall = t0.elapsed();
    let bitwise = endpoints_equal(&clean, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
    let mut rec = JsonValue::object();
    rec.set("engine", "distributed/2")
        .set("steps", 12usize)
        .set("recoveries", recoveries)
        .set("bitwise_equal", bitwise)
        .set("clean_wall_ms", clean_wall.as_secs_f64() * 1e3)
        .set("recover_wall_ms", recover_wall.as_secs_f64() * 1e3);
    root.set("recovery", rec);
    let mut rec_table = ReportTable::new(
        "Checkpoint: distributed rank-kill recovery (Si-8, P=2, kill at step 7)",
        &["recoveries", "bitwise", "clean/ms", "kill+recover/ms"],
    );
    rec_table.row(vec![
        recoveries.to_string(),
        bitwise.to_string(),
        fmt_f(clean_wall.as_secs_f64() * 1e3, 3),
        fmt_f(recover_wall.as_secs_f64() * 1e3, 3),
    ]);

    table.print();
    rec_table.print();
    println!(
        "\nsnapshot-per-100-steps overhead at largest size: {overhead_at_largest:.4}% (budget 5%)"
    );
    if let Some(path) = &args.json {
        write_json(path, &root);
    }

    if args.check {
        let overhead_ok = overhead_at_largest.is_finite() && overhead_at_largest < 5.0;
        let recovery_ok = bitwise && recoveries == 1;
        check_gate(
            overhead_ok && recovery_ok,
            &format!(
                "overhead@100 {overhead_at_largest:.4}% < 5% = {overhead_ok}, single bitwise recovery = {recovery_ok}"
            ),
        );
    }
}
