//! **Experiment F7** — electronic band structures and densities of states
//! of the validation systems: the figure-class artifact every tight-binding
//! parametrization paper leads with.
//!
//! Reports: silicon bands along Γ–X–L with the fundamental gap; the graphene
//! π-band closure at the Dirac point; Gaussian-broadened DOS of a Si
//! supercell.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_bands`

use tbmd::model::{band_energies, band_gap, band_structure, density_of_states, k_path};
use tbmd::{carbon_xwch, silicon_gsp, Species, Vec3};
use tbmd_bench::{fmt_f, print_table};

fn main() {
    // --- Si bands along Γ–X and Γ–L of the conventional cubic cell.
    let si = silicon_gsp();
    let s = tbmd_structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let g = 2.0 * std::f64::consts::PI / s.cell().lengths.x;
    let gamma = Vec3::ZERO;
    let x = Vec3::new(g / 2.0, 0.0, 0.0);
    let l = Vec3::new(g / 4.0, g / 4.0, g / 4.0);
    let path = k_path(&[l, gamma, x], 8);
    let bands = band_structure(&s, &si, &path).expect("bands");
    let n_filled = s.n_electrons() / 2;

    let mut rows = Vec::new();
    for (i, (k, b)) in path.iter().zip(&bands).enumerate() {
        if i % 4 == 0 || i + 1 == path.len() {
            rows.push(vec![
                format!("({:.2},{:.2},{:.2})", k.x / g, k.y / g, k.z / g),
                fmt_f(b[0], 2),
                fmt_f(b[n_filled - 1], 2),
                fmt_f(b[n_filled], 2),
                fmt_f(b[b.len() - 1], 2),
            ]);
        }
    }
    print_table(
        "F7a: Si bands along L–Γ–X (k in units of 2π/a)",
        &["k", "bottom/eV", "VBM/eV", "CBM/eV", "top/eV"],
        &rows,
    );
    let gap = band_gap(&bands, s.n_electrons()).expect("gap");
    println!("\n  fundamental gap on this path: {gap:.2} eV (expt. 1.17 eV; TB-family models land within a factor ~2)");

    // --- Graphene Dirac point.
    let c = carbon_xwch();
    let sheet = tbmd_structure::graphene_sheet(1.42, 1, 1);
    let acc = 1.42;
    let k_dirac = Vec3::new(
        2.0 * std::f64::consts::PI / (3.0 * acc),
        2.0 * std::f64::consts::PI / (3.0 * 3.0f64.sqrt() * acc),
        0.0,
    );
    let mut rows = Vec::new();
    for (label, k) in [
        ("Γ", Vec3::ZERO),
        ("K (Dirac)", k_dirac),
        ("K/2", k_dirac * 0.5),
    ] {
        let b = band_energies(&sheet, &c, k).expect("bands");
        let gap = band_gap(&[b], sheet.n_electrons()).expect("gap");
        rows.push(vec![label.to_string(), fmt_f(gap.abs(), 3)]);
    }
    print_table("F7b: graphene π gap vs k", &["k-point", "|gap|/eV"], &rows);

    // --- Si DOS.
    let s64 = tbmd_structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let eig = {
        let nl = tbmd::NeighborList::build(&s64, tbmd::model::TbModel::cutoff(&si));
        let index = tbmd::model::OrbitalIndex::new(&s64);
        let h = tbmd::model::build_hamiltonian(&s64, &nl, &si, &index);
        tbmd::linalg::eigvalsh(h).expect("eigenvalues")
    };
    let dos = density_of_states(&eig, 0.4, 36);
    println!("\n== F7c: Si-64 electronic DOS (Gaussian σ = 0.4 eV) ==");
    for (e, d) in dos.iter().step_by(2) {
        let bar: String = std::iter::repeat_n('#', (d * 1.2) as usize).collect();
        println!("  {e:7.2} eV  {d:6.2}  {bar}");
    }
    println!("\nShape check: valence band ~12 eV wide with the s/p gap structure of");
    println!("diamond-phase Si; graphene gap collapses at K and only there.");
}
