//! **Experiment F7** — electronic band structures and densities of states
//! of the validation systems: the figure-class artifact every tight-binding
//! parametrization paper leads with.
//!
//! Reports: silicon bands along Γ–X–L with the fundamental gap; the graphene
//! π-band closure at the Dirac point; Gaussian-broadened DOS of a Si
//! supercell.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_bands`

use tbmd::model::{band_energies, band_gap, band_structure, density_of_states, k_path};
use tbmd::{carbon_xwch, silicon_gsp, Species, Vec3};
use tbmd_bench::{fmt_f, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let mut report = Report::new("bands");

    // --- Si bands along Γ–X and Γ–L of the conventional cubic cell.
    let si = silicon_gsp();
    let s = tbmd_structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let g = 2.0 * std::f64::consts::PI / s.cell().lengths.x;
    let gamma = Vec3::ZERO;
    let x = Vec3::new(g / 2.0, 0.0, 0.0);
    let l = Vec3::new(g / 4.0, g / 4.0, g / 4.0);
    let path = k_path(&[l, gamma, x], 8);
    let bands = band_structure(&s, &si, &path).expect("bands");
    let n_filled = s.n_electrons() / 2;

    let mut f7a = ReportTable::new(
        "F7a: Si bands along L–Γ–X (k in units of 2π/a)",
        &["k", "bottom/eV", "VBM/eV", "CBM/eV", "top/eV"],
    );
    for (i, (k, b)) in path.iter().zip(&bands).enumerate() {
        if i % 4 == 0 || i + 1 == path.len() {
            f7a.row(vec![
                format!("({:.2},{:.2},{:.2})", k.x / g, k.y / g, k.z / g),
                fmt_f(b[0], 2),
                fmt_f(b[n_filled - 1], 2),
                fmt_f(b[n_filled], 2),
                fmt_f(b[b.len() - 1], 2),
            ]);
        }
    }
    report.table(f7a);
    let gap = band_gap(&bands, s.n_electrons()).expect("gap");
    report.note(format!(
        "fundamental gap on this path: {gap:.2} eV (expt. 1.17 eV; TB-family models land within a factor ~2)"
    ));

    // --- Graphene Dirac point.
    let c = carbon_xwch();
    let sheet = tbmd_structure::graphene_sheet(1.42, 1, 1);
    let acc = 1.42;
    let k_dirac = Vec3::new(
        2.0 * std::f64::consts::PI / (3.0 * acc),
        2.0 * std::f64::consts::PI / (3.0 * 3.0f64.sqrt() * acc),
        0.0,
    );
    let mut f7b = ReportTable::new("F7b: graphene π gap vs k", &["k-point", "|gap|/eV"]);
    for (label, k) in [
        ("Γ", Vec3::ZERO),
        ("K (Dirac)", k_dirac),
        ("K/2", k_dirac * 0.5),
    ] {
        let b = band_energies(&sheet, &c, k).expect("bands");
        let gap = band_gap(&[b], sheet.n_electrons()).expect("gap");
        f7b.row(vec![label.to_string(), fmt_f(gap.abs(), 3)]);
    }
    report.table(f7b);

    // --- Si DOS.
    let s64 = tbmd_structure::bulk_diamond(Species::Silicon, 2, 2, 2);
    let eig = {
        let nl = tbmd::NeighborList::build(&s64, tbmd::model::TbModel::cutoff(&si));
        let index = tbmd::model::OrbitalIndex::new(&s64);
        let h = tbmd::model::build_hamiltonian(&s64, &nl, &si, &index);
        tbmd::linalg::eigvalsh(h).expect("eigenvalues")
    };
    let dos = density_of_states(&eig, 0.4, 36);
    let mut f7c = ReportTable::new(
        "F7c: Si-64 electronic DOS (Gaussian σ = 0.4 eV)",
        &["E/eV", "DOS"],
    );
    for (e, d) in dos.iter().step_by(2) {
        f7c.row(vec![format!("{e:.2}"), format!("{d:.2}")]);
    }
    report.table(f7c);
    report.note("Shape check: valence band ~12 eV wide with the s/p gap structure of");
    report.note("diamond-phase Si; graphene gap collapses at K and only there.");
    report.emit(&args);
}
