//! **Experiment T5** — tight-binding model validation against the reference
//! geometries the parametrizations were fit to.
//!
//! Equation-of-state scans locate each phase's equilibrium bond length by
//! quadratic interpolation around the energy minimum; cohesive-type energy
//! scales and CG-relaxation behaviour complete the table. Expected: Si
//! diamond 2.35 Å, C diamond 1.54 Å, graphene 1.42 Å within a few percent.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_model_validation`

use tbmd::{carbon_xwch, silicon_gsp, ForceProvider, OccupationScheme, Species, TbCalculator};
use tbmd_bench::{fmt_f, BenchArgs, Report, ReportTable};
use tbmd_model::TbModel;
use tbmd_structure::Structure;

/// Quadratic-interpolated minimum of E(bond) sampled on a grid.
fn eos_minimum(
    model: &dyn TbModel,
    build: impl Fn(f64) -> Structure,
    center: f64,
    half_width: f64,
) -> (f64, f64) {
    let calc = TbCalculator::with_occupation(model, OccupationScheme::Fermi { kt: 0.05 });
    let n_pts = 11;
    let bonds: Vec<f64> = (0..n_pts)
        .map(|i| center - half_width + 2.0 * half_width * i as f64 / (n_pts - 1) as f64)
        .collect();
    let energies: Vec<f64> = bonds
        .iter()
        .map(|&b| {
            let s = build(b);
            calc.energy_only(&s).expect("energy") / s.n_atoms() as f64
        })
        .collect();
    let k = energies
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0
        .clamp(1, n_pts - 2);
    // Parabola through the three points around the minimum.
    let (x0, x1, x2) = (bonds[k - 1], bonds[k], bonds[k + 1]);
    let (y0, y1, y2) = (energies[k - 1], energies[k], energies[k + 1]);
    let denom = (x0 - x1) * (x0 - x2) * (x1 - x2);
    let a = (x2 * (y1 - y0) + x1 * (y0 - y2) + x0 * (y2 - y1)) / denom;
    let b = (x2 * x2 * (y0 - y1) + x1 * x1 * (y2 - y0) + x0 * x0 * (y1 - y2)) / denom;
    let x_min = -b / (2.0 * a);
    let e_min = y1 - a * (x1 - x_min).powi(2);
    (x_min, e_min)
}

fn main() {
    let args = BenchArgs::parse();
    let si = silicon_gsp();
    let c = carbon_xwch();
    let mut rows = Vec::new();

    let (b, e) = eos_minimum(
        &si,
        |bond| tbmd_structure::bulk_diamond_with_bond(Species::Silicon, bond, 2, 2, 2),
        2.35,
        0.12,
    );
    rows.push(vec![
        "Si diamond".into(),
        fmt_f(b, 3),
        "2.351".into(),
        fmt_f(100.0 * (b - 2.351) / 2.351, 1),
        fmt_f(e, 3),
    ]);

    let (b, e) = eos_minimum(
        &c,
        |bond| tbmd_structure::bulk_diamond_with_bond(Species::Carbon, bond, 2, 2, 2),
        1.54,
        0.08,
    );
    rows.push(vec![
        "C diamond".into(),
        fmt_f(b, 3),
        "1.544".into(),
        fmt_f(100.0 * (b - 1.544) / 1.544, 1),
        fmt_f(e, 3),
    ]);

    let (b, e) = eos_minimum(
        &c,
        |bond| tbmd_structure::graphene_sheet(bond, 2, 2),
        1.42,
        0.08,
    );
    rows.push(vec![
        "graphene".into(),
        fmt_f(b, 3),
        "1.420".into(),
        fmt_f(100.0 * (b - 1.420) / 1.420, 1),
        fmt_f(e, 3),
    ]);

    let (b, e) = eos_minimum(
        &si,
        |bond| tbmd_structure::dimer(Species::Silicon, bond),
        2.4,
        0.3,
    );
    rows.push(vec![
        "Si dimer (bulk-fit model)".into(),
        fmt_f(b, 3),
        "2.246*".into(),
        fmt_f(100.0 * (b - 2.246) / 2.246, 1),
        fmt_f(e, 3),
    ]);

    let mut t5a = ReportTable::new(
        "T5a: equilibrium geometries (eV, Å); * molecular reference outside the bulk fit",
        &[
            "phase",
            "bond (model)",
            "bond (ref)",
            "dev %",
            "E/atom at min",
        ],
    );
    for r in rows {
        t5a.row(r);
    }

    // Relative phase stability of carbon: graphene vs diamond per atom.
    let calc = TbCalculator::with_occupation(&c, OccupationScheme::Fermi { kt: 0.05 });
    let e_graphene = {
        let s = tbmd_structure::graphene_sheet(1.42, 2, 2);
        calc.energy_only(&s).unwrap() / s.n_atoms() as f64
    };
    let e_cdiamond = {
        let s = tbmd_structure::bulk_diamond(Species::Carbon, 2, 2, 2);
        calc.energy_only(&s).unwrap() / s.n_atoms() as f64
    };
    let mut rows2 = vec![vec![
        "graphene − diamond (C)".into(),
        fmt_f(e_graphene - e_cdiamond, 3),
        "≈ −0.02…0".into(),
    ]];

    // CG relaxation sanity: perturbed C60 returns to a fully 3-coordinated
    // cage.
    let mut c60 = tbmd_structure::fullerene_c60(1.44);
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        c60.perturb(&mut rng, 0.1);
    }
    let opts = tbmd::RelaxOptions {
        force_tolerance: 5e-3,
        max_iterations: 300,
        ..Default::default()
    };
    let calc_c = TbCalculator::new(&c);
    let result = tbmd::md::relax(&mut c60, &calc_c, &opts).expect("relaxation");
    let three_fold = (0..60).filter(|&i| c60.coordination(i, 1.65) == 3).count();
    rows2.push(vec![
        "C60 CG relax: 3-fold atoms".into(),
        format!(
            "{three_fold}/60 (converged={}, {} iters)",
            result.converged, result.iterations
        ),
        "60/60".into(),
    ]);

    let mut t5b = ReportTable::new(
        "T5b: phase ordering and relaxation sanity",
        &["quantity", "model", "expected"],
    );
    for r in rows2 {
        t5b.row(r);
    }

    let mut report = Report::new("model_validation");
    report
        .table(t5a)
        .table(t5b)
        .note("Shape check: bulk geometries within a few % of the fit references;")
        .note("graphene and diamond nearly degenerate for carbon; C60 re-closes.");
    report.emit(&args);
}
