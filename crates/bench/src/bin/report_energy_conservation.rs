//! **Experiment F3** — microcanonical energy conservation versus timestep.
//!
//! Velocity Verlet is symplectic: total-energy fluctuations scale as Δt² and
//! show no secular drift. The table reports peak |ΔE| and the drift of the
//! run-segment means over NVE runs at several timesteps and two
//! temperatures. The 1 fs column justifies the era's standard TBMD timestep.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_energy_conservation [-- steps]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbmd::{maxwell_boltzmann, silicon_gsp, MdState, Species, TbCalculator, VelocityVerlet};
use tbmd_bench::{fmt_e, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let steps = args.pos_usize(0, 60);
    let model = silicon_gsp();
    let calc = TbCalculator::new(&model);

    let mut table = ReportTable::new(
        "F3: NVE energy conservation, Si 8 atoms (velocity Verlet)",
        &[
            "T/K",
            "dt/fs",
            "span/fs",
            "peak |ΔE|/eV",
            "secular drift/eV",
        ],
    );
    for temperature in [300.0, 1500.0] {
        for dt in [0.25, 0.5, 1.0, 2.0] {
            let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
            let mut rng = StdRng::seed_from_u64(12);
            let v = maxwell_boltzmann(&s, temperature, &mut rng);
            let mut state = MdState::new(s, v, &calc).expect("init");
            let vv = VelocityVerlet::new(dt);
            let e0 = state.total_energy();
            let mut peak: f64 = 0.0;
            let mut first_half = 0.0;
            let mut second_half = 0.0;
            for step in 0..steps {
                vv.step(&mut state, &calc).expect("step");
                let de = state.total_energy() - e0;
                peak = peak.max(de.abs());
                if step < steps / 2 {
                    first_half += de;
                } else {
                    second_half += de;
                }
            }
            let drift = (second_half - first_half) / (steps / 2) as f64;
            table.row(vec![
                format!("{temperature:.0}"),
                format!("{dt:.2}"),
                format!("{:.1}", dt * steps as f64),
                fmt_e(peak),
                fmt_e(drift.abs()),
            ]);
        }
    }
    let mut report = Report::new("energy_conservation");
    report
        .table(table)
        .note("Shape check: peak |ΔE| scales ≈ Δt² (16× from 0.25→1.0 fs);")
        .note("secular drift stays far below the fluctuation at every Δt.");
    report.emit(&args);
}
