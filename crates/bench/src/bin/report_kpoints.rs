//! **Experiment T6** — Brillouin-zone convergence: k-point sampling versus
//! Γ-point supercells.
//!
//! The table shows E/atom of the 8-atom Si cell under Monkhorst–Pack grids
//! of increasing density, the supercell-folding identity (primitive cell ×
//! folding grid ≡ Γ-point supercell, an exact property of the Bloch
//! machinery), and the Γ-point finite-size error this removes.
//!
//! Run: `cargo run --release -p tbmd-bench --bin report_kpoints`

use tbmd::model::{folding_grid, monkhorst_pack, KPoint, KPointCalculator};
use tbmd::{silicon_gsp, ForceProvider, OccupationScheme, Species, TbCalculator, Vec3};
use tbmd_bench::{fmt_e, fmt_f, BenchArgs, Report, ReportTable};

fn main() {
    let args = BenchArgs::parse();
    let model = silicon_gsp();
    let primitive = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let kt = 0.1;

    // Converged reference: dense MP grid.
    let reference = KPointCalculator::new(&model, monkhorst_pack(&primitive, [4, 4, 4]), kt)
        .evaluate(&primitive)
        .expect("reference")
        .energy
        / primitive.n_atoms() as f64;

    let mut t6a = ReportTable::new(
        "T6a: BZ convergence, Si 8-atom cell (E/atom, eV; reference = MP 4³)",
        &["grid", "k-points", "E/atom", "|error|"],
    );
    let gamma_only = KPointCalculator::new(
        &model,
        vec![KPoint {
            k: Vec3::ZERO,
            weight: 1.0,
        }],
        kt,
    )
    .evaluate(&primitive)
    .expect("gamma")
    .energy
        / primitive.n_atoms() as f64;
    t6a.row(vec![
        "Γ only".into(),
        "1".into(),
        fmt_f(gamma_only, 5),
        fmt_e((gamma_only - reference).abs()),
    ]);
    for q in [2usize, 3, 4] {
        let grid = monkhorst_pack(&primitive, [q, q, q]);
        let n_k = grid.len();
        let e = KPointCalculator::new(&model, grid, kt)
            .evaluate(&primitive)
            .expect("mp")
            .energy
            / primitive.n_atoms() as f64;
        t6a.row(vec![
            format!("MP {q}x{q}x{q}"),
            n_k.to_string(),
            fmt_f(e, 5),
            fmt_e((e - reference).abs()),
        ]);
    }

    // Folding identity.
    let mut t6b = ReportTable::new(
        "T6b: exact band-folding identity (primitive+k-grid ≡ supercell+Γ)",
        &["comparison", "k-sampled E/atom", "supercell E/atom", "|Δ|"],
    );
    for n in [2usize, 3] {
        let grid = folding_grid(&primitive, [n, n, n]);
        let e_k = KPointCalculator::new(&model, grid, kt)
            .evaluate(&primitive)
            .expect("folding")
            .energy
            / primitive.n_atoms() as f64;
        let supercell = tbmd::structure::bulk_diamond(Species::Silicon, n, n, n);
        let e_super = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt })
            .evaluate(&supercell)
            .expect("supercell")
            .energy
            / supercell.n_atoms() as f64;
        t6b.row(vec![
            format!("{n}³ folding grid vs {n}³ supercell Γ"),
            fmt_f(e_k, 6),
            fmt_f(e_super, 6),
            fmt_e((e_k - e_super).abs()),
        ]);
    }
    let mut report = Report::new("kpoints");
    report
        .table(t6a)
        .table(t6b)
        .note("Shape check: MP error falls rapidly with grid density; the folding")
        .note("identity holds to round-off — the Γ-point supercell error that the")
        .note("MD engines carry is quantified (and removable) by this machinery.");
    report.emit(&args);
}
