//! Criterion bench behind experiment **F5**: the O(N) Chebyshev engine
//! versus dense diagonalization across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tbmd::{silicon_gsp, ForceProvider, LinearScalingTb, OccupationScheme, Species, TbCalculator};

fn bench_linscale(c: &mut Criterion) {
    let model = silicon_gsp();
    let mut group = c.benchmark_group("linear_scaling");
    group.sample_size(10);
    for reps in [1usize, 2] {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        let n = s.n_atoms();
        let dense = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.3 });
        group.bench_with_input(BenchmarkId::new("dense", n), &s, |b, s| {
            b.iter(|| dense.compute(s).unwrap())
        });
        let engine = LinearScalingTb::new(&model)
            .with_kt(0.3)
            .with_order(100)
            .with_r_loc(5.0);
        group.bench_with_input(BenchmarkId::new("chebyshev_o_n", n), &s, |b, s| {
            b.iter(|| engine.evaluate(s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linscale);
criterion_main!(benches);
