//! Criterion bench behind experiment **T4**: serial QL versus the Jacobi
//! family versus the two-stage blocked solver (full and partial spectrum)
//! on random symmetric matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tbmd::linalg::{
    eigh, eigh_blocked_into, eigh_partial_into, jacobi_eigh, par_jacobi_eigh, EighWorkspace,
    Matrix, JACOBI_MAX_SWEEPS, JACOBI_TOL,
};
use tbmd::parallel::ring_jacobi_eigh;

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolvers");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = random_symmetric(n, n as u64);
        group.bench_with_input(BenchmarkId::new("householder_ql", n), &a, |b, a| {
            b.iter(|| eigh(a.clone()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cyclic_jacobi", n), &a, |b, a| {
            b.iter(|| jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel_jacobi", n), &a, |b, a| {
            b.iter(|| par_jacobi_eigh(a.clone(), JACOBI_TOL, JACOBI_MAX_SWEEPS).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ring_jacobi_p4", n), &a, |b, a| {
            b.iter(|| ring_jacobi_eigh(a, 4, JACOBI_TOL, JACOBI_MAX_SWEEPS))
        });
        // Two-stage blocked solver, full spectrum (workspace reused across
        // iterations, matching the MD calling convention).
        group.bench_with_input(BenchmarkId::new("blocked_full", n), &a, |b, a| {
            let mut ws = EighWorkspace::default();
            let mut values = Vec::new();
            b.iter(|| {
                let mut m = a.clone();
                eigh_blocked_into(&mut m, &mut values, &mut ws).unwrap();
                m
            })
        });
        // Partial spectrum at half filling — the TBMD occupied window.
        group.bench_with_input(BenchmarkId::new("partial_half", n), &a, |b, a| {
            let mut ws = EighWorkspace::default();
            let mut values = Vec::new();
            let mut vectors = Matrix::default();
            b.iter(|| {
                let mut m = a.clone();
                eigh_partial_into(&mut m, n / 2, &mut values, &mut vectors, &mut ws).unwrap();
                vectors.rows()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigensolvers);
criterion_main!(benches);
