//! Criterion bench behind experiment **T1**: the individual phases of a
//! TBMD force evaluation (neighbour list, Hamiltonian assembly,
//! diagonalization, density matrix, full evaluation) on Si supercells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tbmd::{silicon_gsp, ForceProvider, Species, TbCalculator};
use tbmd_model::{
    build_hamiltonian, density_matrix, occupations, OccupationScheme, OrbitalIndex, TbModel,
};
use tbmd_structure::NeighborList;

fn bench_phases(c: &mut Criterion) {
    let model = silicon_gsp();
    let mut group = c.benchmark_group("tbmd_phases");
    group.sample_size(10);
    for reps in [1usize, 2] {
        let s = tbmd::structure::bulk_diamond(Species::Silicon, reps, reps, reps);
        let n = s.n_atoms();
        let nl = NeighborList::build(&s, model.cutoff());
        let index = OrbitalIndex::new(&s);
        let h = build_hamiltonian(&s, &nl, &model, &index);

        group.bench_with_input(BenchmarkId::new("neighbor_list", n), &s, |b, s| {
            b.iter(|| NeighborList::build(s, model.cutoff()))
        });
        group.bench_with_input(
            BenchmarkId::new("hamiltonian", n),
            &(&s, &nl),
            |b, (s, nl)| b.iter(|| build_hamiltonian(s, nl, &model, &index)),
        );
        group.bench_with_input(BenchmarkId::new("diagonalize", n), &h, |b, h| {
            b.iter(|| tbmd::linalg::eigh((*h).clone()).unwrap())
        });
        let eig = tbmd::linalg::eigh(h.clone()).unwrap();
        let occ = occupations(
            &eig.values,
            s.n_electrons(),
            OccupationScheme::Fermi { kt: 0.1 },
        );
        group.bench_with_input(BenchmarkId::new("density_matrix", n), &eig, |b, eig| {
            b.iter(|| density_matrix(&eig.vectors, &occ.f))
        });
        let calc = TbCalculator::new(&model);
        group.bench_with_input(BenchmarkId::new("full_evaluation", n), &s, |b, s| {
            b.iter(|| calc.evaluate(s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
