//! Criterion bench behind experiment **T2**: the distributed TBMD engine at
//! several virtual-rank counts (numerical equivalence and overhead of the
//! message-passing machinery; the *scaling* numbers come from the cost
//! model in `report_speedup`, since all ranks share this host's core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tbmd::{silicon_gsp, DistributedTb, ForceProvider, SharedMemoryTb, Species, TbCalculator};

fn bench_engines(c: &mut Criterion) {
    let model = silicon_gsp();
    let s = tbmd::structure::bulk_diamond(Species::Silicon, 1, 1, 1);
    let mut group = c.benchmark_group("engines_si8");
    group.sample_size(10);

    let serial = TbCalculator::new(&model);
    group.bench_function("serial", |b| b.iter(|| serial.evaluate(&s).unwrap()));

    let shared = SharedMemoryTb::new(&model);
    group.bench_function("shared_memory", |b| b.iter(|| shared.evaluate(&s).unwrap()));

    for p in [1usize, 2, 4] {
        let dist = DistributedTb::new(&model, p);
        group.bench_with_input(BenchmarkId::new("distributed", p), &s, |b, s| {
            b.iter(|| dist.evaluate(s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
