//! Non-orthogonal tight binding: overlap matrices and Pulay forces.
//!
//! Orthogonal TB (the default engines) assumes `⟨μ|ν⟩ = δ_{μν}`. The
//! non-orthogonal schemes of the era (DFTB/Frauenheim, Menon–Subbaswamy)
//! keep an explicit overlap `S` built from the same Slater–Koster table as
//! `H`, solve the generalized problem `H C = S C ε`, and add the Pulay term
//! to the forces:
//!
//! ```text
//! E_bs = 2 Σ_n f_n ε_n,    ρ = 2 Σ_n f_n c_n c_nᵀ,   w = 2 Σ_n f_n ε_n c_n c_nᵀ
//! F_i  = −Σ_{μν} ρ_{μν} ∂H_{μν}/∂R_i + Σ_{μν} w_{μν} ∂S_{μν}/∂R_i − ∂E_rep/∂R_i
//! ```
//!
//! with `w` the energy-weighted density matrix. Setting every overlap
//! integral to zero recovers the orthogonal theory exactly (tested).
//!
//! The bundled [`silicon_nonortho_demo`] dresses the GSP/Kwon silicon model
//! with a physically-shaped overlap (same radial scaling as the hoppings,
//! small amplitudes) — a *demonstration* parametrization for exercising the
//! formalism, clearly not a published fit; see DESIGN.md's substitution
//! policy.

use crate::calculator::{density_matrix_into, repulsive_energy_forces, PhaseTimings, TbError};
use crate::hamiltonian::{build_hamiltonian, build_hamiltonian_into, OrbitalIndex};
use crate::model::{GspTbModel, TbModel};
use crate::occupations::{occupations, OccupationScheme};
use crate::provider::{ForceEvaluation, ForceProvider};
use crate::slater_koster::{sk_block, sk_block_gradient, Hoppings};
use crate::workspace::{DenseCache, Workspace};
use std::time::Instant;
use tbmd_linalg::{generalized_eigh, generalized_eigh_into, GeneralizedEigError, Matrix, Vec3};
use tbmd_structure::{NeighborList, Species, Structure};

/// A tight-binding model with an explicit overlap table.
pub trait NonOrthogonalTbModel: TbModel {
    /// Overlap integrals `[S_ssσ, S_spσ, S_ppσ, S_ppπ]` at distance `r`
    /// (dimensionless; on-site overlap is the identity).
    fn overlaps(&self, r: f64) -> Hoppings;

    /// Radial derivatives of the overlap integrals.
    fn overlaps_deriv(&self, r: f64) -> Hoppings;
}

/// The GSP silicon model dressed with a demonstration overlap: the hopping
/// radial shape with amplitudes `[−0.06, 0.05, 0.08, −0.03]` at `r₀`
/// (magnitudes typical of sp³ minimal-basis overlaps, small enough that `S`
/// stays safely positive definite for all bonded geometries).
#[derive(Debug, Clone)]
pub struct SiliconNonOrthoDemo {
    base: GspTbModel,
    overlap_amplitudes: [f64; 4],
}

/// Build the demonstration non-orthogonal silicon model.
pub fn silicon_nonortho_demo() -> SiliconNonOrthoDemo {
    SiliconNonOrthoDemo {
        base: crate::silicon::silicon_gsp(),
        overlap_amplitudes: [-0.06, 0.05, 0.08, -0.03],
    }
}

impl SiliconNonOrthoDemo {
    /// Variant with all overlaps zero — must reproduce the orthogonal
    /// calculator exactly (used by the equivalence test).
    pub fn with_zero_overlap() -> Self {
        SiliconNonOrthoDemo {
            base: crate::silicon::silicon_gsp(),
            overlap_amplitudes: [0.0; 4],
        }
    }
}

impl TbModel for SiliconNonOrthoDemo {
    fn name(&self) -> &str {
        "Si-GSP+overlap-demo"
    }
    fn supports(&self, sp: Species) -> bool {
        self.base.supports(sp)
    }
    fn cutoff(&self) -> f64 {
        self.base.cutoff()
    }
    fn on_site(&self, sp: Species) -> [f64; 4] {
        self.base.on_site(sp)
    }
    fn hoppings(&self, r: f64) -> Hoppings {
        self.base.hoppings(r)
    }
    fn hoppings_deriv(&self, r: f64) -> Hoppings {
        self.base.hoppings_deriv(r)
    }
    fn repulsion(&self, r: f64) -> (f64, f64) {
        self.base.repulsion(r)
    }
    fn embedding(&self, x: f64) -> (f64, f64) {
        self.base.embedding(x)
    }
}

impl NonOrthogonalTbModel for SiliconNonOrthoDemo {
    fn overlaps(&self, r: f64) -> Hoppings {
        // Reuse the hopping radial shape: S_λ(r) = s_λ · V_λ(r)/V_λ(r₀).
        let v = self.base.hoppings(r);
        let v0: Hoppings = [-2.038, 1.745, 2.75, -1.075];
        [
            self.overlap_amplitudes[0] * v[0] / v0[0],
            self.overlap_amplitudes[1] * v[1] / v0[1],
            self.overlap_amplitudes[2] * v[2] / v0[2],
            self.overlap_amplitudes[3] * v[3] / v0[3],
        ]
    }

    fn overlaps_deriv(&self, r: f64) -> Hoppings {
        let dv = self.base.hoppings_deriv(r);
        let v0: Hoppings = [-2.038, 1.745, 2.75, -1.075];
        [
            self.overlap_amplitudes[0] * dv[0] / v0[0],
            self.overlap_amplitudes[1] * dv[1] / v0[1],
            self.overlap_amplitudes[2] * dv[2] / v0[2],
            self.overlap_amplitudes[3] * dv[3] / v0[3],
        ]
    }
}

/// Build the overlap matrix (identity on-site, Slater–Koster blocks from the
/// model's overlap table off-site).
pub fn build_overlap(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn NonOrthogonalTbModel,
    index: &OrbitalIndex,
) -> Matrix {
    let mut sm = Matrix::zeros(0, 0);
    build_overlap_into(s, nl, model, index, &mut sm);
    sm
}

/// [`build_overlap`] into a caller-owned buffer, reusing its allocation when
/// the capacity suffices. Returns `true` if the buffer had to grow.
pub fn build_overlap_into(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn NonOrthogonalTbModel,
    index: &OrbitalIndex,
    sm: &mut Matrix,
) -> bool {
    let n = index.total();
    let grew = sm.resize_zeroed(n, n);
    for i in 0..n {
        sm[(i, i)] = 1.0;
    }
    for i in 0..s.n_atoms() {
        let oi = index.offset(i);
        for nb in nl.neighbors(i) {
            let v = model.overlaps(nb.dist);
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let b = sk_block(nb.disp.to_array(), v);
            let oj = index.offset(nb.j);
            for (mu, row) in b.iter().enumerate() {
                for (nu, &x) in row.iter().enumerate() {
                    sm[(oi + mu, oj + nu)] += x;
                }
            }
        }
    }
    grew
}

/// Non-orthogonal tight-binding calculator (generalized eigenproblem +
/// Pulay forces).
pub struct NonOrthoCalculator<'m> {
    model: &'m dyn NonOrthogonalTbModel,
    /// Occupation scheme (default 0.1 eV Fermi smearing).
    pub occupation: OccupationScheme,
}

impl<'m> NonOrthoCalculator<'m> {
    /// Default calculator.
    pub fn new(model: &'m dyn NonOrthogonalTbModel) -> Self {
        NonOrthoCalculator {
            model,
            occupation: OccupationScheme::Fermi { kt: 0.1 },
        }
    }

    fn validate(&self, s: &Structure) -> Result<(), TbError> {
        if s.n_atoms() == 0 {
            return Err(TbError::EmptyStructure);
        }
        for i in 0..s.n_atoms() {
            if !self.model.supports(s.species(i)) {
                return Err(TbError::UnsupportedSpecies {
                    species: s.species(i),
                    model: self.model.name().to_string(),
                });
            }
        }
        Ok(())
    }

    fn solve(
        &self,
        s: &Structure,
    ) -> Result<(NeighborList, OrbitalIndex, tbmd_linalg::Eigh), TbError> {
        let nl = NeighborList::build(s, self.model.cutoff());
        let index = OrbitalIndex::new(s);
        let h = build_hamiltonian(s, &nl, self.model, &index);
        let sm = build_overlap(s, &nl, self.model, &index);
        let eig = generalized_eigh(&h, &sm).map_err(map_gen_err)?;
        Ok((nl, index, eig))
    }
}

fn map_gen_err(e: GeneralizedEigError) -> TbError {
    match e {
        GeneralizedEigError::Eig(inner) => TbError::Eigensolver(inner),
        _ => TbError::OverlapNotPositiveDefinite,
    }
}

impl ForceProvider for NonOrthoCalculator<'_> {
    fn evaluate(&self, s: &Structure) -> Result<ForceEvaluation, TbError> {
        self.evaluate_with(s, &mut Workspace::new())
    }

    fn evaluate_with(&self, s: &Structure, ws: &mut Workspace) -> Result<ForceEvaluation, TbError> {
        self.validate(s)?;
        // The generalized solve leaves S-orthonormal vectors, which the
        // plain-residual health probe cannot consume.
        ws.dense_cache = DenseCache::None;
        let mut timings = PhaseTimings::default();
        let mut mark = Instant::now();
        let outcome = ws.neighbors.update(s, self.model.cutoff());
        timings.note_neighbors(outcome);
        let nl = ws.neighbors.list();
        let index = OrbitalIndex::new(s);
        let n = index.total();
        timings.neighbors = mark.elapsed();
        mark = Instant::now();

        let mut grew = build_hamiltonian_into(s, nl, self.model, &index, &mut ws.h) as usize;
        grew += build_overlap_into(s, nl, self.model, &index, &mut ws.overlap) as usize;
        timings.hamiltonian = mark.elapsed();
        mark = Instant::now();

        // Generalized solve H C = S C ε through the persistent Cholesky
        // sub-workspace (the factor of S and the congruence-reduced matrix
        // are reused across steps).
        let gen_before = ws.geneigh.large_alloc_events();
        generalized_eigh_into(
            &ws.h,
            &ws.overlap,
            &mut ws.values,
            &mut ws.c,
            &mut ws.geneigh,
        )
        .map_err(map_gen_err)?;
        grew += ws.geneigh.large_alloc_events() - gen_before;
        timings.diagonalize = mark.elapsed();
        mark = Instant::now();

        let occ = occupations(&ws.values, s.n_electrons(), self.occupation);
        let band = occ.band_energy(&ws.values);
        let entropy_term = match self.occupation {
            OccupationScheme::Fermi { kt } if kt > 0.0 => -(kt / crate::units::KB_EV) * occ.entropy,
            _ => 0.0,
        };
        // Density matrix via the shared SYRK kernel; energy-weighted density
        // w = 2 Σ f ε c cᵀ by explicit accumulation (weights can be
        // negative, so no √-scaling factorization applies).
        grew += density_matrix_into(&ws.c, &occ.f, &mut ws.w, &mut ws.rho);
        grew += ws.wrho.resize_zeroed(n, n) as usize;
        for (k, &f) in occ.f.iter().enumerate() {
            let fe = 2.0 * f * ws.values[k];
            if fe.abs() < 1e-14 {
                continue;
            }
            for i in 0..n {
                let ci = fe * ws.c[(i, k)];
                for j in 0..n {
                    ws.wrho[(i, j)] += ci * ws.c[(j, k)];
                }
            }
        }
        timings.density = mark.elapsed();
        mark = Instant::now();

        // Forces: electronic −ρ:∂H + w:∂S per directed entry, plus repulsion.
        let mut forces = vec![Vec3::ZERO; s.n_atoms()];
        for (i, fo) in forces.iter_mut().enumerate() {
            let oi = index.offset(i);
            let mut fi = Vec3::ZERO;
            for nb in nl.neighbors(i) {
                if nb.j == i {
                    continue;
                }
                let oj = index.offset(nb.j);
                let v = self.model.hoppings(nb.dist);
                let dv = self.model.hoppings_deriv(nb.dist);
                let sv = self.model.overlaps(nb.dist);
                let dsv = self.model.overlaps_deriv(nb.dist);
                let grad_h = sk_block_gradient(nb.disp.to_array(), v, dv);
                let grad_s = sk_block_gradient(nb.disp.to_array(), sv, dsv);
                for gamma in 0..3 {
                    let mut acc = 0.0;
                    for mu in 0..4 {
                        for nu in 0..4 {
                            acc += ws.rho[(oi + mu, oj + nu)] * grad_h[gamma][mu][nu]
                                - ws.wrho[(oi + mu, oj + nu)] * grad_s[gamma][mu][nu];
                        }
                    }
                    fi[gamma] += 2.0 * acc;
                }
            }
            *fo = fi;
        }
        let (e_rep, rep_forces) = repulsive_energy_forces(s, nl, self.model, true);
        for (f, rf) in forces.iter_mut().zip(rep_forces.expect("forces")) {
            *f += rf;
        }
        timings.forces = mark.elapsed();
        ws.grown += grew;
        Ok(ForceEvaluation {
            energy: band + e_rep + entropy_term,
            forces,
            timings,
        })
    }

    fn energy_only(&self, s: &Structure) -> Result<f64, TbError> {
        self.validate(s)?;
        let (nl, _, eig) = self.solve(s)?;
        let occ = occupations(&eig.values, s.n_electrons(), self.occupation);
        let entropy_term = match self.occupation {
            OccupationScheme::Fermi { kt } if kt > 0.0 => -(kt / crate::units::KB_EV) * occ.entropy,
            _ => 0.0,
        };
        let (e_rep, _) = repulsive_energy_forces(s, &nl, self.model, false);
        Ok(occ.band_energy(&eig.values) + e_rep + entropy_term)
    }

    fn provider_name(&self) -> &str {
        "nonortho-tb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator::TbCalculator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbmd_linalg::Cholesky;
    use tbmd_structure::{bulk_diamond, dimer};

    #[test]
    fn zero_overlap_reproduces_orthogonal_theory() {
        let ortho_model = crate::silicon::silicon_gsp();
        let ortho = TbCalculator::new(&ortho_model);
        let no_model = SiliconNonOrthoDemo::with_zero_overlap();
        let nonortho = NonOrthoCalculator::new(&no_model);
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(4);
        s.perturb(&mut rng, 0.06);
        let a = ortho.evaluate(&s).unwrap();
        let b = nonortho.evaluate(&s).unwrap();
        assert!(
            (a.energy - b.energy).abs() < 1e-8,
            "{} vs {}",
            a.energy,
            b.energy
        );
        for (fa, fb) in a.forces.iter().zip(&b.forces) {
            assert!((*fa - *fb).max_abs() < 1e-7);
        }
    }

    #[test]
    fn overlap_matrix_positive_definite() {
        let model = silicon_nonortho_demo();
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(5);
        s.perturb(&mut rng, 0.1);
        let nl = NeighborList::build(&s, model.cutoff());
        let index = OrbitalIndex::new(&s);
        let sm = build_overlap(&s, &nl, &model, &index);
        assert!(sm.asymmetry() < 1e-12);
        assert!(
            Cholesky::factor(&sm).is_ok(),
            "overlap not positive definite"
        );
    }

    #[test]
    fn overlap_changes_the_spectrum() {
        let ortho_model = crate::silicon::silicon_gsp();
        let ortho = TbCalculator::new(&ortho_model);
        let no_model = silicon_nonortho_demo();
        let nonortho = NonOrthoCalculator::new(&no_model);
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let a = ortho.evaluate(&s).unwrap();
        let b = nonortho.evaluate(&s).unwrap();
        assert!(
            (a.energy - b.energy).abs() > 0.1,
            "overlap should shift the total energy appreciably"
        );
    }

    #[test]
    fn pulay_forces_match_energy_gradient() {
        // The decisive test: with finite overlap, forces are only correct if
        // the w:∂S Pulay term is right.
        let model = silicon_nonortho_demo();
        let calc = NonOrthoCalculator::new(&model);
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(6);
        s.perturb(&mut rng, 0.08);
        let eval = calc.evaluate(&s).unwrap();
        let h = 1e-5;
        for (i, gamma) in [(0usize, 0usize), (1, 2), (3, 1), (5, 0)] {
            let mut sp = s.clone();
            sp.positions_mut()[i][gamma] += h;
            let ep = calc.energy_only(&sp).unwrap();
            let mut sm = s.clone();
            sm.positions_mut()[i][gamma] -= h;
            let em = calc.energy_only(&sm).unwrap();
            let fd = -(ep - em) / (2.0 * h);
            let an = eval.forces[i][gamma];
            assert!(
                (fd - an).abs() < 2e-4 * (1.0 + an.abs()),
                "Pulay force mismatch atom {i} comp {gamma}: fd={fd}, an={an}"
            );
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let model = silicon_nonortho_demo();
        let calc = NonOrthoCalculator::new(&model);
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(7);
        s.perturb(&mut rng, 0.1);
        let eval = calc.evaluate(&s).unwrap();
        let net: Vec3 = eval.forces.iter().copied().sum();
        assert!(net.max_abs() < 1e-7, "net force {net:?}");
    }

    #[test]
    fn dimer_binds_with_overlap() {
        let model = silicon_nonortho_demo();
        let calc = NonOrthoCalculator::new(&model);
        let e_short = calc.energy_only(&dimer(Species::Silicon, 2.4)).unwrap();
        let e_long = calc.energy_only(&dimer(Species::Silicon, 3.5)).unwrap();
        assert!(e_short < e_long);
    }
}
