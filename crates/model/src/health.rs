//! Eigensolver health probe: the physics watchdog behind the periodic
//! `eig_health` JSONL records.
//!
//! MD only ever consumes the density matrix, so a slowly degrading
//! eigensolve (lost orthogonality under heavy deflation, inverse-iteration
//! stagnation on a pathological cluster) shows up as silently wrong forces
//! long before anything crashes. The probe re-derives an independent check:
//! rebuild a pristine `H` for the current structure, run the *production*
//! solver path on a copy, then measure `‖Hv − λv‖∞` against the untouched
//! `H` and spot-check orthogonality on a sampled occupied eigenpair. Cost
//! is one extra evaluation-sized solve, so it runs on a stride (see
//! `RecorderConfig` in `tbmd-core`), not every step.

use crate::calculator::{DenseSolver, TbError, TWO_STAGE_MIN_DIM};
use crate::hamiltonian::{build_hamiltonian_into, OrbitalIndex};
use crate::model::TbModel;
use crate::occupations::{occupations, occupied_count, OccupationScheme};
use crate::workspace::{DenseCache, Workspace};
use tbmd_linalg::{
    eigh_into, reduced_eigenvalues_into, reduced_eigenvectors_into, tridiagonalize_blocked_into,
};
use tbmd_structure::Structure;
use tbmd_trace::HealthRecord;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solve the structure's eigenproblem with the production solver path and
/// report residual + orthogonality of a sampled occupied eigenpair.
///
/// `step` is carried through into the [`HealthRecord`] so the JSONL line
/// lands at the right place in the run stream. The probe allocates its own
/// workspace: it must not perturb the MD loop's persistent buffers (the
/// disabled-sink bitwise guarantee covers runs without a recorder; probing
/// is explicitly an extra-work path).
pub fn eigensolver_health(
    model: &dyn TbModel,
    s: &Structure,
    occupation: OccupationScheme,
    solver: DenseSolver,
    step: usize,
) -> Result<HealthRecord, TbError> {
    let mut ws = Workspace::new();
    ws.neighbors.update(s, model.cutoff());
    let index = OrbitalIndex::new(s);
    build_hamiltonian_into(s, ws.neighbors.list(), model, &index, &mut ws.h);
    // Pristine copy: the solvers overwrite their input in place.
    let h0 = ws.h.clone();

    let two_stage = solver == DenseSolver::TwoStage && ws.h.rows() >= TWO_STAGE_MIN_DIM;
    let k;
    if two_stage {
        tridiagonalize_blocked_into(&mut ws.h, &mut ws.eigh);
        reduced_eigenvalues_into(&mut ws.eigh, &mut ws.values)?;
        let occ = occupations(&ws.values, s.n_electrons(), occupation);
        k = occupied_count(&occ.f).max(1);
        reduced_eigenvectors_into(&ws.h, &ws.values[..k], &mut ws.c, &mut ws.eigh);
    } else {
        eigh_into(&mut ws.h, &mut ws.values, &mut ws.eigh)?;
        k = ws.h.cols();
    }
    let vectors = if two_stage { &ws.c } else { &ws.h };

    // Middle of the occupied window: clear of both the deflation-prone
    // band edges and the Fermi-window boundary.
    let sampled = k / 2;
    let v = vectors.col(sampled);
    let lambda = ws.values[sampled];
    let hv = h0.matvec(&v);
    let residual_inf = hv
        .iter()
        .zip(&v)
        .map(|(hv_i, v_i)| (hv_i - lambda * v_i).abs())
        .fold(0.0_f64, f64::max);

    let mut orthogonality = (dot(&v, &v) - 1.0).abs();
    if k > 1 {
        let j = if sampled + 1 < k {
            sampled + 1
        } else {
            sampled - 1
        };
        orthogonality = orthogonality.max(dot(&v, &vectors.col(j)).abs());
    }

    Ok(HealthRecord {
        step,
        residual_inf,
        orthogonality,
        sampled_index: sampled,
        n_orbitals: h0.rows(),
    })
}

/// Incremental health probe on the *cached* eigenpairs of the last dense
/// solve — cheap enough to run every step.
///
/// Where [`eigensolver_health`] pays for an independent full solve, this
/// checks the production solve's own output: it rebuilds a pristine `H`
/// into the [`Workspace::health_h`] scratch (one `O(n²)` assembly, reusing
/// the workspace's current neighbour list) and measures `‖Hv − λv‖∞` plus
/// an orthogonality spot-check on a sampled occupied eigenpair left behind
/// by the last `evaluate_with`. No eigensolve happens, so the cost is a
/// Hamiltonian build and one matvec.
///
/// Returns `Ok(None)` when the workspace holds no consumable eigenpairs —
/// a fresh workspace, or a last evaluation by an engine that solves in
/// per-rank/embedded buffers (distributed, k-sampled, non-orthogonal,
/// O(N)). Callers fall back to the strided [`eigensolver_health`] probe.
pub fn cached_eigensolver_health(
    model: &dyn TbModel,
    s: &Structure,
    ws: &mut Workspace,
    step: usize,
) -> Result<Option<HealthRecord>, TbError> {
    let (sliced, occupied) = match ws.dense_cache {
        DenseCache::None => return Ok(None),
        DenseCache::Sliced { occupied } => (true, occupied),
        DenseCache::Full { occupied } => (false, occupied),
    };
    let index = OrbitalIndex::new(s);
    let n = index.total();
    // Defensive shape checks: a cache marker is only trustworthy if the
    // buffers it points at still match the structure being probed.
    {
        let vectors = if sliced { &ws.c } else { &ws.h };
        let k = if sliced { occupied } else { vectors.cols() };
        if n == 0
            || k == 0
            || vectors.rows() != n
            || vectors.cols() < k
            || ws.values.len() < k
            || occupied > k
        {
            return Ok(None);
        }
    }
    // The last evaluation updated `ws.neighbors` for exactly these
    // positions; skin entries beyond the cutoff contribute nothing to `H`.
    ws.grown +=
        build_hamiltonian_into(s, ws.neighbors.list(), model, &index, &mut ws.health_h) as usize;

    let vectors = if sliced { &ws.c } else { &ws.h };
    let k = if sliced { occupied } else { vectors.cols() };
    // Middle of the occupied window, as in the full probe.
    let sampled = occupied.max(1).min(k) / 2;
    let v = vectors.col(sampled);
    let lambda = ws.values[sampled];
    let hv = ws.health_h.matvec(&v);
    let residual_inf = hv
        .iter()
        .zip(&v)
        .map(|(hv_i, v_i)| (hv_i - lambda * v_i).abs())
        .fold(0.0_f64, f64::max);

    let mut orthogonality = (dot(&v, &v) - 1.0).abs();
    if k > 1 {
        let j = if sampled + 1 < k {
            sampled + 1
        } else {
            sampled - 1
        };
        orthogonality = orthogonality.max(dot(&v, &vectors.col(j)).abs());
    }

    Ok(Some(HealthRecord {
        step,
        residual_inf,
        orthogonality,
        sampled_index: sampled,
        n_orbitals: n,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silicon::silicon_gsp;
    use tbmd_structure::{bulk_diamond, Species};

    #[test]
    fn healthy_solve_has_tiny_residual() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 2, 2, 2); // 64 atoms, 256 orbitals
        let health = eigensolver_health(
            &model,
            &s,
            OccupationScheme::Fermi { kt: 0.1 },
            DenseSolver::TwoStage,
            0,
        )
        .expect("probe");
        assert_eq!(health.n_orbitals, 256);
        assert!(health.sampled_index > 0 && health.sampled_index < 256);
        assert!(
            health.residual_inf < 1e-8,
            "residual {:.3e}",
            health.residual_inf
        );
        assert!(
            health.orthogonality < 1e-10,
            "orthogonality {:.3e}",
            health.orthogonality
        );
    }

    #[test]
    fn probe_agrees_across_solvers() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 2, 2, 2);
        for solver in [DenseSolver::TwoStage, DenseSolver::FullQl] {
            let health =
                eigensolver_health(&model, &s, OccupationScheme::Fermi { kt: 0.1 }, solver, 3)
                    .expect("probe");
            assert_eq!(health.step, 3);
            assert!(health.residual_inf < 1e-8, "{solver:?}");
        }
    }

    /// The incremental probe consumes what the production solve left behind
    /// — both cache layouts (sliced two-stage, full QL) — and reports the
    /// same tiny residuals the independent full probe would.
    #[test]
    fn cached_probe_checks_production_eigenpairs() {
        use crate::calculator::TbCalculator;

        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 2, 2, 2); // 256 orbitals
        for solver in [DenseSolver::TwoStage, DenseSolver::FullQl] {
            let calc = TbCalculator::with_solver(&model, solver);
            let mut ws = Workspace::new();
            calc.compute_with(&s, &mut ws).expect("evaluation");
            match (solver, ws.dense_cache) {
                (DenseSolver::TwoStage, DenseCache::Sliced { occupied }) => {
                    assert!(occupied > 0 && occupied <= 256)
                }
                (DenseSolver::FullQl, DenseCache::Full { occupied }) => {
                    assert!(occupied > 0 && occupied <= 256)
                }
                (solver, cache) => panic!("{solver:?} left unexpected cache {cache:?}"),
            }
            let health = cached_eigensolver_health(&model, &s, &mut ws, 7)
                .expect("probe")
                .expect("cache present");
            assert_eq!(health.step, 7);
            assert_eq!(health.n_orbitals, 256);
            assert!(
                health.residual_inf < 1e-8,
                "{solver:?}: residual {:.3e}",
                health.residual_inf
            );
            assert!(
                health.orthogonality < 1e-10,
                "{solver:?}: orthogonality {:.3e}",
                health.orthogonality
            );
        }
    }

    /// No cached eigenpairs → `None`, never a bogus record.
    #[test]
    fn cached_probe_declines_without_a_cache() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut ws = Workspace::new();
        assert!(cached_eigensolver_health(&model, &s, &mut ws, 0)
            .expect("probe")
            .is_none());
    }
}
