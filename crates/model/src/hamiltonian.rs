//! Assembly of the dense tight-binding Hamiltonian from a structure, a
//! neighbour list and a model.
//!
//! The basis is the union of each atom's orbitals in atom order (`s, p_x,
//! p_y, p_z` within an atom). Off-diagonal 4×4 blocks come from the
//! Slater–Koster table evaluated at each neighbour displacement; periodic
//! systems are treated at the Γ point, so every image of a pair adds its
//! block on top (an atom's interaction with its *own* images lands on the
//! diagonal block, which is what makes small supercells come out right).

use crate::model::TbModel;
use crate::slater_koster::sk_block;
use tbmd_linalg::Matrix;
use tbmd_structure::{NeighborList, Structure};

/// Maps atoms to rows/columns of the Hamiltonian.
#[derive(Debug, Clone)]
pub struct OrbitalIndex {
    offsets: Vec<usize>,
    total: usize,
}

impl OrbitalIndex {
    /// Build the orbital offsets for a structure.
    pub fn new(s: &Structure) -> Self {
        let mut offsets = Vec::with_capacity(s.n_atoms());
        let mut total = 0;
        for i in 0..s.n_atoms() {
            offsets.push(total);
            total += s.species(i).n_orbitals();
        }
        OrbitalIndex { offsets, total }
    }

    /// First orbital index of atom `i`.
    #[inline]
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total orbital count.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Build the dense Γ-point Hamiltonian in eV.
///
/// # Panics
/// Panics if the structure contains a species the model does not support
/// (callers go through `TbCalculator`, which validates first).
pub fn build_hamiltonian(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    index: &OrbitalIndex,
) -> Matrix {
    let mut h = Matrix::zeros(0, 0);
    build_hamiltonian_into(s, nl, model, index, &mut h);
    h
}

/// [`build_hamiltonian`] into a caller-owned buffer, reusing its allocation
/// when the capacity suffices. Returns `true` if the buffer had to grow.
pub fn build_hamiltonian_into(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    index: &OrbitalIndex,
    h: &mut Matrix,
) -> bool {
    let n = index.total();
    let grew = h.resize_zeroed(n, n);
    // On-site energies.
    for i in 0..s.n_atoms() {
        let e = model.on_site(s.species(i));
        let o = index.offset(i);
        for (k, &ek) in e.iter().enumerate() {
            h[(o + k, o + k)] = ek;
        }
    }
    // Two-center blocks: every directed neighbour entry fills block (i, j)
    // exactly once; self-image entries accumulate on the diagonal block.
    for i in 0..s.n_atoms() {
        let oi = index.offset(i);
        for nb in nl.neighbors(i) {
            let v = model.hoppings(nb.dist);
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let b = sk_block(nb.disp.to_array(), v);
            let oj = index.offset(nb.j);
            for (mu, row) in b.iter().enumerate() {
                for (nu, &x) in row.iter().enumerate() {
                    h[(oi + mu, oj + nu)] += x;
                }
            }
        }
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carbon::carbon_xwch;
    use crate::model::TbModel;
    use crate::silicon::silicon_gsp;
    use tbmd_structure::{bulk_diamond, dimer, Species};

    fn si_setup(nx: usize) -> (Structure, NeighborList, OrbitalIndex) {
        let s = bulk_diamond(Species::Silicon, nx, nx, nx);
        let m = silicon_gsp();
        let nl = NeighborList::build(&s, m.cutoff());
        let idx = OrbitalIndex::new(&s);
        (s, nl, idx)
    }

    #[test]
    fn orbital_index_layout() {
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let idx = OrbitalIndex::new(&s);
        assert_eq!(idx.total(), 32);
        assert_eq!(idx.offset(0), 0);
        assert_eq!(idx.offset(1), 4);
        assert_eq!(idx.offset(7), 28);
    }

    #[test]
    fn hamiltonian_is_symmetric() {
        let (s, nl, idx) = si_setup(1);
        let m = silicon_gsp();
        let h = build_hamiltonian(&s, &nl, &m, &idx);
        assert!(h.asymmetry() < 1e-12, "asymmetry {}", h.asymmetry());
    }

    #[test]
    fn dimer_hamiltonian_blocks() {
        let m = silicon_gsp();
        let s = dimer(Species::Silicon, 2.35);
        let nl = NeighborList::build(&s, m.cutoff());
        let idx = OrbitalIndex::new(&s);
        let h = build_hamiltonian(&s, &nl, &m, &idx);
        assert_eq!(h.rows(), 8);
        // On-site energies on the diagonal.
        assert!((h[(0, 0)] - -5.25).abs() < 1e-12);
        assert!((h[(1, 1)] - 1.20).abs() < 1e-12);
        // Bond along x: the s_i–px_j element is +V_spσ(2.35).
        let v = m.hoppings(2.35);
        assert!((h[(0, 5)] - v[1]).abs() < 1e-12);
        assert!((h[(5, 0)] - v[1]).abs() < 1e-12); // = −(−V_spσ) by symmetry
        assert!((h[(1, 4)] - -v[1]).abs() < 1e-12);
        // py_i–py_j is a π bond.
        assert!((h[(2, 6)] - v[3]).abs() < 1e-12);
        // No s_i–py_j coupling for a bond along x.
        assert!(h[(0, 6)].abs() < 1e-15);
    }

    #[test]
    fn carbon_diamond_symmetric_and_correct_size() {
        let m = carbon_xwch();
        let s = bulk_diamond(Species::Carbon, 1, 1, 1);
        let nl = NeighborList::build(&s, m.cutoff());
        let idx = OrbitalIndex::new(&s);
        let h = build_hamiltonian(&s, &nl, &m, &idx);
        assert_eq!(h.rows(), 32);
        assert!(h.asymmetry() < 1e-12);
    }

    #[test]
    fn diagonal_blocks_gain_self_image_terms_in_small_cells() {
        // In the 8-atom Si cell with a ~3.8 Å cutoff no self-images are in
        // range (box edge 5.43 Å), so diagonal off-elements remain zero; in
        // an artificially shrunk cell they must appear.
        let (_, nl, idx) = si_setup(1);
        let m = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let h = build_hamiltonian(&s, &nl, &m, &idx);
        let o = idx.offset(0);
        // s–p on-site coupling zero in the unstrained cell:
        assert!(h[(o, o + 1)].abs() < 1e-12);

        // Compressed cell: bond 1.85 Å → box edge 4.27 Å, self-images at
        // 4.27 > cutoff 3.8, still none. Compress harder: bond 1.6 → edge
        // 3.69 < 3.8 → self-images appear on the diagonal block (s–s term).
        let s2 = tbmd_structure::bulk_diamond_with_bond(Species::Silicon, 1.6, 1, 1, 1);
        let nl2 = NeighborList::build(&s2, m.cutoff());
        let h2 = build_hamiltonian(&s2, &nl2, &m, &idx);
        // The self-image ss hopping is along a lattice vector; px–px picks up
        // σ/π mix; at minimum the diagonal s element shifts away from ε_s.
        assert!(
            (h2[(o, o)] - -5.25).abs() > 1e-6,
            "expected self-image contribution on the diagonal, got {}",
            h2[(o, o)]
        );
        assert!(h2.asymmetry() < 1e-12);
    }

    #[test]
    fn eigenvalue_count_matches_orbitals() {
        let (s, nl, idx) = si_setup(1);
        let m = silicon_gsp();
        let h = build_hamiltonian(&s, &nl, &m, &idx);
        let vals = tbmd_linalg::eigvalsh(h).unwrap();
        assert_eq!(vals.len(), s.n_orbitals());
        // Spectrum bounded by on-site ± coordination × max hop (Gershgorin).
        let vmax = m
            .hoppings(2.35)
            .iter()
            .map(|x| x.abs())
            .fold(0.0f64, f64::max);
        let bound = 5.25 + 3.71 + 16.0 * vmax;
        for &e in &vals {
            assert!(
                e.abs() < bound,
                "eigenvalue {e} outside Gershgorin-ish bound"
            );
        }
    }
}
