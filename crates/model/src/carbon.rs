//! Carbon tight-binding parametrization of Xu, Wang, Chan & Ho
//! (J. Phys.: Condens. Matter 4, 6047 (1992)) — the standard carbon TBMD
//! model of the era, fit simultaneously to diamond, graphite, the linear
//! chain and the dimer.
//!
//! Functional form (see [`crate::scaling`]):
//!
//! * on-site: `ε_s = −2.99 eV`, `ε_p = +3.71 eV`
//! * hoppings `V_λ(r)` in GSP form with `r₀ = 1.536329 Å`, `n = 2`,
//!   `n_c = 6.5`, `r_c = 2.18 Å` and
//!   `V(r₀) = [−5.0, 4.7, 5.5, −1.55] eV`
//! * repulsion `φ(r) = φ₀ (d₀/r)^m exp{m[−(r/d_c)^{m_c} + (d₀/d_c)^{m_c}]}`
//!   with `φ₀ = 8.18555 eV`, `d₀ = 1.64 Å`, `m = 3.30304`, `m_c = 8.6655`,
//!   `d_c = 2.1052 Å`
//! * embedding `f(x) = Σ_{k=0}^4 c_k x^k` with
//!   `c = [−2.5909765118191, 0.5721151498619, −1.7896349903996·10⁻³,
//!   2.3539221516757·10⁻⁵, −1.24251169551587·10⁻⁷]` (eV)
//!
//! **Substitution** (per DESIGN.md): the published tail polynomial between
//! `r₁ = 2.45 Å` and `r_m = 2.6 Å` is replaced by the C² smootherstep tail
//! over the same window. The window sits between the graphene/diamond first
//! (1.42/1.54 Å) and second (2.46/2.52 Å) shells; second-shell interactions
//! survive only through the strongly suppressed tail region, as in the
//! original model.

use crate::model::{EmbeddingPolynomial, GspTbModel};
use crate::scaling::{CutoffTail, GspScaling, RadialFunction};
use tbmd_structure::Species;

/// Hopping reference distance of the fit (Å).
pub const C_R0: f64 = 1.536_329;

/// Repulsion reference distance (Å).
pub const C_D0: f64 = 1.64;

/// Inner edge of the cutoff tail (Å).
pub const C_TAIL_INNER: f64 = 2.45;

/// Outer cutoff (Å).
pub const C_TAIL_OUTER: f64 = 2.6;

/// Calibration factor on the embedding term (1.0 = published fit).
pub const C_REPULSION_SCALE: f64 = 1.0;

/// Build the carbon model.
pub fn carbon_xwch() -> GspTbModel {
    let tail = CutoffTail::new(C_TAIL_INNER, C_TAIL_OUTER);
    let hop_scaling = GspScaling {
        r0: C_R0,
        n: 2.0,
        rc: 2.18,
        nc: 6.5,
    };
    let amplitudes = [-5.0, 4.7, 5.5, -1.55];
    let hop = amplitudes.map(|a| RadialFunction {
        amplitude: a,
        scaling: hop_scaling,
        tail,
    });
    let rep = RadialFunction {
        amplitude: 8.18555,
        scaling: GspScaling {
            r0: C_D0,
            n: 3.30304,
            rc: 2.1052,
            nc: 8.6655,
        },
        tail,
    };
    let embed = EmbeddingPolynomial {
        coefficients: vec![
            -2.5909765118191,
            0.5721151498619,
            -1.7896349903996e-3,
            2.3539221516757e-5,
            -1.24251169551587e-7,
        ],
    };
    GspTbModel {
        name: "C-XWCH".to_string(),
        species: Species::Carbon,
        e_s: -2.99,
        e_p: 3.71,
        hop,
        rep,
        embed,
        repulsion_scale: C_REPULSION_SCALE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TbModel;

    #[test]
    fn reference_distance_values() {
        let m = carbon_xwch();
        let v = m.hoppings(C_R0);
        assert!((v[0] - -5.0).abs() < 1e-12);
        assert!((v[1] - 4.7).abs() < 1e-12);
        assert!((v[2] - 5.5).abs() < 1e-12);
        assert!((v[3] - -1.55).abs() < 1e-12);
        let (phi, _) = m.repulsion(C_D0);
        assert!((phi - 8.18555).abs() < 1e-10);
    }

    #[test]
    fn supports_only_carbon() {
        let m = carbon_xwch();
        assert!(m.supports(Species::Carbon));
        assert!(!m.supports(Species::Silicon));
    }

    #[test]
    fn cutoff_value() {
        let m = carbon_xwch();
        assert!((m.cutoff() - 2.6).abs() < 1e-12);
        assert!(m.hoppings(2.6).iter().all(|&x| x == 0.0));
        assert!(m.hoppings(2.4)[0].abs() > 0.0);
    }

    #[test]
    fn graphene_bond_stronger_than_diamond_bond() {
        // Shorter bond → larger |hoppings|.
        let m = carbon_xwch();
        let g = m.hoppings(1.42);
        let d = m.hoppings(1.54);
        for k in 0..4 {
            assert!(g[k].abs() > d[k].abs());
        }
    }

    #[test]
    fn repulsion_derivative_matches_finite_difference() {
        let m = carbon_xwch();
        let h = 1e-6;
        for &r in &[1.3, 1.54, 1.9, 2.3, 2.5] {
            let (_, dphi) = m.repulsion(r);
            let fd = (m.repulsion(r + h).0 - m.repulsion(r - h).0) / (2.0 * h);
            assert!(
                (fd - dphi).abs() < 1e-4 * (1.0 + dphi.abs()),
                "r={r}: {fd} vs {dphi}"
            );
        }
    }

    #[test]
    fn embedding_matches_finite_difference() {
        let m = carbon_xwch();
        let h = 1e-6;
        for &x in &[1.0, 4.0, 10.0, 20.0] {
            let (_, df) = m.embedding(x);
            let fd = (m.embedding(x + h).0 - m.embedding(x - h).0) / (2.0 * h);
            assert!((fd - df).abs() < 1e-6 * (1.0 + df.abs()), "x={x}");
        }
    }

    #[test]
    fn sp3_bonding_signs() {
        let v = carbon_xwch().hoppings(1.54);
        assert!(v[0] < 0.0 && v[1] > 0.0 && v[2] > 0.0 && v[3] < 0.0);
    }
}
