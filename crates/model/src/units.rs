//! Unit system and physical constants.
//!
//! The whole workspace uses the natural MD unit system for empirical
//! potentials: **eV** for energy, **Å** for length, **fs** for time and
//! **amu** for mass. The only non-trivial conversion is acceleration:
//! `1 eV/Å / amu = ACCEL_CONV Å/fs²`.

/// Boltzmann constant in eV/K.
pub const KB_EV: f64 = 8.617_333_262e-5;

/// Conversion factor: force (eV/Å) divided by mass (amu) to acceleration in
/// Å/fs². Derived from 1 eV = 1.602 176 634e-19 J and
/// 1 amu = 1.660 539 066e-27 kg.
pub const ACCEL_CONV: f64 = 9.648_533_212e-3;

/// ħ in eV·fs (for vibrational frequency conversions).
pub const HBAR_EV_FS: f64 = 0.658_211_951;

/// Convert a kinetic energy per degree of freedom into a temperature:
/// `T = 2 E_kin / (n_dof k_B)`.
pub fn kinetic_to_temperature(e_kin_ev: f64, n_dof: usize) -> f64 {
    if n_dof == 0 {
        return 0.0;
    }
    2.0 * e_kin_ev / (n_dof as f64 * KB_EV)
}

/// Kinetic energy of a particle: `½ m v²` with `m` in amu and `v` in Å/fs,
/// returned in eV.
pub fn kinetic_energy_ev(mass_amu: f64, speed_aa_per_fs: f64) -> f64 {
    0.5 * mass_amu * speed_aa_per_fs * speed_aa_per_fs / ACCEL_CONV
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn room_temperature_thermal_energy() {
        // kT at 300 K ≈ 25.9 meV.
        let kt = KB_EV * 300.0;
        assert!((kt - 0.02585).abs() < 1e-4);
    }

    #[test]
    fn temperature_roundtrip() {
        // 3N dof at T: E = 3/2 N kT.
        let t = 500.0;
        let n = 10;
        let e = 1.5 * n as f64 * KB_EV * t;
        assert!((kinetic_to_temperature(e, 3 * n) - t).abs() < 1e-9);
        assert_eq!(kinetic_to_temperature(1.0, 0), 0.0);
    }

    #[test]
    fn silicon_thermal_velocity_magnitude() {
        // A Si atom at 300 K has v_rms = sqrt(3kT/m) ≈ 0.005 Å/fs — checks
        // the unit conversion is in the right ballpark.
        let m = 28.0855;
        let v_rms = (3.0 * KB_EV * 300.0 * ACCEL_CONV / m).sqrt();
        assert!(v_rms > 0.003 && v_rms < 0.008, "v_rms = {v_rms}");
        // And its kinetic energy is (3/2) kT.
        let e = kinetic_energy_ev(m, v_rms);
        assert!((e - 1.5 * KB_EV * 300.0).abs() < 1e-12);
    }
}
