//! The engine abstraction: anything that can turn a structure into an energy
//! and forces.
//!
//! The MD integrators, relaxers and benchmark harness are generic over
//! [`ForceProvider`], so the serial calculator, the shared-memory and
//! message-passing engines in `tbmd-parallel`, and the O(N) engine in
//! `tbmd-linscale` are all drop-in interchangeable.

use crate::calculator::{PhaseTimings, TbCalculator, TbError, TbResult};
use crate::workspace::Workspace;
use tbmd_linalg::Vec3;
use tbmd_structure::Structure;

/// Minimal output of a force evaluation.
#[derive(Debug, Clone)]
pub struct ForceEvaluation {
    /// Potential energy (eV); the free energy when smearing is active.
    pub energy: f64,
    /// Force on each atom (eV/Å).
    pub forces: Vec<Vec3>,
    /// Per-phase timings, when the engine tracks them.
    pub timings: PhaseTimings,
}

impl From<TbResult> for ForceEvaluation {
    fn from(r: TbResult) -> Self {
        ForceEvaluation {
            energy: r.energy,
            forces: r.forces,
            timings: r.timings,
        }
    }
}

/// An engine that evaluates energies and forces for a structure.
pub trait ForceProvider {
    /// Evaluate energy and forces (cold path: engines that support
    /// workspaces allocate a fresh one per call).
    fn evaluate(&self, s: &Structure) -> Result<ForceEvaluation, TbError>;

    /// Evaluate through a persistent [`Workspace`], amortizing neighbour
    /// lists and matrix buffers across calls. The MD drivers hold one
    /// workspace for the whole run and call this every step.
    ///
    /// Engines without workspace support ignore `ws` and fall back to
    /// [`ForceProvider::evaluate`]; results must be identical either way.
    fn evaluate_with(&self, s: &Structure, ws: &mut Workspace) -> Result<ForceEvaluation, TbError> {
        let _ = ws;
        self.evaluate(s)
    }

    /// Energy only; engines may override with a cheaper path.
    fn energy_only(&self, s: &Structure) -> Result<f64, TbError> {
        Ok(self.evaluate(s)?.energy)
    }

    /// Engine name for logs and benchmark tables.
    fn provider_name(&self) -> &str {
        "unnamed"
    }
}

impl ForceProvider for TbCalculator<'_> {
    fn evaluate(&self, s: &Structure) -> Result<ForceEvaluation, TbError> {
        Ok(self.compute(s)?.into())
    }

    fn evaluate_with(&self, s: &Structure, ws: &mut Workspace) -> Result<ForceEvaluation, TbError> {
        Ok(self.compute_with(s, ws)?.into())
    }

    fn energy_only(&self, s: &Structure) -> Result<f64, TbError> {
        self.energy(s)
    }

    fn provider_name(&self) -> &str {
        "serial-tb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silicon::silicon_gsp;
    use tbmd_structure::{dimer, Species};

    #[test]
    fn calculator_implements_provider() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = dimer(Species::Silicon, 2.35);
        let eval = calc.evaluate(&s).unwrap();
        assert_eq!(eval.forces.len(), 2);
        let e = calc.energy_only(&s).unwrap();
        assert!((e - eval.energy).abs() < 1e-10);
        assert_eq!(calc.provider_name(), "serial-tb");
        // Dimer forces: equal and opposite along the bond.
        assert!((eval.forces[0] + eval.forces[1]).norm() < 1e-10);
    }
}
