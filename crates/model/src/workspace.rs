//! Persistent evaluation workspaces: the allocation-amortization layer of
//! the force engines.
//!
//! A naive TBMD loop rebuilds the neighbour list and allocates the
//! Hamiltonian, eigenvector and density matrices (all `n_orb²`-sized) at
//! every step. A [`Workspace`] owns all of that state and is threaded
//! through [`crate::provider::ForceProvider::evaluate_with`], so a
//! 1000-step MD run performs O(1) large allocations after the first step:
//!
//! * **neighbours** — a Verlet skin list built at `cutoff + skin` is kept as
//!   long as no atom has moved more than `skin/2`; between rebuilds only the
//!   cached displacements are refreshed (O(entries), no spatial search).
//!   When the cell is too small for the unique-image condition at
//!   `cutoff + skin` (e.g. the 8-atom Si cell), the workspace transparently
//!   falls back to a per-step [`NeighborList::build`].
//! * **matrices** — the H/eigenvector buffer (diagonalized in place), the
//!   scaled-eigenvector factor `W` and the density matrix `ρ` are reused
//!   across steps via [`Matrix::resize_zeroed`].
//! * **eigensolver scratch** — subdiagonal and sort-permutation buffers for
//!   [`tbmd_linalg::eigh_into`].
//!
//! The workspace also keeps counters (rebuilds vs refreshes vs fallback
//! builds, buffer-growth events) that the benchmark reports surface.

use tbmd_linalg::{EighWorkspace, GeneralizedEighWorkspace, JacobiWorkspace, Matrix};
use tbmd_structure::{NeighborList, Structure, VerletNeighborList};

/// Where (if anywhere) the last evaluation left a consumable set of dense
/// eigenpairs in this workspace. The incremental health probe
/// (`crate::health::cached_eigensolver_health`) reads this marker to verify
/// `‖Hv − λv‖∞` on the production solve's own output without re-solving.
/// Engines that don't leave dense eigenvectors behind (k-sampled,
/// non-orthogonal, O(N), distributed) reset it to [`DenseCache::None`] so a
/// stale marker from an earlier engine can never be misread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DenseCache {
    /// No cached eigenpairs (fresh workspace, or last engine left none).
    #[default]
    None,
    /// Two-stage sliced solve: the `occupied` eigenvectors sit in
    /// [`Workspace::c`], the full spectrum in [`Workspace::values`], and
    /// [`Workspace::h`] holds packed reflectors (not `H`).
    Sliced {
        /// Number of occupied columns in [`Workspace::c`].
        occupied: usize,
    },
    /// One-stage solve: all eigenvectors overwrote [`Workspace::h`] in
    /// place; the spectrum is in [`Workspace::values`].
    Full {
        /// Number of occupied states at the head of the spectrum.
        occupied: usize,
    },
}

/// Default Verlet skin in Å. Half an ångström keeps the list valid for many
/// steps of near-melting silicon MD while adding only ~40% more candidate
/// pairs (all beyond the radial cutoff, where the model terms vanish).
pub const DEFAULT_SKIN: f64 = 0.5;

/// What [`NeighborWorkspace::update`] did for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborOutcome {
    /// Full spatial (re)build of the skin list.
    Rebuilt,
    /// Skin intact: only cached displacements were recomputed.
    Refreshed,
    /// Unique-image condition failed at `cutoff + skin`; a plain per-step
    /// list was built at the bare cutoff.
    Fallback,
}

/// Cumulative neighbour-list accounting across a workspace's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborStats {
    /// Full skin-list builds (including the initial one).
    pub rebuilds: usize,
    /// O(entries) displacement refreshes.
    pub refreshes: usize,
    /// Per-step plain builds taken on the fallback path.
    pub fallback_builds: usize,
}

enum NeighborMode {
    Verlet(VerletNeighborList),
    PerStep(NeighborList),
}

/// Amortized neighbour-list state: a Verlet skin list when the cell permits
/// it, a per-step plain build otherwise.
pub struct NeighborWorkspace {
    skin: f64,
    mode: Option<NeighborMode>,
    stats: NeighborStats,
}

impl Default for NeighborWorkspace {
    fn default() -> Self {
        NeighborWorkspace {
            skin: DEFAULT_SKIN,
            mode: None,
            stats: NeighborStats::default(),
        }
    }
}

impl NeighborWorkspace {
    /// Workspace with a custom skin width (Å). `skin = 0` degenerates to a
    /// rebuild every step.
    pub fn with_skin(skin: f64) -> Self {
        assert!(skin >= 0.0);
        NeighborWorkspace {
            skin,
            mode: None,
            stats: NeighborStats::default(),
        }
    }

    /// Bring the list up to date with `s` at the given interaction cutoff.
    ///
    /// Reuses the existing Verlet list when possible (same cutoff and atom
    /// count, no atom moved beyond `skin/2`); otherwise rebuilds, preferring
    /// the skin list whenever `cutoff + skin` satisfies the cell's
    /// unique-image condition.
    pub fn update(&mut self, s: &Structure, cutoff: f64) -> NeighborOutcome {
        if let Some(NeighborMode::Verlet(vl)) = &mut self.mode {
            if vl.cutoff() == cutoff && vl.as_neighbor_list().n_atoms() == s.n_atoms() {
                return if vl.update(s) {
                    self.stats.rebuilds += 1;
                    NeighborOutcome::Rebuilt
                } else {
                    self.stats.refreshes += 1;
                    NeighborOutcome::Refreshed
                };
            }
        }
        if s.cell().supports_cutoff(cutoff + self.skin) {
            self.mode = Some(NeighborMode::Verlet(VerletNeighborList::new(
                s, cutoff, self.skin,
            )));
            self.stats.rebuilds += 1;
            NeighborOutcome::Rebuilt
        } else {
            self.mode = Some(NeighborMode::PerStep(NeighborList::build(s, cutoff)));
            self.stats.fallback_builds += 1;
            NeighborOutcome::Fallback
        }
    }

    /// The current list. Entries may extend into the skin; the tight-binding
    /// radial functions vanish beyond the cutoff, so consumers need no
    /// explicit filter.
    ///
    /// # Panics
    /// Panics if [`NeighborWorkspace::update`] has never been called.
    pub fn list(&self) -> &NeighborList {
        match self
            .mode
            .as_ref()
            .expect("NeighborWorkspace::update not called")
        {
            NeighborMode::Verlet(vl) => vl.as_neighbor_list(),
            NeighborMode::PerStep(nl) => nl,
        }
    }

    /// Whether the Verlet path is currently active (vs per-step fallback).
    pub fn is_verlet(&self) -> bool {
        matches!(self.mode, Some(NeighborMode::Verlet(_)))
    }

    /// Cumulative rebuild/refresh/fallback counts.
    pub fn stats(&self) -> NeighborStats {
        self.stats
    }
}

/// Persistent evaluation state for the dense engines: neighbour machinery,
/// all `n_orb²`-sized matrix buffers and eigensolver scratch. Construct once
/// per MD run and thread it through
/// [`crate::provider::ForceProvider::evaluate_with`].
#[derive(Default)]
pub struct Workspace {
    /// Amortized neighbour lists.
    pub neighbors: NeighborWorkspace,
    /// Hamiltonian buffer. The full-QL path overwrites it in place with the
    /// eigenvector matrix; the two-stage path leaves the packed Householder
    /// reflectors of the blocked reduction in it.
    pub h: Matrix,
    /// Occupied-subspace eigenvector block (`n_orb × k`) produced by the
    /// two-stage solver's inverse-iteration + back-transform stage.
    pub c: Matrix,
    /// Scaled-eigenvector factor `W = C·diag(√(2f))`, occupied columns only.
    pub w: Matrix,
    /// Density matrix `ρ = W·Wᵀ`.
    pub rho: Matrix,
    /// Eigenvalues of the last evaluation (ascending).
    pub values: Vec<f64>,
    /// Eigensolver scratch (subdiagonal + sort permutation, blocked-reduction
    /// panels, inverse-iteration buffers).
    pub eigh: EighWorkspace,
    /// Parallel-Jacobi scratch (double-buffered column stores, rotation
    /// tables, round-robin schedule) for engines that select that solver.
    pub jacobi: JacobiWorkspace,
    /// Overlap matrix buffer (non-orthogonal engine).
    pub overlap: Matrix,
    /// Energy-weighted density matrix `2 Σ_n f_n ε_n c_n c_nᵀ` for the Pulay
    /// force term (non-orthogonal engine).
    pub wrho: Matrix,
    /// Generalized-eigenproblem scratch: the Cholesky factor of the overlap
    /// and the congruence-reduced matrix (non-orthogonal engine).
    pub geneigh: GeneralizedEighWorkspace,
    /// Complex-Hermitian sub-workspace: per-k Bloch/embedding/eigenvector
    /// buffers plus shared density scratch (k-point engine).
    pub kspace: KPointWorkspace,
    /// Which eigenpairs (if any) the last evaluation left behind for the
    /// incremental health probe.
    pub dense_cache: DenseCache,
    /// Pristine-Hamiltonian scratch for the incremental health probe (the
    /// solve paths consume `h` in place, so the probe rebuilds `H` here).
    pub health_h: Matrix,
    /// Count of large-buffer capacity growths (see
    /// [`Workspace::large_alloc_events`]).
    pub grown: usize,
}

/// Per-k persistent buffers of the k-sampled engine: the Bloch Hamiltonian
/// parts, the `2n×2n` real Hermitian embedding (overwritten in place with
/// its eigenvectors by the solve), the physical spectrum/occupations, and
/// all per-k solve/density scratch. Every buffer a k-point's work touches
/// lives in its own slot, so the engine can fan the per-k solves out across
/// threads with no shared mutable state (and bitwise-identical results to
/// the serial sweep).
#[derive(Default)]
pub struct KPointSlot {
    /// Re H(k).
    pub a: Matrix,
    /// Im H(k).
    pub b: Matrix,
    /// Real embedding `[[A,−B],[B,A]]`; holds the embedded eigenvectors
    /// after the solve.
    pub m: Matrix,
    /// All `2n` embedded eigenvalues (ascending, physical states doubled).
    pub values2: Vec<f64>,
    /// Physical spectrum (every second embedded value).
    pub values: Vec<f64>,
    /// Per-state occupations at the shared Fermi level.
    pub f: Vec<f64>,
    /// Eigensolver scratch.
    pub eigh: EighWorkspace,
    /// Scaled embedded-eigenvector factor (`2n × n_occ`).
    pub w: Matrix,
    /// Real projector `W·Wᵀ` (`2n×2n`).
    pub p: Matrix,
    /// Re ρ(k) extracted from the projector.
    pub re: Matrix,
    /// Im ρ(k) extracted from the projector.
    pub im: Matrix,
    /// This k-point's electronic force contribution (one entry per atom).
    pub force: Vec<tbmd_linalg::Vec3>,
}

/// Complex-Hermitian sub-workspace of [`Workspace`]: one self-contained
/// [`KPointSlot`] per k-point. Lets the k-sampled engine run a single
/// embedded eigen-solve per k per step with zero steady-state allocations.
#[derive(Default)]
pub struct KPointWorkspace {
    /// Per-k slots, grown to the grid size on first use.
    pub slots: Vec<KPointSlot>,
}

impl Workspace {
    /// Fresh workspace with the default Verlet skin.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Fresh workspace with a custom Verlet skin (Å).
    pub fn with_skin(skin: f64) -> Self {
        Workspace {
            neighbors: NeighborWorkspace::with_skin(skin),
            ..Workspace::default()
        }
    }

    /// Number of times any of the `n_orb²`-sized buffers had to grow its
    /// allocation. Stays constant after the first evaluation of the largest
    /// system seen — the O(1)-allocations guarantee the MD loop relies on.
    pub fn large_alloc_events(&self) -> usize {
        self.grown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbmd_structure::{bulk_diamond, Species};

    #[test]
    fn verlet_path_engages_in_large_cell() {
        let s = bulk_diamond(Species::Silicon, 2, 2, 2);
        let mut nw = NeighborWorkspace::default();
        // silicon_gsp-like cutoff: 4.16 + 0.5 < L/2 = 5.43.
        assert_eq!(nw.update(&s, 4.16), NeighborOutcome::Rebuilt);
        assert!(nw.is_verlet());
        assert_eq!(nw.update(&s, 4.16), NeighborOutcome::Refreshed);
        assert_eq!(
            nw.stats(),
            NeighborStats {
                rebuilds: 1,
                refreshes: 1,
                fallback_builds: 0
            }
        );
    }

    #[test]
    fn fallback_in_small_cell() {
        let s = bulk_diamond(Species::Silicon, 1, 1, 1); // L/2 = 2.715
        let mut nw = NeighborWorkspace::default();
        assert_eq!(nw.update(&s, 4.16), NeighborOutcome::Fallback);
        assert!(!nw.is_verlet());
        assert_eq!(nw.update(&s, 4.16), NeighborOutcome::Fallback);
        assert_eq!(nw.stats().fallback_builds, 2);
    }

    #[test]
    fn cutoff_change_forces_rebuild() {
        let s = bulk_diamond(Species::Silicon, 2, 2, 2);
        let mut nw = NeighborWorkspace::default();
        assert_eq!(nw.update(&s, 3.0), NeighborOutcome::Rebuilt);
        assert_eq!(nw.update(&s, 4.0), NeighborOutcome::Rebuilt);
        assert_eq!(nw.stats().rebuilds, 2);
    }

    #[test]
    fn fallback_list_matches_plain_build() {
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut nw = NeighborWorkspace::default();
        nw.update(&s, 4.16);
        let plain = NeighborList::build(&s, 4.16);
        assert_eq!(nw.list().n_entries(), plain.n_entries());
    }
}
