//! Slater–Koster two-center matrix elements for an `sp³` basis, with analytic
//! gradients.
//!
//! Orbital ordering within an atom's 4×4 block is `s, p_x, p_y, p_z`. For a
//! bond vector `d` from atom *i* to atom *j* with direction cosines
//! `(l, m, n) = d/|d|`, the standard Slater–Koster table gives
//!
//! ```text
//! ⟨s_i |H| s_j⟩   = V_ssσ
//! ⟨s_i |H| p_αj⟩  =  l_α V_spσ
//! ⟨p_αi|H| s_j⟩   = −l_α V_spσ
//! ⟨p_αi|H| p_βj⟩  = l_α l_β V_ppσ + (δ_αβ − l_α l_β) V_ppπ
//! ```
//!
//! which satisfies the transpose identity `B(−d) = B(d)ᵀ` required for a
//! symmetric Hamiltonian.

/// The four two-center hopping integrals at a given distance, in the order
/// `[V_ssσ, V_spσ, V_ppσ, V_ppπ]`.
pub type Hoppings = [f64; 4];

/// A 4×4 inter-atomic Hamiltonian block (row = orbital on atom *i*, column =
/// orbital on atom *j*).
pub type SkBlock = [[f64; 4]; 4];

/// Indices into [`Hoppings`].
pub const SS_SIGMA: usize = 0;
pub const SP_SIGMA: usize = 1;
pub const PP_SIGMA: usize = 2;
pub const PP_PI: usize = 3;

/// Build the 4×4 Slater–Koster block for bond vector `d = r_j − r_i` with
/// hopping integrals `v` already evaluated at `|d|`.
pub fn sk_block(d: [f64; 3], v: Hoppings) -> SkBlock {
    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    debug_assert!(r > 0.0, "zero bond vector");
    let dir = [d[0] / r, d[1] / r, d[2] / r];
    let mut b = [[0.0; 4]; 4];
    b[0][0] = v[SS_SIGMA];
    for a in 0..3 {
        b[0][a + 1] = dir[a] * v[SP_SIGMA];
        b[a + 1][0] = -dir[a] * v[SP_SIGMA];
        for c in 0..3 {
            let delta = if a == c { 1.0 } else { 0.0 };
            b[a + 1][c + 1] = dir[a] * dir[c] * v[PP_SIGMA] + (delta - dir[a] * dir[c]) * v[PP_PI];
        }
    }
    b
}

/// Gradient of the Slater–Koster block with respect to the bond vector `d`:
/// `out[γ][μ][ν] = ∂B_{μν}/∂d_γ`.
///
/// Needs both the hoppings `v` and their radial derivatives `dv` at `|d|`.
/// The direction-cosine derivative is `∂l_α/∂d_γ = (δ_{αγ} − l_α l_γ)/r`.
pub fn sk_block_gradient(d: [f64; 3], v: Hoppings, dv: Hoppings) -> [SkBlock; 3] {
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    let r = r2.sqrt();
    debug_assert!(r > 0.0, "zero bond vector");
    let l = [d[0] / r, d[1] / r, d[2] / r];
    // ∂l_α/∂d_γ
    let dl = |alpha: usize, gamma: usize| -> f64 {
        let delta = if alpha == gamma { 1.0 } else { 0.0 };
        (delta - l[alpha] * l[gamma]) / r
    };
    let mut out = [[[0.0; 4]; 4]; 3];
    for (g, grad) in out.iter_mut().enumerate() {
        let drdg = l[g]; // ∂r/∂d_γ
                         // ss
        grad[0][0] = dv[SS_SIGMA] * drdg;
        for a in 0..3 {
            // sp and ps
            let term = dl(a, g) * v[SP_SIGMA] + l[a] * dv[SP_SIGMA] * drdg;
            grad[0][a + 1] = term;
            grad[a + 1][0] = -term;
            // pp
            for c in 0..3 {
                let delta = if a == c { 1.0 } else { 0.0 };
                let dlalc = dl(a, g) * l[c] + l[a] * dl(c, g);
                grad[a + 1][c + 1] = dlalc * (v[PP_SIGMA] - v[PP_PI])
                    + (l[a] * l[c] * dv[PP_SIGMA] + (delta - l[a] * l[c]) * dv[PP_PI]) * drdg;
            }
        }
    }
    out
}

/// Transpose a 4×4 block.
pub fn sk_transpose(b: &SkBlock) -> SkBlock {
    let mut t = [[0.0; 4]; 4];
    for (i, row) in b.iter().enumerate() {
        for (j, &x) in row.iter().enumerate() {
            t[j][i] = x;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: Hoppings = [-2.0, 1.7, 2.7, -1.1];

    #[test]
    fn bond_along_x_recovers_table() {
        let b = sk_block([2.0, 0.0, 0.0], V);
        assert!((b[0][0] - V[SS_SIGMA]).abs() < 1e-15);
        assert!((b[0][1] - V[SP_SIGMA]).abs() < 1e-15); // s–px along bond
        assert!((b[1][0] + V[SP_SIGMA]).abs() < 1e-15);
        assert!((b[1][1] - V[PP_SIGMA]).abs() < 1e-15); // px–px: σ
        assert!((b[2][2] - V[PP_PI]).abs() < 1e-15); // py–py: π
        assert!((b[3][3] - V[PP_PI]).abs() < 1e-15);
        assert!(b[0][2].abs() < 1e-15); // s–py vanishes
        assert!(b[1][2].abs() < 1e-15); // px–py vanishes
    }

    #[test]
    fn transpose_identity_under_inversion() {
        let d = [1.1, -0.7, 2.3];
        let b = sk_block(d, V);
        let binv = sk_block([-d[0], -d[1], -d[2]], V);
        let bt = sk_transpose(&b);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (binv[i][j] - bt[i][j]).abs() < 1e-14,
                    "B(-d) != B(d)ᵀ at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rotation_invariance_of_eigenvalues() {
        // The 4x4 block's singular values must not depend on bond direction,
        // only on |d| (the hoppings are evaluated externally).
        // Compare invariants: trace of BᵀB for two directions of equal length.
        let frob = |b: &SkBlock| -> f64 { b.iter().flatten().map(|x| x * x).sum::<f64>() };
        let b1 = sk_block([2.0, 0.0, 0.0], V);
        let b2 = sk_block(
            [
                2.0 / 3.0f64.sqrt(),
                2.0 / 3.0f64.sqrt(),
                2.0 / 3.0f64.sqrt(),
            ],
            V,
        );
        assert!((frob(&b1) - frob(&b2)).abs() < 1e-12);
    }

    #[test]
    fn pp_block_is_symmetric_within_itself() {
        // p–p sub-block is symmetric in (α, β) for any direction.
        let b = sk_block([0.4, -1.9, 0.8], V);
        for (a, row) in b.iter().enumerate().skip(1) {
            for (c, &v) in row.iter().enumerate().skip(1) {
                assert!((v - b[c][a]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference_fixed_hoppings() {
        // With dv = 0 the gradient probes only the angular part.
        let d0 = [1.3, -0.9, 0.6];
        let grad = sk_block_gradient(d0, V, [0.0; 4]);
        let h = 1e-6;
        for g in 0..3 {
            let mut dp = d0;
            let mut dm = d0;
            dp[g] += h;
            dm[g] -= h;
            // Hoppings constant: evaluate blocks at displaced geometry but
            // same V (the radial part is handled by the dv path).
            // NOTE: sk_block normalizes internally, so this checks the
            // direction-cosine derivatives only if V is held fixed, which it
            // is here.
            let bp = sk_block(dp, V);
            let bm = sk_block(dm, V);
            for i in 0..4 {
                for j in 0..4 {
                    let fd = (bp[i][j] - bm[i][j]) / (2.0 * h);
                    assert!(
                        (fd - grad[g][i][j]).abs() < 1e-6,
                        "angular gradient mismatch at γ={g}, ({i},{j}): fd={fd}, an={}",
                        grad[g][i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference_with_radial_part() {
        // Full test with distance-dependent hoppings V(r) = V0 · e^{-r}.
        let v0: Hoppings = [-2.0, 1.7, 2.7, -1.1];
        let eval = |d: [f64; 3]| -> SkBlock {
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let v: Hoppings = [
                v0[0] * (-r).exp(),
                v0[1] * (-r).exp(),
                v0[2] * (-r).exp(),
                v0[3] * (-r).exp(),
            ];
            sk_block(d, v)
        };
        let d0: [f64; 3] = [0.8, 1.5, -1.1];
        let r0 = (d0[0] * d0[0] + d0[1] * d0[1] + d0[2] * d0[2]).sqrt();
        let v: Hoppings = [
            v0[0] * (-r0).exp(),
            v0[1] * (-r0).exp(),
            v0[2] * (-r0).exp(),
            v0[3] * (-r0).exp(),
        ];
        // d/dr of V0·e^{-r} is −V(r).
        let dv: Hoppings = [-v[0], -v[1], -v[2], -v[3]];
        let grad = sk_block_gradient(d0, v, dv);
        let h = 1e-6;
        for g in 0..3 {
            let mut dp = d0;
            let mut dm = d0;
            dp[g] += h;
            dm[g] -= h;
            let bp = eval(dp);
            let bm = eval(dm);
            for i in 0..4 {
                for j in 0..4 {
                    let fd = (bp[i][j] - bm[i][j]) / (2.0 * h);
                    assert!(
                        (fd - grad[g][i][j]).abs() < 1e-5,
                        "full gradient mismatch at γ={g}, ({i},{j}): fd={fd}, an={}",
                        grad[g][i][j]
                    );
                }
            }
        }
    }
}
