//! Radial scaling functions used by the Goodwin–Skinner–Pettifor family of
//! tight-binding parametrizations (GSP silicon, Xu–Wang–Chan–Ho carbon).
//!
//! Both the hopping integrals and the repulsive pair potential follow the
//! GSP form
//!
//! ```text
//! s(r) = (r0/r)^n · exp{ n [ −(r/rc)^nc + (r0/rc)^nc ] }
//! ```
//!
//! — a power law softened by a super-exponential cutoff — multiplied here by
//! a C²-continuous tail [`CutoffTail`] that takes the interaction smoothly to
//! zero over a short window, so forces stay continuous when neighbours cross
//! the cutoff during MD.

/// The GSP radial scaling function and its analytic derivative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GspScaling {
    /// Reference distance `r0` (Å) where `s(r0) = 1`.
    pub r0: f64,
    /// Power-law exponent `n`.
    pub n: f64,
    /// Cutoff-softening length `rc` (Å).
    pub rc: f64,
    /// Cutoff-softening exponent `nc`.
    pub nc: f64,
}

impl GspScaling {
    /// `s(r)`.
    pub fn value(&self, r: f64) -> f64 {
        debug_assert!(r > 0.0);
        let pw = (self.r0 / r).powf(self.n);
        let ex = self.n * (-(r / self.rc).powf(self.nc) + (self.r0 / self.rc).powf(self.nc));
        pw * ex.exp()
    }

    /// `ds/dr`, analytic: `s'(r) = s(r) · [ −n/r − n·nc/rc · (r/rc)^{nc−1} ]`.
    pub fn derivative(&self, r: f64) -> f64 {
        let s = self.value(r);
        s * (-self.n / r - self.n * self.nc / self.rc * (r / self.rc).powf(self.nc - 1.0))
    }
}

/// A C²-continuous cutoff tail: 1 below `r_inner`, 0 above `r_outer`,
/// interpolated by the quintic smootherstep complement in between.
///
/// Value, first and second derivative all vanish at `r_outer` and match the
/// constant 1 at `r_inner`, so multiplying any smooth radial function by the
/// tail preserves continuous forces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutoffTail {
    pub r_inner: f64,
    pub r_outer: f64,
}

impl CutoffTail {
    /// Construct; requires `0 < r_inner < r_outer`.
    pub fn new(r_inner: f64, r_outer: f64) -> Self {
        assert!(r_inner > 0.0 && r_outer > r_inner, "invalid cutoff window");
        CutoffTail { r_inner, r_outer }
    }

    /// `t(r) ∈ [0, 1]`.
    pub fn value(&self, r: f64) -> f64 {
        if r <= self.r_inner {
            1.0
        } else if r >= self.r_outer {
            0.0
        } else {
            let x = (r - self.r_inner) / (self.r_outer - self.r_inner);
            1.0 - x * x * x * (10.0 - 15.0 * x + 6.0 * x * x)
        }
    }

    /// `dt/dr`.
    pub fn derivative(&self, r: f64) -> f64 {
        if r <= self.r_inner || r >= self.r_outer {
            0.0
        } else {
            let w = self.r_outer - self.r_inner;
            let x = (r - self.r_inner) / w;
            -30.0 * x * x * (1.0 - x) * (1.0 - x) / w
        }
    }
}

/// A radial function `g(r) = A · s(r) · t(r)` — GSP scaling with amplitude
/// and tail — plus its derivative. This is the shape of every hopping
/// integral and pair repulsion in the bundled models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadialFunction {
    pub amplitude: f64,
    pub scaling: GspScaling,
    pub tail: CutoffTail,
}

impl RadialFunction {
    /// `g(r)`; exactly zero at and beyond the outer cutoff.
    pub fn value(&self, r: f64) -> f64 {
        if r >= self.tail.r_outer {
            return 0.0;
        }
        self.amplitude * self.scaling.value(r) * self.tail.value(r)
    }

    /// `dg/dr` (product rule over scaling and tail).
    pub fn derivative(&self, r: f64) -> f64 {
        if r >= self.tail.r_outer {
            return 0.0;
        }
        self.amplitude
            * (self.scaling.derivative(r) * self.tail.value(r)
                + self.scaling.value(r) * self.tail.derivative(r))
    }

    /// The radius beyond which the function is identically zero.
    pub fn cutoff(&self) -> f64 {
        self.tail.r_outer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si_like() -> GspScaling {
        GspScaling {
            r0: 2.360352,
            n: 2.0,
            rc: 3.67,
            nc: 6.48,
        }
    }

    #[test]
    fn unity_at_reference_distance() {
        let s = si_like();
        assert!((s.value(s.r0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn monotonically_decreasing() {
        let s = si_like();
        let mut prev = s.value(1.8);
        for i in 1..60 {
            let r = 1.8 + i as f64 * 0.05;
            let v = s.value(r);
            assert!(v < prev, "s not decreasing at r={r}");
            prev = v;
        }
    }

    #[test]
    fn scaling_derivative_matches_finite_difference() {
        let s = si_like();
        let h = 1e-6;
        for &r in &[1.9, 2.36, 2.8, 3.3, 3.9] {
            let fd = (s.value(r + h) - s.value(r - h)) / (2.0 * h);
            let an = s.derivative(r);
            assert!(
                (fd - an).abs() < 1e-7 * (1.0 + an.abs()),
                "r={r}: fd={fd}, an={an}"
            );
        }
    }

    #[test]
    fn tail_endpoints_and_smoothness() {
        let t = CutoffTail::new(2.45, 2.60);
        assert_eq!(t.value(2.0), 1.0);
        assert_eq!(t.value(2.45), 1.0);
        assert_eq!(t.value(2.60), 0.0);
        assert_eq!(t.value(3.0), 0.0);
        assert_eq!(t.derivative(2.44), 0.0);
        assert_eq!(t.derivative(2.61), 0.0);
        // Midpoint value ½ by symmetry of smootherstep.
        assert!((t.value(2.525) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tail_derivative_matches_finite_difference() {
        let t = CutoffTail::new(2.45, 2.60);
        let h = 1e-7;
        for &r in &[2.47, 2.5, 2.55, 2.58] {
            let fd = (t.value(r + h) - t.value(r - h)) / (2.0 * h);
            assert!((fd - t.derivative(r)).abs() < 1e-5, "r={r}");
        }
    }

    #[test]
    fn tail_monotone_between_knots() {
        let t = CutoffTail::new(1.0, 2.0);
        let mut prev = 1.0;
        for i in 1..=100 {
            let v = t.value(1.0 + i as f64 * 0.01);
            assert!(v <= prev + 1e-15);
            prev = v;
        }
    }

    #[test]
    fn radial_function_zero_beyond_cutoff() {
        let g = RadialFunction {
            amplitude: -2.0,
            scaling: si_like(),
            tail: CutoffTail::new(3.6, 4.2),
        };
        assert_eq!(g.value(4.2), 0.0);
        assert_eq!(g.value(10.0), 0.0);
        assert_eq!(g.derivative(4.5), 0.0);
        assert!(g.value(2.360352) < 0.0);
        assert!((g.value(2.360352) - -2.0).abs() < 1e-12);
        assert_eq!(g.cutoff(), 4.2);
    }

    #[test]
    fn radial_derivative_matches_finite_difference() {
        let g = RadialFunction {
            amplitude: 1.7,
            scaling: si_like(),
            tail: CutoffTail::new(3.6, 4.2),
        };
        let h = 1e-6;
        for &r in &[2.0, 2.36, 3.0, 3.7, 3.9, 4.1] {
            let fd = (g.value(r + h) - g.value(r - h)) / (2.0 * h);
            let an = g.derivative(r);
            assert!(
                (fd - an).abs() < 1e-6 * (1.0 + an.abs()),
                "r={r}: fd={fd} an={an}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn invalid_tail_window_panics() {
        let _ = CutoffTail::new(2.0, 1.5);
    }
}
