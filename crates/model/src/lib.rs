//! # tbmd-model
//!
//! The tight-binding physics engine: Slater–Koster `sp³` matrix elements
//! with analytic gradients, the Goodwin–Skinner–Pettifor/Kwon silicon and
//! Xu–Wang–Chan–Ho carbon parametrizations, Γ-point Hamiltonian assembly,
//! electronic occupations (0 K and Fermi smearing), and the serial
//! reference calculator producing total energies and Hellmann–Feynman
//! forces with per-phase timings.

pub mod bands;
pub mod calculator;
pub mod carbon;
pub mod hamiltonian;
pub mod health;
pub mod kpoints;
pub mod model;
pub mod nonortho;
pub mod occupations;
pub mod provider;
pub mod scaling;
pub mod silicon;
pub mod slater_koster;
pub mod stress;
pub mod units;
pub mod workspace;

pub use bands::{
    band_energies, band_gap, band_structure, bloch_hamiltonian, bloch_hamiltonian_into,
    density_of_states, hermitian_eigenvalues, k_path,
};
pub use calculator::{
    density_matrix, density_matrix_into, electronic_forces, repulsive_energy_forces, DenseSolver,
    PhaseTimings, TbCalculator, TbError, TbResult, TWO_STAGE_MIN_DIM,
};
pub use carbon::carbon_xwch;
pub use hamiltonian::{build_hamiltonian, build_hamiltonian_into, OrbitalIndex};
pub use health::{cached_eigensolver_health, eigensolver_health};
pub use kpoints::{folding_grid, monkhorst_pack, KPoint, KPointCalculator};
pub use model::{EmbeddingPolynomial, GspTbModel, TbModel};
pub use nonortho::{
    build_overlap, build_overlap_into, silicon_nonortho_demo, NonOrthoCalculator,
    NonOrthogonalTbModel, SiliconNonOrthoDemo,
};
pub use occupations::{
    occupations, occupied_count, OccupationScheme, Occupations, OCCUPATION_DROP_TOL,
};
pub use provider::{ForceEvaluation, ForceProvider};
pub use scaling::{CutoffTail, GspScaling, RadialFunction};
pub use silicon::silicon_gsp;
pub use slater_koster::{sk_block, sk_block_gradient, sk_transpose, Hoppings, SkBlock};
pub use stress::{pressure, stress_from_density, stress_tensor, StressTensor, EV_PER_A3_TO_GPA};
pub use units::{ACCEL_CONV, KB_EV};
pub use workspace::{
    DenseCache, KPointSlot, KPointWorkspace, NeighborOutcome, NeighborStats, NeighborWorkspace,
    Workspace, DEFAULT_SKIN,
};
