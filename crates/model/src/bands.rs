//! Electronic band structures: Bloch Hamiltonians at arbitrary k-points.
//!
//! The MD engines work at the Γ point of (large) supercells, but validating
//! a tight-binding parametrization — and reproducing the band-structure
//! figures of the era — needs `H(k)` along symmetry lines. The Bloch sum
//!
//! ```text
//! H(k)_{μν} = Σ_T e^{i k·T} H^{(T)}_{μν}
//! ```
//!
//! runs over the periodic-image translations `T` recorded in the neighbour
//! list; `H(k)` is complex Hermitian, `A + iB` with `A` symmetric and `B`
//! antisymmetric. Rather than adding a complex eigensolver, we use the
//! standard real embedding
//!
//! ```text
//! M = [ A  −B ]
//!     [ B   A ]
//! ```
//!
//! which is real symmetric with every eigenvalue of `H(k)` doubled — solved
//! by the existing Householder+QL kernel, and the doubling is collapsed on
//! the way out.

use crate::hamiltonian::OrbitalIndex;
use crate::model::TbModel;
use crate::slater_koster::sk_block;
use tbmd_linalg::{eigvalsh, EigError, Matrix, Vec3};
use tbmd_structure::{NeighborList, Structure};

/// Real (`A`) and imaginary (`B`) parts of the Bloch Hamiltonian at `k`
/// (in Å⁻¹, Cartesian).
pub fn bloch_hamiltonian(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    index: &OrbitalIndex,
    k: Vec3,
) -> (Matrix, Matrix) {
    let mut a = Matrix::zeros(0, 0);
    let mut b = Matrix::zeros(0, 0);
    bloch_hamiltonian_into(s, nl, model, index, k, &mut a, &mut b);
    (a, b)
}

/// [`bloch_hamiltonian`] into caller-owned buffers, reusing their
/// allocations when the capacity suffices. Returns `true` if either buffer
/// had to grow.
#[allow(clippy::too_many_arguments)]
pub fn bloch_hamiltonian_into(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    index: &OrbitalIndex,
    k: Vec3,
    a: &mut Matrix,
    b: &mut Matrix,
) -> bool {
    let n = index.total();
    let grew_a = a.resize_zeroed(n, n);
    let grew_b = b.resize_zeroed(n, n);
    for i in 0..s.n_atoms() {
        let e = model.on_site(s.species(i));
        let o = index.offset(i);
        for (korb, &ek) in e.iter().enumerate() {
            a[(o + korb, o + korb)] += ek;
        }
    }
    let lengths = s.cell().lengths;
    for i in 0..s.n_atoms() {
        let oi = index.offset(i);
        for nb in nl.neighbors(i) {
            let v = model.hoppings(nb.dist);
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let block = sk_block(nb.disp.to_array(), v);
            // Phase on the image translation vector (periodic gauge).
            let t = Vec3::new(
                nb.shift[0] as f64 * lengths.x,
                nb.shift[1] as f64 * lengths.y,
                nb.shift[2] as f64 * lengths.z,
            );
            let phase = k.dot(t);
            let (cos_p, sin_p) = (phase.cos(), phase.sin());
            let oj = index.offset(nb.j);
            for (mu, row) in block.iter().enumerate() {
                for (nu, &x) in row.iter().enumerate() {
                    a[(oi + mu, oj + nu)] += x * cos_p;
                    b[(oi + mu, oj + nu)] += x * sin_p;
                }
            }
        }
    }
    grew_a || grew_b
}

/// Eigenvalues of the complex Hermitian `A + iB` via the real `2n×2n`
/// embedding. Input `a` must be symmetric and `b` antisymmetric (checked in
/// debug builds).
pub fn hermitian_eigenvalues(a: &Matrix, b: &Matrix) -> Result<Vec<f64>, EigError> {
    let n = a.rows();
    debug_assert!(a.asymmetry() < 1e-9, "A not symmetric");
    debug_assert!(
        {
            let mut worst = 0.0f64;
            for i in 0..n {
                for j in 0..n {
                    worst = worst.max((b[(i, j)] + b[(j, i)]).abs());
                }
            }
            worst < 1e-9
        },
        "B not antisymmetric"
    );
    let mut m = Matrix::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = a[(i, j)];
            m[(n + i, n + j)] = a[(i, j)];
            m[(i, n + j)] = -b[(i, j)];
            m[(n + i, j)] = b[(i, j)];
        }
    }
    let doubled = eigvalsh(m)?;
    // Every eigenvalue appears twice (sorted), so take every other one.
    Ok(doubled.into_iter().step_by(2).collect())
}

/// Band energies (ascending, `n_orbitals` of them) at one k-point.
pub fn band_energies(s: &Structure, model: &dyn TbModel, k: Vec3) -> Result<Vec<f64>, EigError> {
    let nl = NeighborList::build(s, model.cutoff());
    let index = OrbitalIndex::new(s);
    let (a, b) = bloch_hamiltonian(s, &nl, model, &index, k);
    hermitian_eigenvalues(&a, &b)
}

/// Band energies along a k-path; one `Vec` of bands per k-point.
pub fn band_structure(
    s: &Structure,
    model: &dyn TbModel,
    kpath: &[Vec3],
) -> Result<Vec<Vec<f64>>, EigError> {
    let nl = NeighborList::build(s, model.cutoff());
    let index = OrbitalIndex::new(s);
    kpath
        .iter()
        .map(|&k| {
            let (a, b) = bloch_hamiltonian(s, &nl, model, &index, k);
            hermitian_eigenvalues(&a, &b)
        })
        .collect()
}

/// Uniformly interpolate a piecewise-linear k-path through the given
/// vertices with `points_per_segment` samples per leg (vertices included).
pub fn k_path(vertices: &[Vec3], points_per_segment: usize) -> Vec<Vec3> {
    assert!(points_per_segment >= 1);
    if vertices.len() < 2 {
        return vertices.to_vec();
    }
    let mut path = Vec::new();
    for seg in vertices.windows(2) {
        for p in 0..points_per_segment {
            let t = p as f64 / points_per_segment as f64;
            path.push(seg[0] + (seg[1] - seg[0]) * t);
        }
    }
    path.push(*vertices.last().expect("non-empty"));
    path
}

/// Fundamental gap from bands sampled on a k-set: `min(conduction) −
/// max(valence)` with `n_electrons` filling (two per band per k). Negative
/// values mean the valence maximum exceeds the conduction minimum (an
/// indirect overlap, i.e. a metal).
pub fn band_gap(bands_per_k: &[Vec<f64>], n_electrons: usize) -> Option<f64> {
    let n_filled = n_electrons / 2;
    let mut vbm = f64::NEG_INFINITY;
    let mut cbm = f64::INFINITY;
    for bands in bands_per_k {
        if n_filled == 0 || n_filled > bands.len() {
            return None;
        }
        vbm = vbm.max(bands[n_filled - 1]);
        if n_filled < bands.len() {
            cbm = cbm.min(bands[n_filled]);
        }
    }
    cbm.is_finite().then_some(cbm - vbm)
}

/// Gaussian-broadened electronic density of states from a set of
/// eigenvalues; returns `(energy, dos)` samples.
pub fn density_of_states(eigenvalues: &[f64], sigma: f64, n_points: usize) -> Vec<(f64, f64)> {
    assert!(sigma > 0.0 && n_points >= 2);
    if eigenvalues.is_empty() {
        return vec![];
    }
    let lo = eigenvalues.iter().cloned().fold(f64::INFINITY, f64::min) - 4.0 * sigma;
    let hi = eigenvalues
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        + 4.0 * sigma;
    let norm = 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
    (0..n_points)
        .map(|p| {
            let e = lo + (hi - lo) * p as f64 / (n_points - 1) as f64;
            let dos: f64 = eigenvalues
                .iter()
                .map(|&ev| {
                    let x = (e - ev) / sigma;
                    norm * (-0.5 * x * x).exp()
                })
                .sum();
            (e, dos)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carbon::carbon_xwch;
    use crate::silicon::silicon_gsp;
    use tbmd_structure::{bulk_diamond, graphene_sheet, Species};

    #[test]
    fn gamma_point_matches_real_hamiltonian() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let nl = NeighborList::build(&s, model.cutoff());
        let index = OrbitalIndex::new(&s);
        let (a, b) = bloch_hamiltonian(&s, &nl, &model, &index, Vec3::ZERO);
        assert!(b.max_abs() < 1e-14, "Γ-point Hamiltonian must be real");
        let h = crate::hamiltonian::build_hamiltonian(&s, &nl, &model, &index);
        assert!((&a - &h).max_abs() < 1e-12);
        let bloch = hermitian_eigenvalues(&a, &b).unwrap();
        let real = eigvalsh(h).unwrap();
        for (x, y) in bloch.iter().zip(&real) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn hermitian_embedding_known_2x2() {
        // H = [[1, i], [-i, 1]] has eigenvalues 0 and 2.
        let a = Matrix::identity(2);
        let mut b = Matrix::zeros(2, 2);
        b[(0, 1)] = 1.0;
        b[(1, 0)] = -1.0;
        let vals = hermitian_eigenvalues(&a, &b).unwrap();
        assert!((vals[0] - 0.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bands_periodic_in_reciprocal_lattice() {
        // Shifting k by a reciprocal lattice vector leaves bands unchanged.
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let l = s.cell().lengths.x;
        let g = 2.0 * std::f64::consts::PI / l;
        let k1 = Vec3::new(0.3 * g, 0.1 * g, 0.0);
        let k2 = k1 + Vec3::new(g, 0.0, 0.0);
        let b1 = band_energies(&s, &model, k1).unwrap();
        let b2 = band_energies(&s, &model, k2).unwrap();
        for (x, y) in b1.iter().zip(&b2) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn time_reversal_symmetry() {
        // ε(k) = ε(−k) for a real-basis TB model.
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let g = 2.0 * std::f64::consts::PI / s.cell().lengths.x;
        let k = Vec3::new(0.23 * g, 0.11 * g, 0.37 * g);
        let plus = band_energies(&s, &model, k).unwrap();
        let minus = band_energies(&s, &model, -k).unwrap();
        for (x, y) in plus.iter().zip(&minus) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn silicon_has_a_gap() {
        // Sample Γ, X, L of the conventional cubic cell: the Kwon model must
        // show a clear semiconductor gap (experimental 1.17 eV; TB models of
        // this family land within a factor ~2).
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let g = 2.0 * std::f64::consts::PI / s.cell().lengths.x;
        let ks = k_path(
            &[
                Vec3::ZERO,
                Vec3::new(g / 2.0, 0.0, 0.0),
                Vec3::new(g / 4.0, g / 4.0, g / 4.0),
            ],
            6,
        );
        let bands = band_structure(&s, &model, &ks).unwrap();
        let gap = band_gap(&bands, s.n_electrons()).unwrap();
        assert!(
            gap > 0.3 && gap < 3.0,
            "Si gap {gap} eV outside the physical window"
        );
    }

    #[test]
    fn graphene_is_semimetallic() {
        // The π bands must touch at the analytic Dirac point. With the A–B
        // bond along x (the sheet builder's orientation), the Dirac momentum
        // is K = (2π/3a_cc, 2π/(3√3 a_cc), 0); the supercell gauge used by
        // `bloch_hamiltonian` reaches its folded image directly.
        let model = carbon_xwch();
        let s = graphene_sheet(1.42, 1, 1);
        let acc = 1.42;
        let k_dirac = Vec3::new(
            2.0 * std::f64::consts::PI / (3.0 * acc),
            2.0 * std::f64::consts::PI / (3.0 * 3.0f64.sqrt() * acc),
            0.0,
        );
        let dirac_bands = band_energies(&s, &model, k_dirac).unwrap();
        let dirac_gap = band_gap(&[dirac_bands], s.n_electrons()).unwrap().abs();
        let gamma_bands = band_energies(&s, &model, Vec3::ZERO).unwrap();
        let gamma_gap = band_gap(&[gamma_bands], s.n_electrons()).unwrap().abs();
        assert!(
            dirac_gap < 0.1,
            "graphene gap at K is {dirac_gap} eV — Dirac point not reproduced"
        );
        assert!(gamma_gap > 3.0, "Γ gap {gamma_gap} eV suspiciously small");
    }

    #[test]
    fn k_path_interpolation() {
        let path = k_path(&[Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)], 4);
        assert_eq!(path.len(), 5);
        assert!((path[2].x - 0.5).abs() < 1e-12);
        assert_eq!(path.last().unwrap().x, 1.0);
        assert_eq!(k_path(&[Vec3::ZERO], 3).len(), 1);
    }

    #[test]
    fn band_gap_edge_cases() {
        let bands = vec![vec![-1.0, 0.5, 2.0]];
        assert_eq!(band_gap(&bands, 2), Some(1.5));
        // Fully filled: no conduction band.
        assert_eq!(band_gap(&bands, 6), None);
        assert_eq!(band_gap(&bands, 0), None);
    }

    #[test]
    fn dos_integrates_to_state_count() {
        let eigenvalues: Vec<f64> = (0..20).map(|i| i as f64 * 0.5 - 5.0).collect();
        let dos = density_of_states(&eigenvalues, 0.2, 400);
        let de = dos[1].0 - dos[0].0;
        let integral: f64 = dos.iter().map(|&(_, d)| d * de).sum();
        assert!(
            (integral - 20.0).abs() < 0.1,
            "DOS integral {integral} != 20"
        );
        assert!(density_of_states(&[], 0.1, 10).is_empty());
    }
}
