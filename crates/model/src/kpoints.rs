//! Brillouin-zone sampling: total energies and forces from a k-point grid.
//!
//! Γ-point-only supercell calculations (what the MD engines use) carry a
//! finite-size error that dies off slowly with cell size; sampling the
//! primitive cell's Brillouin zone instead converges with a handful of
//! k-points. This module provides Monkhorst–Pack and supercell-folding
//! grids, a k-sampled [`KPointCalculator`] (a full [`ForceProvider`]), and
//! the complex density-matrix machinery built on the real `2n×2n`
//! Hermitian embedding from [`crate::bands`].
//!
//! Two identities anchor correctness (both tested):
//! * a Γ-only grid reproduces the Γ calculator exactly;
//! * the **band-folding identity**: the energy per atom of a primitive cell
//!   sampled on the `n×n×n` folding grid equals the Γ-point energy per atom
//!   of the `n×n×n` supercell to round-off.

use crate::bands::bloch_hamiltonian_into;
use crate::calculator::{repulsive_energy_forces, PhaseTimings, TbError};
use crate::hamiltonian::OrbitalIndex;
use crate::model::TbModel;
use crate::provider::{ForceEvaluation, ForceProvider};
use crate::slater_koster::sk_block_gradient;
use crate::units::KB_EV;
use crate::workspace::{DenseCache, KPointSlot, Workspace};
use std::time::{Duration, Instant};
use tbmd_linalg::{eigh_into, Matrix, Vec3};
use tbmd_structure::Structure;

/// A k-point with its quadrature weight (weights sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KPoint {
    /// Cartesian wave vector (Å⁻¹).
    pub k: Vec3,
    /// Weight in the BZ average.
    pub weight: f64,
}

/// Monkhorst–Pack grid for an orthorhombic cell: fractional coordinates
/// `u_r = (2r − q − 1)/(2q)`, `r = 1..q` per periodic axis.
pub fn monkhorst_pack(s: &Structure, q: [usize; 3]) -> Vec<KPoint> {
    grid_from_fractions(
        s,
        q,
        |r, qa| (2.0 * r as f64 - qa as f64 - 1.0) / (2.0 * qa as f64),
        1,
    )
}

/// Supercell-folding grid: `u_r = r/n`, `r = 0..n-1` — exactly the k-set a
/// Γ-point calculation of the `n`-fold supercell samples implicitly.
pub fn folding_grid(s: &Structure, n: [usize; 3]) -> Vec<KPoint> {
    grid_from_fractions(s, n, |r, na| r as f64 / na as f64, 0)
}

fn grid_from_fractions(
    s: &Structure,
    q: [usize; 3],
    frac: impl Fn(usize, usize) -> f64,
    start: usize,
) -> Vec<KPoint> {
    let lengths = s.cell().lengths;
    let recip = |axis: usize| -> f64 {
        if s.cell().periodic[axis] {
            2.0 * std::f64::consts::PI / lengths[axis]
        } else {
            0.0
        }
    };
    let counts: [usize; 3] =
        std::array::from_fn(|a| if s.cell().periodic[a] { q[a].max(1) } else { 1 });
    let total = (counts[0] * counts[1] * counts[2]) as f64;
    let mut points = Vec::with_capacity(total as usize);
    for rx in start..start + counts[0] {
        for ry in start..start + counts[1] {
            for rz in start..start + counts[2] {
                let k = Vec3::new(
                    if s.cell().periodic[0] {
                        frac(rx, counts[0]) * recip(0)
                    } else {
                        0.0
                    },
                    if s.cell().periodic[1] {
                        frac(ry, counts[1]) * recip(1)
                    } else {
                        0.0
                    },
                    if s.cell().periodic[2] {
                        frac(rz, counts[2]) * recip(2)
                    } else {
                        0.0
                    },
                );
                points.push(KPoint {
                    k,
                    weight: 1.0 / total,
                });
            }
        }
    }
    points
}

/// Build the real `2n×2n` Hermitian embedding `M = [[A,−B],[B,A]]` of
/// `A + iB` into a reusable buffer. Every real eigenvector `(u; v)` of `M`
/// maps to a complex eigenvector `u + iv`, each physical state appearing
/// twice in the sorted embedded spectrum. Returns `true` if the buffer grew.
fn embed_hermitian(a: &Matrix, b: &Matrix, m: &mut Matrix) -> bool {
    let n = a.rows();
    let grew = m.resize_zeroed(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = a[(i, j)];
            m[(n + i, n + j)] = a[(i, j)];
            m[(i, n + j)] = -b[(i, j)];
            m[(n + i, j)] = b[(i, j)];
        }
    }
    grew
}

/// k-sampled tight-binding calculator (energies + forces). Fermi smearing is
/// required: a shared chemical potential couples the k-points.
///
/// The per-k solves and density/force builds are independent (each touches
/// only its own [`KPointSlot`]), so they fan out across the Rayon pool by
/// default; energies and forces are reduced serially in grid order either
/// way, making the parallel sweep bitwise identical to the serial one.
pub struct KPointCalculator<'m> {
    model: &'m dyn TbModel,
    /// Sampling grid.
    pub kpoints: Vec<KPoint>,
    /// Electronic temperature (eV), > 0.
    pub kt: f64,
    /// Fan the per-k work out across threads (on by default).
    pub parallel: bool,
}

impl<'m> KPointCalculator<'m> {
    /// Build from an explicit grid.
    pub fn new(model: &'m dyn TbModel, kpoints: Vec<KPoint>, kt: f64) -> Self {
        assert!(!kpoints.is_empty(), "need at least one k-point");
        assert!(kt > 0.0, "k-sampling requires Fermi smearing");
        let wsum: f64 = kpoints.iter().map(|k| k.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "k-point weights must sum to 1");
        KPointCalculator {
            model,
            kpoints,
            kt,
            parallel: true,
        }
    }

    /// Toggle the per-k thread fan-out (results are bitwise identical
    /// either way; serial mode exists for profiling and pinning tests).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    fn validate(&self, s: &Structure) -> Result<(), TbError> {
        if s.n_atoms() == 0 {
            return Err(TbError::EmptyStructure);
        }
        for i in 0..s.n_atoms() {
            if !self.model.supports(s.species(i)) {
                return Err(TbError::UnsupportedSpecies {
                    species: s.species(i),
                    model: self.model.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Weighted Fermi level for the combined spectrum held in the per-k
    /// workspace slots.
    fn fermi_level(&self, slots: &[KPointSlot], n_electrons: usize) -> f64 {
        let count = |mu: f64| -> f64 {
            slots
                .iter()
                .zip(&self.kpoints)
                .map(|(slot, kp)| {
                    kp.weight
                        * 2.0
                        * slot
                            .values
                            .iter()
                            .map(|&e| fermi((e - mu) / self.kt))
                            .sum::<f64>()
                })
                .sum()
        };
        let lo0 = slots
            .iter()
            .flat_map(|slot| slot.values.iter())
            .cloned()
            .fold(f64::INFINITY, f64::min)
            - 30.0 * self.kt;
        let hi0 = slots
            .iter()
            .flat_map(|slot| slot.values.iter())
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            + 30.0 * self.kt;
        let (mut lo, mut hi) = (lo0, hi0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if count(mid) < n_electrons as f64 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Run `f` over each (k-point, slot) pair — across the thread pool when
/// `parallel`, serially in grid order otherwise — and hand the per-k
/// outputs back in grid order either way. Each call owns its slot
/// exclusively, so scheduling cannot change any result bit. The actual
/// launch shape is the shared [`tbmd_linalg::batch_map`] used by every
/// batched dense solve (per-k here, per-spectrum-slice in the distributed
/// solver).
fn fan_out<T, F>(parallel: bool, kpoints: &[KPoint], slots: &mut [KPointSlot], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&KPoint, &mut KPointSlot) -> T + Sync,
{
    let mut jobs: Vec<(KPoint, &mut KPointSlot)> =
        kpoints.iter().copied().zip(slots.iter_mut()).collect();
    tbmd_linalg::batch_map(parallel, &mut jobs, |_, (kp, slot)| f(kp, slot))
}

#[inline]
fn fermi(x: f64) -> f64 {
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

impl ForceProvider for KPointCalculator<'_> {
    fn evaluate(&self, s: &Structure) -> Result<ForceEvaluation, TbError> {
        self.evaluate_with(s, &mut Workspace::new())
    }

    fn evaluate_with(&self, s: &Structure, ws: &mut Workspace) -> Result<ForceEvaluation, TbError> {
        self.validate(s)?;
        // Eigenvectors live in the per-k embedded slots, not the dense cache.
        ws.dense_cache = DenseCache::None;
        let mut timings = PhaseTimings::default();
        let mut mark = Instant::now();
        let outcome = ws.neighbors.update(s, self.model.cutoff());
        timings.note_neighbors(outcome);
        let nl = ws.neighbors.list();
        let index = OrbitalIndex::new(s);
        let n = index.total();
        let lengths = s.cell().lengths;
        timings.neighbors = mark.elapsed();

        let kws = &mut ws.kspace;
        let mut grew = 0usize;
        while kws.slots.len() < self.kpoints.len() {
            kws.slots.push(KPointSlot::default());
            grew += 1;
        }
        let slots = &mut kws.slots[..self.kpoints.len()];

        // Pass 1: one Bloch build + one embedded eigen-solve per k (the
        // solve leaves the embedded eigenvectors in `slot.m`, so pass 2
        // never re-diagonalizes). Each k touches only its own slot, so the
        // sweep fans out across threads; per-slot growth counts and phase
        // durations come back with the result and are folded in serially.
        let solve_one = |kp: &KPoint,
                         slot: &mut KPointSlot|
         -> Result<(usize, Duration, Duration), TbError> {
            let mut grew = 0usize;
            let mut mark = Instant::now();
            grew +=
                bloch_hamiltonian_into(s, nl, self.model, &index, kp.k, &mut slot.a, &mut slot.b)
                    as usize;
            let t_hamiltonian = mark.elapsed();
            mark = Instant::now();
            grew += embed_hermitian(&slot.a, &slot.b, &mut slot.m) as usize;
            eigh_into(&mut slot.m, &mut slot.values2, &mut slot.eigh)
                .map_err(TbError::Eigensolver)?;
            // Sorted embedded pairs: every second value is one physical state.
            slot.values.clear();
            slot.values.extend(slot.values2.iter().step_by(2));
            Ok((grew, t_hamiltonian, mark.elapsed()))
        };
        let solved = fan_out(self.parallel, &self.kpoints, slots, solve_one);
        for out in solved {
            let (g, t_h, t_d) = out?;
            grew += g;
            timings.hamiltonian += t_h;
            timings.diagonalize += t_d;
        }
        let mu = self.fermi_level(slots, s.n_electrons());

        // Pass 2: per-k occupations, density matrices and forces from the
        // stored embedded eigenvectors, again slot-local and fanned out.
        // Band/entropy terms and per-atom forces accumulate inside the slot
        // and are reduced below in grid order, so the parallel sweep is
        // bitwise identical to the serial one.
        let density_one =
            |kp: &KPoint, slot: &mut KPointSlot| -> (usize, f64, f64, Duration, Duration) {
                let mut grew = 0usize;
                let mut mark = Instant::now();
                slot.f.clear();
                slot.f
                    .extend(slot.values.iter().map(|&e| fermi((e - mu) / self.kt)));
                let band = kp.weight
                    * 2.0
                    * slot
                        .f
                        .iter()
                        .zip(&slot.values)
                        .map(|(fk, e)| fk * e)
                        .sum::<f64>();
                let entropy = kp.weight
                    * -2.0
                    * KB_EV
                    * slot
                        .f
                        .iter()
                        .map(|&fk| {
                            let x = if fk > 1e-300 { fk * fk.ln() } else { 0.0 };
                            let g = 1.0 - fk;
                            let y = if g > 1e-300 { g * g.ln() } else { 0.0 };
                            x + y
                        })
                        .sum::<f64>();
                // Real projector over both members of each embedded pair —
                // degeneracy-safe: any orthonormal basis of a degenerate
                // eigenspace yields the same projector. Occupied columns only:
                // P = [[Re ρ, −Im ρ], [Im ρ, Re ρ]] (×2 spin folded into f).
                let occupied: Vec<usize> = (0..2 * n).filter(|&c| slot.f[c / 2] > 1e-14).collect();
                grew += slot.w.resize_zeroed(2 * n, occupied.len()) as usize;
                for (wcol, &col) in occupied.iter().enumerate() {
                    let scale = (2.0 * slot.f[col / 2]).sqrt();
                    for rix in 0..2 * n {
                        slot.w[(rix, wcol)] = scale * slot.m[(rix, col)];
                    }
                }
                grew += slot.w.syrk_reuse(&mut slot.p, true) as usize;
                grew += slot.re.resize_zeroed(n, n) as usize;
                grew += slot.im.resize_zeroed(n, n) as usize;
                for i in 0..n {
                    for j in 0..n {
                        // Average the redundant blocks for round-off symmetry.
                        slot.re[(i, j)] = 0.5 * (slot.p[(i, j)] + slot.p[(n + i, n + j)]);
                        slot.im[(i, j)] = 0.5 * (slot.p[(n + i, j)] - slot.p[(i, n + j)]);
                    }
                }
                let t_density = mark.elapsed();
                mark = Instant::now();
                // Forces: F_i += 2 w_k Σ_entries Σ_{μν} Re{ρ*_{(oi+μ)(oj+ν)} e^{ik·T}} G_γ[μν].
                slot.force.clear();
                slot.force.resize(s.n_atoms(), Vec3::ZERO);
                for (i, fo) in slot.force.iter_mut().enumerate() {
                    let oi = index.offset(i);
                    let mut fi = Vec3::ZERO;
                    for nb in nl.neighbors(i) {
                        if nb.j == i {
                            continue;
                        }
                        let v = self.model.hoppings(nb.dist);
                        let dv = self.model.hoppings_deriv(nb.dist);
                        if v.iter().all(|&x| x == 0.0) && dv.iter().all(|&x| x == 0.0) {
                            continue;
                        }
                        let grad = sk_block_gradient(nb.disp.to_array(), v, dv);
                        let t = Vec3::new(
                            nb.shift[0] as f64 * lengths.x,
                            nb.shift[1] as f64 * lengths.y,
                            nb.shift[2] as f64 * lengths.z,
                        );
                        let phase = kp.k.dot(t);
                        let (cp, sp) = (phase.cos(), phase.sin());
                        let oj = index.offset(nb.j);
                        for gamma in 0..3 {
                            let mut acc = 0.0;
                            for (mu2, grow) in grad[gamma].iter().enumerate() {
                                for (nu, &g) in grow.iter().enumerate() {
                                    // Re{ρ* e^{ikT}} = Re ρ·cos + Im ρ·sin.
                                    let rho_eff = slot.re[(oi + mu2, oj + nu)] * cp
                                        + slot.im[(oi + mu2, oj + nu)] * sp;
                                    acc += rho_eff * g;
                                }
                            }
                            fi[gamma] += 2.0 * kp.weight * acc;
                        }
                    }
                    *fo += fi;
                }
                (grew, band, entropy, t_density, mark.elapsed())
            };
        let densities = fan_out(self.parallel, &self.kpoints, slots, density_one);

        // Serial reduction in grid order: the same sequence of f64 adds no
        // matter how the per-k work was scheduled.
        let mut band = 0.0;
        let mut entropy = 0.0;
        let mut forces = vec![Vec3::ZERO; s.n_atoms()];
        for (slot, (g, b, e, t_density, t_forces)) in slots.iter().zip(densities) {
            grew += g;
            band += b;
            entropy += e;
            timings.density += t_density;
            timings.forces += t_forces;
            for (fo, fi) in forces.iter_mut().zip(&slot.force) {
                *fo += *fi;
            }
        }
        mark = Instant::now();
        let (e_rep, rep_forces) = repulsive_energy_forces(s, nl, self.model, true);
        for (f, rf) in forces.iter_mut().zip(rep_forces.expect("forces")) {
            *f += rf;
        }
        timings.forces += mark.elapsed();
        ws.grown += grew;
        let entropy_term = -(self.kt / KB_EV) * entropy;
        Ok(ForceEvaluation {
            energy: band + e_rep + entropy_term,
            forces,
            timings,
        })
    }

    fn provider_name(&self) -> &str {
        "kpoint-tb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator::TbCalculator;
    use crate::occupations::OccupationScheme;
    use crate::silicon::silicon_gsp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbmd_structure::{bulk_diamond, Species};

    #[test]
    fn gamma_only_grid_matches_gamma_calculator() {
        let model = silicon_gsp();
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        s.perturb(&mut rng, 0.06);
        let gamma = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
        let kcalc = KPointCalculator::new(
            &model,
            vec![KPoint {
                k: Vec3::ZERO,
                weight: 1.0,
            }],
            0.1,
        );
        let a = gamma.evaluate(&s).unwrap();
        let b = kcalc.evaluate(&s).unwrap();
        assert!(
            (a.energy - b.energy).abs() < 1e-8,
            "{} vs {}",
            a.energy,
            b.energy
        );
        for (fa, fb) in a.forces.iter().zip(&b.forces) {
            assert!((*fa - *fb).max_abs() < 1e-8);
        }
    }

    #[test]
    fn band_folding_identity() {
        // E/atom of the primitive cell on the n³ folding grid must equal the
        // Γ-point E/atom of the n³ supercell (exact identity).
        let model = silicon_gsp();
        let primitive = bulk_diamond(Species::Silicon, 1, 1, 1);
        let supercell = bulk_diamond(Species::Silicon, 2, 2, 2);
        let grid = folding_grid(&primitive, [2, 2, 2]);
        assert_eq!(grid.len(), 8);
        let kcalc = KPointCalculator::new(&model, grid, 0.1);
        let gamma = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.1 });
        let e_k = kcalc.evaluate(&primitive).unwrap().energy / primitive.n_atoms() as f64;
        let e_super = gamma.evaluate(&supercell).unwrap().energy / supercell.n_atoms() as f64;
        assert!(
            (e_k - e_super).abs() < 1e-7,
            "folding identity violated: {e_k} vs {e_super}"
        );
    }

    #[test]
    fn kpoint_forces_match_energy_gradient() {
        let model = silicon_gsp();
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        s.perturb(&mut rng, 0.05);
        let kcalc = KPointCalculator::new(&model, monkhorst_pack(&s, [2, 2, 2]), 0.1);
        let eval = kcalc.evaluate(&s).unwrap();
        let h = 1e-5;
        for (i, gamma) in [(0usize, 0usize), (2, 1), (5, 2)] {
            let mut sp = s.clone();
            sp.positions_mut()[i][gamma] += h;
            let mut sm = s.clone();
            sm.positions_mut()[i][gamma] -= h;
            let fd =
                -(kcalc.energy_only(&sp).unwrap() - kcalc.energy_only(&sm).unwrap()) / (2.0 * h);
            let an = eval.forces[i][gamma];
            assert!(
                (fd - an).abs() < 3e-4 * (1.0 + an.abs()),
                "k-sampled force mismatch atom {i} comp {gamma}: fd={fd}, an={an}"
            );
        }
    }

    #[test]
    fn kpoint_forces_sum_to_zero() {
        let model = silicon_gsp();
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(5);
        s.perturb(&mut rng, 0.08);
        let kcalc = KPointCalculator::new(&model, monkhorst_pack(&s, [2, 2, 2]), 0.1);
        let eval = kcalc.evaluate(&s).unwrap();
        let net: Vec3 = eval.forces.iter().copied().sum();
        assert!(net.max_abs() < 1e-7, "net force {net:?}");
    }

    /// The thread fan-out must not change a single bit: per-k work is
    /// slot-local and the reduction runs in grid order either way.
    #[test]
    fn parallel_fan_out_is_bitwise_identical_to_serial() {
        let model = silicon_gsp();
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(7);
        s.perturb(&mut rng, 0.07);
        let grid = monkhorst_pack(&s, [2, 2, 2]);
        let par = KPointCalculator::new(&model, grid.clone(), 0.1);
        let ser = KPointCalculator::new(&model, grid, 0.1).with_parallel(false);
        assert!(par.parallel && !ser.parallel);
        let a = par.evaluate(&s).unwrap();
        let b = ser.evaluate(&s).unwrap();
        assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "energy diverged");
        for (fa, fb) in a.forces.iter().zip(&b.forces) {
            for gamma in 0..3 {
                assert_eq!(
                    fa[gamma].to_bits(),
                    fb[gamma].to_bits(),
                    "force bit diverged"
                );
            }
        }
    }

    #[test]
    fn mp_grid_properties() {
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let grid = monkhorst_pack(&s, [3, 2, 1]);
        assert_eq!(grid.len(), 6);
        let wsum: f64 = grid.iter().map(|k| k.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-12);
        // MP grids are symmetric about Γ: the summed k vanishes.
        let ksum: Vec3 = grid.iter().map(|k| k.k).sum();
        assert!(ksum.max_abs() < 1e-12);
    }

    #[test]
    fn kpoint_sampling_converges_faster_than_gamma() {
        // Primitive cell + 2³ MP grid should land closer to the converged
        // bulk energy than the raw Γ-point value of the same cell.
        let model = silicon_gsp();
        let primitive = bulk_diamond(Species::Silicon, 1, 1, 1);
        let reference = {
            // 3×3×3 folding grid on the primitive cell = 27-point folding of
            // the 216-atom supercell: effectively converged.
            let grid = folding_grid(&primitive, [3, 3, 3]);
            KPointCalculator::new(&model, grid, 0.1)
                .evaluate(&primitive)
                .unwrap()
                .energy
                / primitive.n_atoms() as f64
        };
        let gamma_only = KPointCalculator::new(
            &model,
            vec![KPoint {
                k: Vec3::ZERO,
                weight: 1.0,
            }],
            0.1,
        )
        .evaluate(&primitive)
        .unwrap()
        .energy
            / primitive.n_atoms() as f64;
        let mp2 = KPointCalculator::new(&model, monkhorst_pack(&primitive, [2, 2, 2]), 0.1)
            .evaluate(&primitive)
            .unwrap()
            .energy
            / primitive.n_atoms() as f64;
        assert!(
            (mp2 - reference).abs() < (gamma_only - reference).abs(),
            "MP-2 ({mp2}) not closer to reference ({reference}) than Γ ({gamma_only})"
        );
    }
}
