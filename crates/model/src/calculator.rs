//! The serial reference tight-binding calculator: energies, Hellmann–Feynman
//! forces and per-phase timings.
//!
//! A TBMD step decomposes into the five phases every 1990s systems paper
//! reports (experiment T1):
//!
//! 1. **neighbours** — O(N) linked-cell list build;
//! 2. **hamiltonian** — O(N·z) Slater–Koster assembly;
//! 3. **diagonalize** — O(N³) symmetric eigensolve;
//! 4. **density** — O(N²·N_occ) density-matrix formation `ρ = 2 C f Cᵀ`;
//! 5. **forces** — O(N·z) contraction of `ρ` with `∂H/∂R` plus the
//!    repulsive-potential forces.
//!
//! The same phase structure is what `tbmd-parallel` distributes.

use crate::hamiltonian::{build_hamiltonian_into, OrbitalIndex};
use crate::model::TbModel;
use crate::occupations::{occupations, occupied_count, OccupationScheme, Occupations};
use crate::slater_koster::sk_block_gradient;
use crate::workspace::{DenseCache, NeighborOutcome, Workspace};
use std::time::Duration;
use tbmd_linalg::{
    eigh_into, eigvalsh, reduced_eigenvalues_into, reduced_eigenvectors_into,
    tridiagonalize_blocked_into, EigError, Matrix, Vec3,
};
use tbmd_structure::{NeighborList, Species, Structure};

/// Errors from a tight-binding calculation.
#[derive(Debug, Clone, PartialEq)]
pub enum TbError {
    /// The structure contains a species the model does not parametrize.
    UnsupportedSpecies { species: Species, model: String },
    /// The eigensolver failed (non-finite geometry, usually from an MD
    /// blow-up upstream).
    Eigensolver(EigError),
    /// A non-orthogonal calculation found an overlap matrix that is not
    /// positive definite (basis collapse — atoms unphysically close).
    OverlapNotPositiveDefinite,
    /// The structure has no atoms.
    EmptyStructure,
    /// A run recorder failed to write its JSONL stream (I/O error text).
    Recorder(String),
    /// One or more ranks of a distributed engine died or timed out
    /// mid-collective (fault injection or a real crash). The evaluation's
    /// partial state is discarded; callers may recover from a checkpoint,
    /// using `failed_ranks` (the blamed rank ids, deduplicated) to re-shard
    /// the survivors or decide the run is unrecoverable.
    RankFailure {
        detail: String,
        failed_ranks: Vec<usize>,
    },
    /// The checkpoint subsystem failed: an unwritable store, a snapshot
    /// that does not decode, or a resume against a mismatched configuration.
    Checkpoint(String),
    /// An inconsistent run configuration that can be rejected before any
    /// physics runs (e.g. an initial state whose velocity array does not
    /// match its atom count).
    Config(String),
}

impl std::fmt::Display for TbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TbError::UnsupportedSpecies { species, model } => {
                write!(f, "species {species} is not parametrized by model {model}")
            }
            TbError::Eigensolver(e) => write!(f, "eigensolver failure: {e}"),
            TbError::OverlapNotPositiveDefinite => {
                write!(
                    f,
                    "overlap matrix is not positive definite (basis collapse)"
                )
            }
            TbError::EmptyStructure => write!(f, "structure contains no atoms"),
            TbError::Recorder(msg) => write!(f, "run recorder I/O failure: {msg}"),
            TbError::RankFailure { detail, .. } => {
                write!(f, "distributed rank failure: {detail}")
            }
            TbError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            TbError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for TbError {}

impl From<EigError> for TbError {
    fn from(e: EigError) -> Self {
        TbError::Eigensolver(e)
    }
}

/// Wall-clock time spent in each phase of one force evaluation, plus the
/// neighbour-list accounting for the evaluations these timings cover.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    pub neighbors: Duration,
    pub hamiltonian: Duration,
    pub diagonalize: Duration,
    pub density: Duration,
    pub forces: Duration,
    /// Time blocked in collectives (broadcast/allreduce/allgather) on the
    /// distributed engines. The compute phases above exclude it; serial and
    /// shared-memory engines leave it zero.
    pub communication: Duration,
    /// Full neighbour-list builds: Verlet skin rebuilds plus per-step
    /// fallback builds (every cold evaluation counts one).
    pub nl_rebuilds: usize,
    /// O(entries) Verlet displacement refreshes — the amortized path that
    /// skips the spatial search entirely.
    pub nl_refreshes: usize,
}

impl PhaseTimings {
    /// Sum of all phases, communication included.
    pub fn total(&self) -> Duration {
        self.neighbors
            + self.hamiltonian
            + self.diagonalize
            + self.density
            + self.forces
            + self.communication
    }

    /// Accumulate another evaluation's timings (for per-step averages).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.neighbors += other.neighbors;
        self.hamiltonian += other.hamiltonian;
        self.diagonalize += other.diagonalize;
        self.density += other.density;
        self.forces += other.forces;
        self.communication += other.communication;
        self.nl_rebuilds += other.nl_rebuilds;
        self.nl_refreshes += other.nl_refreshes;
    }

    /// Record one neighbour-phase outcome in the counters (mirrored into
    /// the trace registry when a collecting sink is installed).
    pub fn note_neighbors(&mut self, outcome: NeighborOutcome) {
        match outcome {
            NeighborOutcome::Rebuilt | NeighborOutcome::Fallback => {
                self.nl_rebuilds += 1;
                tbmd_trace::add(tbmd_trace::Counter::NlRebuilds, 1);
            }
            NeighborOutcome::Refreshed => {
                self.nl_refreshes += 1;
                tbmd_trace::add(tbmd_trace::Counter::NlRefreshes, 1);
            }
        }
    }

    /// Duration of one phase by its trace key.
    pub fn phase(&self, phase: tbmd_trace::Phase) -> Duration {
        match phase {
            tbmd_trace::Phase::Neighbors => self.neighbors,
            tbmd_trace::Phase::Hamiltonian => self.hamiltonian,
            tbmd_trace::Phase::Diagonalize => self.diagonalize,
            tbmd_trace::Phase::Density => self.density,
            tbmd_trace::Phase::Forces => self.forces,
            tbmd_trace::Phase::Communication => self.communication,
        }
    }

    /// Per-phase nanoseconds in [`tbmd_trace::Phase`] index order — the
    /// layout `StepRecord` and the JSONL schema use.
    pub fn phase_ns(&self) -> [u64; tbmd_trace::Phase::COUNT] {
        let mut out = [0u64; tbmd_trace::Phase::COUNT];
        for p in tbmd_trace::Phase::ALL {
            out[p.index()] = self.phase(p).as_nanos() as u64;
        }
        out
    }

    /// Feed this evaluation's per-phase durations into the global trace
    /// registry. Engines that assemble timings outside span guards (the
    /// Vmp-distributed paths, whose rank-0 view is the canonical one) call
    /// this once per evaluation; a disabled sink makes it free.
    pub fn export_to_trace(&self) {
        if !tbmd_trace::enabled() {
            return;
        }
        for p in tbmd_trace::Phase::ALL {
            tbmd_trace::add_phase_ns(p, self.phase(p).as_nanos() as u64);
        }
    }
}

/// Full output of a tight-binding force evaluation.
#[derive(Debug, Clone)]
pub struct TbResult {
    /// Total potential energy: band-structure + repulsive (eV). When Fermi
    /// smearing is active this is the Mermin free energy `E − T_e S`, the
    /// quantity consistent with the Hellmann–Feynman forces.
    pub energy: f64,
    /// Band-structure part `2 Σ f_n ε_n` (eV).
    pub band_energy: f64,
    /// Repulsive part `Σ_i f(Σ_j φ(r_ij))` (eV).
    pub repulsive_energy: f64,
    /// Electronic entropy correction `−T_e S` included in `energy` (eV).
    pub entropy_term: f64,
    /// Forces on every atom (eV/Å).
    pub forces: Vec<Vec3>,
    /// Eigenvalues, ascending (eV).
    pub eigenvalues: Vec<f64>,
    /// Occupations used.
    pub occupations: Occupations,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

/// Matrix dimension below which [`DenseSolver::TwoStage`] falls back to the
/// one-stage QL solve: the blocked reduction, Sturm/inverse-iteration and
/// back-transform stages carry fixed overheads that only amortize once the
/// matrix outgrows the cache-friendly scalar path (measured crossover
/// between n = 64 and n = 128 on the reference host; T4b table of
/// `report_eigensolvers`).
pub const TWO_STAGE_MIN_DIM: usize = 96;

/// Which dense symmetric eigensolver [`TbCalculator::compute_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DenseSolver {
    /// Two-stage blocked solver: blocked Householder reduction, full
    /// tridiagonal spectrum (bisection or QL depending on core count), then
    /// eigenvectors by inverse iteration for the *occupied* states only,
    /// back-transformed with blocked compact-WY sweeps. The eigenvector
    /// count `k` comes from the occupations (`f > 10⁻¹²`), so the density
    /// matrix is bit-for-bit complete; `k = n` degenerates to a full solve.
    #[default]
    TwoStage,
    /// Classic one-stage path: scalar Householder + implicit-QL with full
    /// eigenvector accumulation ([`tbmd_linalg::eigh_into`]). Kept as the
    /// reference implementation and for cross-checks.
    FullQl,
}

/// Serial tight-binding calculator.
///
/// Borrows a model; construct one per simulation and reuse it (it is
/// stateless between calls).
pub struct TbCalculator<'m> {
    model: &'m dyn TbModel,
    /// Occupation scheme; defaults to a small Fermi smearing (0.1 eV) which
    /// keeps forces continuous through level crossings during MD.
    pub occupation: OccupationScheme,
    /// Dense eigensolver selection; defaults to the two-stage blocked
    /// solver with occupied-subspace spectrum slicing.
    pub solver: DenseSolver,
}

impl<'m> TbCalculator<'m> {
    /// Default calculator with 0.1 eV Fermi smearing.
    pub fn new(model: &'m dyn TbModel) -> Self {
        TbCalculator {
            model,
            occupation: OccupationScheme::Fermi { kt: 0.1 },
            solver: DenseSolver::default(),
        }
    }

    /// Calculator with an explicit occupation scheme.
    pub fn with_occupation(model: &'m dyn TbModel, occupation: OccupationScheme) -> Self {
        TbCalculator {
            model,
            occupation,
            solver: DenseSolver::default(),
        }
    }

    /// Calculator with an explicit eigensolver selection.
    pub fn with_solver(model: &'m dyn TbModel, solver: DenseSolver) -> Self {
        TbCalculator {
            solver,
            ..TbCalculator::new(model)
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &dyn TbModel {
        self.model
    }

    fn validate(&self, s: &Structure) -> Result<(), TbError> {
        if s.n_atoms() == 0 {
            return Err(TbError::EmptyStructure);
        }
        for i in 0..s.n_atoms() {
            let sp = s.species(i);
            if !self.model.supports(sp) {
                return Err(TbError::UnsupportedSpecies {
                    species: sp,
                    model: self.model.name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Potential energy only (skips eigenvectors, density matrix and
    /// forces — used by finite-difference tests and line searches).
    pub fn energy(&self, s: &Structure) -> Result<f64, TbError> {
        self.validate(s)?;
        let nl = NeighborList::build(s, self.model.cutoff());
        let index = OrbitalIndex::new(s);
        let mut h = Matrix::zeros(0, 0);
        build_hamiltonian_into(s, &nl, self.model, &index, &mut h);
        let eigenvalues = eigvalsh(h)?;
        let occ = occupations(&eigenvalues, s.n_electrons(), self.occupation);
        let band = occ.band_energy(&eigenvalues);
        let (rep, _) = repulsive_energy_forces(s, &nl, self.model, false);
        let entropy_term = entropy_correction(&occ, self.occupation);
        Ok(band + rep + entropy_term)
    }

    /// Full evaluation: energy, forces, spectrum, timings.
    ///
    /// Cold path: allocates a fresh [`Workspace`] per call. MD loops should
    /// hold one workspace and call [`TbCalculator::compute_with`] instead.
    pub fn compute(&self, s: &Structure) -> Result<TbResult, TbError> {
        self.compute_with(s, &mut Workspace::new())
    }

    /// Full evaluation through a persistent [`Workspace`]: amortized
    /// neighbour lists, reused matrix buffers, in-place eigensolve.
    /// Numerically identical to [`TbCalculator::compute`] (the neighbour
    /// list differs only by skin entries beyond the cutoff, where every
    /// model term vanishes).
    pub fn compute_with(&self, s: &Structure, ws: &mut Workspace) -> Result<TbResult, TbError> {
        self.validate(s)?;
        let mut timings = PhaseTimings::default();
        let grown_before = ws.grown;

        let sp = tbmd_trace::span(tbmd_trace::Phase::Neighbors);
        let outcome = ws.neighbors.update(s, self.model.cutoff());
        timings.neighbors = sp.finish();
        timings.note_neighbors(outcome);

        let sp = tbmd_trace::span(tbmd_trace::Phase::Hamiltonian);
        let index = OrbitalIndex::new(s);
        ws.grown +=
            build_hamiltonian_into(s, ws.neighbors.list(), self.model, &index, &mut ws.h) as usize;
        timings.hamiltonian = sp.finish();

        // Diagonalize. FullQl overwrites ws.h with all n eigenvectors in
        // place; TwoStage reduces ws.h to tridiagonal form (reflectors stay
        // packed in it), takes the complete eigenvalue spectrum from the
        // tridiagonal factor, and defers eigenvectors until the occupations
        // say how many states actually matter. Below the crossover size the
        // two-stage overheads don't pay and QL handles everything.
        let two_stage = self.solver == DenseSolver::TwoStage && ws.h.rows() >= TWO_STAGE_MIN_DIM;
        let sp = tbmd_trace::span(tbmd_trace::Phase::Diagonalize);
        if two_stage {
            tridiagonalize_blocked_into(&mut ws.h, &mut ws.eigh);
            reduced_eigenvalues_into(&mut ws.eigh, &mut ws.values)?;
            tbmd_trace::add(tbmd_trace::Counter::SturmBisections, ws.values.len() as u64);
        } else {
            eigh_into(&mut ws.h, &mut ws.values, &mut ws.eigh)?;
        }
        timings.diagonalize = sp.finish();

        let occ = occupations(&ws.values, s.n_electrons(), self.occupation);
        let band = occ.band_energy(&ws.values);

        // TwoStage eigenvector stage: inverse iteration for the k occupied
        // states only (f > 10⁻¹² — exactly the set the density-matrix filter
        // keeps), back-transformed through the blocked reflectors. k = n
        // (window covering the whole spectrum) is simply a full solve.
        let (vectors, f_window) = if two_stage {
            let sp = tbmd_trace::span(tbmd_trace::Phase::Diagonalize);
            let k = occupied_count(&occ.f);
            reduced_eigenvectors_into(&ws.h, &ws.values[..k], &mut ws.c, &mut ws.eigh);
            timings.diagonalize += sp.finish();
            ws.dense_cache = DenseCache::Sliced { occupied: k };
            (&ws.c, &occ.f[..k])
        } else {
            ws.dense_cache = DenseCache::Full {
                occupied: occupied_count(&occ.f),
            };
            (&ws.h, &occ.f[..])
        };

        let sp = tbmd_trace::span(tbmd_trace::Phase::Density);
        ws.grown += density_matrix_into(vectors, f_window, &mut ws.w, &mut ws.rho);
        timings.density = sp.finish();

        let sp = tbmd_trace::span(tbmd_trace::Phase::Forces);
        let nl = ws.neighbors.list();
        let mut forces = electronic_forces(s, nl, self.model, &index, &ws.rho);
        let (rep, rep_forces) = repulsive_energy_forces(s, nl, self.model, true);
        for (f, rf) in forces.iter_mut().zip(rep_forces.expect("forces requested")) {
            *f += rf;
        }
        timings.forces = sp.finish();

        tbmd_trace::add(
            tbmd_trace::Counter::AllocGrowth,
            (ws.grown - grown_before) as u64,
        );
        let entropy_term = entropy_correction(&occ, self.occupation);
        Ok(TbResult {
            energy: band + rep + entropy_term,
            band_energy: band,
            repulsive_energy: rep,
            entropy_term,
            forces,
            eigenvalues: ws.values.clone(),
            occupations: occ,
            timings,
        })
    }
}

/// `−T_e S` for Fermi smearing, zero otherwise.
fn entropy_correction(occ: &Occupations, scheme: OccupationScheme) -> f64 {
    match scheme {
        OccupationScheme::Fermi { kt } if kt > 0.0 => {
            // S is in eV/K; T_e = kt / k_B, so −T_e·S = −(kt/k_B)·S.
            -(kt / crate::units::KB_EV) * occ.entropy
        }
        _ => 0.0,
    }
}

/// Density matrix `ρ = 2 Σ_n f_n c_n c_nᵀ`, built as `W Wᵀ` with
/// `W = C·diag(√(2 f))` restricted to occupied columns. The product uses
/// the symmetric-rank-k kernel ([`Matrix::par_syrk`]): only the lower
/// triangle is computed and mirrored — half the flops of a general matmul
/// and no materialized transpose, with results matching it to round-off.
pub fn density_matrix(vectors: &Matrix, f: &[f64]) -> Matrix {
    let mut w = Matrix::zeros(0, 0);
    let mut rho = Matrix::zeros(0, 0);
    density_matrix_into(vectors, f, &mut w, &mut rho);
    rho
}

/// [`density_matrix`] into caller-owned buffers (`w` for the scaled
/// eigenvector factor, `rho` for the result), reusing their allocations.
/// Returns the number of buffers that had to grow.
pub fn density_matrix_into(vectors: &Matrix, f: &[f64], w: &mut Matrix, rho: &mut Matrix) -> usize {
    let n = vectors.rows();
    let occupied: Vec<usize> = (0..f.len())
        .filter(|&k| f[k] > crate::occupations::OCCUPATION_DROP_TOL)
        .collect();
    let mut grown = w.resize_zeroed(n, occupied.len()) as usize;
    for (col, &k) in occupied.iter().enumerate() {
        let scale = (2.0 * f[k]).sqrt();
        for r in 0..n {
            w[(r, col)] = scale * vectors[(r, k)];
        }
    }
    grown += w.syrk_reuse(rho, true) as usize;
    grown
}

/// Band-structure (electronic) forces: `F_i = 2 Σ_{j∈nb(i)} ρ_ij : ∂B/∂d`.
///
/// Self-image entries (`j == i`) carry no force: their bond vector is a
/// fixed lattice translation, independent of the atomic coordinates.
pub fn electronic_forces(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    index: &OrbitalIndex,
    rho: &Matrix,
) -> Vec<Vec3> {
    let n = s.n_atoms();
    let mut forces = vec![Vec3::ZERO; n];
    for (i, fo) in forces.iter_mut().enumerate() {
        let oi = index.offset(i);
        let mut fi = Vec3::ZERO;
        for nb in nl.neighbors(i) {
            if nb.j == i {
                continue;
            }
            let v = model.hoppings(nb.dist);
            let dv = model.hoppings_deriv(nb.dist);
            if v.iter().all(|&x| x == 0.0) && dv.iter().all(|&x| x == 0.0) {
                continue;
            }
            let grad = sk_block_gradient(nb.disp.to_array(), v, dv);
            let oj = index.offset(nb.j);
            for gamma in 0..3 {
                let mut acc = 0.0;
                for (mu, grow) in grad[gamma].iter().enumerate() {
                    for (nu, &g) in grow.iter().enumerate() {
                        acc += rho[(oi + mu, oj + nu)] * g;
                    }
                }
                fi[gamma] += 2.0 * acc;
            }
        }
        *fo = fi;
    }
    forces
}

/// Repulsive energy `Σ_i f(x_i)`, `x_i = Σ_j φ(r_ij)`, and optionally its
/// forces.
///
/// Self-image entries contribute to `x_i` (constant lattice-vector bonds)
/// but not to the forces.
pub fn repulsive_energy_forces(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    want_forces: bool,
) -> (f64, Option<Vec<Vec3>>) {
    let n = s.n_atoms();
    // Per-atom embedding argument.
    let x: Vec<f64> = (0..n)
        .map(|i| {
            nl.neighbors(i)
                .iter()
                .map(|nb| model.repulsion(nb.dist).0)
                .sum()
        })
        .collect();
    let mut energy = 0.0;
    let mut dfdx = vec![0.0; n];
    for i in 0..n {
        let (f, df) = model.embedding(x[i]);
        energy += f;
        dfdx[i] = df;
    }
    if !want_forces {
        return (energy, None);
    }
    let mut forces = vec![Vec3::ZERO; n];
    for i in 0..n {
        for nb in nl.neighbors(i) {
            if nb.j == i {
                continue;
            }
            let (_, dphi) = model.repulsion(nb.dist);
            if dphi == 0.0 {
                continue;
            }
            // ∂x_i/∂R_i gets −d̂·φ', ∂x_i/∂R_j gets +d̂·φ'. Loop is over
            // directed entries, so the j-side shows up when roles swap;
            // here we only apply the x_i terms.
            let unit = nb.disp / nb.dist;
            forces[i] += unit * (dfdx[i] * dphi);
            forces[nb.j] -= unit * (dfdx[i] * dphi);
        }
    }
    (energy, Some(forces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carbon::carbon_xwch;
    use crate::hamiltonian::build_hamiltonian;
    use crate::silicon::silicon_gsp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbmd_linalg::eigh;
    use tbmd_structure::{bulk_diamond, dimer, fullerene_c60, Species};

    /// Central-difference force check: the definitive correctness test for
    /// the whole model stack.
    fn check_forces_match_gradient(s: &Structure, calc: &TbCalculator, tol: f64) {
        let result = calc.compute(s).unwrap();
        let h = 1e-5;
        // Probe a handful of atoms/components to keep runtime sane.
        let probes: Vec<(usize, usize)> = (0..s.n_atoms().min(4))
            .flat_map(|i| (0..3).map(move |g| (i, g)))
            .collect();
        for (i, gamma) in probes {
            let mut sp = s.clone();
            sp.positions_mut()[i][gamma] += h;
            let ep = calc.energy(&sp).unwrap();
            let mut sm = s.clone();
            sm.positions_mut()[i][gamma] -= h;
            let em = calc.energy(&sm).unwrap();
            let fd = -(ep - em) / (2.0 * h);
            let an = result.forces[i][gamma];
            assert!(
                (fd - an).abs() < tol * (1.0 + an.abs()),
                "force mismatch atom {i} comp {gamma}: fd={fd:.8}, analytic={an:.8}"
            );
        }
    }

    #[test]
    fn si_dimer_binds() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let bound = calc.energy(&dimer(Species::Silicon, 2.3)).unwrap();
        let stretched = calc.energy(&dimer(Species::Silicon, 3.6)).unwrap();
        assert!(
            bound < stretched,
            "dimer at 2.3 Å ({bound}) should be lower than at 3.6 Å ({stretched})"
        );
    }

    #[test]
    fn forces_zero_in_perfect_crystal() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let r = calc.compute(&s).unwrap();
        for (i, f) in r.forces.iter().enumerate() {
            assert!(f.max_abs() < 1e-8, "residual force on atom {i}: {f:?}");
        }
    }

    #[test]
    fn forces_sum_to_zero_when_perturbed() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        s.perturb(&mut rng, 0.15);
        let r = calc.compute(&s).unwrap();
        let total: Vec3 = r.forces.iter().copied().sum();
        assert!(total.max_abs() < 1e-8, "net force {total:?}");
        // And at least one atom feels a real force.
        assert!(r.forces.iter().any(|f| f.norm() > 0.1));
    }

    #[test]
    fn forces_match_energy_gradient_si_bulk() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(11);
        s.perturb(&mut rng, 0.1);
        check_forces_match_gradient(&s, &calc, 2e-4);
    }

    #[test]
    fn forces_match_energy_gradient_carbon_cluster() {
        let model = carbon_xwch();
        let calc = TbCalculator::new(&model);
        let mut s = fullerene_c60(1.44);
        let mut rng = StdRng::seed_from_u64(7);
        s.perturb(&mut rng, 0.05);
        check_forces_match_gradient(&s, &calc, 2e-4);
    }

    #[test]
    fn forces_match_gradient_zero_temperature_gapped() {
        // Zero-T occupations are only force-consistent away from level
        // crossings; a gapped perturbed crystal qualifies.
        let model = silicon_gsp();
        let calc = TbCalculator::with_occupation(&model, OccupationScheme::ZeroTemperature);
        let mut s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let mut rng = StdRng::seed_from_u64(5);
        s.perturb(&mut rng, 0.05);
        check_forces_match_gradient(&s, &calc, 2e-4);
    }

    #[test]
    fn rejects_unsupported_species() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = dimer(Species::Carbon, 1.5);
        assert!(matches!(
            calc.compute(&s),
            Err(TbError::UnsupportedSpecies { .. })
        ));
    }

    #[test]
    fn rejects_empty_structure() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = Structure::homogeneous(Species::Silicon, vec![], tbmd_structure::Cell::cluster());
        assert!(matches!(calc.compute(&s), Err(TbError::EmptyStructure)));
    }

    #[test]
    fn energy_extensive_in_supercell() {
        // E(2×1×1 cell) ≈ 2 × E(1×1×1 cell) for a periodic crystal. The
        // match is not exact at the Γ point: doubling the cell folds in new
        // effective k-points (E/atom converges with supercell size), so the
        // bound here is a finite-size sanity margin, not a tight identity.
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let e1 = calc
            .energy(&bulk_diamond(Species::Silicon, 1, 1, 1))
            .unwrap();
        let e2 = calc
            .energy(&bulk_diamond(Species::Silicon, 2, 1, 1))
            .unwrap();
        assert!(
            (e2 - 2.0 * e1).abs() < 0.08 * e1.abs(),
            "E(16 atoms) = {e2}, 2·E(8 atoms) = {}",
            2.0 * e1
        );
    }

    #[test]
    fn density_matrix_properties() {
        let model = silicon_gsp();
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let nl = NeighborList::build(&s, model.cutoff());
        let index = OrbitalIndex::new(&s);
        let h = build_hamiltonian(&s, &nl, &model, &index);
        let eig = eigh(h.clone()).unwrap();
        let occ = occupations(
            &eig.values,
            s.n_electrons(),
            OccupationScheme::ZeroTemperature,
        );
        let rho = density_matrix(&eig.vectors, &occ.f);
        // Tr ρ = N_electrons.
        assert!((rho.trace() - s.n_electrons() as f64).abs() < 1e-8);
        // ρ symmetric.
        assert!(rho.asymmetry() < 1e-10);
        // Tr(ρH) = band energy.
        let band = occ.band_energy(&eig.values);
        let tr_rho_h = rho.matmul(&h).trace();
        assert!((band - tr_rho_h).abs() < 1e-7, "{band} vs {tr_rho_h}");
        // Idempotency at integer filling: ρ² = 2ρ (factor from spin).
        let rho2 = rho.matmul(&rho);
        let mut scaled = rho.clone();
        scaled.scale(2.0);
        assert!((&rho2 - &scaled).max_abs() < 1e-8);
    }

    #[test]
    fn timings_populated() {
        let model = silicon_gsp();
        let calc = TbCalculator::new(&model);
        let s = bulk_diamond(Species::Silicon, 1, 1, 1);
        let r = calc.compute(&s).unwrap();
        assert!(r.timings.total() > Duration::ZERO);
        assert!(r.timings.diagonalize > Duration::ZERO);
    }

    #[test]
    fn mermin_energy_consistency() {
        // energy = band + rep + entropy_term exactly.
        let model = carbon_xwch();
        let calc = TbCalculator::new(&model);
        let s = fullerene_c60(1.44);
        let r = calc.compute(&s).unwrap();
        assert!((r.energy - (r.band_energy + r.repulsive_energy + r.entropy_term)).abs() < 1e-10);
        assert!(r.entropy_term <= 0.0, "−T_e S must be non-positive");
    }
}
