//! Electronic occupations: zero-temperature filling (with degenerate-level
//! splitting) and Fermi–Dirac smearing with chemical-potential bisection.
//!
//! Occupations are per *spatial* state (spin degeneracy is the explicit
//! factor 2 everywhere), so a closed-shell system fills `n_electrons / 2`
//! states with `f = 1`.

use crate::units::KB_EV;

/// How to occupy the eigenstates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OccupationScheme {
    /// Fill the lowest states at 0 K; degenerate frontier levels share the
    /// remaining electrons equally (keeps forces continuous through level
    /// crossings of symmetric structures).
    ZeroTemperature,
    /// Fermi–Dirac occupations at electronic temperature `kt` (eV).
    Fermi { kt: f64 },
}

impl OccupationScheme {
    /// Fermi smearing at a temperature in Kelvin.
    pub fn fermi_at_kelvin(t: f64) -> Self {
        OccupationScheme::Fermi { kt: KB_EV * t }
    }
}

/// Result of an occupation calculation.
#[derive(Debug, Clone)]
pub struct Occupations {
    /// Per-state occupation `f_n ∈ [0, 1]`.
    pub f: Vec<f64>,
    /// Fermi level / chemical potential (eV). For zero-temperature filling
    /// this is the midpoint of the HOMO–LUMO interval.
    pub fermi_level: f64,
    /// Electronic entropy `S` in eV/K (zero for 0 K filling); the Mermin
    /// free-energy correction is `−T_e S`.
    pub entropy: f64,
}

impl Occupations {
    /// Band-structure energy `2 Σ f_n ε_n` (eV).
    pub fn band_energy(&self, eigenvalues: &[f64]) -> f64 {
        2.0 * self
            .f
            .iter()
            .zip(eigenvalues)
            .map(|(f, e)| f * e)
            .sum::<f64>()
    }

    /// Total electron count `2 Σ f_n`.
    pub fn electron_count(&self) -> f64 {
        2.0 * self.f.iter().sum::<f64>()
    }

    /// HOMO–LUMO gap for integer fillings; `None` when the frontier level is
    /// fractionally occupied (metallic/open-shell situation).
    pub fn homo_lumo_gap(&self, eigenvalues: &[f64]) -> Option<f64> {
        let mut homo = None;
        let mut lumo = None;
        for (k, &fk) in self.f.iter().enumerate() {
            if fk > 0.999 {
                homo = Some(eigenvalues[k]);
            } else if fk < 0.001 {
                if lumo.is_none() {
                    lumo = Some(eigenvalues[k]);
                }
            } else {
                return None;
            }
        }
        match (homo, lumo) {
            (Some(h), Some(l)) => Some(l - h),
            _ => None,
        }
    }
}

/// Degeneracy tolerance for the zero-temperature frontier multiplet (eV).
const DEGENERACY_TOL: f64 = 1e-8;

/// Occupations at or below this threshold are treated as exactly empty by
/// the density-matrix builder and by the partial-spectrum eigensolver's
/// subspace selection: a state with `f ≤ OCCUPATION_DROP_TOL` contributes
/// `< 2·10⁻¹²` electrons, below every force/energy tolerance in the suite.
pub const OCCUPATION_DROP_TOL: f64 = 1e-12;

/// Number of states with non-negligible occupation — the `k` of the
/// occupied-subspace eigensolver path: eigenvectors beyond this index carry
/// Fermi weights `≤` [`OCCUPATION_DROP_TOL`] and are provably dropped by
/// [`crate::calculator::density_matrix_into`]'s occupation filter, so
/// skipping them changes nothing downstream.
pub fn occupied_count(f: &[f64]) -> usize {
    f.iter().filter(|&&fk| fk > OCCUPATION_DROP_TOL).count()
}

/// Compute occupations for sorted-ascending `eigenvalues` and a total of
/// `n_electrons` electrons.
///
/// # Panics
/// Panics if more electrons are requested than `2 × n_states` can hold, or
/// if the eigenvalues are not sorted.
pub fn occupations(
    eigenvalues: &[f64],
    n_electrons: usize,
    scheme: OccupationScheme,
) -> Occupations {
    let n = eigenvalues.len();
    assert!(
        n_electrons <= 2 * n,
        "{n_electrons} electrons cannot fit in {n} spin-degenerate states"
    );
    debug_assert!(
        eigenvalues.windows(2).all(|w| w[0] <= w[1]),
        "eigenvalues must be sorted ascending"
    );
    match scheme {
        OccupationScheme::ZeroTemperature => zero_temperature(eigenvalues, n_electrons),
        OccupationScheme::Fermi { kt } => {
            if kt <= 0.0 {
                zero_temperature(eigenvalues, n_electrons)
            } else {
                fermi(eigenvalues, n_electrons, kt)
            }
        }
    }
}

fn zero_temperature(eigenvalues: &[f64], n_electrons: usize) -> Occupations {
    let n = eigenvalues.len();
    let mut f = vec![0.0; n];
    let mut remaining = n_electrons as f64 / 2.0;
    let mut i = 0;
    let mut homo_idx = 0usize;
    while remaining > 1e-12 && i < n {
        // Extent of the degenerate multiplet starting at i.
        let mut j = i + 1;
        while j < n && eigenvalues[j] - eigenvalues[i] < DEGENERACY_TOL {
            j += 1;
        }
        let capacity = (j - i) as f64;
        let take = remaining.min(capacity);
        let share = take / capacity;
        for fk in &mut f[i..j] {
            *fk = share;
        }
        homo_idx = j - 1;
        remaining -= take;
        i = j;
    }
    let fermi_level = if n_electrons == 0 {
        eigenvalues.first().copied().unwrap_or(0.0)
    } else if homo_idx + 1 < n {
        0.5 * (eigenvalues[homo_idx] + eigenvalues[homo_idx + 1])
    } else {
        eigenvalues[homo_idx]
    };
    Occupations {
        f,
        fermi_level,
        entropy: 0.0,
    }
}

fn fermi(eigenvalues: &[f64], n_electrons: usize, kt: f64) -> Occupations {
    let target = n_electrons as f64;
    let count = |mu: f64| -> f64 {
        2.0 * eigenvalues
            .iter()
            .map(|&e| fermi_occ((e - mu) / kt))
            .sum::<f64>()
    };
    // Bracket the chemical potential.
    let lo0 = eigenvalues.first().copied().unwrap_or(0.0) - 30.0 * kt;
    let hi0 = eigenvalues.last().copied().unwrap_or(0.0) + 30.0 * kt;
    let (mut lo, mut hi) = (lo0, hi0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * (1.0 + hi.abs()) {
            break;
        }
    }
    let mu = 0.5 * (lo + hi);
    let f: Vec<f64> = eigenvalues
        .iter()
        .map(|&e| fermi_occ((e - mu) / kt))
        .collect();
    // Electronic entropy S = −2 k_B Σ [f ln f + (1−f) ln(1−f)].
    let entropy = -2.0
        * KB_EV
        * f.iter()
            .map(|&fk| {
                let a = if fk > 1e-300 { fk * fk.ln() } else { 0.0 };
                let g = 1.0 - fk;
                let b = if g > 1e-300 { g * g.ln() } else { 0.0 };
                a + b
            })
            .sum::<f64>();
    Occupations {
        f,
        fermi_level: mu,
        entropy,
    }
}

/// Overflow-safe Fermi function of the reduced energy `x = (ε − μ)/kT`.
#[inline]
fn fermi_occ(x: f64) -> f64 {
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_shell_zero_t() {
        let eps = [-3.0, -1.0, 0.5, 2.0];
        let occ = occupations(&eps, 4, OccupationScheme::ZeroTemperature);
        assert_eq!(occ.f, vec![1.0, 1.0, 0.0, 0.0]);
        assert!((occ.electron_count() - 4.0).abs() < 1e-12);
        assert!((occ.band_energy(&eps) - 2.0 * (-4.0)).abs() < 1e-12);
        assert!((occ.fermi_level - -0.25).abs() < 1e-12);
        assert_eq!(occ.homo_lumo_gap(&eps), Some(1.5));
        assert_eq!(occ.entropy, 0.0);
    }

    #[test]
    fn odd_electron_half_filling() {
        let eps = [-2.0, 0.0, 1.0];
        let occ = occupations(&eps, 3, OccupationScheme::ZeroTemperature);
        assert_eq!(occ.f, vec![1.0, 0.5, 0.0]);
        assert!((occ.electron_count() - 3.0).abs() < 1e-12);
        assert_eq!(occ.homo_lumo_gap(&eps), None);
    }

    #[test]
    fn degenerate_frontier_split_equally() {
        let eps = [-2.0, 0.0, 0.0, 1.0];
        // 3 electrons: 2 in the lowest, 1 shared between the two degenerate.
        let occ = occupations(&eps, 3, OccupationScheme::ZeroTemperature);
        assert!((occ.f[0] - 1.0).abs() < 1e-12);
        assert!((occ.f[1] - 0.25).abs() < 1e-12);
        assert!((occ.f[2] - 0.25).abs() < 1e-12);
        assert_eq!(occ.f[3], 0.0);
    }

    #[test]
    fn zero_and_full_filling() {
        let eps = [-1.0, 1.0];
        let empty = occupations(&eps, 0, OccupationScheme::ZeroTemperature);
        assert_eq!(empty.f, vec![0.0, 0.0]);
        let full = occupations(&eps, 4, OccupationScheme::ZeroTemperature);
        assert_eq!(full.f, vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn too_many_electrons_panics() {
        let _ = occupations(&[0.0], 3, OccupationScheme::ZeroTemperature);
    }

    #[test]
    fn fermi_conserves_electron_count() {
        let eps: Vec<f64> = (0..20).map(|i| -5.0 + 0.45 * i as f64).collect();
        for ne in [2usize, 7, 10, 19, 30] {
            let occ = occupations(&eps, ne, OccupationScheme::Fermi { kt: 0.2 });
            assert!(
                (occ.electron_count() - ne as f64).abs() < 1e-9,
                "ne={ne}: got {}",
                occ.electron_count()
            );
        }
    }

    #[test]
    fn fermi_approaches_zero_t_limit() {
        let eps = [-3.0, -1.0, 0.5, 2.0];
        let cold = occupations(&eps, 4, OccupationScheme::Fermi { kt: 1e-4 });
        for (a, b) in cold.f.iter().zip(&[1.0, 1.0, 0.0, 0.0]) {
            assert!((a - b).abs() < 1e-6);
        }
        let zero = occupations(&eps, 4, OccupationScheme::Fermi { kt: 0.0 });
        assert_eq!(zero.f, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn fermi_entropy_positive_and_grows_with_kt() {
        let eps = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let s1 = occupations(&eps, 5, OccupationScheme::Fermi { kt: 0.1 }).entropy;
        let s2 = occupations(&eps, 5, OccupationScheme::Fermi { kt: 0.5 }).entropy;
        assert!(s1 > 0.0);
        assert!(s2 > s1);
    }

    #[test]
    fn fermi_level_between_homo_and_lumo() {
        let eps = [-2.0, -1.0, 1.0, 2.0];
        let occ = occupations(&eps, 4, OccupationScheme::Fermi { kt: 0.05 });
        assert!(occ.fermi_level > -1.0 && occ.fermi_level < 1.0);
    }

    #[test]
    fn fermi_at_kelvin_constructor() {
        if let OccupationScheme::Fermi { kt } = OccupationScheme::fermi_at_kelvin(300.0) {
            assert!((kt - 0.02585).abs() < 1e-4);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn occupations_monotone_decreasing_in_energy() {
        let eps: Vec<f64> = (0..15).map(|i| i as f64 * 0.3 - 2.0).collect();
        let occ = occupations(&eps, 11, OccupationScheme::Fermi { kt: 0.15 });
        for w in occ.f.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
