//! The tight-binding model abstraction.
//!
//! A [`TbModel`] supplies everything the Hamiltonian builder and force engine
//! need: on-site energies, distance-dependent hopping integrals (with
//! analytic radial derivatives), and the repulsive pair/embedding functional
//!
//! ```text
//! E_rep = Σ_i f( Σ_j φ(r_ij) )
//! ```
//!
//! The two bundled parametrizations — [`crate::silicon::silicon_gsp`] and
//! [`crate::carbon::carbon_xwch`] — share the Goodwin–Skinner–Pettifor
//! functional form and are instances of [`GspTbModel`].

use crate::scaling::RadialFunction;
use crate::slater_koster::Hoppings;
use tbmd_structure::Species;

/// Interface every tight-binding parametrization implements.
///
/// The bundled models are homonuclear (one species each), so the radial
/// functions take only a distance; `supports` gates which structures the
/// calculator will accept.
pub trait TbModel: Send + Sync {
    /// Human-readable name (reported by benches and logs).
    fn name(&self) -> &str;

    /// Whether this model parametrizes the given species.
    fn supports(&self, sp: Species) -> bool;

    /// Interaction cutoff radius in Å (hoppings and repulsion both vanish
    /// at and beyond this distance).
    fn cutoff(&self) -> f64;

    /// On-site orbital energies `[ε_s, ε_p, ε_p, ε_p]` in eV.
    fn on_site(&self, sp: Species) -> [f64; 4];

    /// Hopping integrals `[V_ssσ, V_spσ, V_ppσ, V_ppπ]` at distance `r`.
    fn hoppings(&self, r: f64) -> Hoppings;

    /// Radial derivatives of the hopping integrals at distance `r`.
    fn hoppings_deriv(&self, r: f64) -> Hoppings;

    /// Repulsive pair function `φ(r)` and its derivative `φ'(r)`.
    fn repulsion(&self, r: f64) -> (f64, f64);

    /// Embedding function `f(x)` and `f'(x)` applied to each atom's summed
    /// pair repulsion.
    fn embedding(&self, x: f64) -> (f64, f64);
}

/// Polynomial embedding `f(x) = Σ_k c_k x^k` (Horner evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingPolynomial {
    /// Coefficients `c_0 … c_d`, lowest order first.
    pub coefficients: Vec<f64>,
}

impl EmbeddingPolynomial {
    /// `(f(x), f'(x))` in one pass.
    pub fn eval(&self, x: f64) -> (f64, f64) {
        let mut f = 0.0;
        let mut df = 0.0;
        for &c in self.coefficients.iter().rev() {
            df = df * x + f;
            f = f * x + c;
        }
        (f, df)
    }
}

/// A concrete single-species GSP-form tight-binding model.
#[derive(Debug, Clone)]
pub struct GspTbModel {
    pub(crate) name: String,
    pub(crate) species: Species,
    pub(crate) e_s: f64,
    pub(crate) e_p: f64,
    /// Radial hopping functions in Slater–Koster order.
    pub(crate) hop: [RadialFunction; 4],
    /// Repulsive pair function φ(r).
    pub(crate) rep: RadialFunction,
    /// Embedding polynomial f(x).
    pub(crate) embed: EmbeddingPolynomial,
    /// Global scale on the embedding term; 1.0 for the published fit, used
    /// by the calibration described in DESIGN.md when a transcribed constant
    /// needed adjustment to land the equilibrium geometry.
    pub(crate) repulsion_scale: f64,
}

impl GspTbModel {
    /// The single species this model parametrizes.
    pub fn species(&self) -> Species {
        self.species
    }

    /// Replace the repulsion scale (returns the modified model; used by the
    /// equation-of-state calibration tooling).
    pub fn with_repulsion_scale(mut self, scale: f64) -> Self {
        self.repulsion_scale = scale;
        self
    }
}

impl TbModel for GspTbModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, sp: Species) -> bool {
        sp == self.species
    }

    fn cutoff(&self) -> f64 {
        self.hop
            .iter()
            .map(|h| h.cutoff())
            .fold(self.rep.cutoff(), f64::max)
    }

    fn on_site(&self, sp: Species) -> [f64; 4] {
        debug_assert!(
            self.supports(sp),
            "species {sp} not parametrized by {}",
            self.name
        );
        [self.e_s, self.e_p, self.e_p, self.e_p]
    }

    fn hoppings(&self, r: f64) -> Hoppings {
        [
            self.hop[0].value(r),
            self.hop[1].value(r),
            self.hop[2].value(r),
            self.hop[3].value(r),
        ]
    }

    fn hoppings_deriv(&self, r: f64) -> Hoppings {
        [
            self.hop[0].derivative(r),
            self.hop[1].derivative(r),
            self.hop[2].derivative(r),
            self.hop[3].derivative(r),
        ]
    }

    fn repulsion(&self, r: f64) -> (f64, f64) {
        (self.rep.value(r), self.rep.derivative(r))
    }

    fn embedding(&self, x: f64) -> (f64, f64) {
        let (f, df) = self.embed.eval(x);
        (self.repulsion_scale * f, self.repulsion_scale * df)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_eval_and_derivative() {
        // f(x) = 1 + 2x + 3x² → f(2) = 17, f'(2) = 14.
        let p = EmbeddingPolynomial {
            coefficients: vec![1.0, 2.0, 3.0],
        };
        let (f, df) = p.eval(2.0);
        assert!((f - 17.0).abs() < 1e-14);
        assert!((df - 14.0).abs() < 1e-14);
    }

    #[test]
    fn polynomial_empty_and_constant() {
        let zero = EmbeddingPolynomial {
            coefficients: vec![],
        };
        assert_eq!(zero.eval(3.0), (0.0, 0.0));
        let c = EmbeddingPolynomial {
            coefficients: vec![4.5],
        };
        assert_eq!(c.eval(-2.0), (4.5, 0.0));
    }

    #[test]
    fn polynomial_derivative_finite_difference() {
        let p = EmbeddingPolynomial {
            coefficients: vec![0.0, 2.1604385, -0.1384393, 5.8398423e-3, -8.0263577e-5],
        };
        let h = 1e-6;
        for &x in &[0.5, 1.0, 3.0, 7.0] {
            let (_, df) = p.eval(x);
            let fd = (p.eval(x + h).0 - p.eval(x - h).0) / (2.0 * h);
            assert!((df - fd).abs() < 1e-6 * (1.0 + df.abs()), "x={x}");
        }
    }
}
