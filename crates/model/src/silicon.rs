//! Silicon tight-binding parametrization in the Goodwin–Skinner–Pettifor
//! form, following Kwon, Biswas, Wang, Ho & Soukoulis (Phys. Rev. B 49, 7242
//! (1994)) — *the* silicon TBMD model of the SC'94 era.
//!
//! Functional form (see [`crate::scaling`]):
//!
//! * on-site: `ε_s = −5.25 eV`, `ε_p = +1.20 eV`
//! * hoppings `V_λ(r) = V_λ(r₀) (r₀/r)² exp{2[−(r/r_c)^{n_c} + (r₀/r_c)^{n_c}]}`
//!   with `r₀ = 2.360352 Å`, `r_c = 3.67 Å`, `n_c = 6.48` and
//!   `V(r₀) = [−2.038, 1.745, 2.75, −1.075] eV`
//! * repulsion `φ(r) = (r₀/r)^m exp{m[−(r/d_c)^{m_c} + (r₀/d_c)^{m_c}]}`
//!   with `m = 6.8755`, `m_c = 13.017`, `d_c = 3.66995 Å`, embedded through
//!   `f(x) = Σ_{k=1}^4 c_k x^k`, `c = [2.1604385, −0.1384393, 5.8398423·10⁻³,
//!   −8.0263577·10⁻⁵]` (eV)
//!
//! **Substitutions** (documented per DESIGN.md): the published model is
//! truncated with a short polynomial tail; we use the C² smootherstep tail
//! over `[2.8, 3.8] Å`, which keeps the model first-neighbour in the diamond
//! structure (1st shell 2.35 Å, 2nd shell 3.84 Å) like the original GSP fit.
//! The embedding carries a calibration factor `repulsion_scale` chosen so the
//! model's diamond equilibrium bond length reproduces 2.35 Å with the tail
//! above (see `calibration` test and EXPERIMENTS.md T5).

use crate::model::{EmbeddingPolynomial, GspTbModel};
use crate::scaling::{CutoffTail, GspScaling, RadialFunction};
use tbmd_structure::Species;

/// Reference bond length of the fit (diamond Si first-neighbour distance).
pub const SI_R0: f64 = 2.360352;

/// Inner edge of the cutoff tail (Å).
pub const SI_TAIL_INNER: f64 = 2.8;

/// Outer cutoff (Å): interactions vanish beyond this.
pub const SI_TAIL_OUTER: f64 = 3.8;

/// Calibration factor on the embedding term (see module docs): chosen so
/// that `dE/d(bond) = 0` at 2.35 Å in the diamond structure with the
/// smootherstep cutoff tail used here (the published fit used a different
/// truncation, which shifts the equilibrium by a few percent if left
/// uncompensated). Determined from the equation-of-state scan in
/// `tests/eos.rs`: κ = −E_bs′(2.35)/E_rep′(2.35) = 18.261/16.247.
pub const SI_REPULSION_SCALE: f64 = 1.124;

/// Build the silicon model.
pub fn silicon_gsp() -> GspTbModel {
    let tail = CutoffTail::new(SI_TAIL_INNER, SI_TAIL_OUTER);
    let hop_scaling = GspScaling {
        r0: SI_R0,
        n: 2.0,
        rc: 3.67,
        nc: 6.48,
    };
    let amplitudes = [-2.038, 1.745, 2.75, -1.075];
    let hop = amplitudes.map(|a| RadialFunction {
        amplitude: a,
        scaling: hop_scaling,
        tail,
    });
    let rep = RadialFunction {
        amplitude: 1.0,
        scaling: GspScaling {
            r0: SI_R0,
            n: 6.8755,
            rc: 3.66995,
            nc: 13.017,
        },
        tail,
    };
    let embed = EmbeddingPolynomial {
        coefficients: vec![0.0, 2.1604385, -0.1384393, 5.8398423e-3, -8.0263577e-5],
    };
    GspTbModel {
        name: "Si-GSP/Kwon".to_string(),
        species: Species::Silicon,
        e_s: -5.25,
        e_p: 1.20,
        hop,
        rep,
        embed,
        repulsion_scale: SI_REPULSION_SCALE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TbModel;

    #[test]
    fn reference_distance_values() {
        let m = silicon_gsp();
        let v = m.hoppings(SI_R0);
        assert!((v[0] - -2.038).abs() < 1e-12);
        assert!((v[1] - 1.745).abs() < 1e-12);
        assert!((v[2] - 2.75).abs() < 1e-12);
        assert!((v[3] - -1.075).abs() < 1e-12);
        let (phi, _) = m.repulsion(SI_R0);
        assert!((phi - 1.0).abs() < 1e-12, "φ(r0) = {phi}");
    }

    #[test]
    fn supports_only_silicon() {
        let m = silicon_gsp();
        assert!(m.supports(Species::Silicon));
        assert!(!m.supports(Species::Carbon));
        assert!(!m.supports(Species::Hydrogen));
    }

    #[test]
    fn cutoff_excludes_second_shell() {
        let m = silicon_gsp();
        assert!(m.cutoff() <= 3.8 + 1e-12);
        // Second diamond shell at 3.84 Å must see exactly zero interaction.
        let v = m.hoppings(3.84);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(m.repulsion(3.84).0, 0.0);
    }

    #[test]
    fn hoppings_decay() {
        let m = silicon_gsp();
        let near = m.hoppings(2.2);
        let far = m.hoppings(3.0);
        for k in 0..4 {
            assert!(near[k].abs() > far[k].abs());
        }
    }

    #[test]
    fn sp3_bonding_signs() {
        // σ bonds: ssσ < 0, spσ > 0, ppσ > 0, ppπ < 0 — the universal
        // ordering for sp³ semiconductors.
        let v = silicon_gsp().hoppings(2.35);
        assert!(v[0] < 0.0 && v[1] > 0.0 && v[2] > 0.0 && v[3] < 0.0);
    }

    #[test]
    fn repulsion_is_positive_and_embedding_monotone() {
        let m = silicon_gsp();
        for &r in &[2.0, 2.35, 2.7, 3.2] {
            assert!(m.repulsion(r).0 > 0.0, "φ({r}) must be positive");
        }
        // f is increasing over the physical range x ∈ (0, ~8).
        for &x in &[0.5, 1.0, 2.0, 4.0, 6.0] {
            let (_, df) = m.embedding(x);
            assert!(df > 0.0, "f'({x}) = {df}");
        }
    }

    #[test]
    fn hopping_derivatives_match_finite_difference() {
        let m = silicon_gsp();
        let h = 1e-6;
        for &r in &[2.1, 2.36, 2.9, 3.3, 3.75] {
            let d = m.hoppings_deriv(r);
            let vp = m.hoppings(r + h);
            let vm = m.hoppings(r - h);
            for k in 0..4 {
                let fd = (vp[k] - vm[k]) / (2.0 * h);
                assert!(
                    (fd - d[k]).abs() < 1e-5 * (1.0 + d[k].abs()),
                    "r={r}, k={k}"
                );
            }
        }
    }
}
