//! Virial stress tensor for periodic tight-binding systems.
//!
//! Under a uniform strain `ε` every pair vector scales, `d → (1+ε)d`, so
//!
//! ```text
//! σ_ab = (1/V) ∂E/∂ε_ab
//!      = (1/V) [ Σ_pairs (∂E_bs/∂d_a) d_b + Σ_entries f'(x_i) φ'(r) d̂_a d_b ]
//! ```
//!
//! with the electronic `∂E/∂d` evaluated from the same density-matrix ×
//! Slater–Koster-gradient contraction as the forces. Self-image pairs (an
//! atom bonded to its own periodic copy) carry no force but *do* carry
//! stress — their bond vector is a lattice vector, which strains with the
//! cell.
//!
//! Sign convention: positive `tr σ / 3` means the system pushes outward
//! under compression has `p = −tr σ/3 > 0`; a crystal at its equilibrium
//! lattice constant has `σ ≈ 0`.

use crate::calculator::density_matrix;
use crate::calculator::TbError;
use crate::hamiltonian::{build_hamiltonian, OrbitalIndex};
use crate::model::TbModel;
use crate::occupations::{occupations, OccupationScheme};
use crate::slater_koster::sk_block_gradient;
use tbmd_linalg::{eigh, Matrix};
use tbmd_structure::{NeighborList, Structure};

/// Symmetric 3×3 stress tensor in eV/Å³.
pub type StressTensor = [[f64; 3]; 3];

/// Pressure `p = −tr σ / 3` in eV/Å³.
pub fn pressure(stress: &StressTensor) -> f64 {
    -(stress[0][0] + stress[1][1] + stress[2][2]) / 3.0
}

/// eV/Å³ → GPa.
pub const EV_PER_A3_TO_GPA: f64 = 160.217_663;

/// Compute the virial stress of a fully periodic structure.
///
/// # Errors
/// Returns [`TbError::EmptyStructure`] for empty input and propagates
/// eigensolver failures; panics if the cell is not fully periodic (no
/// volume).
pub fn stress_tensor(
    s: &Structure,
    model: &dyn TbModel,
    occupation: OccupationScheme,
) -> Result<StressTensor, TbError> {
    if s.n_atoms() == 0 {
        return Err(TbError::EmptyStructure);
    }
    let volume = s
        .cell()
        .volume()
        .expect("stress tensor requires a fully periodic cell");
    let nl = NeighborList::build(s, model.cutoff());
    let index = OrbitalIndex::new(s);
    let h = build_hamiltonian(s, &nl, model, &index);
    let eig = eigh(h)?;
    let occ = occupations(&eig.values, s.n_electrons(), occupation);
    let rho = density_matrix(&eig.vectors, &occ.f);
    Ok(stress_from_density(s, &nl, model, &index, &rho, volume))
}

/// Stress from a precomputed density matrix (shared by engines that already
/// hold ρ).
pub fn stress_from_density(
    s: &Structure,
    nl: &NeighborList,
    model: &dyn TbModel,
    index: &OrbitalIndex,
    rho: &Matrix,
    volume: f64,
) -> StressTensor {
    let n = s.n_atoms();
    let mut sigma = [[0.0; 3]; 3];
    // Embedding derivatives for the repulsive part.
    let x: Vec<f64> = (0..n)
        .map(|i| {
            nl.neighbors(i)
                .iter()
                .map(|nb| model.repulsion(nb.dist).0)
                .sum()
        })
        .collect();
    let dfdx: Vec<f64> = x.iter().map(|&xi| model.embedding(xi).1).collect();

    for (i, &dfdx_i) in dfdx.iter().enumerate() {
        let oi = index.offset(i);
        for nb in nl.neighbors(i) {
            let d = nb.disp;
            // Electronic part: (∂E/∂d_a) = ρ_ij : G_a summed over the block
            // (the directed double-count is absorbed by the ½ of the pair
            // sum — see module docs). Self-image entries included.
            let v = model.hoppings(nb.dist);
            let dv = model.hoppings_deriv(nb.dist);
            if !(v.iter().all(|&y| y == 0.0) && dv.iter().all(|&y| y == 0.0)) {
                let grad = sk_block_gradient(d.to_array(), v, dv);
                let oj = index.offset(nb.j);
                for a in 0..3 {
                    let mut de_dda = 0.0;
                    for (mu, grow) in grad[a].iter().enumerate() {
                        for (nu, &g) in grow.iter().enumerate() {
                            de_dda += rho[(oi + mu, oj + nu)] * g;
                        }
                    }
                    for b in 0..3 {
                        sigma[a][b] += de_dda * d[b];
                    }
                }
            }
            // Repulsive part: f'(x_i) φ'(r) d̂_a d_b per directed entry.
            let (_, dphi) = model.repulsion(nb.dist);
            if dphi != 0.0 {
                let scale = dfdx_i * dphi / nb.dist;
                for (a, srow) in sigma.iter_mut().enumerate() {
                    for (sv, db) in srow.iter_mut().zip(d.to_array()) {
                        *sv += scale * d[a] * db;
                    }
                }
            }
        }
    }
    for row in &mut sigma {
        for x in row.iter_mut() {
            *x /= volume;
        }
    }
    // Enforce exact symmetry (round-off level asymmetry from the block sums).
    for (a, b) in [(0, 1), (0, 2), (1, 2)] {
        let avg = 0.5 * (sigma[a][b] + sigma[b][a]);
        sigma[a][b] = avg;
        sigma[b][a] = avg;
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator::TbCalculator;
    use crate::provider::ForceProvider;
    use crate::silicon::silicon_gsp;
    use tbmd_linalg::Vec3;
    use tbmd_structure::{bulk_diamond_with_bond, Cell, Species};

    const KT: OccupationScheme = OccupationScheme::Fermi { kt: 0.1 };

    /// Numerical dE/dε_aa via uniform scaling along one axis.
    fn numerical_stress_diag(bond: f64, axis: usize, h: f64) -> f64 {
        let model = silicon_gsp();
        let calc = TbCalculator::with_occupation(&model, KT);
        let energy_at = |eps: f64| -> f64 {
            let s0 = bulk_diamond_with_bond(Species::Silicon, bond, 1, 1, 1);
            let mut lengths = s0.cell().lengths;
            lengths[axis] *= 1.0 + eps;
            let positions: Vec<Vec3> = s0
                .positions()
                .iter()
                .map(|&r| {
                    let mut p = r;
                    p[axis] *= 1.0 + eps;
                    p
                })
                .collect();
            let strained = tbmd_structure::Structure::homogeneous(
                Species::Silicon,
                positions,
                Cell::orthorhombic(lengths.x, lengths.y, lengths.z),
            );
            calc.energy_only(&strained).unwrap()
        };
        let v = {
            let s0 = bulk_diamond_with_bond(Species::Silicon, bond, 1, 1, 1);
            s0.cell().volume().unwrap()
        };
        (energy_at(h) - energy_at(-h)) / (2.0 * h) / v
    }

    #[test]
    fn stress_matches_numerical_strain_derivative() {
        // Compressed lattice: large anisotropy-free stress; analytic virial
        // must match the numerical strain derivative.
        let model = silicon_gsp();
        for bond in [2.25, 2.35, 2.45] {
            let s = bulk_diamond_with_bond(Species::Silicon, bond, 1, 1, 1);
            let sigma = stress_tensor(&s, &model, KT).unwrap();
            let numerical = numerical_stress_diag(bond, 0, 1e-5);
            assert!(
                (sigma[0][0] - numerical).abs() < 5e-4 * (1.0 + numerical.abs()),
                "bond {bond}: analytic {} vs numerical {}",
                sigma[0][0],
                numerical
            );
        }
    }

    #[test]
    fn equilibrium_crystal_nearly_stress_free() {
        // The 2×2×2 cell: the repulsion calibration fixed dE/d(bond) = 0 at
        // 2.35 Å for this supercell, so its pressure must be near zero (the
        // 8-atom cell sits ~4 GPa off — Γ-point finite-size shift).
        let model = silicon_gsp();
        let s = bulk_diamond_with_bond(Species::Silicon, 2.35, 2, 2, 2);
        let sigma = stress_tensor(&s, &model, KT).unwrap();
        let p = pressure(&sigma) * EV_PER_A3_TO_GPA;
        assert!(p.abs() < 2.0, "equilibrium pressure {p} GPa");
        // Cubic symmetry: diagonal components equal, off-diagonals zero.
        assert!((sigma[0][0] - sigma[1][1]).abs() < 1e-8);
        assert!(sigma[0][1].abs() < 1e-8);
    }

    #[test]
    fn compression_gives_positive_pressure() {
        let model = silicon_gsp();
        let compressed = bulk_diamond_with_bond(Species::Silicon, 2.20, 1, 1, 1);
        let expanded = bulk_diamond_with_bond(Species::Silicon, 2.50, 1, 1, 1);
        let p_c = pressure(&stress_tensor(&compressed, &model, KT).unwrap());
        let p_e = pressure(&stress_tensor(&expanded, &model, KT).unwrap());
        assert!(p_c > 0.0, "compressed crystal must push out (p = {p_c})");
        assert!(p_e < 0.0, "expanded crystal must pull in (p = {p_e})");
    }

    #[test]
    fn bulk_modulus_order_of_magnitude() {
        // B = −V dp/dV ≈ 98 GPa for Si; estimate from two pressures.
        let model = silicon_gsp();
        let (b1, b2) = (2.33, 2.37);
        let p1 = pressure(
            &stress_tensor(
                &bulk_diamond_with_bond(Species::Silicon, b1, 1, 1, 1),
                &model,
                KT,
            )
            .unwrap(),
        );
        let p2 = pressure(
            &stress_tensor(
                &bulk_diamond_with_bond(Species::Silicon, b2, 1, 1, 1),
                &model,
                KT,
            )
            .unwrap(),
        );
        // V ∝ bond³ → dV/V = 3 db/b.
        let dv_over_v = 3.0 * (b2 - b1) / 2.35;
        let bulk_modulus = -(p2 - p1) / dv_over_v * EV_PER_A3_TO_GPA;
        assert!(
            bulk_modulus > 40.0 && bulk_modulus < 250.0,
            "Si bulk modulus {bulk_modulus} GPa outside physical window"
        );
    }
}
