//! Equation-of-state validation: the models must place the diamond-phase
//! equilibrium bond length close to the experimental values they were fit
//! to (Si: 2.35 Å, C: 1.54 Å). This exercises the *entire* model stack
//! (scaling, Slater–Koster assembly, diagonalization, occupations,
//! repulsion) against an independent physical reference.

use tbmd_model::{OccupationScheme, TbCalculator, TbModel};
use tbmd_structure::{bulk_diamond_with_bond, Species};

/// Scan E(bond) on a coarse grid and return (best_bond, energies).
fn eos_scan(model: &dyn TbModel, sp: Species, bonds: &[f64]) -> (f64, Vec<f64>) {
    let calc = TbCalculator::with_occupation(model, OccupationScheme::Fermi { kt: 0.05 });
    let energies: Vec<f64> = bonds
        .iter()
        .map(|&b| {
            let s = bulk_diamond_with_bond(sp, b, 2, 2, 2);
            calc.energy(&s).unwrap() / s.n_atoms() as f64
        })
        .collect();
    let k = energies
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    (bonds[k], energies)
}

#[test]
fn silicon_diamond_equilibrium_bond() {
    let model = tbmd_model::silicon_gsp();
    let bonds: Vec<f64> = (0..13).map(|i| 2.15 + 0.04 * i as f64).collect();
    let (best, energies) = eos_scan(&model, Species::Silicon, &bonds);
    eprintln!("Si EOS: bonds={bonds:?}\n energies={energies:?}\n best={best}");
    assert!(
        (best - 2.35).abs() <= 0.09,
        "Si equilibrium bond {best} Å too far from 2.35 Å"
    );
    // The minimum must be interior (a real minimum, not a cutoff artefact).
    let e_min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(energies[0] > e_min && energies[energies.len() - 1] > e_min);
}

#[test]
fn carbon_diamond_equilibrium_bond() {
    let model = tbmd_model::carbon_xwch();
    let bonds: Vec<f64> = (0..13).map(|i| 1.40 + 0.025 * i as f64).collect();
    let (best, energies) = eos_scan(&model, Species::Carbon, &bonds);
    eprintln!("C EOS: bonds={bonds:?}\n energies={energies:?}\n best={best}");
    assert!(
        (best - 1.54).abs() <= 0.06,
        "C diamond equilibrium bond {best} Å too far from 1.54 Å"
    );
}

#[test]
fn silicon_cohesive_energy_scale() {
    // Si cohesive energy ≈ 4.6 eV/atom; the TB fit reproduces the bulk bands
    // but the free-atom reference differs, so assert the right magnitude
    // rather than a tight match: E/atom at equilibrium must be several eV
    // below the isolated-atom energy 2ε_s + 2ε_p = 2(−5.25) + 2(1.20) = −8.1.
    let model = tbmd_model::silicon_gsp();
    let calc = TbCalculator::with_occupation(&model, OccupationScheme::Fermi { kt: 0.05 });
    let s = bulk_diamond_with_bond(Species::Silicon, 2.35, 2, 2, 2);
    let e_per_atom = calc.energy(&s).unwrap() / s.n_atoms() as f64;
    let e_free_atom = 2.0 * (-5.25) + 2.0 * 1.20;
    let cohesive = e_free_atom - e_per_atom;
    eprintln!("Si: E/atom = {e_per_atom}, cohesive ≈ {cohesive}");
    assert!(
        cohesive > 2.0 && cohesive < 8.0,
        "Si cohesive energy {cohesive} eV/atom outside physical range"
    );
}
