//! Property-based tests of the tight-binding physics layer.

use proptest::prelude::*;
use tbmd_linalg::Vec3;
use tbmd_model::{
    occupations, silicon_gsp, sk_block, sk_block_gradient, sk_transpose, OccupationScheme, TbModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// B(−d) = B(d)ᵀ for arbitrary bond vectors and hopping sets.
    #[test]
    fn sk_transpose_identity(
        dx in -3.0f64..3.0, dy in -3.0f64..3.0, dz in -3.0f64..3.0,
        v0 in -6.0f64..6.0, v1 in -6.0f64..6.0, v2 in -6.0f64..6.0, v3 in -6.0f64..6.0,
    ) {
        let d = [dx, dy, dz];
        prop_assume!(d.iter().map(|x| x * x).sum::<f64>() > 0.01);
        let v = [v0, v1, v2, v3];
        let b = sk_block(d, v);
        let binv = sk_block([-dx, -dy, -dz], v);
        let bt = sk_transpose(&b);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((binv[i][j] - bt[i][j]).abs() < 1e-12);
            }
        }
    }

    /// The SK block's Frobenius norm is rotation invariant (depends only on
    /// |d| through the externally supplied hoppings).
    #[test]
    fn sk_rotation_invariance(
        r in 0.5f64..4.0, theta in 0.0f64..std::f64::consts::TAU, phi in 0.0f64..std::f64::consts::PI,
        v0 in -6.0f64..6.0, v1 in -6.0f64..6.0, v2 in -6.0f64..6.0, v3 in -6.0f64..6.0,
    ) {
        let v = [v0, v1, v2, v3];
        let frob = |b: &[[f64; 4]; 4]| -> f64 { b.iter().flatten().map(|x| x * x).sum() };
        let d1 = [r, 0.0, 0.0];
        let d2 = [
            r * phi.sin() * theta.cos(),
            r * phi.sin() * theta.sin(),
            r * phi.cos(),
        ];
        prop_assume!(d2.iter().map(|x| x * x).sum::<f64>() > 1e-6);
        let f1 = frob(&sk_block(d1, v));
        let f2 = frob(&sk_block(d2, v));
        prop_assert!((f1 - f2).abs() < 1e-9 * (1.0 + f1));
    }

    /// The SK gradient matches finite differences for random geometry and
    /// random (fixed) hoppings.
    #[test]
    fn sk_gradient_finite_difference(
        dx in -2.0f64..2.0, dy in -2.0f64..2.0, dz in 0.5f64..2.0,
        v0 in -4.0f64..4.0, v1 in -4.0f64..4.0, v2 in -4.0f64..4.0, v3 in -4.0f64..4.0,
    ) {
        let d = [dx, dy, dz];
        let v = [v0, v1, v2, v3];
        let grad = sk_block_gradient(d, v, [0.0; 4]);
        let h = 1e-6;
        for g in 0..3 {
            let mut dp = d;
            let mut dm = d;
            dp[g] += h;
            dm[g] -= h;
            let bp = sk_block(dp, v);
            let bm = sk_block(dm, v);
            for i in 0..4 {
                for j in 0..4 {
                    let fd = (bp[i][j] - bm[i][j]) / (2.0 * h);
                    prop_assert!((fd - grad[g][i][j]).abs() < 1e-4 * (1.0 + fd.abs()));
                }
            }
        }
    }

    /// Occupations conserve the electron count for any sorted spectrum and
    /// any temperature.
    #[test]
    fn occupations_conserve_electrons(
        mut eps in prop::collection::vec(-10.0f64..10.0, 2..30),
        ne_frac in 0.0f64..1.0,
        kt in 0.01f64..1.0,
    ) {
        eps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ne = ((eps.len() * 2) as f64 * ne_frac) as usize;
        for scheme in [OccupationScheme::ZeroTemperature, OccupationScheme::Fermi { kt }] {
            let occ = occupations(&eps, ne, scheme);
            prop_assert!((occ.electron_count() - ne as f64).abs() < 1e-8);
            for &f in &occ.f {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&f));
            }
        }
    }

    /// Zero-temperature band energy is the minimum over occupation schemes
    /// (the variational property of ground-state filling).
    #[test]
    fn zero_t_band_energy_minimal(
        mut eps in prop::collection::vec(-5.0f64..5.0, 4..20),
        ne_frac in 0.1f64..0.9,
        kt in 0.05f64..0.8,
    ) {
        eps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ne = ((eps.len() * 2) as f64 * ne_frac) as usize;
        let cold = occupations(&eps, ne, OccupationScheme::ZeroTemperature);
        let warm = occupations(&eps, ne, OccupationScheme::Fermi { kt });
        prop_assert!(cold.band_energy(&eps) <= warm.band_energy(&eps) + 1e-9);
    }

    /// Model radial functions: hoppings vanish identically beyond the
    /// cutoff and are smooth inside.
    #[test]
    fn silicon_radial_functions_bounded(r in 1.8f64..6.0) {
        let m = silicon_gsp();
        let v = m.hoppings(r);
        let dv = m.hoppings_deriv(r);
        if r >= m.cutoff() {
            prop_assert!(v.iter().all(|&x| x == 0.0));
            prop_assert!(dv.iter().all(|&x| x == 0.0));
        } else {
            prop_assert!(v.iter().all(|x| x.is_finite() && x.abs() < 50.0));
            prop_assert!(dv.iter().all(|x| x.is_finite()));
        }
        let (phi, dphi) = m.repulsion(r);
        prop_assert!(phi >= 0.0 && phi.is_finite() && dphi.is_finite());
    }

    /// Fermi level sits between the highest mostly-occupied and lowest
    /// mostly-empty states.
    #[test]
    fn fermi_level_ordering(
        mut eps in prop::collection::vec(-8.0f64..8.0, 6..24),
        kt in 0.05f64..0.5,
    ) {
        eps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ne = eps.len(); // half filling
        let occ = occupations(&eps, ne, OccupationScheme::Fermi { kt });
        for (k, &f) in occ.f.iter().enumerate() {
            if f > 0.75 {
                prop_assert!(eps[k] < occ.fermi_level + 3.0 * kt);
            }
            if f < 0.25 {
                prop_assert!(eps[k] > occ.fermi_level - 3.0 * kt);
            }
        }
    }
}

/// Non-proptest sanity: a tiny random-geometry force consistency sweep kept
/// here (rather than unit tests) because it stresses many random seeds.
#[test]
fn random_cluster_force_consistency_sweep() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tbmd_model::{ForceProvider, TbCalculator};

    let model = silicon_gsp();
    let calc = TbCalculator::new(&model);
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // 4 random atoms, min separation enforced.
        let mut positions: Vec<Vec3> = vec![Vec3::ZERO];
        while positions.len() < 4 {
            let cand = Vec3::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            );
            if positions.iter().all(|p| (*p - cand).norm() > 1.9) {
                positions.push(cand);
            }
        }
        let s = tbmd_structure::Structure::homogeneous(
            tbmd_structure::Species::Silicon,
            positions,
            tbmd_structure::Cell::cluster(),
        );
        let eval = calc.evaluate(&s).unwrap();
        let h = 1e-5;
        for (i, gamma) in [(0usize, 0usize), (2, 1), (3, 2)] {
            let mut sp = s.clone();
            sp.positions_mut()[i][gamma] += h;
            let mut sm = s.clone();
            sm.positions_mut()[i][gamma] -= h;
            let fd = -(calc.energy_only(&sp).unwrap() - calc.energy_only(&sm).unwrap()) / (2.0 * h);
            let an = eval.forces[i][gamma];
            assert!(
                (fd - an).abs() < 5e-4 * (1.0 + an.abs()),
                "seed {seed}, atom {i}, comp {gamma}: fd={fd}, an={an}"
            );
        }
    }
}
