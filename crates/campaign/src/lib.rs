//! # tbmd-campaign
//!
//! Declarative experiment-campaign runner over the `tbmd` session stack.
//!
//! A campaign is a JSON document describing a full factorial matrix of
//! **structure × perturbation × protocol × engine** cells — the shape of
//! the defect-energetics, quench and strain studies the tight-binding MD
//! papers of the early '90s ran by hand:
//!
//! ```text
//! {"name": "si-vacancy",
//!  "seed": 42,
//!  "structures":    [{"label": "si1", "system": "si", "reps": 1}],
//!  "perturbations": [{"label": "pristine", "kind": "pristine"},
//!                    {"label": "vac0", "kind": "vacancy", "site": 0}],
//!  "protocols":     [{"label": "relax", "kind": "relax"},
//!                    {"label": "quench", "kind": "quench", "from_k": 600,
//!                     "to_k": 200, "segments": 2, "rate_k_per_fs": 20,
//!                     "hold_steps": 4}],
//!  "engines":       ["serial"]}
//! ```
//!
//! [`CampaignSpec::expand`] lays the matrix out as deterministic
//! [`CellPlan`]s — each with a SplitMix64-derived seed pinning its velocity
//! draws and stochastic perturbations — and [`run_campaign`] executes them
//! through [`tbmd::SessionBuilder`] (inline, or fanned out through the
//! `tbmd-serve` multiplexer), skipping any cell whose fingerprinted result
//! file already exists. The [`CampaignReport`] compares cells: formation
//! energies against the pristine reference, conserved-energy drift, RDF
//! first peaks, and step-latency percentiles.
//!
//! Determinism contract: re-running a campaign — same spec, any
//! interleaving of kills and resumes, inline or multiplexed — reproduces
//! every deterministic observable bit for bit. Wall-clock latency fields
//! are reported alongside but never fingerprinted.

pub mod report;
pub mod run;
pub mod spec;

pub use report::{CampaignReport, CellRow};
pub use run::{endpoint_fingerprint, run_campaign, RunOptions};
pub use spec::{
    CampaignSpec, CellPlan, Perturbation, PerturbationCase, ProtocolCase, ProtocolSpec,
    StructureCase,
};
