//! The declarative campaign specification and its expansion into cells.
//!
//! A [`CampaignSpec`] describes a full factorial matrix
//! **structure × perturbation × protocol × engine**; [`CampaignSpec::expand`]
//! lays it out as a deterministic list of [`CellPlan`]s. Every stochastic
//! choice inside a cell is pinned by a per-cell seed derived from the
//! campaign seed and the cell's matrix index with SplitMix64
//! ([`tbmd_md::derive_seed`]), so re-expanding the same spec always yields
//! the same cells, bit for bit, no matter which subset already ran.

use tbmd::{EngineKind, Protocol, SystemSpec};
use tbmd_md::{derive_seed, QuenchSchedule};
use tbmd_structure::{
    apply_strain, displacement_disorder, insert_interstitial, make_vacancy, Structure,
};
use tbmd_trace::JsonValue;

/// One labelled structure generator of the matrix.
#[derive(Debug, Clone)]
pub struct StructureCase {
    pub label: String,
    pub system: SystemSpec,
}

/// A perturbation applied to the generated structure before dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// The structure as generated (also the formation-energy reference).
    Pristine,
    /// Remove atom `site` ([`tbmd_structure::make_vacancy`]).
    Vacancy { site: usize },
    /// Insert one atom of the host species at fractional coordinates.
    Interstitial { frac: [f64; 3] },
    /// Seeded uniform displacement disorder of amplitude `max_disp` Å.
    /// The RNG seed is the cell seed — two cells differing only in their
    /// matrix position draw different disorder.
    Disorder { max_disp: f64 },
    /// Diagonal affine strain (cell + positions scaled together).
    Strain { strain: [f64; 3] },
}

impl Perturbation {
    /// Apply in place. `seed` pins the stochastic variant (disorder).
    pub fn apply(&self, s: &mut Structure, seed: u64) {
        match *self {
            Perturbation::Pristine => {}
            Perturbation::Vacancy { site } => {
                make_vacancy(s, site);
            }
            Perturbation::Interstitial { frac } => {
                let sp = s.species(0);
                insert_interstitial(s, sp, frac);
            }
            Perturbation::Disorder { max_disp } => displacement_disorder(s, max_disp, seed),
            Perturbation::Strain { strain } => apply_strain(s, strain),
        }
    }

    pub fn is_pristine(&self) -> bool {
        matches!(self, Perturbation::Pristine)
    }
}

/// One labelled perturbation of the matrix.
#[derive(Debug, Clone)]
pub struct PerturbationCase {
    pub label: String,
    pub perturbation: Perturbation,
}

/// A protocol program: either one core [`Protocol`] or a multi-segment
/// quench schedule chained through [`tbmd::InitialState`].
#[derive(Debug, Clone)]
pub enum ProtocolSpec {
    Relax {
        force_tolerance: f64,
        max_iterations: usize,
    },
    Nve {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
    },
    Nvt {
        temperature_k: f64,
        steps: usize,
        dt_fs: f64,
        tau_fs: f64,
    },
    /// Piecewise quench: one NVT-ramp session per segment, the phase-space
    /// endpoint carried across boundaries, `strain_per_segment` re-applied
    /// between consecutive segments.
    Quench {
        schedule: QuenchSchedule,
        strain_per_segment: [f64; 3],
    },
}

impl ProtocolSpec {
    /// The chain of core protocols this program runs, in order.
    pub fn segments(&self) -> Vec<Protocol> {
        match self {
            ProtocolSpec::Relax {
                force_tolerance,
                max_iterations,
            } => vec![Protocol::Relax {
                force_tolerance: *force_tolerance,
                max_iterations: *max_iterations,
            }],
            ProtocolSpec::Nve {
                temperature_k,
                steps,
                dt_fs,
            } => vec![Protocol::Nve {
                temperature_k: *temperature_k,
                steps: *steps,
                dt_fs: *dt_fs,
            }],
            ProtocolSpec::Nvt {
                temperature_k,
                steps,
                dt_fs,
                tau_fs,
            } => vec![Protocol::Nvt {
                temperature_k: *temperature_k,
                steps: *steps,
                dt_fs: *dt_fs,
                tau_fs: *tau_fs,
            }],
            ProtocolSpec::Quench { schedule, .. } => schedule
                .segments
                .iter()
                .map(|seg| Protocol::NvtRamp {
                    from_k: seg.from_k,
                    to_k: seg.to_k,
                    rate_k_per_fs: seg.rate_k_per_fs,
                    hold_steps: seg.hold_steps,
                    dt_fs: schedule.dt_fs,
                    tau_fs: schedule.tau_fs,
                })
                .collect(),
        }
    }

    /// The strain increment applied between consecutive segments.
    pub fn inter_segment_strain(&self) -> [f64; 3] {
        match self {
            ProtocolSpec::Quench {
                strain_per_segment, ..
            } => *strain_per_segment,
            _ => [0.0; 3],
        }
    }
}

/// One labelled protocol of the matrix.
#[derive(Debug, Clone)]
pub struct ProtocolCase {
    pub label: String,
    pub protocol: ProtocolSpec,
}

/// The declarative campaign: a name, a root seed, and the four matrix axes.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub name: String,
    /// Root seed; each cell derives its own with SplitMix64.
    pub seed: u64,
    /// Electronic smearing (eV) shared by every cell.
    pub electronic_kt: f64,
    pub structures: Vec<StructureCase>,
    pub perturbations: Vec<PerturbationCase>,
    pub protocols: Vec<ProtocolCase>,
    /// `(label, engine)` pairs.
    pub engines: Vec<(String, EngineKind)>,
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

fn int(v: &JsonValue, key: &str) -> Option<usize> {
    num(v, key).map(|x| x.max(0.0) as usize)
}

/// The campaign seed: a non-negative integral JSON number up to 2^53
/// (the exact-integer range of the f64-backed parser), or — for the full
/// u64 range — a string, decimal or `0x`-prefixed hex. Anything lossy is
/// rejected rather than silently reseeding every cell.
fn parse_seed(v: &JsonValue) -> Result<u64, String> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    let Some(s) = v.get("seed") else {
        return Ok(42);
    };
    if let Some(text) = s.as_str() {
        let (radix, digits) = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            Some(hex) => (16, hex),
            None => (10, text),
        };
        return u64::from_str_radix(digits, radix)
            .map_err(|_| format!("seed string {text:?} is not a u64"));
    }
    let x = s
        .as_f64()
        .ok_or_else(|| "seed must be an integer or a string".to_string())?;
    if !(0.0..=MAX_EXACT).contains(&x) || x.fract() != 0.0 {
        return Err(format!(
            "seed {x} is not an exactly-representable non-negative integer; \
             pass large seeds as a string (decimal or \"0x…\")"
        ));
    }
    Ok(x as u64)
}

fn label(v: &JsonValue, fallback: &str) -> String {
    v.get("label")
        .and_then(|s| s.as_str())
        .unwrap_or(fallback)
        .to_string()
}

fn vec3_field(v: &JsonValue, key: &str) -> Result<[f64; 3], String> {
    let arr = v
        .get(key)
        .and_then(|a| a.as_array())
        .ok_or_else(|| format!("{key} must be a 3-element array"))?;
    if arr.len() != 3 {
        return Err(format!("{key} must have exactly 3 elements"));
    }
    let mut out = [0.0; 3];
    for (slot, x) in out.iter_mut().zip(arr) {
        *slot = x.as_f64().ok_or_else(|| format!("{key} must be numeric"))?;
    }
    Ok(out)
}

fn parse_system(v: &JsonValue) -> Result<SystemSpec, String> {
    let reps = int(v, "reps").unwrap_or(1).max(1);
    match v.get("system").and_then(|s| s.as_str()).unwrap_or("si") {
        "si" | "silicon" => Ok(SystemSpec::SiliconDiamond { reps }),
        "c" | "carbon" => Ok(SystemSpec::CarbonDiamond { reps }),
        "graphene" => Ok(SystemSpec::Graphene { nx: reps, ny: reps }),
        "c60" => Ok(SystemSpec::C60),
        other => Err(format!("unknown system {other:?}")),
    }
}

fn parse_perturbation(v: &JsonValue) -> Result<Perturbation, String> {
    match v.get("kind").and_then(|s| s.as_str()).unwrap_or("pristine") {
        "pristine" => Ok(Perturbation::Pristine),
        "vacancy" => Ok(Perturbation::Vacancy {
            site: int(v, "site").unwrap_or(0),
        }),
        "interstitial" => Ok(Perturbation::Interstitial {
            frac: vec3_field(v, "frac")?,
        }),
        "disorder" => {
            let max_disp =
                num(v, "max_disp").ok_or_else(|| "disorder needs \"max_disp\" (Å)".to_string())?;
            Ok(Perturbation::Disorder { max_disp })
        }
        "strain" => Ok(Perturbation::Strain {
            strain: vec3_field(v, "strain")?,
        }),
        other => Err(format!("unknown perturbation kind {other:?}")),
    }
}

fn parse_protocol(v: &JsonValue) -> Result<ProtocolSpec, String> {
    let dt_fs = num(v, "dt_fs").unwrap_or(1.0);
    let tau_fs = num(v, "tau_fs").unwrap_or(50.0);
    match v.get("kind").and_then(|s| s.as_str()).unwrap_or("nve") {
        "relax" => Ok(ProtocolSpec::Relax {
            force_tolerance: num(v, "force_tolerance").unwrap_or(1e-3),
            max_iterations: int(v, "max_iterations").unwrap_or(200),
        }),
        "nve" => Ok(ProtocolSpec::Nve {
            temperature_k: num(v, "temperature_k").unwrap_or(300.0),
            steps: int(v, "steps").unwrap_or(10),
            dt_fs,
        }),
        "nvt" => Ok(ProtocolSpec::Nvt {
            temperature_k: num(v, "temperature_k").unwrap_or(300.0),
            steps: int(v, "steps").unwrap_or(10),
            dt_fs,
            tau_fs,
        }),
        "quench" => {
            let from_k = num(v, "from_k").unwrap_or(800.0);
            let to_k = num(v, "to_k").unwrap_or(200.0);
            let segments = int(v, "segments").unwrap_or(2).max(1);
            let rate = num(v, "rate_k_per_fs").unwrap_or(10.0);
            let hold = int(v, "hold_steps").unwrap_or(5);
            let schedule =
                QuenchSchedule::staircase(from_k, to_k, segments, rate, hold, dt_fs, tau_fs);
            schedule.validate()?;
            let strain_per_segment = match v.get("strain_per_segment") {
                Some(_) => vec3_field(v, "strain_per_segment")?,
                None => [0.0; 3],
            };
            Ok(ProtocolSpec::Quench {
                schedule,
                strain_per_segment,
            })
        }
        other => Err(format!("unknown protocol kind {other:?}")),
    }
}

fn parse_engine(s: &str) -> Result<EngineKind, String> {
    if let Some(ranks) = s.strip_prefix("distributed:") {
        let ranks = ranks
            .parse::<usize>()
            .map_err(|_| format!("bad rank count in {s:?}"))?;
        return Ok(EngineKind::Distributed {
            ranks: ranks.max(1),
        });
    }
    match s {
        "serial" => Ok(EngineKind::Serial),
        "shared" => Ok(EngineKind::Shared),
        "shared-jacobi" => Ok(EngineKind::SharedJacobi),
        "distributed" => Ok(EngineKind::Distributed { ranks: 2 }),
        other => Err(format!("unknown engine {other:?}")),
    }
}

impl CampaignSpec {
    /// Parse a campaign from its JSON text. See DESIGN.md ("Campaign
    /// harness") for the schema; README has a runnable example.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let name = v
            .get("name")
            .and_then(|s| s.as_str())
            .unwrap_or("campaign")
            .to_string();
        let seed = parse_seed(&v)?;
        let electronic_kt = num(&v, "electronic_kt").unwrap_or(0.1);

        let mut structures = Vec::new();
        for (i, s) in v
            .get("structures")
            .and_then(|a| a.as_array())
            .ok_or_else(|| "spec needs a \"structures\" array".to_string())?
            .iter()
            .enumerate()
        {
            structures.push(StructureCase {
                label: label(s, &format!("s{i}")),
                system: parse_system(s)?,
            });
        }

        let mut perturbations = Vec::new();
        match v.get("perturbations").and_then(|a| a.as_array()) {
            Some(items) => {
                for (i, p) in items.iter().enumerate() {
                    perturbations.push(PerturbationCase {
                        label: label(p, &format!("p{i}")),
                        perturbation: parse_perturbation(p)?,
                    });
                }
            }
            None => perturbations.push(PerturbationCase {
                label: "pristine".to_string(),
                perturbation: Perturbation::Pristine,
            }),
        }

        let mut protocols = Vec::new();
        for (i, p) in v
            .get("protocols")
            .and_then(|a| a.as_array())
            .ok_or_else(|| "spec needs a \"protocols\" array".to_string())?
            .iter()
            .enumerate()
        {
            protocols.push(ProtocolCase {
                label: label(p, &format!("proto{i}")),
                protocol: parse_protocol(p)?,
            });
        }

        let mut engines = Vec::new();
        match v.get("engines").and_then(|a| a.as_array()) {
            Some(items) => {
                for e in items {
                    let s = e
                        .as_str()
                        .ok_or_else(|| "engines must be strings".to_string())?;
                    engines.push((s.to_string(), parse_engine(s)?));
                }
            }
            None => engines.push(("serial".to_string(), EngineKind::Serial)),
        }

        if structures.is_empty() || protocols.is_empty() {
            return Err("campaign needs at least one structure and one protocol".to_string());
        }
        Ok(CampaignSpec {
            name,
            seed,
            electronic_kt,
            structures,
            perturbations,
            protocols,
            engines,
        })
    }

    /// Lay the matrix out as a deterministic cell list: structures outermost,
    /// engines innermost, each cell seeded by `derive_seed(seed, index)`.
    pub fn expand(&self) -> Vec<CellPlan> {
        let mut cells = Vec::new();
        for sc in &self.structures {
            for pc in &self.perturbations {
                for proto in &self.protocols {
                    for (engine_label, engine) in &self.engines {
                        let index = cells.len();
                        cells.push(CellPlan {
                            index,
                            name: format!(
                                "{}/{}/{}/{}",
                                sc.label, pc.label, proto.label, engine_label
                            ),
                            structure_label: sc.label.clone(),
                            perturbation_label: pc.label.clone(),
                            protocol_label: proto.label.clone(),
                            engine_label: engine_label.clone(),
                            system: sc.system,
                            perturbation: pc.perturbation,
                            protocol: proto.protocol.clone(),
                            engine: *engine,
                            electronic_kt: self.electronic_kt,
                            seed: derive_seed(self.seed, index as u64),
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One fully-resolved cell of the expanded matrix.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Position in the expanded matrix (also the seed-derivation stream).
    pub index: usize,
    /// `structure/perturbation/protocol/engine` labels joined with `/`.
    pub name: String,
    pub structure_label: String,
    pub perturbation_label: String,
    pub protocol_label: String,
    pub engine_label: String,
    pub system: SystemSpec,
    pub perturbation: Perturbation,
    pub protocol: ProtocolSpec,
    pub engine: EngineKind,
    pub electronic_kt: f64,
    /// Per-cell derived seed: velocities and stochastic perturbations.
    pub seed: u64,
}

impl CellPlan {
    /// Identity fingerprint of everything that determines this cell's
    /// physics — what a stored result file must match to be reused on
    /// resume. Wall-clock observables are deliberately outside it.
    pub fn fingerprint(&self) -> u64 {
        let canonical = format!(
            "{}|{:?}|{:?}|{:?}|{:?}|{}|{}",
            self.name,
            self.system,
            self.perturbation,
            self.protocol,
            self.engine,
            self.electronic_kt,
            self.seed
        );
        tbmd_ckpt::fingerprint(canonical.as_bytes())
    }

    /// Whether this cell is a formation-energy reference.
    pub fn is_pristine(&self) -> bool {
        self.perturbation.is_pristine()
    }

    /// Build the starting structure: generate, then perturb.
    pub fn build_initial(&self) -> Structure {
        let mut s = self.system.build(0.0, self.seed);
        self.perturbation.apply(&mut s, self.seed);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "t",
        "seed": 7,
        "structures": [{"label": "si1", "system": "si", "reps": 1}],
        "perturbations": [
            {"label": "pristine", "kind": "pristine"},
            {"label": "vac0", "kind": "vacancy", "site": 0}
        ],
        "protocols": [
            {"label": "nve", "kind": "nve", "temperature_k": 300, "steps": 4},
            {"label": "q", "kind": "quench", "from_k": 600, "to_k": 200,
             "segments": 2, "rate_k_per_fs": 20, "hold_steps": 2}
        ],
        "engines": ["serial", "shared"]
    }"#;

    #[test]
    fn expands_full_matrix_deterministically() {
        let spec = CampaignSpec::from_json(SPEC).expect("parse");
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(
            a.len(),
            8,
            "1 structure × 2 perturbations × 2 protocols × 2 engines"
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.fingerprint(), y.fingerprint());
        }
        // Seeds differ between cells (SplitMix64 stream separation).
        assert_ne!(a[0].seed, a[1].seed);
    }

    #[test]
    fn quench_expands_to_ramp_segments() {
        let spec = CampaignSpec::from_json(SPEC).expect("parse");
        let cells = spec.expand();
        let quench = cells
            .iter()
            .find(|c| c.protocol_label == "q")
            .expect("quench cell");
        let segments = quench.protocol.segments();
        assert_eq!(segments.len(), 2);
        assert!(matches!(
            segments[0],
            Protocol::NvtRamp { from_k, .. } if (from_k - 600.0).abs() < 1e-9
        ));
    }

    #[test]
    fn vacancy_cell_builds_one_fewer_atom() {
        let spec = CampaignSpec::from_json(SPEC).expect("parse");
        let cells = spec.expand();
        let pristine = cells.iter().find(|c| c.is_pristine()).unwrap();
        let vacancy = cells.iter().find(|c| !c.is_pristine()).unwrap();
        assert_eq!(
            vacancy.build_initial().n_atoms() + 1,
            pristine.build_initial().n_atoms()
        );
    }

    #[test]
    fn seed_parses_exactly_and_rejects_lossy_values() {
        let with_seed = |seed: &str| {
            format!(
                r#"{{"seed": {seed},
                    "structures": [{{"system": "si"}}],
                    "protocols": [{{"kind": "nve"}}]}}"#
            )
        };
        assert_eq!(CampaignSpec::from_json(&with_seed("7")).unwrap().seed, 7);
        assert_eq!(CampaignSpec::from_json(&with_seed("0")).unwrap().seed, 0);
        // Strings carry the full u64 range, decimal or hex.
        assert_eq!(
            CampaignSpec::from_json(&with_seed("\"0xDEADBEEFDEADBEEF\""))
                .unwrap()
                .seed,
            0xDEAD_BEEF_DEAD_BEEF
        );
        assert_eq!(
            CampaignSpec::from_json(&with_seed("\"18446744073709551615\""))
                .unwrap()
                .seed,
            u64::MAX
        );
        // Lossy numeric seeds are errors, never silent truncation: negative,
        // fractional, beyond the f64 exact-integer range, or junk strings.
        for bad in ["-1", "1.5", "18446744073709551616", "\"not-a-seed\""] {
            assert!(
                CampaignSpec::from_json(&with_seed(bad)).is_err(),
                "seed {bad} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(CampaignSpec::from_json("{}").is_err());
        assert!(CampaignSpec::from_json("not json").is_err());
        assert!(CampaignSpec::from_json(
            r#"{"structures":[{"system":"unobtanium"}],"protocols":[{"kind":"nve"}]}"#
        )
        .is_err());
    }
}
