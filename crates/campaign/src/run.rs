//! Campaign execution: expand, skip completed cells, run the rest.
//!
//! Two execution paths produce bitwise-identical physics:
//!
//! * **inline** (default) — cells run sequentially, each as a chain of
//!   [`tbmd::Session`]s under a [`tbmd::ComputeLease`];
//! * **multiplexed** — cells fan out through the `tbmd-serve`
//!   [`Multiplexer`], sharing the process compute budget round-robin.
//!   Follow-up quench segments are submitted as their predecessors retire.
//!
//! Determinism holds across both because every velocity draw is pinned by
//! the cell seed and every segment boundary carries the exact phase-space
//! endpoint via [`InitialState`] — scheduling order never touches the
//! dynamics.
//!
//! With a campaign directory set, each finished cell writes a fingerprinted
//! result file; a re-run (after a kill, or to extend the matrix) reuses
//! every file whose fingerprint still matches and executes only the rest.

use crate::report::{CampaignReport, CellRow};
use crate::spec::{CampaignSpec, CellPlan};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use tbmd::{
    try_lease, CheckpointStore, InitialState, SessionBuilder, SimulationConfig, SimulationSummary,
};
use tbmd_md::RdfAccumulator;
use tbmd_serve::{JobSpec, Multiplexer};
use tbmd_structure::{apply_strain, Structure};
use tbmd_trace::{Hist, HistSnapshot, ScopedSink, TraceSink};

/// Execution knobs for one campaign invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Campaign directory for resumable per-cell result files (`None`
    /// disables resume).
    pub dir: Option<PathBuf>,
    /// Stop after executing this many *new* cells — a simulated
    /// mid-campaign kill for resume tests; completed cells keep their
    /// result files.
    pub stop_after: Option<usize>,
    /// Threads each cell leases from the process compute budget.
    pub threads_per_cell: usize,
    /// In-memory snapshot interval per session (0 disables checkpointing).
    pub checkpoint_interval: usize,
    /// Fan cells out through the serve [`Multiplexer`] instead of running
    /// them sequentially.
    pub multiplex: bool,
    /// Scheduler quantum (MD steps per visit) in multiplexed mode.
    pub quantum: usize,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            dir: None,
            stop_after: None,
            threads_per_cell: 1,
            checkpoint_interval: 0,
            multiplex: false,
            quantum: 8,
        }
    }
}

/// Fingerprint over the bit patterns of a summary's final positions,
/// velocities and total energy — equal iff the trajectory endpoints are
/// bitwise equal.
pub fn endpoint_fingerprint(summary: &SimulationSummary) -> u64 {
    let mut bytes = Vec::with_capacity(
        24 * (summary.final_structure.n_atoms() + summary.final_velocities.len()) + 8,
    );
    for p in summary.final_structure.positions() {
        for c in p.to_array() {
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
    for v in &summary.final_velocities {
        for c in v.to_array() {
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
    bytes.extend_from_slice(&summary.final_total_energy.to_bits().to_le_bytes());
    tbmd_ckpt::fingerprint(&bytes)
}

/// Run a campaign to completion (or to `stop_after`), reusing result files
/// from `opts.dir` when their fingerprints match.
pub fn run_campaign(spec: &CampaignSpec, opts: &RunOptions) -> Result<CampaignReport, String> {
    // Step-latency percentiles need a collecting trace sink; installing one
    // is idempotent across campaigns in a process.
    if !tbmd_trace::enabled() {
        tbmd_trace::install(TraceSink::collecting());
    }
    if let Some(dir) = &opts.dir {
        std::fs::create_dir_all(cells_dir(dir)).map_err(|e| format!("campaign dir: {e}"))?;
    }
    let mut rows = Vec::new();
    let mut pending = Vec::new();
    for cell in spec.expand() {
        match opts.dir.as_ref().and_then(|dir| load_cached(dir, &cell)) {
            Some(row) => rows.push(row),
            None => pending.push(cell),
        }
    }
    let budget = opts.stop_after.unwrap_or(pending.len()).min(pending.len());
    let complete = budget == pending.len();
    let to_run = &pending[..budget];
    let new_rows = if opts.multiplex {
        run_cells_multiplexed(to_run, opts)?
    } else {
        to_run
            .iter()
            .map(|cell| run_cell_inline(cell, opts))
            .collect::<Result<Vec<_>, _>>()?
    };
    if let Some(dir) = &opts.dir {
        // Multiplexed cells retire in completion order, not matrix order —
        // pair every row with its cell by matrix index, never by position.
        let by_index: HashMap<usize, &CellPlan> =
            to_run.iter().map(|cell| (cell.index, cell)).collect();
        for row in &new_rows {
            let cell = by_index
                .get(&row.index)
                .ok_or_else(|| format!("result row {:?} matches no scheduled cell", row.name))?;
            write_result(dir, cell, row).map_err(|e| format!("{}: {e}", cell.name))?;
        }
    }
    rows.extend(new_rows);
    Ok(CampaignReport::build(&spec.name, rows, complete))
}

fn cells_dir(dir: &Path) -> PathBuf {
    dir.join("cells")
}

fn result_path(dir: &Path, cell: &CellPlan) -> PathBuf {
    let safe: String = cell
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    // Sanitization is lossy ("a/b" and "a_b" both map to "a_b"); a hash of
    // the unsanitized name keeps distinct cells on distinct files.
    let tag = tbmd_ckpt::fingerprint(cell.name.as_bytes()) as u32;
    cells_dir(dir).join(format!("{safe}-{tag:08x}.json"))
}

/// A stored row, if its fingerprint still matches the cell it would stand
/// in for (a changed spec or seed invalidates it silently — the cell just
/// re-runs).
fn load_cached(dir: &Path, cell: &CellPlan) -> Option<CellRow> {
    let text = std::fs::read_to_string(result_path(dir, cell)).ok()?;
    let v = tbmd_trace::JsonValue::parse(&text).ok()?;
    let stored = v.get("cell_fingerprint")?.as_str()?;
    if stored != format!("{:016x}", cell.fingerprint()) {
        return None;
    }
    let mut row = CellRow::from_json(&v)?;
    // The fingerprint proves the file was written by *some* cell with this
    // physics; the identity fields prove it was written by *this* cell. A
    // misfiled or hand-copied result must read as a miss, not a hit.
    if row.name != cell.name || row.index != cell.index {
        return None;
    }
    row.skipped = true;
    Some(row)
}

fn write_result(dir: &Path, cell: &CellPlan, row: &CellRow) -> std::io::Result<()> {
    let mut v = row.to_json();
    v.set("cell_fingerprint", format!("{:016x}", cell.fingerprint()));
    // Atomic publish: a kill mid-write must not leave a torn file that a
    // resume would half-parse.
    let path = result_path(dir, cell);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, v.to_compact())?;
    std::fs::rename(&tmp, &path)
}

/// Aggregates carried across a cell's protocol segments.
struct SegmentChain {
    structure: Structure,
    velocities: Option<Vec<tbmd_linalg::Vec3>>,
    drift: f64,
    steps: usize,
    converged: bool,
    last: Option<SimulationSummary>,
}

impl SegmentChain {
    fn new(structure: Structure) -> SegmentChain {
        SegmentChain {
            structure,
            velocities: None,
            drift: 0.0,
            steps: 0,
            converged: true,
            last: None,
        }
    }

    fn initial_state(&mut self) -> InitialState {
        match self.velocities.take() {
            Some(v) if v.len() == self.structure.n_atoms() => {
                InitialState::with_velocities(self.structure.clone(), v)
            }
            // A relaxation segment leaves no velocities; the next segment
            // redraws Maxwell–Boltzmann from the cell seed.
            _ => InitialState::from_structure(self.structure.clone()),
        }
    }

    fn absorb(&mut self, summary: SimulationSummary) {
        self.drift = self.drift.max(summary.conserved_drift);
        self.steps += summary.steps;
        self.converged &= summary.converged;
        self.structure = summary.final_structure.clone();
        self.velocities = Some(summary.final_velocities.clone());
        self.last = Some(summary);
    }
}

fn segment_config(cell: &CellPlan, protocol: tbmd::Protocol) -> SimulationConfig {
    SimulationConfig {
        system: cell.system,
        engine: cell.engine,
        protocol,
        electronic_kt: cell.electronic_kt,
        perturb: 0.0,
        seed: cell.seed,
        record_stride: 0,
    }
}

fn build_row(cell: &CellPlan, chain: SegmentChain, step_hist: &HistSnapshot) -> CellRow {
    let summary = chain.last.expect("cell ran at least one segment");
    let s = &summary.final_structure;
    // Same binning rule as the core observables: half the shortest
    // periodic edge (minimum-image validity), 5 Å for clusters.
    let r_max = s
        .cell()
        .min_periodic_edge()
        .map_or(5.0, |edge| 0.5 * edge)
        .max(1.0);
    let mut rdf = RdfAccumulator::new(r_max, 64);
    rdf.accumulate(s);
    let peak = rdf.first_peak();
    CellRow {
        index: cell.index,
        name: cell.name.clone(),
        structure: cell.structure_label.clone(),
        perturbation: cell.perturbation_label.clone(),
        protocol: cell.protocol_label.clone(),
        engine: cell.engine_label.clone(),
        pristine: cell.is_pristine(),
        n_atoms: s.n_atoms(),
        seed: cell.seed,
        steps: chain.steps,
        converged: chain.converged,
        potential_ev: summary.final_potential_energy,
        total_ev: summary.final_total_energy,
        drift_ev: chain.drift,
        mean_temp_k: summary.mean_temperature_k,
        rdf_peak_r: peak.map(|(r, _)| r),
        rdf_peak_g: peak.map(|(_, g)| g),
        endpoint: endpoint_fingerprint(&summary),
        formation_ev: None,
        skipped: false,
        step_p50_ns: step_hist.percentile_ns(0.50),
        step_p95_ns: step_hist.percentile_ns(0.95),
        step_p99_ns: step_hist.percentile_ns(0.99),
        step_samples: step_hist.count(),
    }
}

/// Run one cell inline: its protocol segments back to back, under one
/// compute lease and one scoped telemetry sink.
fn run_cell_inline(cell: &CellPlan, opts: &RunOptions) -> Result<CellRow, String> {
    let sink = ScopedSink::new(&cell.name);
    let strain = cell.protocol.inter_segment_strain();
    let mut chain = SegmentChain::new(cell.build_initial());
    let mut lease = try_lease(opts.threads_per_cell.max(1));
    for (i, protocol) in cell.protocol.segments().into_iter().enumerate() {
        if i > 0 && strain != [0.0; 3] {
            apply_strain(&mut chain.structure, strain);
        }
        let mut builder = SessionBuilder::new(segment_config(cell, protocol))
            .initial_state(chain.initial_state())
            .telemetry(sink.clone());
        if let Some(granted) = lease.take() {
            builder = builder.lease(granted);
        }
        if opts.checkpoint_interval > 0 {
            builder =
                builder.checkpoint_store(CheckpointStore::in_memory(3), opts.checkpoint_interval);
        }
        let mut session = builder.build().map_err(|e| format!("{}: {e}", cell.name))?;
        let summary = session.run().map_err(|e| format!("{}: {e}", cell.name))?;
        lease = session.take_lease();
        chain.absorb(summary);
    }
    drop(lease);
    let step_hist = sink.histograms().hist(Hist::Step).clone();
    Ok(build_row(cell, chain, &step_hist))
}

/// Run a batch of cells through the serve [`Multiplexer`]: every cell's
/// first segment is submitted up front; each retiring segment triggers the
/// submission of its successor (with the endpoint carried and the
/// inter-segment strain applied) until all chains finish.
fn run_cells_multiplexed(cells: &[CellPlan], opts: &RunOptions) -> Result<Vec<CellRow>, String> {
    struct Pending {
        cell: CellPlan,
        segments: Vec<tbmd::Protocol>,
        seg: usize,
        chain: SegmentChain,
        step_hist: HistSnapshot,
    }

    let mut mux = Multiplexer::new();
    let stats = mux.stats();
    let mut pending: HashMap<String, Pending> = HashMap::new();
    let job_name = |cell: &CellPlan, seg: usize| format!("{}#s{seg}", cell.name);

    let submit = |mux: &mut Multiplexer,
                  cell: &CellPlan,
                  seg: usize,
                  protocol: tbmd::Protocol,
                  initial: InitialState| {
        let mut job =
            JobSpec::new(job_name(cell, seg), segment_config(cell, protocol)).with_initial(initial);
        job.quantum = opts.quantum.max(1);
        job.threads = opts.threads_per_cell.max(1);
        job.checkpoint_interval = opts.checkpoint_interval;
        mux.submit(job, std::io::sink());
    };

    for cell in cells {
        let segments = cell.protocol.segments();
        let mut chain = SegmentChain::new(cell.build_initial());
        submit(&mut mux, cell, 0, segments[0], chain.initial_state());
        pending.insert(
            cell.name.clone(),
            Pending {
                cell: cell.clone(),
                segments,
                seg: 0,
                chain,
                step_hist: HistSnapshot::default(),
            },
        );
    }

    let mut rows = Vec::new();
    while !pending.is_empty() {
        mux.tick();
        for report in mux.take_reports() {
            let base = report
                .name
                .rsplit_once("#s")
                .map(|(b, _)| b.to_string())
                .unwrap_or_else(|| report.name.clone());
            let summary = report
                .outcome
                .map_err(|detail| format!("{}: {detail}", report.name))?;
            let entry = pending
                .get_mut(&base)
                .ok_or_else(|| format!("report for unknown cell {base:?}"))?;
            // Fold this segment's step-latency histogram into the cell's.
            if let Some(seg_sink) = stats.tenant_sink(&report.name) {
                entry.step_hist = entry
                    .step_hist
                    .merge(seg_sink.histograms().hist(Hist::Step));
            }
            entry.chain.absorb(summary);
            entry.seg += 1;
            if entry.seg < entry.segments.len() {
                let strain = entry.cell.protocol.inter_segment_strain();
                if strain != [0.0; 3] {
                    apply_strain(&mut entry.chain.structure, strain);
                }
                let initial = entry.chain.initial_state();
                let (cell, seg, protocol) =
                    (entry.cell.clone(), entry.seg, entry.segments[entry.seg]);
                submit(&mut mux, &cell, seg, protocol, initial);
            } else {
                let done = pending.remove(&base).expect("entry just updated");
                rows.push(build_row(&done.cell, done.chain, &done.step_hist));
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_collisions_get_distinct_result_paths() {
        // "a b" and "a_b" both sanitize to "a_b"; the name-hash suffix must
        // keep their result files apart.
        let spec = CampaignSpec::from_json(
            r#"{
                "structures": [
                    {"label": "a b", "system": "si"},
                    {"label": "a_b", "system": "si"}
                ],
                "protocols": [{"label": "nve", "kind": "nve", "steps": 1}]
            }"#,
        )
        .expect("parse");
        let cells = spec.expand();
        assert_eq!(cells.len(), 2);
        let dir = Path::new("campaign");
        assert_ne!(result_path(dir, &cells[0]), result_path(dir, &cells[1]));
    }
}
