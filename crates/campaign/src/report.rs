//! Per-cell result rows and the aggregated campaign report.
//!
//! A [`CellRow`] separates *deterministic* observables (energies, drift,
//! temperature statistics, the RDF peak, the phase-space endpoint
//! fingerprint — all derived from simulation state, byte-equal across equal
//! runs) from *wall-clock* observables (step-latency percentiles from the
//! cell's scoped histogram), which are reported but excluded from
//! determinism checks and resume fingerprints.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use tbmd_trace::JsonValue;

/// One cell's results.
#[derive(Debug, Clone)]
pub struct CellRow {
    /// Position in the expanded matrix (row ordering key).
    pub index: usize,
    pub name: String,
    pub structure: String,
    pub perturbation: String,
    pub protocol: String,
    pub engine: String,
    /// Whether this cell is a formation-energy reference.
    pub pristine: bool,
    pub n_atoms: usize,
    pub seed: u64,
    /// MD steps (or relaxation iterations) across all segments.
    pub steps: usize,
    pub converged: bool,
    /// Final potential energy (eV) — the free energy of the cell at the
    /// electronic temperature the campaign runs at.
    pub potential_ev: f64,
    pub total_ev: f64,
    /// Peak conserved-quantity drift (eV), maximized over segments.
    pub drift_ev: f64,
    pub mean_temp_k: f64,
    /// First maximum of g(r) on the final configuration.
    pub rdf_peak_r: Option<f64>,
    pub rdf_peak_g: Option<f64>,
    /// Fingerprint over the bit patterns of final positions, velocities and
    /// total energy — the bitwise-reproducibility witness.
    pub endpoint: u64,
    /// Formation energy vs the pristine reference cell (eV); filled by
    /// [`CampaignReport::build`], `None` for pristine rows or when no
    /// reference with the same structure/protocol/engine exists.
    pub formation_ev: Option<f64>,
    /// Whether this row was reused from a previous run's result file.
    pub skipped: bool,
    /// Step-latency percentiles (ns) from the cell's scoped histogram.
    /// Wall-clock: excluded from determinism comparisons.
    pub step_p50_ns: Option<f64>,
    pub step_p95_ns: Option<f64>,
    pub step_p99_ns: Option<f64>,
    pub step_samples: u64,
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex(v: &JsonValue, key: &str) -> Option<u64> {
    u64::from_str_radix(v.get(key)?.as_str()?, 16).ok()
}

impl CellRow {
    /// Serialize for the per-cell result file / JSONL artifact. u64
    /// identities go as hex strings (JSON numbers are f64-backed and would
    /// round them); everything else round-trips losslessly through
    /// `JsonValue`'s shortest-round-trip float formatting.
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::object();
        v.set("index", self.index)
            .set("name", self.name.as_str())
            .set("structure", self.structure.as_str())
            .set("perturbation", self.perturbation.as_str())
            .set("protocol", self.protocol.as_str())
            .set("engine", self.engine.as_str())
            .set("pristine", self.pristine)
            .set("n_atoms", self.n_atoms)
            .set("seed", hex(self.seed))
            .set("steps", self.steps)
            .set("converged", self.converged)
            .set("potential_ev", self.potential_ev)
            .set("total_ev", self.total_ev)
            .set("drift_ev", self.drift_ev)
            .set("mean_temp_k", self.mean_temp_k)
            .set("endpoint", hex(self.endpoint))
            .set("step_samples", self.step_samples);
        if let Some(r) = self.rdf_peak_r {
            v.set("rdf_peak_r", r);
        }
        if let Some(g) = self.rdf_peak_g {
            v.set("rdf_peak_g", g);
        }
        if let Some(e) = self.formation_ev {
            v.set("formation_ev", e);
        }
        if let Some(p) = self.step_p50_ns {
            v.set("step_p50_ns", p);
        }
        if let Some(p) = self.step_p95_ns {
            v.set("step_p95_ns", p);
        }
        if let Some(p) = self.step_p99_ns {
            v.set("step_p99_ns", p);
        }
        v
    }

    /// Parse a row back from [`CellRow::to_json`] output.
    pub fn from_json(v: &JsonValue) -> Option<CellRow> {
        let s = |key: &str| Some(v.get(key)?.as_str()?.to_string());
        let f = |key: &str| v.get(key).and_then(|x| x.as_f64());
        Some(CellRow {
            index: f("index")? as usize,
            name: s("name")?,
            structure: s("structure")?,
            perturbation: s("perturbation")?,
            protocol: s("protocol")?,
            engine: s("engine")?,
            pristine: v.get("pristine")?.as_bool()?,
            n_atoms: f("n_atoms")? as usize,
            seed: parse_hex(v, "seed")?,
            steps: f("steps")? as usize,
            converged: v.get("converged")?.as_bool()?,
            potential_ev: f("potential_ev")?,
            total_ev: f("total_ev")?,
            drift_ev: f("drift_ev")?,
            mean_temp_k: f("mean_temp_k")?,
            rdf_peak_r: f("rdf_peak_r"),
            rdf_peak_g: f("rdf_peak_g"),
            endpoint: parse_hex(v, "endpoint")?,
            formation_ev: f("formation_ev"),
            skipped: false,
            step_p50_ns: f("step_p50_ns"),
            step_p95_ns: f("step_p95_ns"),
            step_p99_ns: f("step_p99_ns"),
            step_samples: f("step_samples").unwrap_or(0.0) as u64,
        })
    }

    /// Canonical string over the deterministic observables only — two
    /// invocations of the same campaign must produce byte-equal keys even
    /// though their wall-clock latency fields differ.
    pub fn deterministic_key(&self) -> String {
        format!(
            "{}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:?}|{:?}|{}|{}",
            self.name,
            self.endpoint,
            self.potential_ev.to_bits(),
            self.total_ev.to_bits(),
            self.drift_ev.to_bits(),
            self.mean_temp_k.to_bits(),
            self.rdf_peak_r.map(f64::to_bits),
            self.rdf_peak_g.map(f64::to_bits),
            self.steps,
            self.n_atoms
        )
    }
}

/// The aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub name: String,
    /// Rows in matrix order.
    pub rows: Vec<CellRow>,
    /// `false` when the run stopped early (`stop_after`) with cells left.
    pub complete: bool,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells reused from result files of a previous invocation.
    pub reused: usize,
}

impl CampaignReport {
    /// Assemble the report: order rows, then fill formation energies —
    /// for each defect row, `E_f = E_defect − (N_defect / N_ref) · E_ref`
    /// against the pristine row running the same structure, protocol and
    /// engine.
    pub fn build(name: &str, mut rows: Vec<CellRow>, complete: bool) -> CampaignReport {
        rows.sort_by_key(|r| r.index);
        let executed = rows.iter().filter(|r| !r.skipped).count();
        let reused = rows.len() - executed;
        let references: HashMap<(String, String, String), (usize, f64)> = rows
            .iter()
            .filter(|r| r.pristine)
            .map(|r| {
                (
                    (r.structure.clone(), r.protocol.clone(), r.engine.clone()),
                    (r.n_atoms, r.potential_ev),
                )
            })
            .collect();
        for row in rows.iter_mut().filter(|r| !r.pristine) {
            let key = (
                row.structure.clone(),
                row.protocol.clone(),
                row.engine.clone(),
            );
            if let Some(&(ref_atoms, ref_pot)) = references.get(&key) {
                if ref_atoms > 0 {
                    let per_atom = ref_pot / ref_atoms as f64;
                    row.formation_ev = Some(row.potential_ev - row.n_atoms as f64 * per_atom);
                }
            }
        }
        CampaignReport {
            name: name.to_string(),
            rows,
            complete,
            executed,
            reused,
        }
    }

    pub fn row(&self, name: &str) -> Option<&CellRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The JSONL artifact: one campaign header line, then one line per cell.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = JsonValue::object();
        header
            .set("type", "campaign")
            .set("name", self.name.as_str())
            .set("cells", self.rows.len())
            .set("executed", self.executed)
            .set("reused", self.reused)
            .set("complete", self.complete);
        out.push_str(&header.to_compact());
        out.push('\n');
        for row in &self.rows {
            let mut line = row.to_json();
            line.set("type", "cell").set("skipped", row.skipped);
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL artifact to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// A fixed-width comparison table over the matrix.
    pub fn render_table(&self) -> String {
        let fmt_opt = |x: Option<f64>, digits: usize| match x {
            Some(x) => format!("{x:.digits$}"),
            None => "-".to_string(),
        };
        let mut out = format!(
            "campaign {} — {} cells ({} executed, {} reused{})\n",
            self.name,
            self.rows.len(),
            self.executed,
            self.reused,
            if self.complete { "" } else { ", INCOMPLETE" }
        );
        out.push_str(&format!(
            "{:<34} {:>5} {:>14} {:>10} {:>10} {:>8} {:>8} {:>9}\n",
            "cell", "atoms", "E_pot/eV", "E_form/eV", "drift/eV", "T/K", "g(r) pk", "p95/us"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<34} {:>5} {:>14.6} {:>10} {:>10.2e} {:>8.1} {:>8} {:>9}\n",
                r.name,
                r.n_atoms,
                r.potential_ev,
                fmt_opt(r.formation_ev, 4),
                r.drift_ev,
                r.mean_temp_k,
                fmt_opt(r.rdf_peak_r, 2),
                fmt_opt(r.step_p95_ns.map(|ns| ns / 1e3), 0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, name: &str, pristine: bool, n_atoms: usize, pot: f64) -> CellRow {
        CellRow {
            index,
            name: name.to_string(),
            structure: "si1".to_string(),
            perturbation: if pristine { "pristine" } else { "vac" }.to_string(),
            protocol: "relax".to_string(),
            engine: "serial".to_string(),
            pristine,
            n_atoms,
            seed: 0xDEAD_BEEF_DEAD_BEEF,
            steps: 10,
            converged: true,
            potential_ev: pot,
            total_ev: pot,
            drift_ev: 1e-6,
            mean_temp_k: 300.0,
            rdf_peak_r: Some(2.35),
            rdf_peak_g: Some(4.0),
            endpoint: 0xFFFF_FFFF_FFFF_FFFF,
            formation_ev: None,
            skipped: false,
            step_p50_ns: Some(1.0e6),
            step_p95_ns: Some(2.0e6),
            step_p99_ns: None,
            step_samples: 10,
        }
    }

    #[test]
    fn formation_energy_uses_pristine_reference() {
        let report = CampaignReport::build(
            "t",
            vec![row(0, "a", true, 8, -40.0), row(1, "b", false, 7, -34.0)],
            true,
        );
        // E_f = -34 - 7·(-40/8) = -34 + 35 = 1.
        let e = report.row("b").unwrap().formation_ev.unwrap();
        assert!((e - 1.0).abs() < 1e-12);
        assert!(report.row("a").unwrap().formation_ev.is_none());
    }

    #[test]
    fn row_round_trips_through_json_bitwise() {
        let r = row(3, "x", false, 7, -34.123456789012345);
        let text = r.to_json().to_compact();
        let back = CellRow::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.deterministic_key(), r.deterministic_key());
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.endpoint, r.endpoint);
        assert_eq!(back.potential_ev.to_bits(), r.potential_ev.to_bits());
    }

    #[test]
    fn table_and_jsonl_cover_every_cell() {
        let report = CampaignReport::build(
            "t",
            vec![row(0, "a", true, 8, -40.0), row(1, "b", false, 7, -34.0)],
            true,
        );
        let table = report.render_table();
        assert!(table.contains("a") && table.contains("b"));
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl
            .lines()
            .next()
            .unwrap()
            .contains("\"type\":\"campaign\""));
    }
}
