//! Property-based tests for cells, builders and neighbor lists.

use proptest::prelude::*;
use tbmd_linalg::Vec3;
use tbmd_structure::{
    bulk_diamond, nanotube, nanotube_geometry, Cell, NeighborList, Species, Structure,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimum_image_never_longer_than_direct(
        ax in -20.0f64..20.0, ay in -20.0f64..20.0, az in -20.0f64..20.0,
        bx in -20.0f64..20.0, by in -20.0f64..20.0, bz in -20.0f64..20.0,
        lx in 2.0f64..15.0, ly in 2.0f64..15.0, lz in 2.0f64..15.0,
    ) {
        let cell = Cell::orthorhombic(lx, ly, lz);
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let dmin = cell.distance(a, b);
        prop_assert!(dmin <= (b - a).norm() + 1e-12);
        // Minimum-image displacement components are bounded by L/2.
        let d = cell.displacement(a, b);
        prop_assert!(d.x.abs() <= lx / 2.0 + 1e-9);
        prop_assert!(d.y.abs() <= ly / 2.0 + 1e-9);
        prop_assert!(d.z.abs() <= lz / 2.0 + 1e-9);
    }

    #[test]
    fn wrap_translation_invariance(
        x in -50.0f64..50.0, y in -50.0f64..50.0, z in -50.0f64..50.0,
        l in 1.0f64..20.0, k in -5i32..5
    ) {
        let cell = Cell::cubic(l);
        let r = Vec3::new(x, y, z);
        let shifted = r + Vec3::splat(k as f64 * l);
        let w1 = cell.wrap(r);
        let w2 = cell.wrap(shifted);
        prop_assert!((w1 - w2).norm() < 1e-9 * (1.0 + k.abs() as f64));
    }

    #[test]
    fn neighbor_list_consistent_with_brute(cutoff in 1.5f64..4.5) {
        let s = bulk_diamond(Species::Silicon, 2, 2, 2);
        let brute = NeighborList::build_brute_force(&s, cutoff);
        let auto = NeighborList::build(&s, cutoff);
        prop_assert_eq!(brute.n_entries(), auto.n_entries());
        for i in 0..s.n_atoms() {
            prop_assert_eq!(brute.neighbors(i).len(), auto.neighbors(i).len());
        }
    }

    #[test]
    fn neighbor_counts_uniform_in_perfect_crystal(reps in 1usize..3, cutoff in 2.4f64..4.0) {
        let s = bulk_diamond(Species::Silicon, reps + 1, reps + 1, reps + 1);
        let nl = NeighborList::build(&s, cutoff);
        let c0 = nl.neighbors(0).len();
        for i in 1..s.n_atoms() {
            prop_assert_eq!(nl.neighbors(i).len(), c0, "atom {} differs", i);
        }
    }

    #[test]
    fn nanotube_atom_count_formula(n in 3u32..10, m_frac in 0u32..11, cells in 1usize..3) {
        let m = m_frac % (n + 1); // 0..=n
        let geom = nanotube_geometry(n, m, 1.42);
        let tube = nanotube(n, m, cells, 1.42);
        prop_assert_eq!(tube.n_atoms(), geom.atoms_per_cell * cells);
        // All on the cylinder of the right radius.
        for &p in tube.positions() {
            let r = (p.x * p.x + p.y * p.y).sqrt();
            prop_assert!((r - geom.radius).abs() < 1e-8);
        }
    }

    #[test]
    fn nanotube_always_three_coordinated(n in 4u32..9, m_sel in 0u32..3) {
        let m = match m_sel { 0 => 0, 1 => n, _ => n / 2 };
        let tube = nanotube(n, m, 2, 1.42);
        for i in 0..tube.n_atoms() {
            prop_assert_eq!(tube.coordination(i, 1.6), 3, "atom {} in ({},{})", i, n, m);
        }
    }

    #[test]
    fn com_translation_covariance(dx in -5.0f64..5.0, dy in -5.0f64..5.0, dz in -5.0f64..5.0) {
        let mut s = Structure::homogeneous(
            Species::Carbon,
            vec![Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.5, 0.2)],
            Cell::cluster(),
        );
        let c0 = s.center_of_mass();
        let t = Vec3::new(dx, dy, dz);
        for r in s.positions_mut() {
            *r += t;
        }
        let c1 = s.center_of_mass();
        prop_assert!((c1 - (c0 + t)).norm() < 1e-10);
    }
}
