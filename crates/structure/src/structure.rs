//! The central atomistic container: species + positions + cell.

use crate::cell::Cell;
use crate::species::Species;
use rand::Rng;
use tbmd_linalg::Vec3;

/// An atomic configuration.
///
/// Positions are Cartesian (Å). All geometric queries route through the
/// embedded [`Cell`] so periodic images are handled uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    species: Vec<Species>,
    positions: Vec<Vec3>,
    cell: Cell,
}

impl Structure {
    /// Build from parallel species/position arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn new(species: Vec<Species>, positions: Vec<Vec3>, cell: Cell) -> Self {
        assert_eq!(
            species.len(),
            positions.len(),
            "species/position length mismatch"
        );
        Structure {
            species,
            positions,
            cell,
        }
    }

    /// A single-species structure.
    pub fn homogeneous(sp: Species, positions: Vec<Vec3>, cell: Cell) -> Self {
        let species = vec![sp; positions.len()];
        Structure {
            species,
            positions,
            cell,
        }
    }

    /// Number of atoms.
    #[inline]
    pub fn n_atoms(&self) -> usize {
        self.species.len()
    }

    /// Total tight-binding orbital count (Σ per-atom orbitals).
    pub fn n_orbitals(&self) -> usize {
        self.species.iter().map(|s| s.n_orbitals()).sum()
    }

    /// Total valence electron count.
    pub fn n_electrons(&self) -> usize {
        self.species.iter().map(|s| s.valence_electrons()).sum()
    }

    /// Species of atom `i`.
    #[inline]
    pub fn species(&self, i: usize) -> Species {
        self.species[i]
    }

    /// All species.
    #[inline]
    pub fn species_slice(&self) -> &[Species] {
        &self.species
    }

    /// Position of atom `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Vec3 {
        self.positions[i]
    }

    /// All positions.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Mutable positions (callers must keep them inside sensible bounds;
    /// [`Structure::wrap_positions`] re-wraps periodic axes).
    #[inline]
    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    /// Replace all positions.
    pub fn set_positions(&mut self, pos: Vec<Vec3>) {
        assert_eq!(pos.len(), self.species.len());
        self.positions = pos;
    }

    /// The simulation cell.
    #[inline]
    pub fn cell(&self) -> &Cell {
        &self.cell
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    #[inline]
    pub fn displacement(&self, i: usize, j: usize) -> Vec3 {
        self.cell.displacement(self.positions[i], self.positions[j])
    }

    /// Minimum-image distance between atoms `i` and `j`.
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.displacement(i, j).norm()
    }

    /// Masses of all atoms in amu.
    pub fn masses(&self) -> Vec<f64> {
        self.species.iter().map(|s| s.mass_amu()).collect()
    }

    /// Total mass in amu.
    pub fn total_mass(&self) -> f64 {
        self.species.iter().map(|s| s.mass_amu()).sum()
    }

    /// Mass-weighted centre of mass.
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        self.species
            .iter()
            .zip(&self.positions)
            .map(|(s, &r)| r * s.mass_amu())
            .sum::<Vec3>()
            / m
    }

    /// Wrap all positions into the primary cell on periodic axes.
    pub fn wrap_positions(&mut self) {
        for r in &mut self.positions {
            *r = self.cell.wrap(*r);
        }
    }

    /// Displace every atom by a uniform random vector of amplitude
    /// `max_disp` per component — the standard trick to break symmetry
    /// before MD or relaxation.
    pub fn perturb<R: Rng>(&mut self, rng: &mut R, max_disp: f64) {
        for r in &mut self.positions {
            *r += Vec3::new(
                rng.gen_range(-max_disp..=max_disp),
                rng.gen_range(-max_disp..=max_disp),
                rng.gen_range(-max_disp..=max_disp),
            );
        }
    }

    /// Substitute the species of atom `i` (e.g. boron doping of a carbon
    /// structure).
    pub fn substitute(&mut self, i: usize, sp: Species) {
        self.species[i] = sp;
    }

    /// Remove atom `i` (vacancy creation); the last atom takes its index.
    pub fn remove_atom(&mut self, i: usize) {
        assert!(i < self.n_atoms(), "atom index out of range");
        self.species.swap_remove(i);
        self.positions.swap_remove(i);
    }

    /// Append an atom (interstitial insertion) and return its index.
    pub fn add_atom(&mut self, sp: Species, position: Vec3) -> usize {
        self.species.push(sp);
        self.positions.push(position);
        self.n_atoms() - 1
    }

    /// Mutable access to the cell — for homogeneous deformations that scale
    /// box lengths and positions together (see `defects::apply_strain`).
    pub fn cell_mut(&mut self) -> &mut Cell {
        &mut self.cell
    }

    /// All unordered pairs closer than `cutoff` (brute force; the neighbor
    /// module provides the O(N) linked-cell version).
    pub fn pairs_within(&self, cutoff: f64) -> Vec<(usize, usize, f64)> {
        let n = self.n_atoms();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(i, j);
                if d <= cutoff {
                    out.push((i, j, d));
                }
            }
        }
        out
    }

    /// Shortest interatomic distance (useful for validating builders).
    pub fn min_distance(&self) -> Option<f64> {
        let n = self.n_atoms();
        let mut best: Option<f64> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(i, j);
                best = Some(best.map_or(d, |b| b.min(d)));
            }
        }
        best
    }

    /// Coordination number of atom `i` at the given bond cutoff.
    pub fn coordination(&self, i: usize, cutoff: f64) -> usize {
        (0..self.n_atoms())
            .filter(|&j| j != i && self.distance(i, j) <= cutoff)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_atom() -> Structure {
        Structure::homogeneous(
            Species::Silicon,
            vec![Vec3::ZERO, Vec3::new(2.35, 0.0, 0.0)],
            Cell::cluster(),
        )
    }

    #[test]
    fn counts() {
        let s = two_atom();
        assert_eq!(s.n_atoms(), 2);
        assert_eq!(s.n_orbitals(), 8);
        assert_eq!(s.n_electrons(), 8);
    }

    #[test]
    fn distance_and_displacement() {
        let s = two_atom();
        assert!((s.distance(0, 1) - 2.35).abs() < 1e-12);
        assert!((s.displacement(0, 1).x - 2.35).abs() < 1e-12);
        assert!((s.displacement(1, 0).x + 2.35).abs() < 1e-12);
    }

    #[test]
    fn center_of_mass_homogeneous() {
        let s = two_atom();
        let com = s.center_of_mass();
        assert!((com.x - 1.175).abs() < 1e-12);
        assert!(com.y.abs() < 1e-12);
    }

    #[test]
    fn center_of_mass_weighted() {
        let s = Structure::new(
            vec![Species::Hydrogen, Species::Silicon],
            vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
            Cell::cluster(),
        );
        let com = s.center_of_mass();
        let expected = 28.0855 / (28.0855 + 1.008);
        assert!((com.x - expected).abs() < 1e-10);
    }

    #[test]
    fn perturb_bounded_and_reproducible() {
        let mut a = two_atom();
        let mut b = two_atom();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        a.perturb(&mut r1, 0.05);
        b.perturb(&mut r2, 0.05);
        assert_eq!(a, b, "same seed must give the same perturbation");
        for (orig, new) in two_atom().positions().iter().zip(a.positions()) {
            assert!((*new - *orig).max_abs() <= 0.05 + 1e-15);
        }
    }

    #[test]
    fn substitution() {
        let mut s = two_atom();
        s.substitute(1, Species::Carbon);
        assert_eq!(s.species(1), Species::Carbon);
        assert_eq!(s.n_electrons(), 8);
        s.substitute(0, Species::Boron);
        assert_eq!(s.n_electrons(), 7);
    }

    #[test]
    fn pairs_and_coordination() {
        let s = Structure::homogeneous(
            Species::Carbon,
            vec![
                Vec3::ZERO,
                Vec3::new(1.4, 0.0, 0.0),
                Vec3::new(0.0, 1.4, 0.0),
                Vec3::new(5.0, 5.0, 5.0),
            ],
            Cell::cluster(),
        );
        let pairs = s.pairs_within(1.5);
        assert_eq!(pairs.len(), 2);
        assert_eq!(s.coordination(0, 1.5), 2);
        assert_eq!(s.coordination(3, 1.5), 0);
        assert!((s.min_distance().unwrap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn remove_atom_swaps_last_in() {
        let mut s = Structure::new(
            vec![Species::Carbon, Species::Silicon, Species::Hydrogen],
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(2.0, 0.0, 0.0),
            ],
            Cell::cluster(),
        );
        s.remove_atom(0);
        assert_eq!(s.n_atoms(), 2);
        assert_eq!(s.species(0), Species::Hydrogen);
        assert!((s.position(0).x - 2.0).abs() < 1e-15);
        assert_eq!(s.species(1), Species::Silicon);
    }

    #[test]
    #[should_panic]
    fn remove_atom_out_of_range() {
        let mut s = two_atom();
        s.remove_atom(5);
    }

    #[test]
    fn wrap_positions_periodic() {
        let mut s = Structure::homogeneous(
            Species::Silicon,
            vec![Vec3::new(-1.0, 7.0, 3.0)],
            Cell::cubic(5.0),
        );
        s.wrap_positions();
        let r = s.position(0);
        assert!((r.x - 4.0).abs() < 1e-12);
        assert!((r.y - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = Structure::new(vec![Species::Carbon], vec![], Cell::cluster());
    }
}
