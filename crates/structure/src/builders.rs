//! Structure builders for the workloads used throughout the project:
//! bulk diamond supercells (the Si benchmark system), periodic graphene
//! sheets, (n,m) single-wall nanotubes, the C₆₀ fullerene, and small
//! molecules/chains for unit tests.

use crate::cell::Cell;
use crate::species::Species;
use crate::structure::Structure;
use crate::vec3ext::gcd;
use std::f64::consts::PI;
use tbmd_linalg::Vec3;

/// Diamond-cubic conventional lattice constant for a given first-neighbour
/// bond length `d`: `a = 4 d / √3`.
pub fn diamond_lattice_constant(bond: f64) -> f64 {
    4.0 * bond / 3.0f64.sqrt()
}

/// Periodic diamond-structure supercell of `nx × ny × nz` conventional cubic
/// cells (8 atoms each) with the species' reference bond length.
///
/// This is the canonical TBMD benchmark workload: Si cells of 8, 64, 216,
/// 512 … atoms.
pub fn bulk_diamond(sp: Species, nx: usize, ny: usize, nz: usize) -> Structure {
    bulk_diamond_with_bond(sp, sp.reference_bond_length(), nx, ny, nz)
}

/// Diamond supercell with an explicit bond length (used for equation-of-state
/// scans around equilibrium).
pub fn bulk_diamond_with_bond(
    sp: Species,
    bond: f64,
    nx: usize,
    ny: usize,
    nz: usize,
) -> Structure {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "supercell repeats must be positive"
    );
    let a = diamond_lattice_constant(bond);
    // 8-atom conventional cell: FCC + basis (0,0,0) and (1/4,1/4,1/4).
    let frac = [
        (0.0, 0.0, 0.0),
        (0.0, 0.5, 0.5),
        (0.5, 0.0, 0.5),
        (0.5, 0.5, 0.0),
        (0.25, 0.25, 0.25),
        (0.25, 0.75, 0.75),
        (0.75, 0.25, 0.75),
        (0.75, 0.75, 0.25),
    ];
    let mut positions = Vec::with_capacity(8 * nx * ny * nz);
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                for &(fx, fy, fz) in &frac {
                    positions.push(Vec3::new(
                        (ix as f64 + fx) * a,
                        (iy as f64 + fy) * a,
                        (iz as f64 + fz) * a,
                    ));
                }
            }
        }
    }
    let cell = Cell::orthorhombic(nx as f64 * a, ny as f64 * a, nz as f64 * a);
    Structure::homogeneous(sp, positions, cell)
}

/// Periodic graphene sheet in the xy plane built from `nx × ny` rectangular
/// 4-atom cells (cell dimensions `3·a_cc × √3·a_cc`), with the given C–C
/// bond length.
pub fn graphene_sheet(bond: f64, nx: usize, ny: usize) -> Structure {
    assert!(nx > 0 && ny > 0);
    let lx = 3.0 * bond;
    let ly = 3.0f64.sqrt() * bond;
    // Rectangular 4-atom basis of the honeycomb lattice.
    let basis = [
        (0.0, 0.0),
        (bond, 0.0),
        (1.5 * bond, 0.5 * ly),
        (2.5 * bond, 0.5 * ly),
    ];
    let mut positions = Vec::with_capacity(4 * nx * ny);
    for ix in 0..nx {
        for iy in 0..ny {
            for &(bx, by) in &basis {
                positions.push(Vec3::new(ix as f64 * lx + bx, iy as f64 * ly + by, 0.0));
            }
        }
    }
    Structure::homogeneous(
        Species::Carbon,
        positions,
        Cell::slab_xy(nx as f64 * lx, ny as f64 * ly),
    )
}

/// Geometry data for an `(n,m)` single-wall nanotube.
#[derive(Debug, Clone, Copy)]
pub struct NanotubeGeometry {
    /// Tube radius in Å.
    pub radius: f64,
    /// Length of the translational unit cell along the axis, in Å.
    pub period: f64,
    /// Atoms per translational unit cell: `4(n² + nm + m²)/d_R`.
    pub atoms_per_cell: usize,
}

/// Analytic geometry of the `(n,m)` tube for a given graphene bond length.
pub fn nanotube_geometry(n: u32, m: u32, bond: f64) -> NanotubeGeometry {
    assert!(n > 0 || m > 0, "chiral indices cannot both be zero");
    let a = 3.0f64.sqrt() * bond; // graphene lattice constant
    let nn = n as f64;
    let mm = m as f64;
    let ch = a * (nn * nn + nn * mm + mm * mm).sqrt();
    let dr = gcd(2 * n as u64 + m as u64, 2 * m as u64 + n as u64) as f64;
    let period = 3.0f64.sqrt() * ch / dr;
    let atoms = (4.0 * (nn * nn + nn * mm + mm * mm) / dr).round() as usize;
    NanotubeGeometry {
        radius: ch / (2.0 * PI),
        period,
        atoms_per_cell: atoms,
    }
}

/// Build an `(n,m)` single-wall carbon nanotube of `cells` translational unit
/// cells, periodic along z (axis), free in x/y.
///
/// The tube is produced by the standard rolling construction: graphene
/// lattice points inside the rectangle spanned by the chiral vector `C_h =
/// n·a₁ + m·a₂` and the translation vector `T` are mapped onto a cylinder of
/// circumference `|C_h|`.
pub fn nanotube(n: u32, m: u32, cells: usize, bond: f64) -> Structure {
    assert!(cells > 0);
    let geom = nanotube_geometry(n, m, bond);
    let a = 3.0f64.sqrt() * bond;
    // Graphene lattice vectors (armchair-oriented conventional choice).
    let a1 = [a * 3.0f64.sqrt() / 2.0, a * 0.5];
    let a2 = [a * 3.0f64.sqrt() / 2.0, -a * 0.5];
    // B-sublattice offset: (a1 + a2)/3.
    let b_off = [(a1[0] + a2[0]) / 3.0, (a1[1] + a2[1]) / 3.0];
    let nn = n as i64;
    let mm = m as i64;
    let dr = gcd((2 * nn + mm) as u64, (2 * mm + nn) as u64) as i64;
    let t1 = (2 * mm + nn) / dr;
    let t2 = -(2 * nn + mm) / dr;
    let ch = [
        nn as f64 * a1[0] + mm as f64 * a2[0],
        nn as f64 * a1[1] + mm as f64 * a2[1],
    ];
    let tv = [
        t1 as f64 * a1[0] + t2 as f64 * a2[0],
        t1 as f64 * a1[1] + t2 as f64 * a2[1],
    ];
    let ch_len2 = ch[0] * ch[0] + ch[1] * ch[1];
    let tv_len2 = tv[0] * tv[0] + tv[1] * tv[1];
    let tv_len = tv_len2.sqrt();
    let radius = geom.radius;

    // Sweep a generous index window and keep points whose (ξ, η) projections
    // fall inside the unit cell of the (C_h, T) parallelogram.
    let range = nn.abs() + mm.abs() + t1.abs() + t2.abs() + 2;
    let mut positions: Vec<Vec3> = Vec::with_capacity(geom.atoms_per_cell * cells);
    let eps = 1e-9;
    for i in -range..=range {
        for j in -range..=range {
            for (which, off) in [(0usize, [0.0, 0.0]), (1usize, b_off)] {
                let _ = which;
                let x = i as f64 * a1[0] + j as f64 * a2[0] + off[0];
                let y = i as f64 * a1[1] + j as f64 * a2[1] + off[1];
                let xi = (x * ch[0] + y * ch[1]) / ch_len2;
                let eta = (x * tv[0] + y * tv[1]) / tv_len2;
                if xi >= -eps && xi < 1.0 - eps && eta >= -eps && eta < 1.0 - eps {
                    let theta = 2.0 * PI * xi;
                    let z = eta * tv_len;
                    positions.push(Vec3::new(radius * theta.cos(), radius * theta.sin(), z));
                }
            }
        }
    }
    assert_eq!(
        positions.len(),
        geom.atoms_per_cell,
        "nanotube ({n},{m}) construction produced {} atoms, expected {}",
        positions.len(),
        geom.atoms_per_cell
    );
    // Replicate along the axis.
    let mut all = Vec::with_capacity(positions.len() * cells);
    for c in 0..cells {
        let shift = c as f64 * tv_len;
        all.extend(positions.iter().map(|&p| Vec3::new(p.x, p.y, p.z + shift)));
    }
    Structure::homogeneous(Species::Carbon, all, Cell::wire_z(tv_len * cells as f64))
}

/// The C₆₀ buckminsterfullerene as a free cluster.
///
/// Vertices of a truncated icosahedron (all edges equal), scaled so the mean
/// bond length is `bond` (≈1.44 Å experimentally).
pub fn fullerene_c60(bond: f64) -> Structure {
    let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
    // Canonical vertex set with edge length 2.
    let mut base: Vec<[f64; 3]> = Vec::with_capacity(60);
    let sets: [[f64; 3]; 3] = [
        [0.0, 1.0, 3.0 * phi],
        [1.0, 2.0 + phi, 2.0 * phi],
        [2.0, 1.0 + 2.0 * phi, phi],
    ];
    for s in sets {
        for sx in [-1.0f64, 1.0] {
            for sy in [-1.0f64, 1.0] {
                for sz in [-1.0f64, 1.0] {
                    let v = [s[0] * sx, s[1] * sy, s[2] * sz];
                    // Skip duplicate sign flips of zero components.
                    if s[0] == 0.0 && sx < 0.0 {
                        continue;
                    }
                    // Cyclic permutations of the coordinate triple.
                    for perm in 0..3 {
                        let p = match perm {
                            0 => [v[0], v[1], v[2]],
                            1 => [v[2], v[0], v[1]],
                            _ => [v[1], v[2], v[0]],
                        };
                        if !base.iter().any(|q| {
                            (q[0] - p[0]).abs() < 1e-9
                                && (q[1] - p[1]).abs() < 1e-9
                                && (q[2] - p[2]).abs() < 1e-9
                        }) {
                            base.push(p);
                        }
                    }
                }
            }
        }
    }
    assert_eq!(
        base.len(),
        60,
        "truncated icosahedron must have 60 vertices"
    );
    let scale = bond / 2.0;
    let positions: Vec<Vec3> = base
        .into_iter()
        .map(|p| Vec3::new(p[0] * scale, p[1] * scale, p[2] * scale))
        .collect();
    Structure::homogeneous(Species::Carbon, positions, Cell::cluster())
}

/// A homonuclear dimer along x.
pub fn dimer(sp: Species, bond: f64) -> Structure {
    Structure::homogeneous(
        sp,
        vec![Vec3::ZERO, Vec3::new(bond, 0.0, 0.0)],
        Cell::cluster(),
    )
}

/// A linear chain of `n` atoms with spacing `d`, as a free cluster.
pub fn linear_chain(sp: Species, n: usize, d: f64) -> Structure {
    let positions = (0..n).map(|i| Vec3::new(i as f64 * d, 0.0, 0.0)).collect();
    Structure::homogeneous(sp, positions, Cell::cluster())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_cell_counts_and_bonds() {
        let s = bulk_diamond(Species::Silicon, 2, 2, 2);
        assert_eq!(s.n_atoms(), 64);
        let d = Species::Silicon.reference_bond_length();
        // Every atom in diamond has exactly 4 neighbours at the bond length.
        for i in 0..s.n_atoms() {
            assert_eq!(s.coordination(i, d * 1.1), 4, "atom {i} coordination");
        }
        assert!((s.min_distance().unwrap() - d).abs() < 1e-9);
    }

    #[test]
    fn diamond_sizes() {
        assert_eq!(bulk_diamond(Species::Silicon, 1, 1, 1).n_atoms(), 8);
        assert_eq!(bulk_diamond(Species::Silicon, 3, 3, 3).n_atoms(), 216);
        assert_eq!(bulk_diamond(Species::Carbon, 2, 1, 1).n_atoms(), 16);
    }

    #[test]
    fn diamond_lattice_constant_silicon() {
        let a = diamond_lattice_constant(2.351);
        assert!((a - 5.4295).abs() < 1e-3, "a = {a}");
    }

    #[test]
    fn graphene_coordination_three() {
        let s = graphene_sheet(1.42, 3, 3);
        assert_eq!(s.n_atoms(), 36);
        for i in 0..s.n_atoms() {
            assert_eq!(s.coordination(i, 1.42 * 1.1), 3, "atom {i}");
        }
        assert!((s.min_distance().unwrap() - 1.42).abs() < 1e-9);
    }

    #[test]
    fn zigzag_nanotube_10_0() {
        let geom = nanotube_geometry(10, 0, 1.42);
        assert_eq!(geom.atoms_per_cell, 40);
        // R = √3·a_cc·n / 2π
        let expect_r = 3.0f64.sqrt() * 1.42 * 10.0 / (2.0 * PI);
        assert!((geom.radius - expect_r).abs() < 1e-9);
        // zig-zag period = 3 a_cc
        assert!(
            (geom.period - 3.0 * 1.42).abs() < 1e-9,
            "period {}",
            geom.period
        );
        let tube = nanotube(10, 0, 3, 1.42);
        assert_eq!(tube.n_atoms(), 120);
        // All atoms sit on the cylinder.
        for &p in tube.positions() {
            let r = (p.x * p.x + p.y * p.y).sqrt();
            assert!((r - geom.radius).abs() < 1e-9);
        }
        // Bond network: every atom 3-coordinated (periodic along z).
        for i in 0..tube.n_atoms() {
            assert_eq!(tube.coordination(i, 1.6), 3, "atom {i}");
        }
    }

    #[test]
    fn armchair_nanotube_5_5() {
        let geom = nanotube_geometry(5, 5, 1.42);
        assert_eq!(geom.atoms_per_cell, 20);
        // armchair period = √3 a_cc
        assert!((geom.period - 3.0f64.sqrt() * 1.42).abs() < 1e-9);
        let tube = nanotube(5, 5, 6, 1.42);
        assert_eq!(tube.n_atoms(), 120);
        for i in 0..tube.n_atoms() {
            assert_eq!(tube.coordination(i, 1.6), 3, "atom {i}");
        }
    }

    #[test]
    fn chiral_nanotube_6_3() {
        let geom = nanotube_geometry(6, 3, 1.42);
        // dR = gcd(15, 12) = 3; atoms = 4·63/3 = 84.
        assert_eq!(geom.atoms_per_cell, 84);
        let tube = nanotube(6, 3, 1, 1.42);
        assert_eq!(tube.n_atoms(), 84);
        for i in 0..tube.n_atoms() {
            assert_eq!(tube.coordination(i, 1.6), 3, "atom {i}");
        }
    }

    #[test]
    fn nanotube_bonds_near_graphene_bond() {
        // Rolling shortens bonds slightly (chords of the cylinder); all bonds
        // must stay within a few percent of the flat value.
        let tube = nanotube(8, 0, 2, 1.42);
        for (i, j, d) in tube.pairs_within(1.6) {
            assert!(
                d > 1.30 && d < 1.45,
                "bond {i}-{j} length {d} outside tolerance"
            );
        }
    }

    #[test]
    fn c60_topology() {
        let s = fullerene_c60(1.44);
        assert_eq!(s.n_atoms(), 60);
        for i in 0..60 {
            assert_eq!(s.coordination(i, 1.6), 3, "atom {i}");
        }
        // All atoms on a common sphere.
        let com = s.center_of_mass();
        let r0 = (s.position(0) - com).norm();
        for &p in s.positions() {
            assert!(((p - com).norm() - r0).abs() < 1e-9);
        }
        // C60 radius ≈ 3.55 Å for 1.44 Å mean bonds.
        assert!(r0 > 3.3 && r0 < 3.8, "radius {r0}");
    }

    #[test]
    fn dimer_and_chain() {
        let d = dimer(Species::Silicon, 2.2);
        assert_eq!(d.n_atoms(), 2);
        assert!((d.distance(0, 1) - 2.2).abs() < 1e-12);
        let c = linear_chain(Species::Carbon, 5, 1.3);
        assert_eq!(c.n_atoms(), 5);
        assert!((c.distance(0, 4) - 5.2).abs() < 1e-12);
    }
}
